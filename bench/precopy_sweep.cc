// Live pre-copy sweep: the fourth strategy family measured against the
// paper's three, emitting machine-readable JSON (BENCH_precopy.json) so the
// downtime/bytes trade is tracked from PR to PR: nothing may hang, every
// migration must complete, pre-copy must beat pure-copy on downtime for the
// compute-bound workloads, and it must pay for that in page bytes (dirty
// re-shipping — §5's critique, quantified).
//
// Usage: precopy_sweep [--seed N] [--threads N] [--out PATH]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/check.h"
#include "src/experiments/precopy.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int threads = 0;
  std::string out_path = "BENCH_precopy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--threads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const PreCopySweepSummary summary = RunPreCopySweep(seed, threads);
  Json report = PreCopySweepToJson(summary);
  report["seed"] = Json(seed);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== pre-copy sweep: %zu cells ===\n", summary.cells.size());
  std::printf("completed:          %llu\n", static_cast<unsigned long long>(summary.completed));
  std::printf("hung:               %llu\n", static_cast<unsigned long long>(summary.hung));
  std::printf("downtime wins:      %d (compute-bound, vs pure-copy)\n", summary.downtime_wins);
  std::printf("bytes ordering ok:  %s (precopy >= pure-copy >= IOU)\n",
              summary.bytes_ordering_ok ? "yes" : "NO");
  std::printf("SLO predictor ok:   %s  -> %s\n", summary.slo_ok ? "yes" : "NO",
              out_path.c_str());

  const bool ok = summary.hung == 0 && summary.completed == summary.cells.size() &&
                  summary.downtime_win_ok && summary.bytes_ordering_ok && summary.slo_ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
