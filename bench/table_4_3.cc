// Regenerates Table 4-3: percent of address space accessed (transferred to
// the new site) under pure-IOU and resident-set strategies, no prefetch.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

struct PaperRow {
  const char* name;
  double iou_real;   // % of RealMem, pure-IOU
  double iou_total;  // % of total space
  double rs_real;    // % of RealMem, resident-set
  double rs_total;
};

// Lisp-T's row is illegible in the published scan; the summary bounds it
// (3%-58% of RealMem, min taken by Lisp): we report it without a reference.
constexpr PaperRow kPaper[] = {
    {"Minprog", 8.6, 3.7, 50.4, 21.7},
    {"Lisp-T", -1, -1, -1, -1},
    {"Lisp-Del", 16.5, 0.002, 17.4, 0.009},
    {"PM-Start", 58.0, 27.4, 76.0, 35.9},
    {"PM-Mid", 51.5, 25.2, -1, -1},
    {"PM-End", 26.9, 14.8, 72.5, 40.1},
    {"Chess", 35.6, 13.9, 66.0, 25.8},
};

std::string Ref(double v) { return v < 0 ? "(n/a)" : "(" + FormatDouble(v, 1) + ")"; }

void Run() {
  PrintHeading("Table 4-3: Percent of Address Space Accessed",
               "Percent of RealMem shipped to the new site ([.] = percent of total space);\n"
               "pure-copy ships 100% of RealMem by definition. Paper values in parentheses.");

  TextTable table({"Process", "IOU %Real", "[%Total]", "(paper)", "RS %Real", "[%Total]",
                   "(paper)"});
  for (const PaperRow& row : kPaper) {
    const TrialResult& iou = SweepCache::Find(row.name, TransferStrategy::kPureIou, 0);
    const TrialResult& rs = SweepCache::Find(row.name, TransferStrategy::kResidentSet, 0);
    table.AddRow({row.name, FormatDouble(iou.FractionOfRealTransferred() * 100.0, 1),
                  "[" + FormatDouble(iou.FractionOfTotalTransferred() * 100.0, 3) + "]",
                  Ref(row.iou_real), FormatDouble(rs.FractionOfRealTransferred() * 100.0, 1),
                  "[" + FormatDouble(rs.FractionOfTotalTransferred() * 100.0, 3) + "]",
                  Ref(row.rs_real)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The Lisp family touches the least of its (huge) space; Pasmac the most\n"
              "(sequential whole-file scans); RS always ships more than is used.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
