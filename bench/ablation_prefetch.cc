// Ablation: fine-grained prefetch sweep (the paper samples {0,1,3,7,15};
// section 4.4.2 recommends "one page regardless of strategy"). This sweep
// locates the actual optimum per access-pattern class and shows the
// dead-weight effect on byte traffic.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Ablation: prefetch sweep 0..16 (pure-IOU)",
               "End-to-end (transfer + remote execution) seconds and total bytes.");

  for (const char* name : {"PM-Start", "Lisp-Del", "Chess"}) {
    std::printf("--- %s ---\n", name);
    TextTable table({"PF", "xfer+exec (s)", "bytes", "remote faults", "hit ratio"});
    double best = 1e18;
    std::uint32_t best_pf = 0;
    for (std::uint32_t prefetch : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
      TrialConfig config;
      config.workload = name;
      config.strategy = TransferStrategy::kPureIou;
      config.prefetch = prefetch;
      const TrialResult trial = RunTrial(config);
      const double total = ToSeconds(trial.TransferPlusExec());
      const double hit = trial.dest_pager.prefetched_pages == 0
                             ? 0.0
                             : static_cast<double>(trial.dest_pager.prefetch_hits) /
                                   static_cast<double>(trial.dest_pager.prefetched_pages);
      table.AddRow({std::to_string(prefetch), FormatSeconds(total),
                    FormatWithCommas(trial.bytes_total),
                    std::to_string(trial.dest_pager.imag_faults),
                    FormatPercent(hit, 0)});
      if (total < best) {
        best = total;
        best_pf = prefetch;
      }
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("optimum prefetch for %s: %u pages\n\n", name, best_pf);
  }
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
