// Warms the cross-binary sweep cache once, in parallel, so the ~20
// table/figure/ablation binaries deserialise the paper grid from disk
// instead of each re-simulating it.
//
// Usage: run_all [--force] [--threads N] [--seed N]
//   --force     recompute and rewrite cache files even when present
//   --threads   worker threads (default: ACCENT_SWEEP_THREADS or hardware)
//   --seed      trial seed (default 42, the grid every binary uses)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/experiments/sweep.h"
#include "src/experiments/sweep_cache.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  bool force = false;
  int threads = 0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--force") == 0) {
      force = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--force] [--threads N] [--seed N]\n", argv[0]);
      return 2;
    }
  }
  if (threads <= 0) {
    threads = SweepThreadCount();
  }

  DiskSweepCache& cache = DiskSweepCache::Global();
  std::printf("Warming sweep cache in %s (threads=%d, seed=%llu)\n", cache.dir().c_str(),
              threads, static_cast<unsigned long long>(seed));

  const auto start = std::chrono::steady_clock::now();
  std::size_t trials = 0;
  for (const std::string& name : RepresentativeNames()) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<TrialResult>& results =
        force ? cache.Refresh(name, seed, threads) : cache.For(name, seed, threads);
    const auto t1 = std::chrono::steady_clock::now();
    trials += results.size();
    std::printf("  %-10s %3zu trials  %8.1f ms\n", name.c_str(), results.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  const auto stop = std::chrono::steady_clock::now();

  std::printf("%zu trials ready in %.2f s (%d recomputed, %d loaded from disk)\n", trials,
              std::chrono::duration<double>(stop - start).count(), cache.computes(),
              cache.disk_hits());
  std::printf("Bench binaries will now load the grid from %s.\n", cache.dir().c_str());
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
