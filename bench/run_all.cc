// Warms the cross-binary sweep cache once, in parallel, so the ~20
// table/figure/ablation binaries deserialise the paper grid from disk
// instead of each re-simulating it — then folds the grid into
// BENCH_sweep.json: per-trial summary rows plus the aggregated metrics
// registry (validated by tools/check_bench.sh --sweep, consumed by
// tools/render_results).
//
// Usage: run_all [--force] [--threads N] [--seed N] [--out FILE]
//   --force     recompute and rewrite cache files even when present
//   --threads   worker threads (default: ACCENT_SWEEP_THREADS or hardware)
//   --seed      trial seed (default 42, the grid every binary uses)
//   --out       sweep summary JSON path (default BENCH_sweep.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/experiments/metrics_fold.h"
#include "src/experiments/sweep.h"
#include "src/experiments/sweep_cache.h"
#include "src/metrics/registry.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  bool force = false;
  int threads = 0;
  std::uint64_t seed = 42;
  std::string out = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--force") == 0) {
      force = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--force] [--threads N] [--seed N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads <= 0) {
    threads = SweepThreadCount();
  }

  DiskSweepCache& cache = DiskSweepCache::Global();
  std::printf("Warming sweep cache in %s (threads=%d, seed=%llu)\n", cache.dir().c_str(),
              threads, static_cast<unsigned long long>(seed));

  const auto start = std::chrono::steady_clock::now();
  std::size_t trials = 0;
  MetricsRegistry metrics;
  Json trial_rows{Json::Array{}};
  Json workloads{Json::Array{}};
  for (const std::string& name : RepresentativeNames()) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<TrialResult>& results =
        force ? cache.Refresh(name, seed, threads) : cache.For(name, seed, threads);
    const auto t1 = std::chrono::steady_clock::now();
    trials += results.size();
    workloads.Append(Json(name));
    for (const TrialResult& result : results) {
      FoldTrialMetrics(result, &metrics);
      trial_rows.Append(TrialSummaryToJson(result));
    }
    std::printf("  %-10s %3zu trials  %8.1f ms\n", name.c_str(), results.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  const auto stop = std::chrono::steady_clock::now();

  // Calibrated resident-set column for Table 4-5: the paper's measured RS
  // times include walking the whole validated map (Lisp validates its 4 GB
  // heap at birth), which the plain page walk misses. Re-run the prefetch-0
  // resident-set trials fresh with the rs_zero_scan_per_mb cost switched on
  // (~3 ms/MB of zero-fill lands Lisp at the paper's 25.8 s). These bypass
  // the disk cache on purpose: the headline grid and its digests must stay
  // byte-identical.
  const SimDuration rs_zero_scan = Ms(3);
  std::vector<TrialConfig> rs_configs;
  for (const std::string& name : RepresentativeNames()) {
    TrialConfig config;
    config.workload = name;
    config.strategy = TransferStrategy::kResidentSet;
    config.prefetch = 0;
    config.seed = seed;
    config.rs_zero_scan_per_mb = rs_zero_scan;
    rs_configs.push_back(config);
  }
  const std::vector<TrialResult> rs_results = RunTrials(rs_configs, threads);
  Json rs_rows{Json::Array{}};
  for (const TrialResult& result : rs_results) {
    Json row{Json::Object{}};
    row["workload"] = Json(result.config.workload);
    row["rimas_transfer_us"] =
        Json(static_cast<std::int64_t>(result.migration.RimasTransferTime().count()));
    row["rs_packaging_extra_us"] =
        Json(static_cast<std::int64_t>(result.migration.rs_packaging_extra.count()));
    rs_rows.Append(std::move(row));
  }
  std::printf("  rs-calibrated column: %zu fresh resident-set trials (%lld us/MB zero scan)\n",
              rs_results.size(), static_cast<long long>(rs_zero_scan.count()));

  Json root{Json::Object{}};
  root["bench"] = Json("sweep");
  root["schema_version"] = Json(2);
  root["rs_zero_scan_per_mb_us"] = Json(static_cast<std::int64_t>(rs_zero_scan.count()));
  root["rs_calibrated"] = std::move(rs_rows);
  root["seed"] = Json(seed);
  root["trial_count"] = Json(static_cast<std::uint64_t>(trials));
  root["workloads"] = std::move(workloads);
  root["metrics"] = metrics.ToJson();
  root["trials"] = std::move(trial_rows);
  {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "run_all: cannot write %s\n", out.c_str());
      return 1;
    }
    file << root.Dump(1) << "\n";
  }

  std::printf("%zu trials ready in %.2f s (%d recomputed, %d loaded from disk)\n", trials,
              std::chrono::duration<double>(stop - start).count(), cache.computes(),
              cache.disk_hits());
  std::printf("Sweep summary + metrics registry written to %s.\n", out.c_str());
  std::printf("Bench binaries will now load the grid from %s.\n", cache.dir().c_str());
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
