// Regenerates Figure 4-5: byte transfer rates for Lisp-Del under the three
// strategies (no prefetch), from migration start to the final remote
// instruction. White areas in the paper are imaginary-fault bytes; black
// areas are everything else — here the two series are printed side by side
// with an ASCII rate chart.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void PrintSeries(const TrialResult& trial) {
  std::printf("--- %s (bucket = %.1f s, trial ends at %.1f s) ---\n",
              StrategyName(trial.config.strategy), ToSeconds(trial.series_bucket),
              ToSeconds(trial.finished));
  ByteCount peak = 1;
  for (const auto& bucket : trial.series) {
    ByteCount total = 0;
    for (ByteCount b : bucket.bytes) {
      total += b;
    }
    peak = std::max(peak, total);
  }
  std::printf("%9s  %12s  %12s  rate\n", "t (s)", "fault B", "other B");
  // Cap the printed rows: merge trailing all-quiet stretches.
  for (const auto& bucket : trial.series) {
    const ByteCount fault = bucket.bytes[static_cast<int>(TrafficKind::kFaultData)];
    ByteCount other = 0;
    for (std::size_t k = 0; k < bucket.bytes.size(); ++k) {
      if (k != static_cast<std::size_t>(TrafficKind::kFaultData)) {
        other += bucket.bytes[k];
      }
    }
    if (fault + other == 0) {
      continue;
    }
    const int bar = static_cast<int>(60.0 * static_cast<double>(fault + other) /
                                     static_cast<double>(peak));
    const int fault_bar =
        static_cast<int>(60.0 * static_cast<double>(fault) / static_cast<double>(peak));
    std::string chart(static_cast<std::size_t>(fault_bar), 'o');   // fault bytes
    chart.append(static_cast<std::size_t>(bar - fault_bar), '#');  // bulk/control bytes
    std::printf("%9.1f  %12s  %12s  %s\n", ToSeconds(bucket.start),
                FormatWithCommas(fault).c_str(), FormatWithCommas(other).c_str(),
                chart.c_str());
  }
  std::printf("\n");
}

void Run() {
  PrintHeading("Figure 4-5: Byte Transfer Rates for Lisp-Del",
               "'o' = bytes supporting imaginary faults (the paper's white areas),\n"
               "'#' = all other transfers (black areas). No prefetch.\n"
               "Paper anchor: the pure-IOU trial finishes shortly after the pure-copy\n"
               "trial *begins* remote execution.");

  TrialConfig config;
  config.workload = "Lisp-Del";
  config.traffic_bucket = Sec(2.5);
  config.strategy = TransferStrategy::kPureIou;
  const TrialResult iou = RunTrial(config);
  config.strategy = TransferStrategy::kResidentSet;
  const TrialResult rs = RunTrial(config);
  config.strategy = TransferStrategy::kPureCopy;
  const TrialResult copy = RunTrial(config);
  PrintSeries(iou);
  PrintSeries(rs);
  PrintSeries(copy);

  std::printf("Pure-IOU finished at %.1f s; pure-copy resumed execution at %.1f s.\n",
              ToSeconds(iou.finished), ToSeconds(copy.migration.resumed));
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
