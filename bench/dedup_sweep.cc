// Content-dedup bench: the same Table 4-1 program migrated N times across a
// calibrated 4-host fleet, once with the content-addressed page service on
// and once with it off, emitting machine-readable JSON (BENCH_dedup.json) so
// the dedup guarantees are tracked from PR to PR: with the cache on the
// origin SegmentBacker serves at most half of the faulted pages as payload
// (the rest ride confirm acks or nearer holders), total bytes on the wire
// drop strictly below the cache-off baseline, and not one page installs
// under an identity its bytes do not hash to.
//
// Usage: dedup_sweep [--workload NAME] [--seed N] [--repeats N] [--out PATH]
// Environment: ACCENT_CONTENT_CACHE_PAGES overrides the per-host cache
// capacity (pages) of the cached half.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/check.h"
#include "src/experiments/dedup.h"
#include "src/experiments/metrics_fold.h"
#include "src/metrics/registry.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  DedupConfig config;
  std::string out_path = "BENCH_dedup.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      config.workload = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      config.repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--workload NAME] [--seed N] [--repeats N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  config.calibrations = DedupFleetCalibrations(config.host_count);
  if (const char* pages = std::getenv("ACCENT_CONTENT_CACHE_PAGES"); pages != nullptr) {
    const std::int64_t parsed = std::strtoll(pages, nullptr, 10);
    ACCENT_CHECK(parsed >= 1) << " ACCENT_CONTENT_CACHE_PAGES must be >= 1, got " << pages;
    config.content_cache_pages = parsed;
  }

  config.content_cache = true;
  const DedupResult cached = RunDedupExperiment(config);

  DedupConfig baseline_config = config;
  baseline_config.content_cache = false;
  const DedupResult baseline = RunDedupExperiment(baseline_config);

  const std::uint64_t integrity_failures =
      cached.integrity_failures + baseline.integrity_failures;
  const bool drained = cached.drained && baseline.drained;
  const double offload = cached.OriginOffloadRatio();
  const bool offload_ok = offload >= 0.5;
  const bool bytes_ok = cached.wire_bytes < baseline.wire_bytes;
  // The cache-off run must not even construct the dedup plane: its counters
  // prove the classic protocol ran untouched.
  const bool baseline_clean = baseline.offloaded_pages == 0 && baseline.cache_hits == 0 &&
                              baseline.cache_insertions == 0;

  Json report = Json::Object{};
  report["bench"] = Json("dedup_sweep");
  report["schema_version"] = Json(1);
  report["workload"] = Json(config.workload);
  report["seed"] = Json(config.seed);
  report["repeats"] = Json(config.repeats);
  report["hosts"] = Json(config.host_count);
  report["origin_offload_ratio"] = Json(offload);
  report["wire_bytes_cached"] = Json(cached.wire_bytes);
  report["wire_bytes_baseline"] = Json(baseline.wire_bytes);
  report["wire_bytes_saved"] = Json(baseline.wire_bytes > cached.wire_bytes
                                        ? baseline.wire_bytes - cached.wire_bytes
                                        : 0);
  report["integrity_failures"] = Json(integrity_failures);
  report["hung"] = Json(drained ? 0 : 1);
  report["cached"] = DedupResultToJson(cached);
  report["baseline"] = DedupResultToJson(baseline);
  // The typed registry view of the cached half (cache.* counters): the same
  // bridge the headline sweep uses, so dashboards fold BENCH files uniformly.
  MetricsRegistry metrics;
  FoldDedupMetrics(cached, &metrics);
  report["metrics"] = metrics.ToJson();

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== dedup sweep: %s x%d over %d hosts ===\n", config.workload.c_str(),
              config.repeats, config.host_count);
  std::printf("faulted pages:        %llu\n",
              static_cast<unsigned long long>(cached.faulted_pages));
  std::printf("origin payload pages: %llu\n",
              static_cast<unsigned long long>(cached.origin_payload_pages));
  std::printf("origin offload:       %.1f%%  (gate: >= 50%%)\n", offload * 100.0);
  std::printf("wire bytes cached:    %llu\n",
              static_cast<unsigned long long>(cached.wire_bytes));
  std::printf("wire bytes baseline:  %llu  (gate: cached < baseline)\n",
              static_cast<unsigned long long>(baseline.wire_bytes));
  std::printf("cache hits / misses:  %llu / %llu\n",
              static_cast<unsigned long long>(cached.cache_hits),
              static_cast<unsigned long long>(cached.cache_misses));
  std::printf("integrity failures:   %llu\n",
              static_cast<unsigned long long>(integrity_failures));
  std::printf("hung:                 %d  -> %s\n", drained ? 0 : 1, out_path.c_str());
  return offload_ok && bytes_ok && baseline_clean && integrity_failures == 0 && drained ? 0 : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
