// Reproduces the claim behind Accent's IPC design (section 2.1):
// "Fitzgerald's study reveals that up to 99.98% of data passed between
// processes in a system-building application did not have to be physically
// copied."
//
// A system-building workload is modelled as local IPC between a compiler,
// a linker and a librarian: many small control messages (physically copied
// below the threshold) and a few very large object-file transfers (mapped
// copy-on-write above it). The harness counts the bytes that actually had
// to be copied.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Fitzgerald's observation: bytes physically copied by local IPC",
               "A system-building message mix: many small control messages, few large\n"
               "mapped transfers. Paper anchor (§2.1): up to 99.98% of data passed\n"
               "between processes did not have to be physically copied.");

  Testbed bed;
  struct Sink : Receiver {
    std::uint64_t received = 0;
    void HandleMessage(Message) override { ++received; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "builder");

  Rng rng(7);
  ByteCount total_bytes = 0;
  ByteCount copied_bytes = 0;
  std::uint64_t small_messages = 0;
  std::uint64_t large_messages = 0;
  const ByteCount threshold = bed.costs().ipc_copy_threshold;

  for (int i = 0; i < 2000; ++i) {
    Message msg;
    msg.dest = port;
    if (rng.NextBool(0.9)) {
      // Control traffic: status, symbols, commands (64..512 bytes).
      msg.inline_bytes = 64 + rng.NextBelow(448);
      ++small_messages;
    } else {
      // An object file or expanded source: 64 KB .. 1 MB, mapped.
      const PageIndex pages = 128 + rng.NextBelow(1920);
      std::vector<PageData> data(pages);  // zero pages: contents irrelevant here
      msg.regions.push_back(MemoryRegion::Data(0, std::move(data)));
      msg.no_ious = true;
      ++large_messages;
    }
    const ByteCount wire = msg.WireSize(bed.costs());
    total_bytes += wire;
    if (wire <= threshold) {
      copied_bytes += wire;
    }
    ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  }
  bed.sim().Run();
  ACCENT_CHECK(sink.received == 2000);

  const double copied_pct =
      100.0 * static_cast<double>(copied_bytes) / static_cast<double>(total_bytes);
  TextTable table({"Metric", "Value"});
  table.AddRow({"messages", FormatWithCommas(2000)});
  table.AddRow({"  small (copied)", FormatWithCommas(small_messages)});
  table.AddRow({"  large (mapped copy-on-write)", FormatWithCommas(large_messages)});
  table.AddRow({"bytes passed", FormatWithCommas(total_bytes)});
  table.AddRow({"bytes physically copied", FormatWithCommas(copied_bytes)});
  table.AddRow({"copied fraction", FormatDouble(copied_pct, 3) + "%"});
  table.AddRow({"avoided", FormatDouble(100.0 - copied_pct, 3) + "% (paper: up to 99.98%)"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Large transfers dominate the byte count but ride the copy-on-write map;\n"
              "only the small control messages are ever copied. This is the property\n"
              "the copy-on-reference mechanism generalises across the network.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
