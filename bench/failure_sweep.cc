// Failure-matrix bench: the seven representative workloads x three transfer
// strategies under a lossy / partitioning / crashing wire, emitting
// machine-readable JSON (BENCH_failure.json) so the failure-handling
// guarantees are tracked from PR to PR: nothing may hang, the lossy-wire
// scenarios must complete with intact contents, and retry traffic stays
// visible.
//
// Usage: failure_sweep [--seed N] [--threads N] [--out PATH]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/check.h"
#include "src/experiments/failure_sweep.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int threads = 0;
  std::string out_path = "BENCH_failure.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--threads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const FailureMatrix matrix = RunFailureMatrix(seed, threads);
  Json report = FailureMatrixToJson(matrix);
  report["seed"] = Json(seed);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== failure matrix: %zu trials ===\n", matrix.trials.size());
  std::printf("completed:       %llu\n", static_cast<unsigned long long>(matrix.completed));
  std::printf("aborted:         %llu\n", static_cast<unsigned long long>(matrix.aborted));
  std::printf("terminal faults: %llu\n", static_cast<unsigned long long>(matrix.terminal_faults));
  std::printf("hung:            %llu\n", static_cast<unsigned long long>(matrix.hung));
  std::printf("integrity fails: %llu  -> %s\n",
              static_cast<unsigned long long>(matrix.integrity_failures), out_path.c_str());
  return matrix.hung == 0 && matrix.integrity_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
