// Regenerates Table 4-5: address space (RIMAS) transfer times in seconds
// under pure-IOU, resident-set and pure-copy strategies.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

struct PaperRow {
  const char* name;
  double iou;
  double rs;
  double copy;
};

constexpr PaperRow kPaper[] = {
    {"Minprog", 0.16, 5.0, 8.5},   {"Lisp-T", 0.16, 25.8, 157.0},
    {"Lisp-Del", 0.17, 25.8, 168.5}, {"PM-Start", 0.15, 9.0, 30.8},
    {"PM-Mid", 0.16, 13.0, 28.1},  {"PM-End", 0.19, 20.5, 31.0},
    {"Chess", 0.21, 7.7, 11.7},
};

void Run() {
  PrintHeading("Table 4-5: Address Space Transfer Times in Seconds",
               "Time from handing the RIMAS message to the IPC system until its arrival\n"
               "at the destination. Paper values in parentheses.");

  TextTable table({"Process", "Pure-IOU", "(p)", "RS", "(p)", "Copy", "(p)"});
  double worst_ratio = 0;
  const char* worst_name = "";
  for (const PaperRow& row : kPaper) {
    const TrialResult& iou = SweepCache::Find(row.name, TransferStrategy::kPureIou, 0);
    const TrialResult& rs = SweepCache::Find(row.name, TransferStrategy::kResidentSet, 0);
    const TrialResult& copy = SweepCache::Find(row.name, TransferStrategy::kPureCopy, 0);
    table.AddRow({row.name, FormatSeconds(iou.migration.RimasTransferTime()),
                  "(" + FormatSeconds(row.iou) + ")",
                  FormatSeconds(rs.migration.RimasTransferTime()),
                  "(" + FormatSeconds(row.rs, 1) + ")",
                  FormatSeconds(copy.migration.RimasTransferTime(), 1),
                  "(" + FormatSeconds(row.copy, 1) + ")"});
    const double ratio = ToSeconds(copy.migration.RimasTransferTime()) /
                         ToSeconds(iou.migration.RimasTransferTime());
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_name = row.name;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Pure-IOU transfer times are nearly constant; pure-copy grows with RealMem.\n"
              "Largest copy/IOU ratio: %s at %.0fx (paper: Lisp-Del, ~1000x).\n",
              worst_name, worst_ratio);
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
