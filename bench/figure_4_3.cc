// Regenerates Figure 4-3: bytes transferred between the machines for each
// trial, from the migration request to remote completion.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Figure 4-3: Bytes Transferred per Trial",
               "All bytes exchanged between the hosts (context, fault traffic, control).\n"
               "Paper anchors: pure-IOU (PF0) moves 58.2% fewer bytes than pure-copy on\n"
               "average; prefetch adds dead-weight bytes; RS cuts into the IOU savings.");

  TextTable table({"Process", "Copy", "IOU PF0", "PF1", "PF3", "PF7", "PF15", "RS PF0",
                   "PF15"});
  double savings_sum = 0;
  for (const std::string& name : RepresentativeNames()) {
    const ByteCount copy_bytes =
        SweepCache::Find(name, TransferStrategy::kPureCopy, 0).bytes_total;
    std::vector<std::string> row{name, FormatWithCommas(copy_bytes)};
    for (std::uint32_t prefetch : kPaperPrefetchValues) {
      row.push_back(FormatWithCommas(
          SweepCache::Find(name, TransferStrategy::kPureIou, prefetch).bytes_total));
    }
    row.push_back(FormatWithCommas(
        SweepCache::Find(name, TransferStrategy::kResidentSet, 0).bytes_total));
    row.push_back(FormatWithCommas(
        SweepCache::Find(name, TransferStrategy::kResidentSet, 15).bytes_total));
    table.AddRow(row);

    const ByteCount iou_bytes =
        SweepCache::Find(name, TransferStrategy::kPureIou, 0).bytes_total;
    savings_sum += 1.0 - static_cast<double>(iou_bytes) / static_cast<double>(copy_bytes);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Average pure-IOU (PF0) byte savings vs pure-copy: %.1f%% (paper: 58.2%%)\n",
              100.0 * savings_sum / static_cast<double>(RepresentativeNames().size()));
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
