// Adversarial fuzz-corpus bench: seeded random scenarios — heterogeneous
// topology x workload x fault plan x strategy x optional re-migration —
// checked against the standing oracles (content integrity, zero hangs,
// balanced backer references, 1-vs-2-shard fleet identity, payload
// balance), emitting machine-readable JSON (BENCH_fuzz.json) so the fuzzed
// guarantees are tracked from PR to PR.
//
// Usage: fuzz_corpus [--first N] [--seeds N] [--threads N] [--out PATH]
// Environment: ACCENT_FUZZ_SEEDS / ACCENT_FUZZ_THREADS override the
// defaults (flags win over environment).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/experiments/scenario_fuzz.h"

namespace accent {
namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 10);
}

int Main(int argc, char** argv) {
  std::uint64_t first = 1;
  std::uint64_t seeds = EnvU64("ACCENT_FUZZ_SEEDS", 64);
  int threads = static_cast<int>(EnvU64("ACCENT_FUZZ_THREADS", 0));
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--first") == 0 && i + 1 < argc) {
      first = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--first N] [--seeds N] [--threads N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Failing scenarios log their seed + replay line; make sure they print.
  if (Logger::Get().level() < LogLevel::kError) {
    Logger::Get().set_level(LogLevel::kError);
  }

  const FuzzCorpusResult corpus = RunFuzzCorpus(first, seeds, threads);
  const Json report = FuzzCorpusToJson(corpus);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== fuzz corpus: seeds [%llu, %llu) ===\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(first + seeds));
  std::printf("completed:          %llu\n", static_cast<unsigned long long>(corpus.completed));
  std::printf("aborted:            %llu\n", static_cast<unsigned long long>(corpus.aborted));
  std::printf("terminal faults:    %llu\n",
              static_cast<unsigned long long>(corpus.terminal_faults));
  std::printf("hung:               %llu\n", static_cast<unsigned long long>(corpus.hung));
  std::printf("integrity fails:    %llu\n",
              static_cast<unsigned long long>(corpus.integrity_failures));
  std::printf("backer imbalances:  %llu\n",
              static_cast<unsigned long long>(corpus.backer_imbalances));
  std::printf("shard divergences:  %llu\n",
              static_cast<unsigned long long>(corpus.shard_divergences));
  std::printf("payload leak:       %lld\n", static_cast<long long>(corpus.payload_leak));
  std::printf("failures:           %llu  -> %s\n",
              static_cast<unsigned long long>(corpus.failures), out_path.c_str());
  return corpus.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
