// Lifecycle reproduction of the Pasmac family (PM-Start / PM-Mid / PM-End):
// the *same executed program* migrated at 10%, 50% and 90% of its file
// scan, with the pre-migration phase actually run on the source host.
//
// Unlike the staged Table 4-2/4-3 trials, the resident set here is
// emergent — it is whatever the source's physical memory holds when the
// migration request arrives — and the paper's trends fall out of the
// mechanism rather than being configured:
//   - the later in life, the less is touched remotely under pure-IOU;
//   - the later in life, the *larger* the (stale) resident set;
//   - resident-set shipment stays near-constant in utility because it is
//     dominated by already-processed file pages (§4.2.3).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/lifecycle.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Lifecycle: Pasmac migrated early / midway / late in life",
               "Executed pre-phase; emergent resident sets. Compare trends with\n"
               "Tables 4-2/4-3 (PM-Start 29.4%/58.0%, PM-Mid 42.8%/51.5%, PM-End\n"
               "61.4%/26.9% — RS as %% of RealMem / remote-touch %% under pure-IOU).");

  TextTable table({"Migrated at", "Emergent RS (%Real)", "Remote faults (IOU)",
                   "%image touched remotely", "RS strategy faults", "IOU xfer (s)"});
  for (double at : {0.1, 0.5, 0.9}) {
    LifecycleConfig config;
    config.migrate_at = at;
    config.strategy = TransferStrategy::kPureIou;
    const LifecycleResult iou = RunLifecycle(config);
    config.strategy = TransferStrategy::kResidentSet;
    const LifecycleResult rs = RunLifecycle(config);

    const double rs_pct = 100.0 * static_cast<double>(iou.resident_bytes) /
                          static_cast<double>(iou.real_bytes_at_migration);
    table.AddRow({FormatPercent(at, 0), FormatDouble(rs_pct, 1),
                  std::to_string(iou.dest_pager.imag_faults),
                  FormatDouble(100.0 * iou.FractionOfImageTouchedRemotely(), 1),
                  std::to_string(rs.dest_pager.imag_faults),
                  FormatSeconds(iou.migration.RimasTransferTime())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The emergent resident set *grows* with life stage (disk-cache pollution by\n"
      "already-scanned pages) while the remote touch fraction *shrinks* — exactly\n"
      "the opposing trends of Tables 4-2 and 4-3, now produced by execution\n"
      "rather than staging. Note the RS strategy still faults heavily: its\n"
      "shipped pages are mostly behind the scan cursor.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
