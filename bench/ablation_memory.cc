// Ablation: physical memory size at the destination host.
//
// Pure-copy dumps the whole RealMem image into the receiver's memory; when
// the image exceeds physical memory, the overflow pages out and later
// touches pay local disk faults. Copy-on-reference only ever materialises
// the touched pages, so it is insensitive to memory pressure — a design
// property the paper implies (physical memory as disk cache) but never
// isolates.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Ablation: destination memory size (Lisp-Del, 4,297 RealMem pages)",
               "Remote execution seconds as destination frames shrink.");

  TextTable table({"Frames", "MB", "Copy exec", "IOU exec", "IOU faults"});
  for (std::size_t frames : {8192u, 4096u, 2048u, 1024u, 512u}) {
    TrialConfig config;
    config.workload = "Lisp-Del";
    config.frames_per_host = frames;
    config.strategy = TransferStrategy::kPureCopy;
    const TrialResult copy = RunTrial(config);
    config.strategy = TransferStrategy::kPureIou;
    const TrialResult iou = RunTrial(config);
    table.AddRow({std::to_string(frames),
                  FormatDouble(static_cast<double>(frames) * kPageSize / (1024.0 * 1024.0), 1),
                  FormatSeconds(copy.remote_exec), FormatSeconds(iou.remote_exec),
                  std::to_string(iou.dest_pager.imag_faults)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Pure-copy degrades as the shipped image overflows memory; copy-on-\n"
              "reference touches only what it needs and degrades far more slowly.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
