// Ablation: a high-priority CPU lane for fault traffic.
//
// In the measured 1987 system every NetMsgServer and kernel work item
// queued FCFS, so a remote page fault issued during someone else's bulk
// transfer waited behind tens of seconds of fragment handling. This
// ablation adds a (non-preemptive) high lane for the imaginary-fault path
// and measures what it buys when a migration and a fault-dependent process
// share a host — a scheduler improvement the paper's cost-distribution
// discussion (§4.4.3) implies but never evaluates.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct Outcome {
  SimDuration victim_exec{0};   // fault-dependent process, elapsed
  SimDuration worst_fault{0};   // its slowest single access
};

// A "victim" process on host 2 works against memory owed by host 1's cache
// while a large pure-copy migration streams host 1 -> host 2.
Outcome Run(bool priority_lane) {
  TestbedConfig config;
  config.costs.fault_priority_lane = priority_lane;
  Testbed bed(config);

  // The victim's owed memory: 64 pages cached at host 1.
  std::vector<std::pair<PageIndex, PageRef>> cached;
  for (PageIndex p = 0; p < 64; ++p) {
    cached.emplace_back(p, MakePatternPage(p + 50));
  }
  const IouRef iou = bed.netmsg(0)->AdoptPages(std::move(cached), "victim-memory");

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(1)->id);
  Segment* standin = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space->MapImaginary(0, 64 * kPageSize, standin, 0);
  auto victim = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "victim",
                                          bed.host(1), std::move(space), 1);
  TraceBuilder trace;
  for (PageIndex p = 0; p < 64; p += 2) {
    trace.Read(PageBase(p));
    trace.Compute(Ms(250));
  }
  trace.Terminate();
  victim->SetTrace(trace.Build(), 0);

  // The interfering migration: Lisp-Del by pure-copy (a ~147 s stream).
  WorkloadInstance heavy = BuildWorkload(WorkloadByName("Lisp-Del"), bed.host(0), 42);
  bed.manager(0)->RegisterLocal(heavy.process.get());
  bed.manager(0)->Migrate(heavy.process.get(), bed.manager(1)->port(),
                          TransferStrategy::kPureCopy, [](const MigrationRecord&) {});
  victim->Start();
  bed.sim().Run();
  ACCENT_CHECK(victim->done());

  Outcome outcome;
  outcome.victim_exec = victim->finish_time() - victim->start_time();
  return outcome;
}

void RunAll() {
  PrintHeading("Ablation: high-priority lane for fault traffic",
               "A fault-dependent process (32 remote faults, 250 ms think time) runs\n"
               "while a 2.2 MB pure-copy migration streams through the same two hosts.");

  const Outcome fcfs = Run(false);
  const Outcome lane = Run(true);
  TextTable table({"Scheduling", "victim elapsed (s)"});
  table.AddRow({"FCFS (the 1987 system)", FormatSeconds(fcfs.victim_exec)});
  table.AddRow({"fault-priority lane", FormatSeconds(lane.victim_exec)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Ideal (no interference) is ~12 s. The lane lets page fetches slip\n"
              "between queued bulk fragments instead of waiting for the whole stream —\n"
              "%.1fx faster for the bystander that depends on owed memory.\n",
              ToSeconds(fcfs.victim_exec) / ToSeconds(lane.victim_exec));
}

}  // namespace
}  // namespace accent

int main() {
  accent::RunAll();
  return 0;
}
