// Fleet-scale cluster bench: one datacenter-row churn trial (hundreds of
// hosts, tens of thousands of processes) run at 1, 2 and 8 shards —
// byte-identical results asserted, wall-clocks compared — plus the policy
// sweep (threshold x hysteresis x dispersal_weight across cluster sizes)
// the ROADMAP has kept open since the balancer landed. Emits
// BENCH_cluster.json for tools/check_bench.sh --cluster, which gates on
// zero hangs, zero census failures and speedup(8 shards) > 1.
//
// On a single-core box the speedup comes from heap sharding alone (each
// shard's pending-event heap is an eighth the size: shorter sifts, warmer
// cache), so it is real but modest; wall-clocks are best-of-N to keep the
// comparison robust against scheduler noise.
//
// Usage: cluster_sweep [--seed N] [--threads N] [--reps N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/thread_pool.h"
#include "src/experiments/cluster.h"
#include "src/experiments/sweep.h"

namespace accent {
namespace {

ClusterConfig BigTrialConfig(std::uint64_t seed) {
  ClusterConfig config;
  config.host_count = 480;
  config.initial_processes_per_host = 30;
  config.duration = Sec(75.0);
  config.arrivals_per_host_per_sec = 1.0;
  config.mean_service_sec = 60.0;
  config.policy.sample_period = Sec(2.0);
  config.seed = seed;
  return config;
}

ClusterConfig SweepTrialConfig(std::uint64_t seed, int hosts, int threshold,
                               int hysteresis, double dispersal) {
  ClusterConfig config;
  config.host_count = hosts;
  config.duration = Sec(120.0);
  config.policy.sample_period = Sec(2.0);
  config.policy.imbalance_threshold = threshold;
  config.policy.hysteresis = hysteresis;
  config.policy.dispersal_weight = dispersal;
  config.seed = seed;
  return config;
}

double RunWallSeconds(ClusterConfig config, int shards, ClusterResult* out) {
  config.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  ClusterResult result = RunClusterTrial(config);
  const auto stop = std::chrono::steady_clock::now();
  if (out != nullptr) {
    *out = std::move(result);
  }
  return std::chrono::duration<double>(stop - start).count();
}

int Main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int threads = 0;
  int reps = 5;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--threads N] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  ACCENT_CHECK(reps >= 1);

  std::uint64_t hung = 0;
  std::uint64_t integrity_failures = 0;

  // --- big trial at 1 / 2 / 8 shards --------------------------------------
  const ClusterConfig big = BigTrialConfig(seed);
  ClusterResult big_result;
  std::string dump_1;
  bool identical = true;
  double wall_1 = 1e30;
  double wall_2 = 1e30;
  double wall_8 = 1e30;
  std::printf("=== cluster big trial: %d hosts, %d shards x %d reps ===\n",
              big.host_count, 3, reps);
  for (int rep = 0; rep < reps; ++rep) {
    for (int shards : {1, 2, 8}) {
      ClusterResult result;
      const double wall = RunWallSeconds(big, shards, &result);
      hung += result.hung ? 1 : 0;
      integrity_failures += result.census_ok ? 0 : 1;
      const std::string dump = ClusterResultToJson(result).Dump(2);
      if (shards == 1) {
        wall_1 = std::min(wall_1, wall);
        if (dump_1.empty()) {
          dump_1 = dump;
          big_result = std::move(result);
        }
      } else if (shards == 2) {
        wall_2 = std::min(wall_2, wall);
      } else {
        wall_8 = std::min(wall_8, wall);
      }
      if (dump != dump_1) {
        identical = false;
        std::fprintf(stderr, "trial JSON diverged at shards=%d rep=%d\n", shards, rep);
      }
      std::printf("  rep %d shards=%d wall=%.3fs events=%llu\n", rep, shards, wall,
                  static_cast<unsigned long long>(result.events_executed));
    }
  }
  const double speedup_2 = wall_1 / wall_2;
  const double speedup_8 = wall_1 / wall_8;

  // --- policy sweep ---------------------------------------------------------
  struct SweepPoint {
    int hosts;
    int threshold;
    int hysteresis;
    double dispersal;
  };
  std::vector<SweepPoint> points;
  for (int hosts : {24, 64}) {
    for (int threshold : {2, 4}) {
      for (int hysteresis : {0, 2}) {
        for (double dispersal : {0.0, 1.0}) {
          points.push_back(SweepPoint{hosts, threshold, hysteresis, dispersal});
        }
      }
    }
  }
  std::vector<ClusterResult> sweep_results(points.size());
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  ParallelFor(threads, points.size(), [&](std::size_t i) {
    const SweepPoint& pt = points[i];
    sweep_results[i] = RunClusterTrial(SweepTrialConfig(
        seed, pt.hosts, pt.threshold, pt.hysteresis, pt.dispersal));
  });

  Json sweep_rows = Json::Array{};
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ClusterResult& result = sweep_results[i];
    hung += result.hung ? 1 : 0;
    integrity_failures += result.census_ok ? 0 : 1;
    Json row = ClusterResultToJson(result);
    sweep_rows.Append(std::move(row));
  }

  Json report = Json::Object{};
  report["bench"] = Json("cluster");
  report["schema_version"] = Json(1);
  report["seed"] = Json(seed);
  report["reps"] = Json(reps);
  report["hosts"] = Json(big.host_count);
  report["processes_arrived"] = Json(big_result.arrived);
  report["trial_count"] = Json(static_cast<std::uint64_t>(3 * reps + points.size()));
  report["hung"] = Json(hung);
  report["integrity_failures"] = Json(integrity_failures);
  report["identical_across_shards"] = Json(identical);
  report["wall_seconds_shards_1"] = Json(wall_1);
  report["wall_seconds_shards_2"] = Json(wall_2);
  report["wall_seconds_shards_8"] = Json(wall_8);
  report["speedup_shards_2"] = Json(speedup_2);
  report["speedup_shards_8"] = Json(speedup_8);
  report["big_trial"] = ClusterResultToJson(big_result);
  report["policy_sweep"] = std::move(sweep_rows);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== cluster sweep: %zu policy points ===\n", points.size());
  std::printf("processes arrived (big):   %llu\n",
              static_cast<unsigned long long>(big_result.arrived));
  std::printf("migrations completed:      %llu\n",
              static_cast<unsigned long long>(big_result.migrations_completed));
  std::printf("steady throughput:         %.3f migrations/s\n",
              big_result.steady_migrations_per_sec);
  std::printf("queueing p99:              %.1f ms\n",
              static_cast<double>(big_result.queueing_p99.count()) / 1000.0);
  std::printf("downtime p99:              %.1f ms\n",
              static_cast<double>(big_result.downtime_p99.count()) / 1000.0);
  std::printf("identical across shards:   %s\n", identical ? "yes" : "NO");
  std::printf("speedup 2 shards:          %.3f\n", speedup_2);
  std::printf("speedup 8 shards:          %.3f\n", speedup_8);
  std::printf("hung:                      %llu\n", static_cast<unsigned long long>(hung));
  std::printf("integrity failures:        %llu  -> %s\n",
              static_cast<unsigned long long>(integrity_failures), out_path.c_str());
  return hung == 0 && integrity_failures == 0 && identical && speedup_8 > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
