// Regenerates Table 4-1: representative address-space sizes in bytes.
//
// Sizes are measured from the constructed address spaces (not echoed from
// the specs): the AMap of each staged process is interrogated exactly the
// way ExciseProcess sees it.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct PaperRow {
  const char* name;
  ByteCount real;
  ByteCount realz;
  ByteCount total;
  double pct_realz;
};

constexpr PaperRow kPaper[] = {
    {"Minprog", 142336, 187904, 330240, 56.9},
    {"Lisp-T", 2203136, 4225926144, 4228129280, 99.9},
    {"Lisp-Del", 2200064, 4225929216, 4228129280, 99.9},
    {"PM-Start", 449024, 501760, 950784, 52.8},
    {"PM-Mid", 446464, 466432, 912896, 51.1},
    {"PM-End", 492032, 398848, 890880, 44.8},
    {"Chess", 195584, 305152, 500736, 60.9},
};

void Run() {
  PrintHeading("Table 4-1: Representative Address Space Sizes in Bytes",
               "Measured from the staged processes' AMaps; paper values in parentheses.");

  TextTable table({"Process", "Real", "RealZ", "Total", "% RealZ", "(paper % RealZ)"});
  Testbed bed;
  for (const PaperRow& row : kPaper) {
    WorkloadInstance instance = BuildWorkload(WorkloadByName(row.name), bed.host(0), 42);
    const AddressSpace& space = *instance.process->space();
    const ByteCount real = space.RealBytes();
    const ByteCount realz = space.RealZeroBytes();
    const ByteCount total = space.TotalValidatedBytes();
    const double pct = 100.0 * static_cast<double>(realz) / static_cast<double>(total);
    table.AddRow({row.name, FormatWithCommas(real), FormatWithCommas(realz),
                  FormatWithCommas(total), FormatDouble(pct, 1),
                  "(" + FormatDouble(row.pct_realz, 1) + ")"});
    ACCENT_CHECK(real == row.real && realz == row.realz && total == row.total)
        << " composition mismatch for " << row.name;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Validated memory spans a factor of %s across the representatives;\n"
              "RealMem varies only 15x (the paper's central observation).\n",
              FormatWithCommas(4228129280 / 330240).c_str());
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
