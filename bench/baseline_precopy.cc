// Baseline comparison: iterative pre-copy (Theimer's V system, §5 related
// work) vs the paper's strategies.
//
// The paper argues pre-copy "tried to hide transmission costs ... process
// downtime was thus reduced, but both hosts still paid the transfer costs".
// This bench quantifies exactly that trade on a process that keeps writing
// while it is being moved: pre-copy wins on downtime, copy-on-reference
// wins on bytes and total transfer work.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct Outcome {
  SimDuration downtime{0};
  SimDuration total{0};  // request -> remote completion
  ByteCount bytes = 0;
  int rounds = 0;
};

std::unique_ptr<Process> BuildWriter(Testbed* bed) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                              bed->host(0)->id);
  Segment* image = bed->segments().CreateReal(512 * kPageSize, "img");  // 256 KB
  for (PageIndex p = 0; p < 512; ++p) {
    image->StorePage(p, MakePatternPage(p + 1));
  }
  space->MapReal(0, 512 * kPageSize, image, 0, false);
  space->Validate(512 * kPageSize, 1024 * kPageSize);

  auto proc = std::make_unique<Process>(ProcId(bed->sim().AllocateId()), "writer",
                                        bed->host(0), std::move(space), 9);
  TraceBuilder trace;
  Rng rng(17);
  for (int i = 0; i < 120; ++i) {
    trace.Write(PageBase(rng.NextBelow(512)) + 64, static_cast<std::uint8_t>(i));
    trace.Compute(Ms(250));
  }
  trace.Terminate();
  proc->SetTrace(trace.Build(), 0);
  return proc;
}

Outcome Run(TransferStrategy strategy, bool precopy) {
  Testbed bed;
  auto proc = BuildWriter(&bed);
  proc->Start();
  bed.sim().RunUntil(Sec(2.0));  // mid-execution migration

  bed.manager(0)->RegisterLocal(proc.get());
  MigrationRecord record;
  bool done = false;
  auto on_done = [&](const MigrationRecord& r) {
    record = r;
    done = true;
  };
  if (precopy) {
    PreCopyConfig config;
    config.max_rounds = 4;
    bed.manager(0)->MigratePreCopy(proc.get(), bed.manager(1)->port(), config, on_done);
  } else {
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), strategy, on_done);
  }
  bed.sim().Run();
  ACCENT_CHECK(done);
  Process* remote = bed.manager(1)->adopted().at(0).get();
  ACCENT_CHECK(remote->done());

  Outcome outcome;
  outcome.downtime = record.Downtime();
  outcome.total = remote->finish_time() - record.requested;
  outcome.bytes = bed.traffic().TotalBytes();
  outcome.rounds = record.precopy_rounds;
  return outcome;
}

void Report(const char* name, const Outcome& outcome) {
  std::printf("  %-28s downtime %7.2f s   total %7.1f s   bytes %11s   rounds %d\n", name,
              ToSeconds(outcome.downtime), ToSeconds(outcome.total),
              FormatWithCommas(outcome.bytes).c_str(), outcome.rounds);
}

void RunAll() {
  PrintHeading("Baseline: iterative pre-copy (V system) vs Accent strategies",
               "A 256 KB process writing throughout its 30 s run, migrated at t=2 s.\n"
               "Downtime = time the process cannot execute anywhere.");
  Report("pure-copy", Run(TransferStrategy::kPureCopy, false));
  Report("pre-copy (<=4 rounds)", Run(TransferStrategy::kPureCopy, true));
  Report("resident-set", Run(TransferStrategy::kResidentSet, false));
  Report("pure-IOU (copy-on-reference)", Run(TransferStrategy::kPureIou, false));
  std::printf(
      "\nPre-copy cuts downtime but re-ships dirtied pages (bytes > one full copy),\n"
      "and both hosts still pay the full handling cost — §5's critique. Copy-on-\n"
      "reference gets the same downtime win while *also* moving the fewest bytes.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::RunAll();
  return 0;
}
