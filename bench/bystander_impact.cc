// The bystander experiment: "each second of execution time spent by the
// NetMsgServer to handle message traffic is not only a second stolen from
// the migrated process but from all processes in both systems" (§4.4.2).
//
// An innocent compute-bound process runs on the source host while another
// process is migrated away. Its slowdown relative to an idle machine
// measures exactly the stolen time — large and bursty under pure-copy,
// small and spread out under copy-on-reference (§4.4.3's cost
// distribution argument).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

// Runs a 60 s compute-bound bystander on host 1; optionally migrates a
// workload away mid-run. Returns the bystander's elapsed completion time.
double BystanderElapsed(const char* workload, int strategy_or_none) {
  Testbed bed;

  auto bystander_space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                        bed.host(0)->id);
  bystander_space->Validate(0, 16 * kPageSize);
  auto bystander = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "bystander",
                                             bed.host(0), std::move(bystander_space), 1);
  TraceBuilder trace;
  for (int i = 0; i < 120; ++i) {
    trace.Compute(Ms(500));
    trace.Read(PageBase(static_cast<PageIndex>(i % 16)));
  }
  trace.Terminate();
  bystander->SetTrace(trace.Build(), 0);
  bystander->Start();

  WorkloadInstance instance;
  if (strategy_or_none >= 0) {
    instance = BuildWorkload(WorkloadByName(workload), bed.host(0), 42);
    bed.manager(0)->RegisterLocal(instance.process.get());
    bed.manager(0)->Migrate(instance.process.get(), bed.manager(1)->port(),
                            static_cast<TransferStrategy>(strategy_or_none),
                            [](const MigrationRecord&) {});
  }
  bed.sim().Run();
  ACCENT_CHECK(bystander->done());
  return ToSeconds(bystander->finish_time() - bystander->start_time());
}

void Run() {
  PrintHeading("Bystander impact: time stolen from other processes (§4.4.2)",
               "A 60 s compute job on the source host while a neighbour migrates away.\n"
               "Slowdown = extra elapsed time vs an otherwise idle machine.");

  TextTable table({"Migrating", "idle (s)", "copy (s)", "IOU (s)", "RS (s)",
                   "copy slowdown", "IOU slowdown"});
  for (const char* workload : {"Lisp-Del", "PM-Start", "Minprog"}) {
    const double idle = BystanderElapsed(workload, -1);
    const double copy = BystanderElapsed(workload, 0);
    const double iou = BystanderElapsed(workload, 1);
    const double rs = BystanderElapsed(workload, 2);
    table.AddRow({workload, FormatSeconds(idle), FormatSeconds(copy), FormatSeconds(iou),
                  FormatSeconds(rs), FormatPercent(copy / idle - 1.0, 1),
                  FormatPercent(iou / idle - 1.0, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Pure-copy's bulk transfer monopolises the source NetMsgServer (and CPU)\n"
              "in one burst; copy-on-reference spreads a smaller total cost across the\n"
              "remote lifetime — the cost-distribution argument of §4.4.3.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
