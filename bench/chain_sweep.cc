// Chain-migration bench: every representative workload re-migrated A -> B ->
// C across the full strategy x prefetch grid, emitting machine-readable JSON
// (BENCH_chain.json) so the multi-hop guarantees are tracked from PR to PR:
// every chain collapses, the process finishes at C with intact contents, and
// after the collapse zero page-fault requests are serviced by (or routed
// through) the evacuated intermediary. Two crash trials additionally kill B
// for good right after its collapse — the process at C must survive on its
// now-A-only residual dependency.
//
// Usage: chain_sweep [--seed N] [--threads N] [--out PATH]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/experiments/chain.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

int Main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int threads = 0;
  std::string out_path = "BENCH_chain.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--threads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<ChainTrialConfig> configs;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    for (const ChainTrialConfig& config : ChainSweepConfigs(spec.name, seed)) {
      configs.push_back(config);
    }
  }
  const std::vector<ChainTrialResult> trials = RunChainTrials(configs, threads);

  // Crash variant: only the copy-on-reference strategies leave a chain at B
  // to collapse (pure-copy carries no IOUs), one trial each.
  std::vector<ChainCrashResult> crashes;
  for (TransferStrategy strategy :
       {TransferStrategy::kPureIou, TransferStrategy::kResidentSet}) {
    ChainTrialConfig config;
    config.workload = "Minprog";
    config.strategy = strategy;
    config.seed = seed;
    crashes.push_back(RunChainCrashTrial(config));
  }

  Json report = ChainSweepToJson(trials, crashes);
  report["seed"] = Json(seed);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  const std::uint64_t collapses = report.Get("collapses").AsUint64();
  const std::uint64_t b_requests = report.Get("b_requests_after_collapse_total").AsUint64();
  const std::uint64_t b_forwards = report.Get("b_forwards_after_collapse_total").AsUint64();
  const std::uint64_t b_objects = report.Get("b_objects_after_collapse_total").AsUint64();
  const std::uint64_t integrity = report.Get("integrity_failures").AsUint64();
  const std::uint64_t hung = report.Get("hung").AsUint64();
  const bool crash_ok = report.Get("b_crash_survived").AsBool();

  std::printf("=== chain sweep: %zu trials, %zu crash trials ===\n", trials.size(),
              crashes.size());
  std::printf("collapses:                 %llu\n", static_cast<unsigned long long>(collapses));
  std::printf("B requests post-collapse:  %llu\n", static_cast<unsigned long long>(b_requests));
  std::printf("B forwards post-collapse:  %llu\n", static_cast<unsigned long long>(b_forwards));
  std::printf("B objects post-collapse:   %llu\n", static_cast<unsigned long long>(b_objects));
  std::printf("integrity fails:           %llu\n", static_cast<unsigned long long>(integrity));
  std::printf("hung:                      %llu\n", static_cast<unsigned long long>(hung));
  std::printf("B crash survived:          %s  -> %s\n", crash_ok ? "yes" : "no",
              out_path.c_str());
  return b_requests == 0 && b_forwards == 0 && b_objects == 0 && integrity == 0 && hung == 0 &&
                 crash_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
