// Ablation: the NetMsgServer's IOU substitution (section 2.4).
//
// With substitution disabled, a pure-IOU migration request degenerates to a
// physical copy: the RIMAS Data regions ship as-is. This isolates the value
// of the copy-on-reference mechanism itself from the rest of the pipeline.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Ablation: NetMsgServer IOU caching on/off",
               "Pure-IOU trials with substitution disabled ship the data physically;\n"
               "the entire Table 4-5 advantage comes from this one mechanism.");

  TextTable table({"Process", "xfer (cache on)", "xfer (cache off)", "bytes on", "bytes off"});
  for (const std::string& name : RepresentativeNames()) {
    TrialConfig config;
    config.workload = name;
    config.strategy = TransferStrategy::kPureIou;
    config.iou_caching = true;
    const TrialResult on = RunTrial(config);
    config.iou_caching = false;
    const TrialResult off = RunTrial(config);
    table.AddRow({name, FormatSeconds(on.migration.RimasTransferTime()),
                  FormatSeconds(off.migration.RimasTransferTime(), 1),
                  FormatWithCommas(on.bytes_total), FormatWithCommas(off.bytes_total)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
