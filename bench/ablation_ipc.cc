// Ablations of the IPC substrate's design choices (section 2.1):
//   - the copy/remap threshold: below it messages are physically copied
//     twice, above it the receiver's map is rewritten copy-on-write;
//   - the NetMsgServer fragment size: per-fragment overhead vs pipelining
//     granularity on the wire.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

// Simulated time to deliver a local message of `bytes` under `threshold`.
double LocalDelivery(ByteCount bytes, ByteCount threshold) {
  TestbedConfig config;
  config.costs.ipc_copy_threshold = threshold;
  Testbed bed(config);
  struct Sink : Receiver {
    bool got = false;
    void HandleMessage(Message) override { got = true; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "sink");

  Message msg;
  msg.dest = port;
  if (bytes >= kPageSize) {
    std::vector<PageData> pages(bytes / kPageSize, MakePatternPage(1));
    msg.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
  } else {
    msg.inline_bytes = bytes;
  }
  const SimTime start = bed.sim().Now();
  ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ACCENT_CHECK(sink.got);
  return ToSeconds(bed.sim().Now() - start) * 1e3;  // ms
}

// Simulated time to move a bulk message across the wire at `frag_bytes`.
double RemoteBulk(ByteCount frag_bytes) {
  TestbedConfig config;
  config.costs.netmsg_fragment_bytes = frag_bytes;
  Testbed bed(config);
  struct Sink : Receiver {
    bool got = false;
    void HandleMessage(Message) override { got = true; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "sink");

  Message msg;
  msg.dest = port;
  msg.no_ious = true;
  std::vector<PageData> pages(512, MakePatternPage(1));  // 256 KB
  msg.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
  const SimTime start = bed.sim().Now();
  ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ACCENT_CHECK(sink.got);
  return ToSeconds(bed.sim().Now() - start);
}

void Run() {
  PrintHeading("Ablation: IPC copy/remap threshold and fragment size", "");

  std::printf("Local delivery latency (ms) by message size and threshold:\n");
  TextTable threshold_table({"message", "thr 512 B", "thr 2 KB", "thr 16 KB", "thr 1 MB"});
  for (ByteCount bytes : {256u, 1024u, 8u * 1024u, 64u * 1024u}) {
    std::vector<std::string> row{FormatWithCommas(bytes) + " B"};
    for (ByteCount threshold : {512u, 2048u, 16u * 1024u, 1024u * 1024u}) {
      row.push_back(FormatDouble(LocalDelivery(bytes, threshold), 2));
    }
    threshold_table.AddRow(row);
  }
  std::printf("%s\n", threshold_table.ToString().c_str());
  std::printf("Above the threshold, cost is flat (map rewrite); below it, it grows with\n"
              "bytes (double copy). Accent's lazy mapping is what makes \"a message can\n"
              "hold all of memory\" affordable — and it is why 99.98%% of data in\n"
              "Fitzgerald's study was never physically copied.\n\n");

  std::printf("256 KB remote transfer time (s) by fragment size:\n");
  TextTable frag_table({"fragment", "transfer (s)"});
  for (ByteCount frag : {2u * 1024u, 4u * 1024u, 16u * 1024u, 64u * 1024u, 256u * 1024u}) {
    frag_table.AddRow({FormatWithCommas(frag) + " B", FormatSeconds(RemoteBulk(frag))});
  }
  std::printf("%s\n", frag_table.ToString().c_str());
  std::printf("Tiny fragments pay per-fragment overhead; huge ones only round the tail.\n"
              "The 16 KB default sits on the flat part of the curve.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
