// Regenerates Table 4-4: process excision times (AMap construction, RIMAS
// collapse, overall) plus the insertion times discussed in section 4.3.1.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

struct PaperRow {
  const char* name;
  double amap;
  double rimas;
  double overall;
};

constexpr PaperRow kPaper[] = {
    {"Minprog", 0.37, 0.36, 0.82}, {"Lisp-T", 2.12, 0.59, 2.79},
    {"Lisp-Del", 2.46, 0.73, 3.38}, {"PM-Start", 0.98, 0.63, 1.67},
    {"PM-Mid", 1.01, 0.68, 1.74},  {"PM-End", 1.40, 0.94, 2.45},
    {"Chess", 0.37, 0.43, 1.00},
};

void Run() {
  PrintHeading("Table 4-4: Process Excision Times in Seconds",
               "AMap construction + RIMAS collapse + packaging, measured from the\n"
               "ExciseProcess trap. Paper values in parentheses. Insert column: section\n"
               "4.3.1 reports 0.263 s (Minprog) to 0.853 s (Lisp-Del).");

  TextTable table({"Process", "AMap", "(p)", "RIMAS", "(p)", "Overall", "(p)", "Insert"});
  for (const PaperRow& row : kPaper) {
    const TrialResult& trial = SweepCache::Find(row.name, TransferStrategy::kPureCopy, 0);
    table.AddRow({row.name, FormatSeconds(trial.migration.excise_amap),
                  "(" + FormatSeconds(row.amap) + ")",
                  FormatSeconds(trial.migration.excise_rimas),
                  "(" + FormatSeconds(row.rimas) + ")",
                  FormatSeconds(trial.migration.excise_overall),
                  "(" + FormatSeconds(row.overall) + ")",
                  FormatSeconds(trial.migration.insert_time)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Excision varies only ~4x while address-space contents vary four orders\n"
              "of magnitude: AMap construction cost follows process-map complexity.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
