// Regenerates Figure 4-1: remote execution times in seconds.
//
// The measurement interval starts when the relocated program is restarted
// at the new host and ends when remote execution completes. Columns PFn are
// trials with n pages prefetched per imaginary fault.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Figure 4-1: Remote Execution Times in Seconds",
               "Rows: pure-copy baseline, then pure-IOU and resident-set across prefetch\n"
               "values 0/1/3/7/15. Paper anchors: Minprog ~44x slower under pure-IOU;\n"
               "Chess only ~3% longer; Pasmac halves its IOU time with large prefetch.");

  TextTable table({"Process", "Copy", "IOU PF0", "PF1", "PF3", "PF7", "PF15", "RS PF0", "PF1",
                   "PF3", "PF7", "PF15"});
  for (const std::string& name : RepresentativeNames()) {
    std::vector<std::string> row{name};
    row.push_back(
        FormatSeconds(SweepCache::Find(name, TransferStrategy::kPureCopy, 0).remote_exec));
    for (TransferStrategy strategy :
         {TransferStrategy::kPureIou, TransferStrategy::kResidentSet}) {
      for (std::uint32_t prefetch : kPaperPrefetchValues) {
        row.push_back(FormatSeconds(SweepCache::Find(name, strategy, prefetch).remote_exec));
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  const double minprog_copy =
      ToSeconds(SweepCache::Find("Minprog", TransferStrategy::kPureCopy, 0).remote_exec);
  const double minprog_iou =
      ToSeconds(SweepCache::Find("Minprog", TransferStrategy::kPureIou, 0).remote_exec);
  const double chess_copy =
      ToSeconds(SweepCache::Find("Chess", TransferStrategy::kPureCopy, 0).remote_exec);
  const double chess_iou =
      ToSeconds(SweepCache::Find("Chess", TransferStrategy::kPureIou, 0).remote_exec);
  const double pm_iou0 =
      ToSeconds(SweepCache::Find("PM-Start", TransferStrategy::kPureIou, 0).remote_exec);
  const double pm_iou15 =
      ToSeconds(SweepCache::Find("PM-Start", TransferStrategy::kPureIou, 15).remote_exec);
  std::printf("Minprog pure-IOU slowdown: %.0fx (paper: 44x)\n", minprog_iou / minprog_copy);
  std::printf("Chess pure-IOU penalty: %.1f%% (paper: ~3%%)\n",
              100.0 * (chess_iou - chess_copy) / chess_copy);
  std::printf("PM-Start IOU PF0 -> PF15 improvement: %.2fx (paper: up to 2x)\n",
              pm_iou0 / pm_iou15);

  // Prefetch hit ratios (section 4.3.3 prose).
  std::printf("\nPrefetch hit ratios (hits / prefetched pages):\n");
  for (const char* name : {"Lisp-Del", "PM-Start"}) {
    std::printf("  %-8s:", name);
    for (std::uint32_t prefetch : {1u, 3u, 7u, 15u}) {
      const TrialResult& trial = SweepCache::Find(name, TransferStrategy::kPureIou, prefetch);
      const double ratio =
          trial.dest_pager.prefetched_pages == 0
              ? 0.0
              : static_cast<double>(trial.dest_pager.prefetch_hits) /
                    static_cast<double>(trial.dest_pager.prefetched_pages);
      std::printf("  PF%-2u %4.0f%%", prefetch, 100.0 * ratio);
    }
    std::printf("\n");
  }
  std::printf("(paper: Lisp drops ~40%% -> ~20%% as prefetch grows; Pasmac holds ~78%%)\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
