// Ablation: what if the network software were faster? (a forward-looking
// sweep the paper could not run).
//
// The 1987 bottleneck was the NetMsgServer's per-byte handling (~33 us/byte
// per node), not the 10 Mbit wire. This sweep scales that software cost
// down and asks when eager copying catches up with copy-on-reference on
// the Figure 4-2 metric (transfer + remote execution). The structural
// answer: as per-byte cost falls, pure-copy's bulk transfer shrinks toward
// zero while pure-IOU keeps paying per-fault latency — the crossover the
// post-copy/pre-copy debate still lives on today.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct Row {
  double scale;
  double copy_total;
  double iou_total;
};

Row RunAt(const char* workload, double scale) {
  Row row;
  row.scale = scale;

  for (int pass = 0; pass < 2; ++pass) {
    TestbedConfig config;
    config.costs.netmsg_per_byte =
        SimDuration(static_cast<std::int64_t>(33.0 * scale));  // us/byte
    // Faster software usually rides faster wires too.
    config.costs.wire_bytes_per_sec = 1.25e6 * 0.8 / scale;
    Testbed bed(config);
    WorkloadInstance instance = BuildWorkload(WorkloadByName(workload), bed.host(0), 42);
    Process* proc = instance.process.get();
    bed.manager(0)->RegisterLocal(proc);

    MigrationRecord record;
    bool done = false;
    bed.manager(0)->Migrate(proc, bed.manager(1)->port(),
                            pass == 0 ? TransferStrategy::kPureCopy
                                      : TransferStrategy::kPureIou,
                            [&](const MigrationRecord& r) {
                              record = r;
                              done = true;
                            });
    bed.sim().Run();
    ACCENT_CHECK(done);
    Process* remote = bed.manager(1)->adopted().at(0).get();
    ACCENT_CHECK(remote->done());
    const double total = ToSeconds(record.RimasTransferTime()) +
                         ToSeconds(remote->finish_time() - record.resumed);
    (pass == 0 ? row.copy_total : row.iou_total) = total;
  }
  return row;
}

void Run() {
  PrintHeading("Ablation: network software speed sweep",
               "Transfer + remote execution (s) as NetMsgServer per-byte handling\n"
               "scales from the 1987 testbed (1.0x = 33 us/byte/node) toward modern\n"
               "speeds. IOU advantage shrinks with touched fraction and network speed.");

  for (const char* workload : {"Lisp-Del", "PM-Start", "Minprog"}) {
    std::printf("--- %s ---\n", workload);
    TextTable table({"scale", "copy total", "IOU total", "winner"});
    for (double scale : {1.0, 0.3, 0.1, 0.03, 0.01}) {
      const Row row = RunAt(workload, scale);
      table.AddRow({FormatDouble(scale, 2), FormatSeconds(row.copy_total),
                    FormatSeconds(row.iou_total),
                    row.iou_total < row.copy_total ? "IOU" : "copy"});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Fault latency has a floor (pager + RTT) that bulk bandwidth does not:\n"
              "high-touch workloads flip to eager copying once wires get cheap, while\n"
              "sparse-touch workloads (Lisp) stay lazy — the same trade modern post-copy\n"
              "VM migration navigates.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
