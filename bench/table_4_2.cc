// Regenerates Table 4-2: resident sets at migration time.
//
// The resident set is sampled from the host's PhysicalMemory the same way
// the resident-set strategy samples it — not from the spec.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct PaperRow {
  const char* name;
  ByteCount rs_size;
  double pct_real;
  double pct_total;
};

constexpr PaperRow kPaper[] = {
    {"Minprog", 71680, 50.4, 21.7},  {"Lisp-T", 190464, 8.6, 0.005},
    {"Lisp-Del", 190464, 8.7, 0.005}, {"PM-Start", 132096, 29.4, 13.9},
    {"PM-Mid", 190976, 42.8, 20.9},  {"PM-End", 302080, 61.4, 33.9},
    {"Chess", 110080, 56.3, 22.0},
};

void Run() {
  PrintHeading("Table 4-2: Representative Resident Sets",
               "Sampled from PhysicalMemory at migration time; paper values in parentheses.");

  TextTable table(
      {"Process", "RS Size", "% of Real", "% of Total", "(paper RS)", "(paper %Real)"});
  Testbed bed;
  for (const PaperRow& row : kPaper) {
    WorkloadInstance instance = BuildWorkload(WorkloadByName(row.name), bed.host(0), 42);
    const AddressSpace& space = *instance.process->space();
    const ByteCount rs =
        bed.host(0)->memory->ResidentCount(space.id()) * kPageSize;
    const double pct_real = 100.0 * static_cast<double>(rs) / static_cast<double>(space.RealBytes());
    const double pct_total =
        100.0 * static_cast<double>(rs) / static_cast<double>(space.TotalValidatedBytes());
    table.AddRow({row.name, FormatWithCommas(rs), FormatDouble(pct_real, 1),
                  FormatDouble(pct_total, 3), "(" + FormatWithCommas(row.rs_size) + ")",
                  "(" + FormatDouble(row.pct_real, 1) + ")"});
    ACCENT_CHECK(rs == row.rs_size) << " resident set mismatch for " << row.name;
    // The staged set must be clean for the next workload on this testbed.
    bed.host(0)->memory->RemoveSpace(space.id());
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
