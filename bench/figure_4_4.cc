// Regenerates Figure 4-4: message-handling costs in seconds per trial —
// the elapsed CPU time both NetMsgServers spend processing the trial's IPC
// traffic ("each second spent by the NetMsgServer is stolen from all
// processes in both systems").
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

void Run() {
  PrintHeading("Figure 4-4: Message Handling Costs in Seconds",
               "NetMsgServer CPU busy time summed over both nodes. Paper anchors:\n"
               "IOU (PF0) cuts handling cost 47.8% on average; PF1 dips slightly below\n"
               "PF0; larger prefetch climbs again (dead-weight pages, bigger replies).");

  TextTable table(
      {"Process", "Copy", "IOU PF0", "PF1", "PF3", "PF7", "PF15", "RS PF0", "PF15"});
  double savings_sum = 0;
  for (const std::string& name : RepresentativeNames()) {
    const double copy_cost =
        ToSeconds(SweepCache::Find(name, TransferStrategy::kPureCopy, 0).netmsg_busy);
    std::vector<std::string> row{name, FormatSeconds(copy_cost)};
    for (std::uint32_t prefetch : kPaperPrefetchValues) {
      row.push_back(FormatSeconds(
          SweepCache::Find(name, TransferStrategy::kPureIou, prefetch).netmsg_busy));
    }
    row.push_back(FormatSeconds(
        SweepCache::Find(name, TransferStrategy::kResidentSet, 0).netmsg_busy));
    row.push_back(FormatSeconds(
        SweepCache::Find(name, TransferStrategy::kResidentSet, 15).netmsg_busy));
    table.AddRow(row);

    const double iou_cost =
        ToSeconds(SweepCache::Find(name, TransferStrategy::kPureIou, 0).netmsg_busy);
    savings_sum += 1.0 - iou_cost / copy_cost;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Average pure-IOU (PF0) handling-cost savings vs pure-copy: %.1f%%"
              " (paper: 47.8%%)\n",
              100.0 * savings_sum / static_cast<double>(RepresentativeNames().size()));
  std::printf("Pure-copy wins on message *count* but loses on handling time: the\n"
              "majority of pages it ships are never used at the remote site.\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
