// Regenerates Figure 4-2: overall migration speedup relative to pure-copy.
//
// For each representative, strategy and prefetch value, the elapsed times
// for address-space transfer and remote execution are summed and compared
// to the pure-copy result. Positive numbers are speedups.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

double Total(const TrialResult& trial) { return ToSeconds(trial.TransferPlusExec()); }

void Run() {
  PrintHeading("Figure 4-2: Percent Migration Speedup vs. Pure-Copy",
               "Transfer + remote execution, compared to pure-copy. Positive = faster.\n"
               "Paper anchors: processes touching < ~25% of RealMem win under pure-IOU;\n"
               "PF1 always helps; RS rarely pays its way; Chess is insensitive.");

  TextTable table({"Process", "IOU PF0", "PF1", "PF3", "PF7", "PF15", "RS PF0", "PF1", "PF3",
                   "PF7", "PF15"});
  for (const std::string& name : RepresentativeNames()) {
    const double copy_total = Total(SweepCache::Find(name, TransferStrategy::kPureCopy, 0));
    std::vector<std::string> row{name};
    for (TransferStrategy strategy :
         {TransferStrategy::kPureIou, TransferStrategy::kResidentSet}) {
      for (std::uint32_t prefetch : kPaperPrefetchValues) {
        const double total = Total(SweepCache::Find(name, strategy, prefetch));
        const double speedup = 100.0 * (copy_total - total) / copy_total;
        row.push_back(FormatDouble(speedup, 1));
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  // The crossover claim: breakeven near one quarter of RealMem touched.
  std::printf("Touched fraction of RealMem vs. pure-IOU PF0 outcome:\n");
  for (const std::string& name : RepresentativeNames()) {
    const TrialResult& iou = SweepCache::Find(name, TransferStrategy::kPureIou, 0);
    const double copy_total = Total(SweepCache::Find(name, TransferStrategy::kPureCopy, 0));
    const double speedup = 100.0 * (copy_total - Total(iou)) / copy_total;
    std::printf("  %-8s touched %5.1f%%  -> %+7.1f%%\n", name.c_str(),
                100.0 * iou.FractionOfRealTransferred(), speedup);
  }
  std::printf("(paper: breakeven around 25%% of RealMem; Chess drowned by longevity)\n");
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
