// Shared helpers for the table/figure regeneration binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/sweep_cache.h"
#include "src/experiments/trial.h"
#include "src/metrics/table.h"

namespace accent {

inline const std::vector<std::string>& RepresentativeNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> list;
    for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
      list.push_back(spec.name);
    }
    return list;
  }();
  return names;
}

// The full paper grid (7 workloads x {copy, IOU x PF, RS x PF}), served
// from the cross-binary disk cache: the first binary (or bench/run_all)
// simulates the grid in parallel and persists it; every later binary
// deserialises instead of re-simulating. See src/experiments/sweep_cache.h.
class SweepCache {
 public:
  static const std::vector<TrialResult>& For(const std::string& workload) {
    return DiskSweepCache::Global().For(workload);
  }

  static const TrialResult& Find(const std::string& workload, TransferStrategy strategy,
                                 std::uint32_t prefetch) {
    for (const TrialResult& result : For(workload)) {
      if (result.config.strategy == strategy &&
          (strategy == TransferStrategy::kPureCopy || result.config.prefetch == prefetch)) {
        return result;
      }
    }
    ACCENT_CHECK(false) << " missing trial " << workload;
    static TrialResult unreachable;
    return unreachable;
  }
};

inline void PrintHeading(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
  std::printf("\n");
}

}  // namespace accent

#endif  // BENCH_BENCH_UTIL_H_
