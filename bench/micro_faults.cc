// Micro-measurements of the fault paths (section 4.3.3 anchors) plus
// google-benchmark timings of the simulator's own hot paths.
//
// Simulated-time anchors measured here:
//   - local disk fault  ~= 40.8 ms,
//   - remote imaginary fault ~= 115 ms,
//   - their ratio ~= 2.8x ("referencing imaginary memory through the
//     intermediary Scheduler and NetMsgServer processes").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/experiments/testbed.h"
#include "src/vm/backer.h"

namespace accent {
namespace {

struct FaultLab {
  Testbed bed;
  AddressSpace* space = nullptr;
  Segment* image = nullptr;
  SegmentBacker* remote_backer = nullptr;
  std::unique_ptr<SegmentBacker> backer_storage;
  std::unique_ptr<AddressSpace> space_storage;

  FaultLab() {
    // Host 0 faults; host 1 backs an imaginary object remotely.
    space_storage =
        std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()), bed.host(0)->id);
    space = space_storage.get();

    image = bed.segments().CreateReal(1024 * kPageSize, "lab-image");
    for (PageIndex p = 0; p < 1024; ++p) {
      image->StorePage(p, MakePatternPage(p + 1));
    }

    backer_storage = std::make_unique<SegmentBacker>(bed.host(1)->id, &bed.sim(), &bed.costs(),
                                                     &bed.fabric(), &bed.segments(),
                                                     CpuWork::kProcess, "lab-backer");
    remote_backer = backer_storage.get();
    remote_backer->Start();

    // Layout: [0,1024) disk-backed real, [1024,2048) zero, [2048,3072)
    // imaginary backed on host 1.
    space->MapReal(0, 1024 * kPageSize, image, 0, /*copy_on_write=*/false);
    space->Validate(1024 * kPageSize, 2048 * kPageSize);
    Segment* remote_obj = bed.segments().CreateReal(1024 * kPageSize, "lab-remote");
    for (PageIndex p = 0; p < 1024; ++p) {
      remote_obj->StorePage(p, MakePatternPage(p + 5000));
    }
    const IouRef iou = remote_backer->Back(remote_obj);
    Segment* standin = bed.segments().CreateImaginary(1024 * kPageSize, iou, "lab-standin");
    space->MapImaginary(2048 * kPageSize, 3072 * kPageSize, standin, 0);
  }

  // Returns simulated latency of touching `addr`.
  SimDuration Touch(Addr addr) {
    const SimTime start = bed.sim().Now();
    SimTime done_at = start;
    bool done = false;
    bed.pager(0)->Access(space, addr, /*write=*/false, [&](const AccessOutcome&) {
      done_at = bed.sim().Now();
      done = true;
    });
    bed.sim().Run();
    ACCENT_CHECK(done);
    return done_at - start;
  }
};

void PrintAnchors() {
  FaultLab lab;
  const SimDuration fillzero = lab.Touch(1024 * kPageSize);
  const SimDuration disk = lab.Touch(0);
  const SimDuration imag = lab.Touch(2048 * kPageSize);
  const SimDuration resident = lab.Touch(0);  // second touch: already resident

  std::printf("\n=== Section 4.3.3 latency anchors (simulated time) ===\n");
  std::printf("FillZero fault:        %7.1f ms\n", ToSeconds(fillzero) * 1e3);
  std::printf("Local disk fault:      %7.1f ms   (paper: 40.8 ms)\n", ToSeconds(disk) * 1e3);
  std::printf("Remote imaginary fault:%7.1f ms   (paper: 115 ms)\n", ToSeconds(imag) * 1e3);
  std::printf("Resident access:       %7.3f ms\n", ToSeconds(resident) * 1e3);
  std::printf("Remote/local ratio:    %7.2fx   (paper: 2.8x)\n\n",
              ToSeconds(imag) / ToSeconds(disk));
}

// --- real-time benchmarks of the simulator hot paths ---------------------

void BM_LocalDiskFault(benchmark::State& state) {
  FaultLab lab;
  PageIndex page = 0;
  for (auto _ : state) {
    lab.Touch(PageBase(page % 1024));
    ++page;
  }
}
BENCHMARK(BM_LocalDiskFault);

void BM_RemoteImaginaryFault(benchmark::State& state) {
  FaultLab lab;
  PageIndex page = 0;
  for (auto _ : state) {
    lab.Touch(PageBase(2048 + page % 1024));
    ++page;
  }
}
BENCHMARK(BM_RemoteImaginaryFault);

void BM_FillZeroFault(benchmark::State& state) {
  FaultLab lab;
  PageIndex page = 0;
  for (auto _ : state) {
    lab.Touch(PageBase(1024 + page % 1024));
    ++page;
  }
}
BENCHMARK(BM_FillZeroFault);

}  // namespace
}  // namespace accent

int main(int argc, char** argv) {
  accent::PrintAnchors();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
