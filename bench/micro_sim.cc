// Microbenchmark of the simulator event loop, emitting machine-readable
// JSON (BENCH_sim.json) so the per-event cost is tracked from PR to PR.
//
// Two engines run the same self-perpetuating event storm:
//   - "inline": the production Simulator (InlineEvent small-buffer callable,
//     binary heap on a reserved std::vector);
//   - "legacy": a faithful replica of the pre-InlineEvent loop (per-event
//     heap-allocated std::function on a std::priority_queue), kept here as
//     the fixed baseline the speedup is measured against.
//
// Usage: micro_sim [--events N] [--reps N] [--out PATH]
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/json.h"
#include "src/sim/simulator.h"

namespace accent {
namespace {

// --- legacy engine (pre-optimisation baseline) ----------------------------

class LegacySim {
 public:
  SimTime Now() const { return now_; }

  void ScheduleAt(SimTime when, std::function<void()> fn) {
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  std::uint64_t Run() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.when;
      ++executed;
      event.fn();
    }
    return executed;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
};

// --- the storm ------------------------------------------------------------
//
// `width` concurrent event chains; every event re-arms itself at a pseudo-
// random future instant until the budget is spent, carrying `PayloadWords`
// machine words of capture. This mirrors the simulator's real life: many
// interleaved actors (processes, pagers, wires) each scheduling their next
// step from inside an event.
//
// The capture size is the whole story. PayloadWords=0 gives a 8-byte
// [this] capture that even std::function stores inline; PayloadWords=4
// reproduces the dominant production shape — Cpu::StartNext's
// [this, done = std::function] completion wrapper, 40 bytes — which
// std::function heap-allocates per event and InlineEvent does not.

template <typename Sim, std::size_t PayloadWords>
struct Storm {
  Sim sim;
  std::uint64_t remaining;
  std::uint64_t sink = 0;
  std::uint64_t rng_state = 0x9e3779b97f4a7c15ull;

  explicit Storm(std::uint64_t events) : remaining(events) {}

  SimDuration NextDelay() {
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    return Us(static_cast<std::int64_t>(rng_state % 97) + 1);
  }

  void Arm() {
    if constexpr (PayloadWords == 0) {
      sim.ScheduleAfter(NextDelay(), [this] { Step(0); });
    } else {
      std::array<std::uint64_t, PayloadWords> payload;
      for (std::size_t i = 0; i < PayloadWords; ++i) {
        payload[i] = rng_state + i;
      }
      sim.ScheduleAfter(NextDelay(), [this, payload] { Step(payload[PayloadWords - 1]); });
    }
  }

  void Step(std::uint64_t carried) {
    sink += carried;
    if (remaining == 0) {
      return;
    }
    --remaining;
    Arm();
  }

  std::uint64_t Run(int width) {
    for (int i = 0; i < width; ++i) {
      Arm();
    }
    return sim.Run();
  }
};

template <typename Sim, std::size_t PayloadWords>
double MeasureEventsPerSec(std::uint64_t events, int reps) {
  constexpr int kWidth = 64;
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Storm<Sim, PayloadWords> storm(events);
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t executed = storm.Run(kWidth);
    const auto stop = std::chrono::steady_clock::now();
    ACCENT_CHECK_GE(executed, events);
    ACCENT_CHECK_GE(storm.sink, 0u);  // keep the payload observable
    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double rate = static_cast<double>(executed) / seconds;
    if (rate > best) {
      best = rate;
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  std::uint64_t events = 500000;
  int reps = 3;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--events N] [--reps N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  ACCENT_CHECK_GT(events, 0u);
  ACCENT_CHECK_GT(reps, 0);

  // Headline numbers use the production-shaped 40-byte capture; the 8-byte
  // small-capture storm is reported alongside as a floor check (std::function
  // stores it inline too, so the engines should be close there).
  const double inline_rate = MeasureEventsPerSec<Simulator, 4>(events, reps);
  const double legacy_rate = MeasureEventsPerSec<LegacySim, 4>(events, reps);
  const double inline_small = MeasureEventsPerSec<Simulator, 0>(events, reps);
  const double legacy_small = MeasureEventsPerSec<LegacySim, 0>(events, reps);
  const double speedup = inline_rate / legacy_rate;

  Json report;
  report["bench"] = Json("micro_sim");
  report["schema_version"] = Json(1);
  report["events"] = Json(events);
  report["reps"] = Json(reps);
  report["capture_bytes"] = Json(40);
  report["inline_events_per_sec"] = Json(inline_rate);
  report["legacy_events_per_sec"] = Json(legacy_rate);
  report["inline_ns_per_event"] = Json(1e9 / inline_rate);
  report["legacy_ns_per_event"] = Json(1e9 / legacy_rate);
  report["speedup"] = Json(speedup);
  report["small_capture_inline_events_per_sec"] = Json(inline_small);
  report["small_capture_legacy_events_per_sec"] = Json(legacy_small);
  report["small_capture_speedup"] = Json(inline_small / legacy_small);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== micro_sim: event-loop throughput (40-byte captures) ===\n");
  std::printf("inline (InlineEvent + reserved heap): %12.0f events/sec (%.1f ns/event)\n",
              inline_rate, 1e9 / inline_rate);
  std::printf("legacy (std::function + prio queue):  %12.0f events/sec (%.1f ns/event)\n",
              legacy_rate, 1e9 / legacy_rate);
  std::printf("speedup: %.2fx (small-capture floor: %.2fx)  -> %s\n", speedup,
              inline_small / legacy_small, out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
