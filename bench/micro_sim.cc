// Microbenchmark of the simulator event loop, emitting machine-readable
// JSON (BENCH_sim.json) so the per-event cost is tracked from PR to PR.
//
// Two engines run the same self-perpetuating event storm:
//   - "inline": the production Simulator (InlineEvent small-buffer callable,
//     binary heap on a reserved std::vector);
//   - "legacy": a faithful replica of the pre-InlineEvent loop (per-event
//     heap-allocated std::function on a std::priority_queue), kept here as
//     the fixed baseline the speedup is measured against.
//
// A second section benchmarks the page-payload data plane the same way:
// the PageRef refactor left an in-binary baseline (legacy deep-copy mode
// clones payloads exactly where the old data plane copied PageData), so one
// binary measures a pure-copy PASMAC trial and the full 77-trial sweep both
// ways, proves the simulated results are identical, and reports the copy
// traffic removed (page_bytes_copied / payload allocations) plus the
// wall-clock speedup.
//
// Usage: micro_sim [--events N] [--reps N] [--sweep-reps N] [--out PATH]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/json.h"
#include "src/base/page_ref.h"
#include "src/experiments/sweep.h"
#include "src/experiments/sweep_cache.h"
#include "src/sim/simulator.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// --- legacy engine (pre-optimisation baseline) ----------------------------

class LegacySim {
 public:
  SimTime Now() const { return now_; }

  void ScheduleAt(SimTime when, std::function<void()> fn) {
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  std::uint64_t Run() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.when;
      ++executed;
      event.fn();
    }
    return executed;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
};

// --- the storm ------------------------------------------------------------
//
// `width` concurrent event chains; every event re-arms itself at a pseudo-
// random future instant until the budget is spent, carrying `PayloadWords`
// machine words of capture. This mirrors the simulator's real life: many
// interleaved actors (processes, pagers, wires) each scheduling their next
// step from inside an event.
//
// The capture size is the whole story. PayloadWords=0 gives a 8-byte
// [this] capture that even std::function stores inline; PayloadWords=4
// reproduces the dominant production shape — Cpu::StartNext's
// [this, done = std::function] completion wrapper, 40 bytes — which
// std::function heap-allocates per event and InlineEvent does not.

template <typename Sim, std::size_t PayloadWords>
struct Storm {
  Sim sim;
  std::uint64_t remaining;
  std::uint64_t sink = 0;
  std::uint64_t rng_state = 0x9e3779b97f4a7c15ull;

  explicit Storm(std::uint64_t events) : remaining(events) {}

  SimDuration NextDelay() {
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    return Us(static_cast<std::int64_t>(rng_state % 97) + 1);
  }

  void Arm() {
    if constexpr (PayloadWords == 0) {
      sim.ScheduleAfter(NextDelay(), [this] { Step(0); });
    } else {
      std::array<std::uint64_t, PayloadWords> payload;
      for (std::size_t i = 0; i < PayloadWords; ++i) {
        payload[i] = rng_state + i;
      }
      sim.ScheduleAfter(NextDelay(), [this, payload] { Step(payload[PayloadWords - 1]); });
    }
  }

  void Step(std::uint64_t carried) {
    sink += carried;
    if (remaining == 0) {
      return;
    }
    --remaining;
    Arm();
  }

  std::uint64_t Run(int width) {
    for (int i = 0; i < width; ++i) {
      Arm();
    }
    return sim.Run();
  }
};

template <typename Sim, std::size_t PayloadWords>
double MeasureEventsPerSec(std::uint64_t events, int reps) {
  constexpr int kWidth = 64;
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Storm<Sim, PayloadWords> storm(events);
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t executed = storm.Run(kWidth);
    const auto stop = std::chrono::steady_clock::now();
    ACCENT_CHECK_GE(executed, events);
    ACCENT_CHECK_GE(storm.sink, 0u);  // keep the payload observable
    const double seconds = std::chrono::duration<double>(stop - start).count();
    const double rate = static_cast<double>(executed) / seconds;
    if (rate > best) {
      best = rate;
    }
  }
  return best;
}

// --- the data plane -------------------------------------------------------
//
// Same before/after discipline as the event-loop storm, but the baseline
// lives inside the production data plane: SetLegacyDeepCopyMode(true) makes
// every PageRef copy a deep clone, reproducing the byte traffic of the old
// std::map<PageIndex, PageData> tables. Both modes run the identical
// simulation; the FNV digest over every trial's canonical JSON proves the
// results are bit-identical, so the only thing the mode changes is how many
// payload bytes the host machine physically copies.

struct DataPlaneOutcome {
  PageCounterSnapshot trial;     // PM-Mid pure-copy trial (PASMAC mid-life)
  std::string trial_json;        // canonical serialisation, for parity
  double sweep_seconds = 0;      // fastest serial 77-trial sweep
  PageCounterSnapshot sweep;     // counters for one full sweep
  std::uint64_t sweep_digest = 0;
  std::size_t sweep_trials = 0;
};

std::uint64_t Fnv1a(std::uint64_t hash, const std::string& text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

DataPlaneOutcome MeasureDataPlane(bool legacy_mode, int sweep_reps) {
  SetLegacyDeepCopyMode(legacy_mode);
  DataPlaneOutcome outcome;

  // The paper's pure-copy PASMAC trial: every resident page crosses the wire
  // in bulk fragments, so this is the copy-heaviest cell of the grid.
  TrialConfig copy_trial;
  copy_trial.workload = "PM-Mid";
  copy_trial.strategy = TransferStrategy::kPureCopy;
  ResetPageCounters();
  const TrialResult trial_result = RunTrial(copy_trial);
  outcome.trial = ReadPageCounters();
  outcome.trial_json = TrialResultToJson(trial_result).Dump();

  // Full 77-trial sweep, serial so the wall clock is scheduling-free. The
  // timer covers RunTrials only; digesting the JSON happens outside it.
  double best_seconds = 0;
  for (int rep = 0; rep < sweep_reps; ++rep) {
    ResetPageCounters();
    std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
    std::size_t trials = 0;
    double seconds = 0;
    for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
      const std::vector<TrialConfig> configs = StrategySweepConfigs(spec.name);
      const auto start = std::chrono::steady_clock::now();
      const std::vector<TrialResult> results = RunTrials(configs, /*threads=*/1);
      const auto stop = std::chrono::steady_clock::now();
      seconds += std::chrono::duration<double>(stop - start).count();
      ACCENT_CHECK_EQ(results.size(), configs.size());
      for (const TrialResult& result : results) {
        digest = Fnv1a(digest, TrialResultToJson(result).Dump());
        digest = Fnv1a(digest, "\n");
        ++trials;
      }
    }
    outcome.sweep = ReadPageCounters();
    outcome.sweep_digest = digest;
    outcome.sweep_trials = trials;
    if (rep == 0 || seconds < best_seconds) {
      best_seconds = seconds;
    }
  }
  outcome.sweep_seconds = best_seconds;
  SetLegacyDeepCopyMode(false);
  return outcome;
}

int Main(int argc, char** argv) {
  std::uint64_t events = 500000;
  int reps = 3;
  int sweep_reps = 2;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sweep-reps") == 0 && i + 1 < argc) {
      sweep_reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--events N] [--reps N] [--sweep-reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  ACCENT_CHECK_GT(events, 0u);
  ACCENT_CHECK_GT(reps, 0);
  ACCENT_CHECK_GT(sweep_reps, 0);

  // Headline numbers use the production-shaped 40-byte capture; the 8-byte
  // small-capture storm is reported alongside as a floor check (std::function
  // stores it inline too, so the engines should be close there).
  const double inline_rate = MeasureEventsPerSec<Simulator, 4>(events, reps);
  const double legacy_rate = MeasureEventsPerSec<LegacySim, 4>(events, reps);
  const double inline_small = MeasureEventsPerSec<Simulator, 0>(events, reps);
  const double legacy_small = MeasureEventsPerSec<LegacySim, 0>(events, reps);
  const double speedup = inline_rate / legacy_rate;

  // Data plane: legacy deep-copy mode first, then zero-copy; same simulation
  // both times, verified below.
  const DataPlaneOutcome deep = MeasureDataPlane(/*legacy_mode=*/true, sweep_reps);
  const DataPlaneOutcome zero = MeasureDataPlane(/*legacy_mode=*/false, sweep_reps);
  ACCENT_CHECK(deep.trial_json == zero.trial_json)
      << " legacy and zero-copy modes produced different trial results";
  ACCENT_CHECK_EQ(deep.sweep_digest, zero.sweep_digest);
  ACCENT_CHECK_EQ(deep.sweep_trials, zero.sweep_trials);
  const double copy_reduction =
      static_cast<double>(deep.trial.page_bytes_copied) /
      static_cast<double>(std::max<std::uint64_t>(zero.trial.page_bytes_copied, 1));
  ACCENT_CHECK_GE(copy_reduction, 2.0)
      << " zero-copy data plane no longer halves pure-copy byte duplication";
  const double sweep_speedup = deep.sweep_seconds / zero.sweep_seconds;

  Json report;
  report["bench"] = Json("micro_sim");
  report["schema_version"] = Json(2);
  report["events"] = Json(events);
  report["reps"] = Json(reps);
  report["capture_bytes"] = Json(40);
  report["inline_events_per_sec"] = Json(inline_rate);
  report["legacy_events_per_sec"] = Json(legacy_rate);
  report["inline_ns_per_event"] = Json(1e9 / inline_rate);
  report["legacy_ns_per_event"] = Json(1e9 / legacy_rate);
  report["speedup"] = Json(speedup);
  report["small_capture_inline_events_per_sec"] = Json(inline_small);
  report["small_capture_legacy_events_per_sec"] = Json(legacy_small);
  report["small_capture_speedup"] = Json(inline_small / legacy_small);

  // Data-plane section: the PM-Mid pure-copy trial is the copy-heaviest grid
  // cell; the sweep rows time all 77 trials serially in each mode.
  report["copy_trial_workload"] = Json("PM-Mid pure-copy");
  report["copy_trial_legacy_bytes_copied"] = Json(deep.trial.page_bytes_copied);
  report["copy_trial_zero_copy_bytes_copied"] = Json(zero.trial.page_bytes_copied);
  report["copy_trial_legacy_payload_allocs"] = Json(deep.trial.payload_allocs);
  report["copy_trial_zero_copy_payload_allocs"] = Json(zero.trial.payload_allocs);
  report["copy_trial_zero_copy_payload_shares"] = Json(zero.trial.payload_shares);
  report["copy_trial_zero_copy_cow_breaks"] = Json(zero.trial.cow_breaks);
  report["copy_reduction"] = Json(copy_reduction);
  report["sweep_trials"] = Json(static_cast<std::uint64_t>(zero.sweep_trials));
  report["sweep_reps"] = Json(sweep_reps);
  report["sweep_legacy_seconds"] = Json(deep.sweep_seconds);
  report["sweep_zero_copy_seconds"] = Json(zero.sweep_seconds);
  report["sweep_speedup"] = Json(sweep_speedup);
  report["sweep_legacy_bytes_copied"] = Json(deep.sweep.page_bytes_copied);
  report["sweep_zero_copy_bytes_copied"] = Json(zero.sweep.page_bytes_copied);
  report["sweep_results_identical"] = Json(true);

  std::ofstream out(out_path, std::ios::trunc);
  ACCENT_CHECK(out.good()) << " cannot open " << out_path;
  out << report.Dump(2) << '\n';
  ACCENT_CHECK(out.good());

  std::printf("=== micro_sim: event-loop throughput (40-byte captures) ===\n");
  std::printf("inline (InlineEvent + reserved heap): %12.0f events/sec (%.1f ns/event)\n",
              inline_rate, 1e9 / inline_rate);
  std::printf("legacy (std::function + prio queue):  %12.0f events/sec (%.1f ns/event)\n",
              legacy_rate, 1e9 / legacy_rate);
  std::printf("speedup: %.2fx (small-capture floor: %.2fx)  -> %s\n", speedup,
              inline_small / legacy_small, out_path.c_str());
  std::printf("=== micro_sim: page-payload data plane (results bit-identical) ===\n");
  std::printf("PM-Mid pure-copy trial: %12llu bytes copied (deep-copy baseline)\n",
              static_cast<unsigned long long>(deep.trial.page_bytes_copied));
  std::printf("                        %12llu bytes copied (zero-copy)  -> %.1fx less\n",
              static_cast<unsigned long long>(zero.trial.page_bytes_copied), copy_reduction);
  std::printf("77-trial sweep, serial: %.3f s baseline, %.3f s zero-copy (%.2fx)\n",
              deep.sweep_seconds, zero.sweep_seconds, sweep_speedup);
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
