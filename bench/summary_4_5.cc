// Regenerates the section 4.5 summary: every headline claim of the paper,
// recomputed from fresh trials, side by side with the published number.
#include <cstdio>

#include "bench/bench_util.h"

namespace accent {
namespace {

double Total(const TrialResult& t) { return ToSeconds(t.TransferPlusExec()); }

void Run() {
  PrintHeading("Section 4.5 Summary: paper claim vs. this reproduction", "");

  // Address-space variance.
  ByteCount min_total = ~0ull, max_total = 0, min_real = ~0ull, max_real = 0;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    min_total = std::min(min_total, spec.total_bytes());
    max_total = std::max(max_total, spec.total_bytes());
    min_real = std::min(min_real, spec.real_bytes);
    max_real = std::max(max_real, spec.real_bytes);
  }

  // Excision / insertion variance.
  double min_exc = 1e9, max_exc = 0, min_ins = 1e9, max_ins = 0;
  double min_iou_xfer = 1e9, max_iou_xfer = 0, min_copy = 1e9, max_copy = 0;
  double worst_ratio = 0;
  double byte_savings = 0, msg_savings = 0;
  double min_touch_real = 1e9, max_touch_real = 0, min_touch_tot = 1e9, max_touch_tot = 0;
  const auto& names = RepresentativeNames();
  for (const std::string& name : names) {
    const TrialResult& copy = SweepCache::Find(name, TransferStrategy::kPureCopy, 0);
    const TrialResult& iou = SweepCache::Find(name, TransferStrategy::kPureIou, 0);
    min_exc = std::min(min_exc, ToSeconds(copy.migration.excise_overall));
    max_exc = std::max(max_exc, ToSeconds(copy.migration.excise_overall));
    min_ins = std::min(min_ins, ToSeconds(copy.migration.insert_time));
    max_ins = std::max(max_ins, ToSeconds(copy.migration.insert_time));
    min_iou_xfer = std::min(min_iou_xfer, ToSeconds(iou.migration.RimasTransferTime()));
    max_iou_xfer = std::max(max_iou_xfer, ToSeconds(iou.migration.RimasTransferTime()));
    min_copy = std::min(min_copy, ToSeconds(copy.migration.RimasTransferTime()));
    max_copy = std::max(max_copy, ToSeconds(copy.migration.RimasTransferTime()));
    worst_ratio = std::max(worst_ratio, ToSeconds(copy.migration.RimasTransferTime()) /
                                            ToSeconds(iou.migration.RimasTransferTime()));
    byte_savings += 1.0 - static_cast<double>(iou.bytes_total) /
                              static_cast<double>(copy.bytes_total);
    msg_savings +=
        1.0 - ToSeconds(iou.netmsg_busy) / ToSeconds(copy.netmsg_busy);
    min_touch_real = std::min(min_touch_real, 100.0 * iou.FractionOfRealTransferred());
    max_touch_real = std::max(max_touch_real, 100.0 * iou.FractionOfRealTransferred());
    min_touch_tot = std::min(min_touch_tot, 100.0 * iou.FractionOfTotalTransferred());
    max_touch_tot = std::max(max_touch_tot, 100.0 * iou.FractionOfTotalTransferred());
  }
  const double n = static_cast<double>(names.size());

  TextTable table({"Claim", "Paper", "Measured"});
  table.AddRow({"Address-space size variance", "12,803x",
                FormatWithCommas(max_total / min_total) + "x"});
  table.AddRow({"RealMem variance", "15x", FormatWithCommas(max_real / min_real) + "x"});
  table.AddRow({"Touched, % of validated space", "0.002%-27.4%",
                FormatDouble(min_touch_tot, 3) + "%-" + FormatDouble(max_touch_tot, 1) + "%"});
  table.AddRow({"Touched, % of RealMem", "3%-58%",
                FormatDouble(min_touch_real, 1) + "%-" + FormatDouble(max_touch_real, 1) + "%"});
  table.AddRow({"Excision time variance", "4x", FormatDouble(max_exc / min_exc, 1) + "x"});
  table.AddRow({"Insertion time variance", "3.3x", FormatDouble(max_ins / min_ins, 1) + "x"});
  table.AddRow({"IOU transfer times", "~1 s bound (0.15-0.21 s RIMAS)",
                FormatSeconds(min_iou_xfer) + "-" + FormatSeconds(max_iou_xfer) + " s"});
  table.AddRow({"Pure-copy transfer variance", "20x",
                FormatDouble(max_copy / min_copy, 1) + "x"});
  table.AddRow({"Worst copy vs IOU transfer", "~1000x", FormatDouble(worst_ratio, 0) + "x"});
  table.AddRow({"Avg byte savings (IOU PF0)", "58.2%",
                FormatDouble(100.0 * byte_savings / n, 1) + "%"});
  table.AddRow({"Avg message-cost savings (IOU PF0)", "47.8%",
                FormatDouble(100.0 * msg_savings / n, 1) + "%"});

  const TrialResult& chess_copy = SweepCache::Find("Chess", TransferStrategy::kPureCopy, 0);
  const TrialResult& chess_iou = SweepCache::Find("Chess", TransferStrategy::kPureIou, 0);
  table.AddRow({"Chess end-to-end sensitivity", "insensitive",
                FormatDouble(100.0 * (Total(chess_iou) - Total(chess_copy)) /
                                 Total(chess_copy), 1) + "%"});

  // Prefetch-1 rule: PF1 never slower than PF0 end-to-end.
  bool pf1_always_helps = true;
  for (const std::string& name : names) {
    const double pf0 = Total(SweepCache::Find(name, TransferStrategy::kPureIou, 0));
    const double pf1 = Total(SweepCache::Find(name, TransferStrategy::kPureIou, 1));
    if (pf1 > pf0 * 1.001) {
      pf1_always_helps = false;
    }
  }
  table.AddRow({"One-page prefetch always helps", "yes", pf1_always_helps ? "yes" : "NO"});

  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace accent

int main() {
  accent::Run();
  return 0;
}
