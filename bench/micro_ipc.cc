#include "src/experiments/trial.h"
// Micro-benchmarks of the IPC and simulation substrates (google-benchmark,
// real wall-clock time): event-queue throughput, local/remote message
// delivery, interval-map operations. These are the engineering-quality
// benchmarks for the library itself, next to the paper-figure harnesses.
#include <benchmark/benchmark.h>

#include "src/base/interval_map.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAfter(Us(i), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_LocalIpcSend(benchmark::State& state) {
  Testbed bed;
  struct Sink : Receiver {
    std::uint64_t count = 0;
    void HandleMessage(Message) override { ++count; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "sink");
  for (auto _ : state) {
    Message msg;
    msg.dest = port;
    msg.inline_bytes = 128;
    ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
    bed.sim().Run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink.count));
}
BENCHMARK(BM_LocalIpcSend);

void BM_RemoteIpcSend(benchmark::State& state) {
  const ByteCount bytes = static_cast<ByteCount>(state.range(0));
  Testbed bed;
  struct Sink : Receiver {
    std::uint64_t count = 0;
    void HandleMessage(Message) override { ++count; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "remote-sink");
  for (auto _ : state) {
    Message msg;
    msg.dest = port;
    msg.inline_bytes = bytes;
    ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
    bed.sim().Run();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RemoteIpcSend)->Arg(128)->Arg(16 * 1024)->Arg(512 * 1024);

void BM_IntervalMapAssign(benchmark::State& state) {
  const int regions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    IntervalMap<int> map;
    for (int i = 0; i < regions; ++i) {
      const Addr base = static_cast<Addr>(i) * 2 * kPageSize;
      map.Assign(base, base + kPageSize, i % 4);
    }
    benchmark::DoNotOptimize(map.TotalBytes());
  }
  state.SetItemsProcessed(state.iterations() * regions);
}
BENCHMARK(BM_IntervalMapAssign)->Arg(100)->Arg(1000);

void BM_AMapClassify(benchmark::State& state) {
  AMap amap;
  for (int i = 0; i < 1000; ++i) {
    const Addr base = static_cast<Addr>(i) * 3 * kPageSize;
    amap.Set(base, base + kPageSize, i % 2 == 0 ? MemClass::kReal : MemClass::kRealZero);
  }
  Addr probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(amap.ClassOf(probe));
    probe = (probe + kPageSize) % (3000 * kPageSize);
  }
}
BENCHMARK(BM_AMapClassify);

void BM_ExciseInsertRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    TrialConfig config;
    config.workload = "Minprog";
    config.strategy = TransferStrategy::kPureIou;
    benchmark::DoNotOptimize(RunTrial(config).bytes_total);
  }
}
BENCHMARK(BM_ExciseInsertRoundTrip);

}  // namespace
}  // namespace accent

BENCHMARK_MAIN();
