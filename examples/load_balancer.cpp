// Automatic migration for load balancing — the future-work direction of
// section 6, built on the repository's LoadBalancerPolicy.
//
// Six compute-heavy jobs all start on host 1 of a three-host cluster. The
// policy samples per-host run queues every few seconds and migrates the
// cheapest-to-move process (the dispersal-aware metric of section 6) to
// the idlest host, using pure-IOU transfer so relocation is nearly free.
// The same jobs are then run without migration: the balanced cluster
// finishes its makespan ~1.7x sooner.
//
//   $ ./build/examples/load_balancer
#include <cstdio>
#include <map>

#include "src/base/rng.h"
#include "src/experiments/testbed.h"
#include "src/metrics/table.h"
#include "src/policy/load_balancer.h"

using namespace accent;  // NOLINT: example brevity

namespace {

constexpr int kJobs = 6;
constexpr double kJobSeconds = 40.0;

std::unique_ptr<Process> MakeJob(Testbed* bed, int index) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                              bed->host(0)->id);
  Segment* image = bed->segments().CreateReal(256 * kPageSize, "job-image");
  for (PageIndex p = 0; p < 256; ++p) {
    image->StorePage(p, MakePatternPage(p + index * 1000));
  }
  space->MapReal(0, 256 * kPageSize, image, 0, false);
  space->Validate(256 * kPageSize, 512 * kPageSize);

  auto proc = std::make_unique<Process>(ProcId(bed->sim().AllocateId()),
                                        "job-" + std::to_string(index), bed->host(0),
                                        std::move(space), index);
  TraceBuilder trace;
  Rng rng(index + 1);
  const int slices = 40;
  for (int s = 0; s < slices; ++s) {
    trace.Compute(Sec(kJobSeconds / slices));
    trace.Read(PageBase(rng.NextBelow(256)));  // touch a little memory as it goes
  }
  trace.Terminate();
  proc->SetTrace(trace.Build(), 0);
  return proc;
}

struct ClusterOutcome {
  SimTime makespan{0};
  std::uint64_t migrations = 0;
  std::uint64_t samples = 0;
};

ClusterOutcome RunCluster(bool balance, std::map<std::string, int>* placement,
                          PolicyConfig policy_config = {}) {
  TestbedConfig config;
  config.host_count = 3;
  Testbed bed(config);

  std::vector<std::unique_ptr<Process>> jobs;
  int remaining = kJobs;
  SimTime finish{0};
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(MakeJob(&bed, i));
    Process* job = jobs.back().get();
    bed.manager(0)->RegisterLocal(job);
    job->set_on_terminate([&, job](Process*) {
      (*placement)[job->name()] = 1;
      if (--remaining == 0) {
        finish = bed.sim().Now();
      }
    });
  }
  // Jobs that finish after migrating terminate as adopted processes; hook
  // every manager's insertions so completions are counted on any host
  // (the policy may even balance a job back to host 1).
  for (int h = 0; h < 3; ++h) {
    bed.manager(h)->set_on_insert([&, h](Process* arrived) {
      (*placement)[arrived->name()] = h + 1;
      arrived->set_on_terminate([&](Process*) {
        if (--remaining == 0) {
          finish = bed.sim().Now();
        }
      });
    });
  }

  for (auto& job : jobs) {
    job->Start();
  }

  LoadBalancerPolicy policy(&bed.sim(), policy_config);
  if (balance) {
    for (int h = 0; h < 3; ++h) {
      policy.AddHost(bed.host(h), bed.manager(h));
    }
    policy.Start();
  }

  bed.sim().Run();
  ACCENT_CHECK(remaining == 0);
  return ClusterOutcome{finish, policy.migrations_triggered(), policy.samples_taken()};
}

}  // namespace

int main() {
  std::printf("%d jobs of ~%.0f s CPU each, all born on host 1 of a 3-host cluster\n\n",
              kJobs, kJobSeconds);

  PolicyConfig headline;
  headline.sample_period = Sec(3.0);
  headline.strategy = TransferStrategy::kPureIou;

  std::map<std::string, int> unbalanced_placement;
  const ClusterOutcome unbalanced = RunCluster(false, &unbalanced_placement);
  std::map<std::string, int> balanced_placement;
  const ClusterOutcome balanced = RunCluster(true, &balanced_placement, headline);
  std::printf("(policy: %llu samples, %llu migrations triggered)\n\n",
              static_cast<unsigned long long>(balanced.samples),
              static_cast<unsigned long long>(balanced.migrations));

  TextTable table({"Job", "No migration", "With automatic balancing"});
  for (const auto& [name, host] : balanced_placement) {
    table.AddRow({name, "host " + std::to_string(unbalanced_placement[name]),
                  "host " + std::to_string(host)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Makespan without migration: %7.1f s\n", ToSeconds(unbalanced.makespan));
  std::printf("Makespan with balancing:    %7.1f s  (%.2fx faster)\n",
              ToSeconds(balanced.makespan),
              ToSeconds(unbalanced.makespan) / ToSeconds(balanced.makespan));
  std::printf("\nEach relocation cost ~1 s of context transfer; the address spaces\n"
              "followed lazily, page by page, only where actually referenced.\n");

  // Sweep the policy knobs: hysteresis trades reaction time for stability,
  // the dispersal weight changes which process gets moved.
  std::printf("\nPolicy configuration sweep (threshold 2, 3 s sample period):\n\n");
  TextTable sweep({"Hysteresis", "Dispersal wt", "Migrations", "Makespan", "vs none"});
  for (int hysteresis : {0, 2}) {
    for (double weight : {0.0, 1.0, 8.0}) {
      PolicyConfig config = headline;
      config.hysteresis = hysteresis;
      config.dispersal_weight = weight;
      std::map<std::string, int> placement;
      const ClusterOutcome outcome = RunCluster(true, &placement, config);
      sweep.AddRow({std::to_string(hysteresis), FormatDouble(weight, 1),
                    std::to_string(outcome.migrations),
                    FormatSeconds(ToSeconds(outcome.makespan)),
                    FormatDouble(ToSeconds(unbalanced.makespan) /
                                     ToSeconds(outcome.makespan),
                                 2) +
                        "x"});
    }
  }
  std::printf("%s\n", sweep.ToString().c_str());
  return 0;
}
