// A distributed indexing pipeline: files + lazy mapping + migration.
//
// Host 3 is a file server holding four "document" files. An indexer
// process on host 1 maps each document lazily (whole-file
// copy-on-reference through the FileServer's backing port), scans a sample
// of each, and writes a small index into its own memory. Midway through,
// the cluster operator migrates the indexer to host 2 — pure-IOU, so the
// move costs ~1 s — and the job finishes there, its lazy file mappings and
// partial index intact.
//
// Everything the paper's conclusion sketches in one program: remote file
// access by IOU, migration over the same mechanism, and an address space
// that ends up physically dispersed across three machines yet behaves as
// one.
//
//   $ ./build/examples/remote_indexer
#include <cstdio>

#include "src/base/rng.h"
#include "src/experiments/testbed.h"
#include "src/fs/file_service.h"
#include "src/metrics/table.h"

using namespace accent;  // NOLINT: example brevity

namespace {

constexpr PageIndex kDocPages = 512;  // 256 KB per document
constexpr int kDocs = 4;
constexpr int kSamplesPerDoc = 40;

Addr DocBase(int doc) { return static_cast<Addr>(doc) * kDocPages * kPageSize; }

}  // namespace

int main() {
  TestbedConfig config;
  config.host_count = 3;
  Testbed bed(config);

  // --- the file server (host 3) ----------------------------------------------
  FileServer server(bed.host(2));
  server.Start();
  for (int d = 0; d < kDocs; ++d) {
    server.CreateFile("doc-" + std::to_string(d), kDocPages * kPageSize,
                      1000ull * (d + 1));
  }

  // --- the indexer (host 1) ----------------------------------------------------
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  const Addr index_base = DocBase(kDocs);  // index lives above the documents
  space->Validate(index_base, index_base + 64 * kPageSize);

  FileClient client(bed.host(0), server.port());
  client.Start();
  int mapped = 0;
  for (int d = 0; d < kDocs; ++d) {
    client.OpenAndMap("doc-" + std::to_string(d), space.get(), DocBase(d),
                      [&](FileClient::OpenResult result) {
                        ACCENT_CHECK(result.ok && result.lazy);
                        ++mapped;
                      });
  }
  bed.sim().Run();
  ACCENT_CHECK(mapped == kDocs);

  // The job: sample records from every document, append index entries.
  TraceBuilder trace;
  Rng rng(2026);
  Addr index_cursor = index_base;
  for (int d = 0; d < kDocs; ++d) {
    for (int s = 0; s < kSamplesPerDoc; ++s) {
      const PageIndex page = rng.NextBelow(kDocPages);
      trace.Read(DocBase(d) + PageBase(page));
      trace.Write(index_cursor, static_cast<std::uint8_t>(page));
      index_cursor += 64;  // a small index entry
      trace.Compute(Ms(120));
    }
  }
  // Final pass: re-read the whole index (verification sweep). After the
  // migration this faults the early index pages back from host 1's cache —
  // the dispersed address space reassembling on demand.
  for (Addr a = index_base; a < index_cursor; a += kPageSize) {
    trace.Read(a);
    trace.Compute(Ms(5));
  }
  trace.Terminate();

  auto indexer = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "indexer",
                                           bed.host(0), std::move(space), 1);
  indexer->SetTrace(trace.Build(), 0);
  bed.manager(0)->RegisterLocal(indexer.get());
  indexer->Start();

  // --- migrate it mid-job -------------------------------------------------------
  bed.sim().RunUntil(Sec(10.0));
  std::printf("t=10 s: indexer has issued ~%zu of %d samples on host 1; migrating...\n",
              indexer->trace_pc() / 3, kDocs * kSamplesPerDoc);
  MigrationRecord record;
  bool migrated = false;
  bed.manager(0)->Migrate(indexer.get(), bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord& r) {
                            record = r;
                            migrated = true;
                          });
  bed.sim().Run();
  ACCENT_CHECK(migrated);
  Process* remote = bed.manager(1)->adopted().at(0).get();
  ACCENT_CHECK(remote->done());

  // --- report ----------------------------------------------------------------------
  std::printf("t=%.0f s: indexer finished on host 2\n\n", ToSeconds(remote->finish_time()));
  TextTable table({"Metric", "Value"});
  table.AddRow({"documents mapped lazily", std::to_string(kDocs) + " x 256 KB"});
  table.AddRow({"migration transfer time",
                FormatSeconds(record.TransferPhase()) + " s (pure-IOU)"});
  table.AddRow({"doc pages faulted on host 1",
                std::to_string(bed.pager(0)->stats().imag_faults)});
  table.AddRow({"doc pages faulted on host 2",
                std::to_string(bed.pager(1)->stats().imag_faults)});
  table.AddRow({"bytes moved in total", FormatWithCommas(bed.traffic().TotalBytes())});
  table.AddRow({"of 1 MB of documents", FormatPercent(
      static_cast<double>(bed.traffic().TotalBytes()) /
      static_cast<double>(kDocs * kDocPages * kPageSize), 1)});
  std::printf("%s\n", table.ToString().c_str());

  // Verify the index: every entry matches the trace's record of it.
  const Trace& ops = *remote->trace();
  Addr cursor = index_base;
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kTouch && op.write) {
      ACCENT_CHECK(remote->space()->ReadByte(cursor) == op.value);
      cursor += 64;
    }
  }
  std::printf("index verified: %d entries intact across the migration.\n",
              kDocs * kSamplesPerDoc);
  std::printf("The indexer's address space ended up dispersed across all three hosts\n"
              "(index pages local, sampled doc pages fetched, the rest still at the\n"
              "file server) and never stopped behaving like one address space.\n");
  return 0;
}
