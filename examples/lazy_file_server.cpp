// Copy-on-reference beyond migration (sections 2.2 and 6): a lazy remote
// file service.
//
// Host 2 exports a 2 MB "database file" as an imaginary segment backed by
// one of its ports. A client on host 1 maps the whole file into its address
// space and reads 60 scattered records. The same job is then run against a
// whole-file physical copy. Lazy delivery moves two orders of magnitude
// fewer bytes and finishes long before the bulk copy does — the paper's
// closing argument that the facility serves "any task requiring sparse
// access to large tracts of memory".
//
//   $ ./build/examples/lazy_file_server
#include <cstdio>

#include "src/base/rng.h"
#include "src/experiments/testbed.h"
#include "src/metrics/table.h"
#include "src/vm/backer.h"

using namespace accent;  // NOLINT: example brevity

namespace {

constexpr PageIndex kFilePages = 4096;  // 2 MB file
constexpr int kRecords = 60;

// Reads `kRecords` scattered records through the pager; returns elapsed
// simulated time.
SimDuration ReadRecords(Testbed* bed, AddressSpace* space, Rng* rng) {
  const SimTime start = bed->sim().Now();
  for (int i = 0; i < kRecords; ++i) {
    const PageIndex page = rng->NextBelow(kFilePages);
    bool done = false;
    bed->pager(0)->Access(space, PageBase(page), /*write=*/false,
                          [&](const AccessOutcome&) { done = true; });
    bed->sim().Run();
    ACCENT_CHECK(done);
    // Verify the record's bytes.
    ACCENT_CHECK(space->ReadPage(page) == MakePatternPage(page + 1));
  }
  return bed->sim().Now() - start;
}

}  // namespace

int main() {
  std::printf("A 2 MB remote file, 60 random record reads:\n\n");

  // ---------- lazy: map the file copy-on-reference --------------------------
  SimDuration lazy_time;
  ByteCount lazy_bytes;
  {
    Testbed bed;
    Rng rng(7);
    // The file server (host 2) backs the file with a port.
    SegmentBacker server(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(),
                         &bed.segments(), CpuWork::kProcess, "file-server");
    server.Start();
    Segment* file = bed.segments().CreateReal(kFilePages * kPageSize, "database");
    for (PageIndex p = 0; p < kFilePages; ++p) {
      file->StorePage(p, MakePatternPage(p + 1));
    }
    const IouRef iou = server.Back(file);

    // The client (host 1) maps the whole file imaginary: an IOU, no data.
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    Segment* standin =
        bed.segments().CreateImaginary(kFilePages * kPageSize, iou, "file-standin");
    space->MapImaginary(0, kFilePages * kPageSize, standin, 0);

    lazy_time = ReadRecords(&bed, space.get(), &rng);
    lazy_bytes = bed.traffic().TotalBytes();
  }

  // ---------- eager: ship the whole file first -------------------------------
  SimDuration copy_time;
  ByteCount copy_bytes;
  {
    Testbed bed;
    Rng rng(7);  // same records
    struct Sink : Receiver {
      bool arrived = false;
      Message msg;
      void HandleMessage(Message m) override {
        arrived = true;
        msg = std::move(m);
      }
    } sink;
    const PortId client_port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "client");

    // The server sends the entire file physically (NoIOUs set).
    std::vector<PageData> pages;
    pages.reserve(kFilePages);
    for (PageIndex p = 0; p < kFilePages; ++p) {
      pages.push_back(MakePatternPage(p + 1));
    }
    Message whole_file;
    whole_file.dest = client_port;
    whole_file.no_ious = true;
    whole_file.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
    ACCENT_CHECK(bed.fabric().Send(bed.host(1)->id, std::move(whole_file)).ok());
    bed.sim().Run();
    ACCENT_CHECK(sink.arrived);

    // Install locally, then read the same records from local memory.
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    space->Validate(0, kFilePages * kPageSize);
    for (PageIndex p = 0; p < kFilePages; ++p) {
      space->InstallPage(p, sink.msg.regions[0].pages[p]);
    }
    ReadRecords(&bed, space.get(), &rng);
    copy_time = SimDuration(bed.sim().Now());  // includes the bulk transfer
    copy_bytes = bed.traffic().TotalBytes();
  }

  TextTable table({"Strategy", "Elapsed (s)", "Bytes moved"});
  table.AddRow({"copy-on-reference", FormatSeconds(lazy_time), FormatWithCommas(lazy_bytes)});
  table.AddRow({"whole-file copy", FormatSeconds(copy_time), FormatWithCommas(copy_bytes)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Lazy delivery touched %d of %llu pages: %.0fx fewer bytes, %.1fx faster.\n",
              kRecords, static_cast<unsigned long long>(kFilePages),
              static_cast<double>(copy_bytes) / static_cast<double>(lazy_bytes),
              ToSeconds(copy_time) / ToSeconds(lazy_time));
  return 0;
}
