// Quickstart: migrate a process between two simulated Accent hosts with
// copy-on-reference and watch what actually moves.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface: build a testbed, lay out an address
// space, give the process a trace and a port, migrate it pure-IOU, and read
// the phase timings and byte counters back.
#include <cstdio>

#include "src/experiments/testbed.h"
#include "src/metrics/table.h"

using namespace accent;  // NOLINT: example brevity

int main() {
  // A two-host Perq testbed: CPUs, disks, pagers, NetMsgServers,
  // MigrationManagers, one shared Ethernet.
  Testbed bed;

  // --- build a process on host 0 -------------------------------------------------
  // 64 KB program image (RealMem), 128 KB of validated-but-untouched memory
  // (RealZeroMem). Zero memory costs nothing to validate and never crosses
  // the wire.
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* image = bed.segments().CreateReal(128 * kPageSize, "demo-image");
  for (PageIndex p = 0; p < 128; ++p) {
    image->StorePage(p, MakePatternPage(p));
  }
  space->MapReal(0, 128 * kPageSize, image, 0, /*copy_on_write=*/false);
  space->Validate(128 * kPageSize, 384 * kPageSize);

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "demo",
                                        bed.host(0), std::move(space), /*token=*/1);

  // The "program": touch a sixth of the image, write a result, exit.
  TraceBuilder trace;
  trace.Compute(Ms(20));
  for (PageIndex p = 0; p < 128; p += 6) {
    trace.Read(PageBase(p));
    trace.Compute(Ms(10));
  }
  trace.Write(200 * kPageSize, 0x42);  // into zero-fill memory
  trace.Terminate();
  proc->SetTrace(trace.Build(), 0);

  // A port the process owns; the receive right travels with the context.
  const PortId inbox = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "demo-inbox");
  proc->AttachReceiveRight(inbox);

  // --- migrate it -------------------------------------------------------------------
  bed.manager(0)->RegisterLocal(proc.get());
  MigrationRecord record;
  bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord& r) { record = r; });
  bed.sim().Run();

  Process* remote = bed.manager(1)->adopted().at(0).get();

  // --- report -------------------------------------------------------------------------
  std::printf("Migrated '%s' host 1 -> host 2 using %s\n\n", record.name.c_str(),
              StrategyName(record.strategy));
  std::printf("  excision            %6.2f s  (AMap %.2f s, RIMAS collapse %.2f s)\n",
              ToSeconds(record.excise_overall), ToSeconds(record.excise_amap),
              ToSeconds(record.excise_rimas));
  std::printf("  RIMAS transfer      %6.2f s  (an IOU for 64 KB of RealMem)\n",
              ToSeconds(record.RimasTransferTime()));
  std::printf("  Core transfer       %6.2f s  (PCB + microstate + AMap + port rights)\n",
              ToSeconds(record.CoreTransferTime()));
  std::printf("  insertion           %6.2f s\n", ToSeconds(record.insert_time));
  std::printf("  remote execution    %6.2f s\n",
              ToSeconds(remote->finish_time() - record.resumed));

  const PagerStats& pager = bed.pager(1)->stats();
  std::printf("\n  remote faults: %llu imaginary (pages fetched on reference), "
              "%llu zero-fill\n",
              static_cast<unsigned long long>(pager.imag_faults),
              static_cast<unsigned long long>(pager.fillzero_faults));
  std::printf("  bytes on the wire: %s (image is %s — untouched pages never moved)\n",
              FormatWithCommas(bed.traffic().TotalBytes()).c_str(),
              FormatWithCommas(128 * kPageSize).c_str());

  // The data is intact at the new site, including the remote write.
  ACCENT_CHECK(remote->space()->ReadPage(6) == MakePatternPage(6));
  ACCENT_CHECK(remote->space()->ReadByte(200 * kPageSize) == 0x42);
  // The port still works: senders never noticed the move.
  Message ping;
  ping.dest = inbox;
  ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(ping)).ok());
  bed.sim().Run();
  ACCENT_CHECK(remote->user_messages_received() == 1);
  std::printf("\n  integrity checks passed: data, zero-fill write, port transparency\n");
  return 0;
}
