// IPC fabric tests: ports, rights, routing, delivery costs, message sizes.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct CountingReceiver : Receiver {
  std::vector<Message> received;
  void HandleMessage(Message msg) override { received.push_back(std::move(msg)); }
};

class IpcTest : public ::testing::Test {
 protected:
  Testbed bed;
  CountingReceiver sink;
};

TEST_F(IpcTest, LocalSendDelivers) {
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "p");
  Message msg;
  msg.dest = port;
  msg.inline_bytes = 64;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_TRUE(sink.received[0].id.valid());
}

TEST_F(IpcTest, RemoteSendRoutesThroughNetMsgServers) {
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "p");
  Message msg;
  msg.dest = port;
  msg.inline_bytes = 64;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(bed.fabric().remote_forwards(), 1u);
  EXPECT_GT(bed.netmsg(0)->stats().fragments_sent, 0u);
  EXPECT_GT(bed.netmsg(1)->stats().fragments_received, 0u);
  EXPECT_GT(bed.traffic().TotalBytes(), 0u);
  // Both NetMsgServers burned CPU.
  EXPECT_GT(bed.cpu(0)->BusyTime(CpuWork::kNetMsgServer).count(), 0);
  EXPECT_GT(bed.cpu(1)->BusyTime(CpuWork::kNetMsgServer).count(), 0);
}

TEST_F(IpcTest, SendToUnknownPortFails) {
  Message msg;
  msg.dest = PortId(999999);
  EXPECT_FALSE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
}

TEST_F(IpcTest, SendToDeadPortFails) {
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "p");
  bed.fabric().DestroyPort(port);
  EXPECT_FALSE(bed.fabric().IsAlive(port));
  Message msg;
  msg.dest = port;
  EXPECT_FALSE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
}

TEST_F(IpcTest, MessagesQueueWithoutReceiverAndFlushOnClaim) {
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "queued");
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  EXPECT_TRUE(sink.received.empty());
  bed.fabric().SetReceiver(port, &sink);
  bed.sim().Run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(IpcTest, MovedPortReceivesAtNewHome) {
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "mobile");
  bed.fabric().MovePort(port, bed.host(1)->id, &sink);
  EXPECT_EQ(bed.fabric().HomeOf(port), bed.host(1)->id);
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(IpcTest, InFlightMessagesChaseMovedPort) {
  // Location transparency: a message sent while the receive right is moving
  // still arrives (DEMOS-style hint chasing in DeliverAt).
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, nullptr, "chased");
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  // Move the right back to host 0 while the message crosses the wire.
  bed.sim().RunUntil(Ms(5));
  bed.fabric().MovePort(port, bed.host(0)->id, &sink);
  bed.sim().Run();
  EXPECT_EQ(sink.received.size(), 1u);
  EXPECT_GE(bed.fabric().remote_forwards(), 2u);  // original + chase
}

TEST_F(IpcTest, SmallMessageCopiesLargeMessageMaps) {
  // Section 2.1: below the threshold the kernel double-copies; above it the
  // receiver's map is rewritten. Cost should grow with size only below.
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "p");
  auto send_and_measure = [&](ByteCount inline_bytes, std::vector<PageData> pages) {
    Cpu* cpu = bed.cpu(0);
    const SimDuration before = cpu->BusyTime(CpuWork::kKernel);
    Message msg;
    msg.dest = port;
    msg.inline_bytes = inline_bytes;
    if (!pages.empty()) {
      msg.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
    }
    EXPECT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
    bed.sim().Run();
    return cpu->BusyTime(CpuWork::kKernel) - before;
  };

  const SimDuration small = send_and_measure(256, {});
  const SimDuration medium = send_and_measure(1024, {});
  EXPECT_GT(medium, small);  // copying costs scale with bytes

  // Two mapped messages of very different sizes cost the same.
  std::vector<PageData> four(4, MakePatternPage(1));
  std::vector<PageData> sixty_four(64, MakePatternPage(2));
  const SimDuration mapped_small = send_and_measure(0, std::move(four));
  const SimDuration mapped_large = send_and_measure(0, std::move(sixty_four));
  EXPECT_EQ(mapped_small, mapped_large);
  EXPECT_LT(mapped_large, Ms(300));
}

TEST_F(IpcTest, WireSizeAccounting) {
  const CostTable& costs = bed.costs();
  Message msg;
  msg.inline_bytes = 100;
  EXPECT_EQ(msg.WireSize(costs), kMessageHeaderBytes + 100);

  msg.regions.push_back(MemoryRegion::Data(0, std::vector<PageData>{MakePatternPage(1), MakePatternPage(2)}));
  EXPECT_EQ(msg.WireSize(costs),
            kMessageHeaderBytes + 100 + 2 * kPageSize + costs.amap_entry_bytes);
  EXPECT_EQ(msg.DataBytes(), 2 * kPageSize);

  msg.regions.push_back(
      MemoryRegion::Iou(4096, 8 * kPageSize, IouRef{PortId(1), SegmentId(1), 0}));
  EXPECT_EQ(msg.WireSize(costs), kMessageHeaderBytes + 100 + 2 * kPageSize +
                                     costs.amap_entry_bytes + costs.iou_descriptor_bytes);
  EXPECT_EQ(msg.DataBytes(), 2 * kPageSize);  // IOUs carry no data

  msg.regions.push_back(MemoryRegion::Zero(16384, 100 * kPageSize));
  // Zero regions ship shape only, never content.
  EXPECT_EQ(msg.WireSize(costs), kMessageHeaderBytes + 100 + 2 * kPageSize +
                                     2 * costs.amap_entry_bytes + costs.iou_descriptor_bytes);

  msg.rights.push_back(PortRightTransfer{PortId(5), true});
  EXPECT_EQ(msg.WireSize(costs), kMessageHeaderBytes + 100 + 2 * kPageSize +
                                     2 * costs.amap_entry_bytes + costs.iou_descriptor_bytes +
                                     kPortRightBytes);
}

TEST_F(IpcTest, AmapRiderCountsTowardWireSize) {
  const CostTable& costs = bed.costs();
  Message msg;
  msg.amap.Set(0, kPageSize, MemClass::kReal);
  msg.amap.Set(2 * kPageSize, 3 * kPageSize, MemClass::kRealZero);
  msg.has_amap = true;
  EXPECT_EQ(msg.WireSize(costs), kMessageHeaderBytes + 2 * costs.amap_entry_bytes);
}

TEST_F(IpcTest, BodyRoundTrip) {
  struct Payload {
    int x;
  };
  Message msg;
  msg.body = Payload{42};
  EXPECT_EQ(msg.BodyAs<Payload>().x, 42);
}

TEST_F(IpcTest, PortNames) {
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "fancy-name");
  EXPECT_EQ(bed.fabric().NameOf(port), "fancy-name");
}

}  // namespace
}  // namespace accent
