// Property tests for the analytic migration cost model and its
// heterogeneous-calibration overloads (src/migration/cost_model.h): the
// formulas must be monotone in the quantities they charge for, scale as the
// calibration multipliers say, and — crucially — reproduce the homogeneous
// predictions *exactly* under identity calibrations, because the golden
// sweep digest rides on that identity.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/host/calibration.h"
#include "src/migration/cost_model.h"

namespace accent {
namespace {

using Footprint = MigrationCostModel::Footprint;

Footprint MakeFootprint(std::int64_t map_entries, std::int64_t real_pages,
                        std::int64_t resident_pages) {
  Footprint fp;
  fp.map_entries = map_entries;
  fp.real_pages = real_pages;
  fp.resident_pages = resident_pages;
  return fp;
}

// A deterministic spread of footprints, from empty to large, for the
// property sweeps below.
std::vector<Footprint> SampleFootprints() {
  std::vector<Footprint> fps;
  Rng rng(0x90de1);
  fps.push_back(MakeFootprint(0, 0, 0));
  fps.push_back(MakeFootprint(1, 1, 1));
  for (int i = 0; i < 32; ++i) {
    const std::int64_t real = static_cast<std::int64_t>(rng.NextBelow(4096));
    const std::int64_t resident =
        real == 0 ? 0 : static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(real)));
    fps.push_back(MakeFootprint(static_cast<std::int64_t>(1 + rng.NextBelow(64)), real, resident));
  }
  return fps;
}

const TransferStrategy kStrategies[] = {TransferStrategy::kPureCopy,
                                        TransferStrategy::kPureIou,
                                        TransferStrategy::kResidentSet};

TEST(CostModel, ExciseAndInsertMonotoneInFootprint) {
  const CostTable costs;
  for (const Footprint& fp : SampleFootprints()) {
    Footprint bigger = fp;
    bigger.map_entries += 3;
    bigger.real_pages += 7;
    bigger.resident_pages += 5;
    EXPECT_GE(MigrationCostModel::ExciseCost(costs, bigger),
              MigrationCostModel::ExciseCost(costs, fp));
    EXPECT_GE(MigrationCostModel::InsertCost(costs, bigger.map_entries, bigger.real_pages),
              MigrationCostModel::InsertCost(costs, fp.map_entries, fp.real_pages));
  }
}

TEST(CostModel, ShippedPlusOwedCoversRealPagesExactly) {
  for (const Footprint& fp : SampleFootprints()) {
    for (TransferStrategy strategy : kStrategies) {
      const std::int64_t shipped = MigrationCostModel::ShippedPages(strategy, fp);
      const std::int64_t owed = MigrationCostModel::OwedPages(strategy, fp);
      EXPECT_GE(shipped, 0);
      EXPECT_GE(owed, 0);
      EXPECT_EQ(shipped + owed, fp.real_pages);
    }
    EXPECT_EQ(MigrationCostModel::OwedPages(TransferStrategy::kPureCopy, fp), 0);
    EXPECT_EQ(MigrationCostModel::ShippedPages(TransferStrategy::kPureIou, fp), 0);
  }
}

TEST(CostModel, WireCostMonotoneInBytes) {
  const CostTable costs;
  const HostCalibration identity;
  SimDuration previous{-1};
  for (ByteCount bytes : {ByteCount{0}, ByteCount{512}, ByteCount{4096}, ByteCount{65536},
                          ByteCount{1 << 20}}) {
    const SimDuration cost = MigrationCostModel::WireCost(costs, bytes, identity);
    EXPECT_GT(cost, previous);
    previous = cost;
  }
}

TEST(CostModel, WireCostMonotoneInLatencyAndBandwidthMultipliers) {
  const CostTable costs;
  const ByteCount bytes = 64 * kPageSize;
  HostCalibration slow_link;
  slow_link.wire_latency_multiplier = 2.0;
  HostCalibration fast_link;
  fast_link.wire_latency_multiplier = 0.5;
  const SimDuration base = MigrationCostModel::WireCost(costs, bytes, HostCalibration{});
  EXPECT_GT(MigrationCostModel::WireCost(costs, bytes, slow_link), base);
  EXPECT_LT(MigrationCostModel::WireCost(costs, bytes, fast_link), base);

  HostCalibration thin_pipe;
  thin_pipe.wire_bandwidth_multiplier = 0.5;
  HostCalibration fat_pipe;
  fat_pipe.wire_bandwidth_multiplier = 2.0;
  EXPECT_GT(MigrationCostModel::WireCost(costs, bytes, thin_pipe), base);
  EXPECT_LT(MigrationCostModel::WireCost(costs, bytes, fat_pipe), base);
}

TEST(CostModel, CpuMultiplierScalesExciseAndInsert) {
  const CostTable costs;
  HostCalibration twice;
  twice.cpu_multiplier = 2.0;
  HostCalibration half;
  half.cpu_multiplier = 0.5;
  for (const Footprint& fp : SampleFootprints()) {
    const SimDuration excise = MigrationCostModel::ExciseCost(costs, fp);
    // llround(x / 2) and llround(x * 2): exact up to the rounding half-ulp.
    EXPECT_LE((MigrationCostModel::ExciseCostOn(costs, fp, twice) - excise / 2).count(), 1);
    EXPECT_EQ(MigrationCostModel::ExciseCostOn(costs, fp, half), excise * 2);

    const SimDuration insert =
        MigrationCostModel::InsertCost(costs, fp.map_entries, fp.real_pages);
    EXPECT_LE(
        (MigrationCostModel::InsertCostOn(costs, fp.map_entries, fp.real_pages, twice) -
         insert / 2)
            .count(),
        1);
    EXPECT_EQ(MigrationCostModel::InsertCostOn(costs, fp.map_entries, fp.real_pages, half),
              insert * 2);
  }
}

// The identity contract the whole calibrated build hangs on: with 1.0
// multipliers the *On/With variants must return bit-identical results to
// the homogeneous formulas — not merely close ones — so default-path
// schedules (and the golden digest) cannot move.
TEST(CostModel, IdentityCalibrationReproducesHomogeneousPredictionsExactly) {
  const CostTable costs;
  const HostCalibration identity;
  ASSERT_TRUE(identity.identity());
  for (const Footprint& fp : SampleFootprints()) {
    EXPECT_EQ(MigrationCostModel::ExciseCostOn(costs, fp, identity),
              MigrationCostModel::ExciseCost(costs, fp));
    EXPECT_EQ(MigrationCostModel::InsertCostOn(costs, fp.map_entries, fp.real_pages, identity),
              MigrationCostModel::InsertCost(costs, fp.map_entries, fp.real_pages));
    for (TransferStrategy strategy : kStrategies) {
      const std::int64_t shipped = MigrationCostModel::ShippedPages(strategy, fp);
      const ByteCount wire_bytes =
          MigrationCostModel::CorePayloadBytes(costs, fp.map_entries) +
          MigrationCostModel::RimasPayloadBytes(costs, strategy, fp);
      const SimDuration homogeneous =
          MigrationCostModel::ExciseCost(costs, fp) +
          MigrationCostModel::WireCost(costs, wire_bytes, identity) +
          MigrationCostModel::InsertCost(costs, fp.map_entries, shipped);
      EXPECT_EQ(
          MigrationCostModel::RelocationCost(costs, strategy, fp, identity, identity),
          homogeneous);
    }
  }
}

TEST(CostModel, ScaleHelpersIdentityIsExactAndScalingMonotone) {
  const SimDuration work = Us(123457);
  EXPECT_EQ(ScaleCpu(work, 1.0), work);
  EXPECT_EQ(ScaleLatency(work, 1.0), work);
  EXPECT_LT(ScaleCpu(work, 4.0), ScaleCpu(work, 2.0));
  EXPECT_LT(ScaleCpu(work, 2.0), ScaleCpu(work, 0.5));
  EXPECT_LT(ScaleLatency(work, 0.5), ScaleLatency(work, 2.0));
}

TEST(CostModel, RelocationCostRespondsToEachSideOfTheLink) {
  const CostTable costs;
  const Footprint fp = MakeFootprint(24, 1024, 256);
  const HostCalibration identity;
  HostCalibration fast_cpu;
  fast_cpu.cpu_multiplier = 4.0;
  HostCalibration slow_cpu;
  slow_cpu.cpu_multiplier = 0.5;
  for (TransferStrategy strategy : kStrategies) {
    const SimDuration base =
        MigrationCostModel::RelocationCost(costs, strategy, fp, identity, identity);
    // A faster source excises (and serializes onto its own link) sooner; a
    // slower destination pays more at insert time. Each side moves the
    // estimate independently.
    EXPECT_LT(MigrationCostModel::RelocationCost(costs, strategy, fp, fast_cpu, identity),
              base);
    EXPECT_GT(MigrationCostModel::RelocationCost(costs, strategy, fp, identity, slow_cpu),
              base);
  }
}

}  // namespace
}  // namespace accent
