// Stress: many processes migrating concurrently among several hosts, with
// interleaved bulk transfers, fault traffic and completions sharing the
// wire and the CPUs. Everything must finish, and every byte must be right.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct Job {
  std::unique_ptr<Process> process;
  Process* final_process = nullptr;  // wherever it ended up
  std::uint64_t content_base = 0;
  std::vector<PageIndex> touched;
  std::map<Addr, std::uint8_t> writes;
};

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, ConcurrentMigrationsStayCoherent) {
  Rng rng(GetParam() * 9176 + 3);
  TestbedConfig config;
  config.host_count = 3;
  Testbed bed(config);

  constexpr int kJobs = 8;
  constexpr PageIndex kImagePages = 48;
  std::vector<Job> jobs(kJobs);

  for (int i = 0; i < kJobs; ++i) {
    Job& job = jobs[i];
    job.content_base = 100000ull * (i + 1);
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    Segment* image = bed.segments().CreateReal(kImagePages * kPageSize, "img");
    for (PageIndex p = 0; p < kImagePages; ++p) {
      image->StorePage(p, MakePatternPage(job.content_base + p));
    }
    space->MapReal(0, kImagePages * kPageSize, image, 0, false);
    space->Validate(kImagePages * kPageSize, 2 * kImagePages * kPageSize);

    TraceBuilder trace;
    const int touches = 10 + static_cast<int>(rng.NextBelow(20));
    for (int t = 0; t < touches; ++t) {
      const PageIndex page = rng.NextBelow(kImagePages);
      job.touched.push_back(page);
      if (rng.NextBool(0.3)) {
        const Addr addr = PageBase(page) + 5;
        const auto value = static_cast<std::uint8_t>(rng.NextBelow(256));
        trace.Write(addr, value);
        job.writes[addr] = value;
      } else {
        trace.Read(PageBase(page));
      }
      trace.Compute(Ms(static_cast<std::int64_t>(rng.NextBelow(400))));
    }
    trace.Terminate();

    job.process = std::make_unique<Process>(ProcId(bed.sim().AllocateId()),
                                            "stress-" + std::to_string(i), bed.host(0),
                                            std::move(space), i + 1);
    job.process->SetTrace(trace.Build(), 0);
    bed.manager(0)->RegisterLocal(job.process.get());
  }

  // Launch every migration in one burst: 8 excisions, 8 bulk/IOU transfers
  // and all subsequent fault traffic interleave on host 1's CPU and the
  // shared wire.
  int completions = 0;
  for (int i = 0; i < kJobs; ++i) {
    const auto strategy = static_cast<TransferStrategy>(rng.NextBelow(3));
    const int dest = 1 + static_cast<int>(rng.NextBelow(2));
    bed.manager(0)->Migrate(jobs[i].process.get(), bed.manager(dest)->port(), strategy,
                            [&completions](const MigrationRecord&) { ++completions; });
  }
  ASSERT_TRUE(bed.RunGuarded());
  ASSERT_EQ(completions, kJobs);

  // Find every process wherever it landed and verify it.
  for (int host = 1; host < 3; ++host) {
    for (const auto& adopted : bed.manager(host)->adopted()) {
      for (Job& job : jobs) {
        if (adopted->id() == job.process->id()) {
          job.final_process = adopted.get();
        }
      }
    }
  }
  for (Job& job : jobs) {
    ASSERT_NE(job.final_process, nullptr);
    ASSERT_TRUE(job.final_process->done()) << job.final_process->name();
    AddressSpace* space = job.final_process->space();
    for (PageIndex page : job.touched) {
      const Addr written_probe = PageBase(page) + 5;
      if (job.writes.count(written_probe) != 0) {
        EXPECT_EQ(space->ReadByte(written_probe), job.writes[written_probe])
            << job.final_process->name() << " page " << page;
      } else {
        EXPECT_EQ(space->ReadPage(page), MakePatternPage(job.content_base + page))
            << job.final_process->name() << " page " << page;
      }
    }
  }
  // The source's cached objects all received their death notices.
  EXPECT_EQ(bed.netmsg(0)->backer().object_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(StressPingPong, ProcessBouncesBetweenHosts) {
  // A -> B -> A -> B ... five hops, executing a little at each stop; owed
  // memory chains through the NetMsgServer caches and always resolves.
  Testbed bed;
  constexpr PageIndex kPages = 32;
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* image = bed.segments().CreateReal(kPages * kPageSize, "img");
  for (PageIndex p = 0; p < kPages; ++p) {
    image->StorePage(p, MakePatternPage(777 + p));
  }
  space->MapReal(0, kPages * kPageSize, image, 0, false);

  TraceBuilder trace;
  for (PageIndex p = 0; p < kPages; p += 2) {
    trace.Read(PageBase(p));
    trace.Compute(Sec(1.0));
  }
  trace.Terminate();

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "pingpong",
                                        bed.host(0), std::move(space), 1);
  proc->SetTrace(trace.Build(), 0);
  const ProcId id = proc->id();
  bed.manager(0)->RegisterLocal(proc.get());
  proc->Start();

  int hops_left = 5;
  int current = 0;
  std::function<void()> hop = [&]() {
    if (hops_left == 0) {
      return;
    }
    --hops_left;
    const int next = 1 - current;
    Process* running = nullptr;
    if (current == 0 && hops_left == 4) {
      running = proc.get();
    } else {
      for (const auto& adopted : bed.manager(current)->adopted()) {
        if (adopted->id() == id) {
          running = adopted.get();
        }
      }
    }
    ASSERT_NE(running, nullptr);
    if (running->done()) {
      hops_left = 0;
      return;
    }
    bed.manager(current)->Migrate(running, bed.manager(next)->port(),
                                  TransferStrategy::kPureIou,
                                  [&current, &hop, next](const MigrationRecord&) {
                                    current = next;
                                    hop();
                                  });
  };
  hop();
  ASSERT_TRUE(bed.RunGuarded());

  // Wherever it ended, it finished with correct data.
  Process* final_proc = nullptr;
  for (int host = 0; host < 2; ++host) {
    for (const auto& adopted : bed.manager(host)->adopted()) {
      if (adopted->id() == id) {
        final_proc = adopted.get();
      }
    }
  }
  ASSERT_NE(final_proc, nullptr);
  EXPECT_TRUE(final_proc->done());
  // Pages touched at the final stop are materialised there with correct
  // contents; pages touched at earlier stops travelled onward as IOUs and
  // are legitimately still owed (their caches were retired at death).
  int materialised = 0;
  for (PageIndex p = 0; p < kPages; p += 2) {
    if (final_proc->space()->ClassOf(PageBase(p)) != MemClass::kReal) {
      continue;
    }
    ++materialised;
    EXPECT_EQ(final_proc->space()->ReadPage(p), MakePatternPage(777 + p)) << "page " << p;
  }
  EXPECT_GT(materialised, 0);
}

}  // namespace
}  // namespace accent
