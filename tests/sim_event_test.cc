// Simulator event-queue contract: same-instant FIFO ordering, the
// no-scheduling-into-the-past precondition, and the InlineEvent callable
// (inline small-buffer path, heap fallback, move-only captures).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/simulator.h"

namespace accent {
namespace {

TEST(SimulatorOrdering, SameInstantEventsRunInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  // Interleave two instants; within each instant, scheduling order must be
  // execution order regardless of insertion interleaving.
  sim.ScheduleAt(Us(10), [&] { order.push_back(0); });
  sim.ScheduleAt(Us(5), [&] { order.push_back(100); });
  sim.ScheduleAt(Us(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Us(5), [&] { order.push_back(101); });
  sim.ScheduleAt(Us(10), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{100, 101, 0, 1, 2}));
}

TEST(SimulatorOrdering, FifoHoldsForEventsScheduledFromInsideAnEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Us(10), [&] {
    order.push_back(0);
    // Same-instant events scheduled mid-execution run after already-queued
    // same-instant events (they get later sequence numbers).
    sim.ScheduleAt(Us(10), [&] { order.push_back(2); });
  });
  sim.ScheduleAt(Us(10), [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorOrdering, FifoSurvivesQueueGrowthAcrossManyEvents) {
  Simulator sim;
  std::vector<int> order;
  constexpr int kCount = 5000;  // forces several vector regrowths
  for (int i = 0; i < kCount; ++i) {
    sim.ScheduleAt(Us(7), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "at " << i;
  }
}

TEST(SimulatorOrderingDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(Us(10), [] {});
  sim.Run();
  ASSERT_EQ(sim.Now(), Us(10));
  EXPECT_DEATH(sim.ScheduleAt(Us(5), [] {}), "scheduling into the past");
}

TEST(InlineEvent, RunsSmallInlineCallable) {
  int hits = 0;
  InlineEvent event([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(event));
  event();
  EXPECT_EQ(hits, 1);
}

TEST(InlineEvent, HeapFallbackForOversizedCapture) {
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > kInlineCapacity
  payload[0] = 7;
  payload[15] = 9;
  std::uint64_t sum = 0;
  InlineEvent event([payload, &sum] { sum = payload[0] + payload[15]; });
  event();
  EXPECT_EQ(sum, 16u);
}

TEST(InlineEvent, MoveTransfersTheCallable) {
  int hits = 0;
  InlineEvent a([&hits] { ++hits; });
  InlineEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineEvent c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineEvent, MoveOnlyCaptureIsSupported) {
  auto value = std::make_unique<int>(41);
  int seen = 0;
  InlineEvent event([v = std::move(value), &seen] { seen = *v + 1; });
  InlineEvent moved(std::move(event));
  moved();
  EXPECT_EQ(seen, 42);
}

TEST(InlineEvent, DestroysCaptureExactlyOnce) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) {}
    Probe(Probe&& other) noexcept : counter_(other.counter_) { other.counter_ = nullptr; }
    Probe(const Probe&) = delete;
    ~Probe() {
      if (counter_ != nullptr) {
        ++*counter_;
      }
    }
    int* counter_;
  };
  int destroyed = 0;
  {
    InlineEvent event([probe = Probe(&destroyed)] { (void)probe; });
    InlineEvent moved(std::move(event));
    moved();
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineEvent, SimulatorAcceptsStdFunctionArguments) {
  // Call sites that still build a std::function first must keep working.
  Simulator sim;
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  sim.ScheduleAfter(Us(1), std::move(fn));
  sim.Run();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace accent
