// Metrics registry: counter/histogram aggregation, merge associativity,
// canonical JSON round-trips, the trial fold, and the text-table
// formatting helpers the bench binaries are built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/experiments/metrics_fold.h"
#include "src/experiments/trial.h"
#include "src/metrics/registry.h"
#include "src/metrics/table.h"

namespace accent {
namespace {

const std::vector<double> kBounds = {1.0, 10.0, 100.0};

TEST(MetricsRegistry, CounterAccumulates) {
  MetricsRegistry registry;
  registry.Counter("messages").Add(3);
  registry.Counter("messages").Increment();
  EXPECT_EQ(registry.Counter("messages").value, 4u);

  ASSERT_NE(registry.FindCounter("messages"), nullptr);
  EXPECT_EQ(registry.FindCounter("messages")->value, 4u);
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistry, HistogramBucketsAndStats) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.Histogram("latency", kBounds);
  h.Observe(0.5);    // bucket 0 (<= 1.0)
  h.Observe(1.0);    // bucket 0 (inclusive upper bound)
  h.Observe(7.0);    // bucket 1
  h.Observe(250.0);  // overflow bucket

  ASSERT_EQ(h.counts.size(), kBounds.size() + 1);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 258.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 250.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 258.5 / 4.0);
}

TEST(MetricsRegistry, MergeIsAssociativeWithFold) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  const TrialResult iou = RunTrial(config);
  config.strategy = TransferStrategy::kPureCopy;
  const TrialResult copy = RunTrial(config);

  // Folding both trials into one registry ...
  MetricsRegistry combined;
  FoldTrialMetrics(iou, &combined);
  FoldTrialMetrics(copy, &combined);

  // ... equals merging two per-trial registries (what a parallel sweep
  // does after its barrier).
  MetricsRegistry left, right;
  FoldTrialMetrics(iou, &left);
  FoldTrialMetrics(copy, &right);
  left.Merge(right);

  EXPECT_EQ(combined.ToJson().Dump(), left.ToJson().Dump());
  EXPECT_EQ(left.Counter("trials").value, 2u);
  EXPECT_GT(left.Counter("bytes.total").value, 0u);
  ASSERT_NE(left.FindHistogram("downtime_seconds"), nullptr);
  EXPECT_EQ(left.FindHistogram("downtime_seconds")->count, 2u);
}

TEST(MetricsRegistry, MergeHandlesEmptyAndMinMax) {
  MetricsRegistry a;
  a.Histogram("h", kBounds).Observe(5.0);
  MetricsRegistry b;
  b.Histogram("h", kBounds).Observe(0.25);
  b.Histogram("h", kBounds).Observe(500.0);
  b.Counter("only_in_b").Add(7);

  a.Merge(b);
  const MetricHistogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->min, 0.25);
  EXPECT_DOUBLE_EQ(h->max, 500.0);
  EXPECT_EQ(a.Counter("only_in_b").value, 7u);

  // Merging an empty registry is the identity.
  const std::string before = a.ToJson().Dump();
  a.Merge(MetricsRegistry{});
  EXPECT_EQ(a.ToJson().Dump(), before);
}

TEST(MetricsRegistry, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.Counter("messages").Add(42);
  registry.Histogram("latency", kBounds).Observe(2.5);
  registry.Histogram("latency", kBounds).Observe(1000.0);

  const Json json = registry.ToJson();
  const MetricsRegistry restored = MetricsRegistry::FromJson(json);
  EXPECT_EQ(restored.ToJson().Dump(), json.Dump());

  // Canonical writer: equal registries dump byte-identical text even when
  // built in a different order.
  MetricsRegistry reordered;
  reordered.Histogram("latency", kBounds).Observe(1000.0);
  reordered.Histogram("latency", kBounds).Observe(2.5);
  reordered.Counter("messages").Add(42);
  EXPECT_EQ(reordered.ToJson().Dump(), json.Dump());
}

TEST(MetricsRegistry, TrialSummaryCarriesTableFields) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kResidentSet;
  const TrialResult result = RunTrial(config);
  const Json row = TrialSummaryToJson(result);

  EXPECT_EQ(row.Get("workload").AsString(), "Minprog");
  EXPECT_EQ(row.Get("strategy").AsString(), "resident-set");
  EXPECT_EQ(row.Get("spec_resident_bytes").AsUint64(), result.spec.resident_bytes);
  EXPECT_EQ(row.Get("downtime_us").AsInt64(), result.migration.Downtime().count());
  EXPECT_EQ(row.Get("rimas_transfer_us").AsInt64(),
            result.migration.RimasTransferTime().count());
  EXPECT_DOUBLE_EQ(row.Get("frac_real_transferred").AsDouble(),
                   result.FractionOfRealTransferred());
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable table({"Process", "Bytes"});
  table.AddRow({"Minprog", "142,336"});
  table.AddRow({"Chess", "195,584"});
  EXPECT_EQ(table.rows(), 2u);

  const std::string text = table.ToString();
  EXPECT_NE(text.find("Process"), std::string::npos);
  EXPECT_NE(text.find("142,336"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatSeconds(2.789), "2.79");
  EXPECT_EQ(FormatSeconds(Sec(0.16)), "0.16");
  EXPECT_EQ(FormatSeconds(157.04, 1), "157.0");
  EXPECT_EQ(FormatPercent(0.569), "56.9%");
  EXPECT_EQ(FormatPercent(0.00005, 3), "0.005%");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace accent
