// Failure injection: dead backing ports, addressing errors, dead
// destinations — the system must degrade loudly but gracefully, never hang.
// Every drain goes through the simulated-time watchdog (RunGuarded), so a
// regression that wedges the event loop fails fast with a pending-event
// dump instead of timing out the test binary.
#include <gtest/gtest.h>

#include "src/experiments/failure_sweep.h"
#include "src/experiments/testbed.h"
#include "src/vm/backer.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  Testbed bed;
};

TEST_F(FailureTest, BadMemReferenceInvokesDebugger) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);  // everything else is BadMem

  AccessOutcome outcome;
  bool done = false;
  bed.pager(0)->Access(space.get(), 100 * kPageSize, false, [&](const AccessOutcome& o) {
    outcome = o;
    done = true;
  });
  ASSERT_TRUE(bed.RunGuarded());
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.fault, FaultKind::kAddressError);
  EXPECT_EQ(bed.pager(0)->stats().address_errors, 1u);
}

TEST_F(FailureTest, ProcessStopsFaultedOnBadMem) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "delinquent",
                                        bed.host(0), std::move(space), 1);
  proc->SetTrace(TraceBuilder()
                     .Read(0)
                     .Read(100 * kPageSize)  // wild pointer
                     .Compute(Ms(1))
                     .Terminate()
                     .Build(),
                 0);
  bool fault_seen = false;
  proc->set_on_fault([&](Process*, const AccessOutcome& o) {
    fault_seen = true;
    EXPECT_EQ(o.fault, FaultKind::kAddressError);
  });
  proc->Start();
  ASSERT_TRUE(bed.RunGuarded());
  EXPECT_TRUE(fault_seen);
  EXPECT_TRUE(proc->faulted());
  EXPECT_FALSE(proc->done());
  EXPECT_EQ(proc->trace_pc(), 1u);  // stopped at the offending reference
}

TEST_F(FailureTest, DeadBackerFailsTheFault) {
  // Back an object, then destroy the backing port before the fault.
  SegmentBacker backer(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(),
                       &bed.segments(), CpuWork::kProcess, "doomed");
  backer.Start();
  Segment* obj = bed.segments().CreateReal(4 * kPageSize, "obj");
  obj->StorePage(0, MakePatternPage(1));
  const IouRef iou = backer.Back(obj);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* standin = bed.segments().CreateImaginary(4 * kPageSize, iou, "standin");
  space->MapImaginary(0, 4 * kPageSize, standin, 0);

  bed.fabric().DestroyPort(iou.backing_port);

  AccessOutcome outcome;
  bool done = false;
  bed.pager(0)->Access(space.get(), 0, false, [&](const AccessOutcome& o) {
    outcome = o;
    done = true;
  });
  ASSERT_TRUE(bed.RunGuarded());
  ASSERT_TRUE(done);  // never hangs
  EXPECT_TRUE(outcome.failed);
  EXPECT_EQ(outcome.fault, FaultKind::kImaginary);
  EXPECT_EQ(bed.pager(0)->stats().failed_fetches, 1u);
  // The page remains owed; the address space is not corrupted.
  EXPECT_EQ(space->ClassOf(0), MemClass::kImag);
}

TEST_F(FailureTest, JoinedWaitersAllFailTogether) {
  SegmentBacker backer(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(),
                       &bed.segments(), CpuWork::kProcess, "doomed");
  backer.Start();
  Segment* obj = bed.segments().CreateReal(4 * kPageSize, "obj");
  const IouRef iou = backer.Back(obj);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* standin = bed.segments().CreateImaginary(4 * kPageSize, iou, "standin");
  space->MapImaginary(0, 4 * kPageSize, standin, 0);
  bed.fabric().DestroyPort(iou.backing_port);

  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    bed.pager(0)->Access(space.get(), 0, false, [&](const AccessOutcome& o) {
      failures += o.failed ? 1 : 0;
    });
  }
  ASSERT_TRUE(bed.RunGuarded());
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(bed.pager(0)->stats().failed_fetches, 1u);  // one shared fetch
}

TEST_F(FailureTest, ProcessFaultsWhenBackerDiesMidRun) {
  // A migrated-style process whose owed memory's backer dies while running.
  SegmentBacker backer(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(),
                       &bed.segments(), CpuWork::kProcess, "doomed");
  backer.Start();
  Segment* obj = bed.segments().CreateReal(16 * kPageSize, "obj");
  for (PageIndex p = 0; p < 16; ++p) {
    obj->StorePage(p, MakePatternPage(p));
  }
  const IouRef iou = backer.Back(obj);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* standin = bed.segments().CreateImaginary(16 * kPageSize, iou, "standin");
  space->MapImaginary(0, 16 * kPageSize, standin, 0);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "victim",
                                        bed.host(0), std::move(space), 1);
  proc->SetTrace(TraceBuilder()
                     .Read(0)
                     .Compute(Sec(2.0))
                     .Read(8 * kPageSize)  // backer will be dead by now
                     .Terminate()
                     .Build(),
                 0);
  proc->Start();
  bed.sim().RunUntil(Sec(1.0));
  EXPECT_TRUE(proc->space()->HasPrivatePage(0));  // first fetch succeeded
  bed.fabric().DestroyPort(iou.backing_port);
  ASSERT_TRUE(bed.RunGuarded());
  EXPECT_TRUE(proc->faulted());
  // The fetched page survived; only the unfetched one is lost.
  EXPECT_EQ(proc->space()->ReadPage(0), MakePatternPage(0));
}

TEST_F(FailureTest, MessageToDeadPortReportsError) {
  struct Sink : Receiver {
    void HandleMessage(Message) override {}
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "victim");
  bed.fabric().DestroyPort(port);
  Message msg;
  msg.dest = port;
  const Result<void> sent = bed.fabric().Send(bed.host(0)->id, std::move(msg));
  ASSERT_FALSE(sent.ok());
  EXPECT_NE(sent.error().message.find("dead port"), std::string::npos);
}

TEST_F(FailureTest, PortDyingInFlightDropsMessageQuietly) {
  struct Sink : Receiver {
    int received = 0;
    void HandleMessage(Message) override { ++received; }
  } sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "victim");
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().RunUntil(Ms(2));  // message is crossing
  bed.fabric().DestroyPort(port);
  ASSERT_TRUE(bed.RunGuarded());  // must drain without crashing
  EXPECT_EQ(sink.received, 0);
}

TEST_F(FailureTest, DeathNoticeToDeadBackerIsHarmless) {
  SegmentBacker backer(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(),
                       &bed.segments(), CpuWork::kProcess, "gone");
  backer.Start();
  Segment* obj = bed.segments().CreateReal(kPageSize, "obj");
  const IouRef iou = backer.Back(obj);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* standin = bed.segments().CreateImaginary(kPageSize, iou, "standin");
  space->MapImaginary(0, kPageSize, standin, 0);
  bed.fabric().DestroyPort(iou.backing_port);
  bed.pager(0)->NotifySpaceDeath(space.get());  // logs, doesn't crash
  EXPECT_TRUE(bed.RunGuarded());
}

TEST(MigrationRollback, DestinationCrashMidInsertRollsBackSource) {
  // The destination dies *after* both context messages arrived but before
  // the kMigrateComplete handshake could return: the source must conclude
  // the peer is gone, abort, and restore the process runnable at home from
  // its retained context copies. Crash placement comes from a lossless
  // baseline of the same trial.
  const FailureBaseline baseline =
      RunFailureBaseline("Minprog", TransferStrategy::kPureIou, 42);
  ASSERT_GT(baseline.migration.insert_time.count(), 0);
  const SimTime mid_insert =
      baseline.migration.resumed - baseline.migration.insert_time / 2;

  TestbedConfig config;
  config.costs.migration_abort_timeout = Sec(30.0);  // keep the test brisk
  config.fault_plan.crashes.push_back(CrashWindow{HostId(2), mid_insert, kFaultForever});
  Testbed bed(config);

  WorkloadInstance instance = BuildWorkload(WorkloadByName("Minprog"), bed.host(0), 42);
  Process* proc = instance.process.get();
  bed.manager(0)->RegisterLocal(proc);

  Process* local = nullptr;
  bed.manager(0)->set_on_insert([&local](Process* inserted) { local = inserted; });

  bool done = false;
  MigrationRecord record;
  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord& r) {
                            record = r;
                            done = true;
                          });
  ASSERT_TRUE(bed.RunGuarded());
  ASSERT_TRUE(done);
  EXPECT_TRUE(record.aborted);
  EXPECT_TRUE(record.rolled_back);
  EXPECT_GT(record.rollback_insert.count(), 0);

  // The rolled-back incarnation is runnable at the source and finishes its
  // trace there; the excised husk stays excised.
  ASSERT_NE(local, nullptr);
  EXPECT_TRUE(local->done()) << "rolled-back process never ran at the source";
  EXPECT_EQ(local->env()->id, bed.host(0)->id);
}

}  // namespace
}  // namespace accent
