// Randomized model-checking, parameterized by seed:
//  1. random address-space layouts + operations vs a byte-level reference
//     model;
//  2. random address spaces round-tripped through ExciseProcess /
//     InsertProcess must preserve every byte and classification;
//  3. random processes migrated under random strategies/prefetch must read
//     exactly what the model predicts at the destination.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/base/page_ref.h"
#include "src/base/rng.h"
#include "src/experiments/testbed.h"
#include "src/proc/excise.h"
#include "src/vm/backer.h"

namespace accent {
namespace {

// ---------------------------------------------------------------------------
// 1. AddressSpace vs reference model
// ---------------------------------------------------------------------------

struct PageModel {
  MemClass mem_class = MemClass::kBad;
  std::uint64_t content_seed = 0;  // 0 => zeros; else MakePatternPage(seed)
  bool readable() const {
    return mem_class == MemClass::kReal || mem_class == MemClass::kRealZero;
  }
};

class SpaceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpaceFuzz, RandomLayoutOpsMatchModel) {
  Rng rng(GetParam());
  Testbed bed;
  AddressSpace space(SpaceId(bed.sim().AllocateId()), bed.host(0)->id);
  constexpr PageIndex kPages = 96;
  std::map<PageIndex, PageModel> model;

  // Segments to map from.
  Segment* seg = bed.segments().CreateReal(kPages * kPageSize, "fuzz");
  for (PageIndex p = 0; p < kPages; ++p) {
    seg->StorePage(p, MakePatternPage(10000 + p));
  }

  auto range = [&](PageIndex* begin, PageIndex* len) {
    *begin = rng.NextBelow(kPages - 1);
    *len = 1 + rng.NextBelow(std::min<PageIndex>(8, kPages - *begin));
  };

  for (int step = 0; step < 300; ++step) {
    PageIndex begin = 0;
    PageIndex len = 0;
    range(&begin, &len);
    const Addr lo = PageBase(begin);
    const Addr hi = PageBase(begin + len);
    switch (rng.NextBelow(4)) {
      case 0: {  // Validate (only over BadMem)
        bool all_bad = true;
        for (PageIndex p = begin; p < begin + len; ++p) {
          all_bad = all_bad && model.count(p) == 0;
        }
        if (!all_bad) {
          continue;
        }
        space.Validate(lo, hi);
        for (PageIndex p = begin; p < begin + len; ++p) {
          model[p] = PageModel{MemClass::kRealZero, 0};
        }
        break;
      }
      case 1: {  // MapReal (identity offset for model simplicity)
        space.MapReal(lo, hi, seg, lo, /*copy_on_write=*/rng.NextBool(0.5));
        for (PageIndex p = begin; p < begin + len; ++p) {
          model[p] = PageModel{MemClass::kReal, 10000 + p};
        }
        break;
      }
      case 2: {  // InstallPage into a mapped page
        const PageIndex p = begin;
        if (model.count(p) == 0) {
          continue;
        }
        const std::uint64_t content = 20000 + static_cast<std::uint64_t>(step);
        space.InstallPage(p, MakePatternPage(content));
        model[p] = PageModel{MemClass::kReal, content};
        break;
      }
      case 3: {  // Unmap
        space.Unmap(lo, hi);
        for (PageIndex p = begin; p < begin + len; ++p) {
          model.erase(p);
        }
        break;
      }
    }

    // Verify the full space every 20 steps (and at the end).
    if (step % 20 != 19 && step != 299) {
      continue;
    }
    ByteCount real = 0;
    ByteCount zero = 0;
    for (PageIndex p = 0; p < kPages; ++p) {
      auto it = model.find(p);
      const MemClass expect = it == model.end() ? MemClass::kBad : it->second.mem_class;
      ASSERT_EQ(space.ClassOf(PageBase(p)), expect) << "page " << p << " step " << step;
      if (expect == MemClass::kReal) {
        real += kPageSize;
        const PageData want = it->second.content_seed == 0
                                  ? PageData{}
                                  : MakePatternPage(it->second.content_seed);
        ASSERT_EQ(space.ReadPage(p), want) << "page " << p << " step " << step;
      } else if (expect == MemClass::kRealZero) {
        zero += kPageSize;
        ASSERT_TRUE(IsZeroPage(space.ReadPage(p)));
      }
    }
    ASSERT_EQ(space.RealBytes(), real);
    ASSERT_EQ(space.RealZeroBytes(), zero);
  }
}

// ---------------------------------------------------------------------------
// 2. Excise/Insert round trip on random spaces
// ---------------------------------------------------------------------------

struct RandomSpace {
  std::unique_ptr<AddressSpace> space;
  std::map<PageIndex, PageModel> model;
};

RandomSpace BuildRandomSpace(Testbed* bed, Rng* rng, int host) {
  RandomSpace result;
  result.space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                                bed->host(host)->id);
  constexpr PageIndex kPages = 128;
  Segment* seg = bed->segments().CreateReal(kPages * kPageSize, "rand-image");
  for (PageIndex p = 0; p < kPages; ++p) {
    seg->StorePage(p, MakePatternPage(5000 + p));
  }

  PageIndex cursor = 0;
  while (cursor < kPages) {
    const PageIndex len = 1 + rng->NextBelow(6);
    const PageIndex end = std::min<PageIndex>(kPages, cursor + len);
    switch (rng->NextBelow(3)) {
      case 0:  // hole (BadMem)
        break;
      case 1:
        result.space->Validate(PageBase(cursor), PageBase(end));
        for (PageIndex p = cursor; p < end; ++p) {
          result.model[p] = PageModel{MemClass::kRealZero, 0};
        }
        break;
      case 2:
        result.space->MapReal(PageBase(cursor), PageBase(end), seg, PageBase(cursor), false);
        for (PageIndex p = cursor; p < end; ++p) {
          result.model[p] = PageModel{MemClass::kReal, 5000 + p};
        }
        break;
    }
    cursor = end;
  }
  // Sprinkle private overrides and touched zero pages.
  for (auto& [page, pm] : result.model) {
    if (pm.mem_class == MemClass::kReal && rng->NextBool(0.3)) {
      const std::uint64_t content = 7000 + page;
      result.space->InstallPage(page, MakePatternPage(content));
      pm.content_seed = content;
    } else if (pm.mem_class == MemClass::kRealZero && rng->NextBool(0.2)) {
      const std::uint64_t content = 8000 + page;
      result.space->InstallPage(page, MakePatternPage(content));
      pm = PageModel{MemClass::kReal, content};
    }
  }
  // Random resident subset.
  for (const auto& [page, pm] : result.model) {
    if (pm.mem_class == MemClass::kReal && rng->NextBool(0.5)) {
      bed->host(host)->memory->Insert(result.space->id(), page, false);
    }
  }
  return result;
}

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzz, ExciseInsertPreservesEverything) {
  Rng rng(GetParam() * 77 + 5);
  Testbed bed;
  RandomSpace random = BuildRandomSpace(&bed, &rng, 0);

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "fuzz",
                                        bed.host(0), std::move(random.space), GetParam());
  proc->SetTrace(TraceBuilder().Compute(Ms(1)).Terminate().Build(), 0);

  ExciseResult excised;
  bool excise_done = false;
  ExciseProcess(proc.get(), [&](ExciseResult r) {
    excised = std::move(r);
    excise_done = true;
  });
  bed.sim().Run();
  ASSERT_TRUE(excise_done);

  std::unique_ptr<Process> inserted;
  InsertProcess(bed.host(1), std::move(excised.core), std::move(excised.rimas),
                [&](std::unique_ptr<Process> p, InsertResult) { inserted = std::move(p); });
  bed.sim().Run();
  ASSERT_NE(inserted, nullptr);

  AddressSpace* space = inserted->space();
  for (PageIndex p = 0; p < 128; ++p) {
    auto it = random.model.find(p);
    const MemClass expect = it == random.model.end() ? MemClass::kBad : it->second.mem_class;
    ASSERT_EQ(space->ClassOf(PageBase(p)), expect) << "page " << p;
    if (expect == MemClass::kReal) {
      const PageData want = it->second.content_seed == 0
                                ? PageData{}
                                : MakePatternPage(it->second.content_seed);
      ASSERT_EQ(space->ReadPage(p), want) << "page " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz, ::testing::Range<std::uint64_t>(1, 13));
INSTANTIATE_TEST_SUITE_P(Seeds, SpaceFuzz, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// 3. Random end-to-end migrations
// ---------------------------------------------------------------------------

class MigrationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The migration model-check proper, factored out so the test can bracket
// it with the payload-balance counters (everything simulated must be
// destroyed before the leak check).
void RunRandomMigration(std::uint64_t seed) {
  Rng rng(seed * 131 + 17);
  Testbed bed;
  RandomSpace random = BuildRandomSpace(&bed, &rng, 0);

  // Random trace over the mapped pages: reads of readable pages, writes
  // anywhere mapped; track expected final bytes.
  std::map<Addr, std::uint8_t> expected_writes;
  TraceBuilder trace;
  std::vector<PageIndex> mapped;
  for (const auto& [page, pm] : random.model) {
    mapped.push_back(page);
  }
  ASSERT_FALSE(mapped.empty());
  const int touches = 20 + static_cast<int>(rng.NextBelow(40));
  for (int i = 0; i < touches; ++i) {
    const PageIndex page = mapped[rng.NextBelow(mapped.size())];
    const Addr addr = PageBase(page) + rng.NextBelow(kPageSize);
    if (rng.NextBool(0.4)) {
      const auto value = static_cast<std::uint8_t>(rng.NextBelow(256));
      trace.Write(addr, value);
      expected_writes[addr] = value;
    } else {
      trace.Read(RoundDownToPage(addr));
    }
    trace.Compute(Ms(static_cast<std::int64_t>(rng.NextBelow(50))));
  }
  trace.Terminate();

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "fuzzmig",
                                        bed.host(0), std::move(random.space), seed);
  proc->SetTrace(trace.Build(), 0);

  const TransferStrategy strategy = static_cast<TransferStrategy>(rng.NextBelow(3));
  bed.SetPrefetch(static_cast<std::uint32_t>(rng.NextBelow(5)));

  bed.manager(0)->RegisterLocal(proc.get());
  bool done = false;
  bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), strategy,
                          [&](const MigrationRecord&) { done = true; });
  bed.sim().Run();
  ASSERT_TRUE(done) << StrategyName(strategy);
  Process* remote = bed.manager(1)->adopted().at(0).get();
  ASSERT_TRUE(remote->done()) << StrategyName(strategy);

  // Model check: written bytes reflect the last write; read-only pages that
  // were materialised match their origin; classifications are sane.
  for (const auto& [addr, value] : expected_writes) {
    ASSERT_EQ(remote->space()->ReadByte(addr), value)
        << "addr " << addr << " strategy " << StrategyName(strategy);
  }
  for (const auto& [page, pm] : random.model) {
    const MemClass mem_class = remote->space()->ClassOf(PageBase(page));
    ASSERT_NE(mem_class, MemClass::kBad) << "page " << page;
    if (mem_class == MemClass::kImag) {
      continue;  // untouched owed page
    }
    // Check a byte that was never written on this page.
    const Addr probe = PageBase(page) + 13;
    if (expected_writes.count(probe) != 0) {
      continue;
    }
    const PageData want = pm.mem_class == MemClass::kRealZero
                              ? PageData{}
                              : (pm.content_seed == 0 ? PageData{}
                                                      : MakePatternPage(pm.content_seed));
    ASSERT_EQ(remote->space()->ReadByte(probe), PageByteAt(want, 13))
        << "page " << page << " strategy " << StrategyName(strategy);
  }

  // Backer reference balance: the process has terminated and the simulation
  // drained, so every space-death notice has been processed. No backer may
  // have seen a duplicate final death, and the destination must not be left
  // holding backing objects (only the origin legitimately retains any).
  for (int host = 0; host < bed.host_count(); ++host) {
    EXPECT_EQ(bed.netmsg(host)->backer().duplicate_deaths(), 0u)
        << "host " << host << " strategy " << StrategyName(strategy);
  }
  EXPECT_EQ(bed.netmsg(1)->backer().object_count(), 0u) << StrategyName(strategy);
}

TEST_P(MigrationFuzz, RandomProcessMigratesIntact) {
  // Payload-balance bracket: every page payload the trial allocates (RIMAS
  // runs, IOU cache objects, pull replies) must be freed once the testbed
  // and its processes are destroyed — the zero-copy data plane's refcounts
  // must settle no matter which random strategy/prefetch/trace ran.
  const PageCounterSnapshot payloads_before = ReadPageCounters();
  RunRandomMigration(GetParam());
  const PageCounterSnapshot payloads_after = ReadPageCounters();
  EXPECT_EQ(payloads_after.live_payloads(), payloads_before.live_payloads());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationFuzz, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace accent
