// End-to-end smoke: migrate Minprog under each strategy and sanity-check
// the whole pipeline (excise -> transfer -> insert -> remote execution).
#include <gtest/gtest.h>

#include "src/experiments/trial.h"

namespace accent {
namespace {

TEST(TrialSmoke, PureCopyMinprog) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureCopy;
  const TrialResult result = RunTrial(config);

  EXPECT_EQ(result.spec.real_bytes, 142336u);
  EXPECT_GT(result.bytes_bulk, result.spec.real_bytes);  // pages + descriptors
  EXPECT_EQ(result.dest_pager.imag_faults, 0u);
  EXPECT_GT(result.remote_exec.count(), 0);
  EXPECT_GT(ToSeconds(result.migration.RimasTransferTime()), 5.0);
  EXPECT_LT(ToSeconds(result.migration.RimasTransferTime()), 15.0);
}

TEST(TrialSmoke, PureIouMinprog) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  const TrialResult result = RunTrial(config);

  // The address space ships as IOUs: transfer is fast, faults are remote.
  EXPECT_LT(ToSeconds(result.migration.RimasTransferTime()), 1.0);
  EXPECT_EQ(result.dest_pager.imag_faults, 24u);
  EXPECT_LT(result.bytes_total, 142336u);  // far less than the full image
}

TEST(TrialSmoke, ResidentSetMinprog) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kResidentSet;
  const TrialResult result = RunTrial(config);

  EXPECT_EQ(result.migration.resident_bytes_shipped, 71680u);
  // All touched pages are resident for Minprog: no remote faults.
  EXPECT_EQ(result.dest_pager.imag_faults, 0u);
}

}  // namespace
}  // namespace accent
