// Tracing subsystem: Chrome-trace export shape, determinism, the
// migration-phase tiling invariant, and the zero-perturbation guarantee
// (a traced trial must serialise byte-identically to an untraced one).
#include <gtest/gtest.h>

#include <vector>

#include "src/experiments/sweep_cache.h"
#include "src/experiments/trial.h"
#include "src/trace/trace.h"

namespace accent {
namespace {

TEST(Tracer, ChromeTraceShape) {
  Tracer tracer;
  tracer.Instant(HostId{1}, TraceLane::kMigration, "migrate:request", Us(10),
                 {{"proc", Json(7)}});
  tracer.Complete(HostId{1}, TraceLane::kMigration, "migrate:excise", Us(10), Us(25));
  tracer.Complete(HostId{2}, TraceLane::kWire, "wire:tx", Us(12), Us(3));
  tracer.Counter(HostId{1}, "queue_depth", Us(15), 4.0);
  tracer.KernelInstant("sim:dispatch", Us(5));

  const Json root = tracer.ToChromeTraceJson();
  EXPECT_EQ(root.Get("displayTimeUnit").AsString(), "ms");
  const Json::Array& events = root.Get("traceEvents").AsArray();

  // Metadata first: process_name for pid 0 (kernel), 1 and 2, then
  // thread_name per populated (pid, lane) pair.
  std::size_t metadata = 0;
  bool saw_kernel = false, saw_host1 = false;
  for (const Json& event : events) {
    if (event.Get("ph").AsString() != "M") {
      break;
    }
    ++metadata;
    if (event.Get("name").AsString() == "process_name") {
      const std::string& label = event.Get("args").Get("name").AsString();
      saw_kernel |= label == "simulator" && event.Get("pid").AsUint64() == 0;
      saw_host1 |= label == "host-1" && event.Get("pid").AsUint64() == 1;
    }
  }
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_host1);
  ASSERT_EQ(events.size(), metadata + 5);

  // Records sorted by timestamp: the kernel instant (ts 5) leads.
  const Json& first = events[metadata];
  EXPECT_EQ(first.Get("name").AsString(), "sim:dispatch");
  EXPECT_EQ(first.Get("ph").AsString(), "i");
  EXPECT_EQ(first.Get("ts").AsInt64(), 5);

  // The excise span keeps its microsecond duration exactly.
  bool saw_excise = false;
  for (std::size_t i = metadata; i < events.size(); ++i) {
    const Json& event = events[i];
    if (event.Get("name").AsString() == "migrate:excise") {
      saw_excise = true;
      EXPECT_EQ(event.Get("ph").AsString(), "X");
      EXPECT_EQ(event.Get("ts").AsInt64(), 10);
      EXPECT_EQ(event.Get("dur").AsInt64(), 25);
      EXPECT_EQ(event.Get("pid").AsUint64(), 1u);
    }
  }
  EXPECT_TRUE(saw_excise);
}

TrialConfig TracedConfig(const std::string& workload, TransferStrategy strategy,
                         Tracer* tracer) {
  TrialConfig config;
  config.workload = workload;
  config.strategy = strategy;
  config.tracer = tracer;
  return config;
}

TEST(Tracer, ExportIsDeterministic) {
  Tracer first_tracer;
  RunTrial(TracedConfig("Minprog", TransferStrategy::kPureIou, &first_tracer));
  Tracer second_tracer;
  RunTrial(TracedConfig("Minprog", TransferStrategy::kPureIou, &second_tracer));

  ASSERT_GT(first_tracer.size(), 0u);
  EXPECT_EQ(first_tracer.DumpChromeTrace(), second_tracer.DumpChromeTrace());
}

// Acceptance check from the issue: a traced pure-IOU Pasmac migration
// exports Perfetto-loadable JSON whose migration-phase spans tile the
// request-to-resume interval exactly — excise + transfer + insert sums to
// the measured end-to-end downtime.
TEST(Tracer, PhaseSpansTileDowntime) {
  Tracer tracer;
  const TrialResult result =
      RunTrial(TracedConfig("PM-Start", TransferStrategy::kPureIou, &tracer));

  const TraceEvent* excise = nullptr;
  const TraceEvent* transfer = nullptr;
  const TraceEvent* insert = nullptr;
  bool saw_complete = false, saw_resumed = false;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == "migrate:excise") excise = &event;
    if (event.name == "migrate:transfer") transfer = &event;
    if (event.name == "migrate:insert") insert = &event;
    saw_complete |= event.name == "migrate:complete";
    saw_resumed |= event.name == "migrate:resumed";
  }
  ASSERT_NE(excise, nullptr);
  ASSERT_NE(transfer, nullptr);
  ASSERT_NE(insert, nullptr);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_resumed);

  // Contiguous tiling: each phase starts where the previous one ended.
  EXPECT_EQ(excise->ts + excise->dur, transfer->ts);
  EXPECT_EQ(transfer->ts + transfer->dur, insert->ts);
  EXPECT_EQ(excise->dur + transfer->dur + insert->dur, result.migration.Downtime());

  // Perfetto-loadable: the export parses back and every record carries the
  // required Chrome-trace keys.
  Json parsed;
  ASSERT_TRUE(Json::TryParse(tracer.DumpChromeTrace(), &parsed));
  for (const Json& event : parsed.Get("traceEvents").AsArray()) {
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ph"), nullptr);
    EXPECT_NE(event.Find("pid"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
}

// The zero-perturbation guarantee behind the byte-identity acceptance
// criterion: attaching a Tracer (even verbose) must not change a single
// field of the trial result.
TEST(Tracer, TracingIsInert) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kResidentSet;
  const std::string untraced = TrialResultToJson(RunTrial(config)).Dump();

  Tracer tracer;
  config.tracer = &tracer;
  const std::string traced = TrialResultToJson(RunTrial(config)).Dump();
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_EQ(untraced, traced);

  tracer.Clear();
  tracer.set_verbose(true);
  const std::string verbose = TrialResultToJson(RunTrial(config)).Dump();
  EXPECT_EQ(untraced, verbose);
}

// Verbose mode strictly adds events (per-fragment, per-dispatch detail).
TEST(Tracer, VerboseAddsDetail) {
  Tracer quiet;
  RunTrial(TracedConfig("Minprog", TransferStrategy::kPureCopy, &quiet));
  Tracer verbose;
  verbose.set_verbose(true);
  RunTrial(TracedConfig("Minprog", TransferStrategy::kPureCopy, &verbose));

  EXPECT_GT(verbose.size(), quiet.size());
  bool saw_dispatch = false;
  for (const TraceEvent& event : verbose.events()) {
    saw_dispatch |= event.name == "sim:dispatch";
  }
  EXPECT_TRUE(saw_dispatch);
}

}  // namespace
}  // namespace accent
