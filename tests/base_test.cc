// Unit tests for base utilities: types, rng, page data, result.
#include <gtest/gtest.h>

#include <set>

#include "src/base/page_data.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace accent {
namespace {

// --- types ------------------------------------------------------------------

TEST(Types, PageArithmetic) {
  EXPECT_EQ(PageOf(0), 0u);
  EXPECT_EQ(PageOf(511), 0u);
  EXPECT_EQ(PageOf(512), 1u);
  EXPECT_EQ(PageBase(3), 1536u);
  EXPECT_EQ(RoundDownToPage(1000), 512u);
  EXPECT_EQ(RoundUpToPage(1000), 1024u);
  EXPECT_EQ(RoundUpToPage(1024), 1024u);
  EXPECT_EQ(RoundUpToPage(0), 0u);
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(Us(5).count(), 5);
  EXPECT_EQ(Ms(5).count(), 5000);
  EXPECT_EQ(Sec(1.5).count(), 1500000);
  EXPECT_DOUBLE_EQ(ToSeconds(Ms(2500)), 2.5);
}

TEST(Types, IdsAreDistinctByTag) {
  HostId host(3);
  ProcId proc(3);
  EXPECT_EQ(host.value, proc.value);
  EXPECT_TRUE(host.valid());
  EXPECT_FALSE(HostId().valid());
  EXPECT_EQ(HostId(3), HostId(3));
  EXPECT_NE(HostId(3), HostId(4));
  EXPECT_LT(HostId(3), HostId(4));
}

// --- rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyHonoured) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits, 2500, 200);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(Rng, ForkIndependentButStable) {
  Rng base(99);
  Rng f1 = base.Fork(1);
  Rng f1_again = Rng(99).Fork(1);
  Rng f2 = base.Fork(2);
  EXPECT_EQ(f1.Next(), f1_again.Next());
  EXPECT_NE(f1.Next(), f2.Next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- page data -------------------------------------------------------------

TEST(PageData, PatternPagesAreDeterministic) {
  EXPECT_EQ(MakePatternPage(42), MakePatternPage(42));
  EXPECT_NE(MakePatternPage(42), MakePatternPage(43));
  EXPECT_EQ(MakePatternPage(42).size(), kPageSize);
}

TEST(PageData, ZeroPageReadsAsZero) {
  PageData zero;
  for (ByteCount i = 0; i < kPageSize; i += 37) {
    EXPECT_EQ(PageByteAt(zero, i), 0);
  }
  EXPECT_TRUE(IsZeroPage(zero));
}

TEST(PageData, ChecksumDistinguishesContents) {
  EXPECT_NE(PageIntegrityChecksum(MakePatternPage(1)), PageIntegrityChecksum(MakePatternPage(2)));
  EXPECT_EQ(PageIntegrityChecksum(PageData{}), PageIntegrityChecksum(PageData(kPageSize, 0)));
}

TEST(PageData, WriteMaterialisesZeroPage) {
  PageData page;
  PageWriteByte(page, 100, 0);  // writing zero keeps it sparse
  EXPECT_TRUE(page.empty());
  PageWriteByte(page, 100, 7);
  ASSERT_EQ(page.size(), kPageSize);
  EXPECT_EQ(PageByteAt(page, 100), 7);
  EXPECT_EQ(PageByteAt(page, 99), 0);
}

// --- result -----------------------------------------------------------------

TEST(Result, ValueRoundTrip) {
  Result<int> ok(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
}

TEST(Result, ErrorRoundTrip) {
  Result<int> bad = Err("boom");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
}

TEST(Result, VoidSpecialisation) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace accent
