// Full-stack contract of the fleet-scale cluster layer (RunClusterTrial):
// the determinism guarantee (byte-identical results for every shard count
// and worker-thread count), census integrity under continuous churn,
// balancer policy effects, the strategy-dependent downtime ordering the
// paper predicts, steady-state detection, the event-budget watchdog and
// the ACCENT_SIM_SHARDS / ACCENT_SIM_SHARD_THREADS knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/experiments/cluster.h"

namespace accent {
namespace {

// Small but busy: enough churn that the balancer fires and every code path
// (migration, IOU pulls, completions) runs, yet a trial stays ~100ms wall.
ClusterConfig TestConfig() {
  ClusterConfig config;
  config.host_count = 12;
  config.duration = Sec(60.0);
  config.initial_processes_per_host = 6;
  config.arrivals_per_host_per_sec = 0.5;
  config.mean_service_sec = 15.0;
  config.policy.sample_period = Sec(2.0);
  return config;
}

TEST(Cluster, ResultIsByteIdenticalAcross1And2And8Shards) {
  ClusterConfig config = TestConfig();
  config.shards = 1;
  const std::string reference = ClusterResultToJson(RunClusterTrial(config)).Dump(2);
  EXPECT_NE(reference.find("\"census_ok\": true"), std::string::npos);
  for (int shards : {2, 8}) {
    config.shards = shards;
    EXPECT_EQ(ClusterResultToJson(RunClusterTrial(config)).Dump(2), reference)
        << "shards=" << shards;
  }
  // Real worker threads must not be able to reach any result either.
  config.shards = 4;
  config.shard_threads = 2;
  EXPECT_EQ(ClusterResultToJson(RunClusterTrial(config)).Dump(2), reference)
      << "shards=4 threads=2";
}

TEST(Cluster, CensusBalancesAndMigrationsFlow) {
  const ClusterResult result = RunClusterTrial(TestConfig());
  EXPECT_FALSE(result.hung);
  EXPECT_TRUE(result.census_ok);
  EXPECT_EQ(result.arrived, result.completed + result.resident_end +
                                (result.outbound_started - result.inbound_landed));
  EXPECT_GT(result.completed, 0u);
  EXPECT_GT(result.migrations_completed, 0u);
  EXPECT_GE(result.migrations_started, result.migrations_completed);
  // The default strategy is pure-IOU: debt is left behind and repaid in
  // batches, so pulls must actually happen.
  EXPECT_GT(result.pull_batches, 0u);
  EXPECT_GT(result.pages_pulled, 0u);
  EXPECT_GT(result.samples_taken, 0u);
  EXPECT_GT(result.transmissions, 0u);
  EXPECT_GT(result.queueing_p99, result.queueing_p50);
}

TEST(Cluster, HigherThresholdMigratesLess) {
  ClusterConfig eager = TestConfig();
  eager.policy.imbalance_threshold = 2;
  ClusterConfig lazy = TestConfig();
  lazy.policy.imbalance_threshold = 8;
  const ClusterResult eager_result = RunClusterTrial(eager);
  const ClusterResult lazy_result = RunClusterTrial(lazy);
  EXPECT_GT(eager_result.migrations_completed, lazy_result.migrations_completed);
}

TEST(Cluster, HysteresisDelaysFiring) {
  ClusterConfig twitchy = TestConfig();
  twitchy.policy.hysteresis = 0;
  ClusterConfig patient = TestConfig();
  patient.policy.hysteresis = 4;
  EXPECT_GE(RunClusterTrial(twitchy).migrations_completed,
            RunClusterTrial(patient).migrations_completed);
}

TEST(Cluster, PureCopyFreezesLongerThanPureIou) {
  // Pure-copy ships every real page inside the freeze window; pure-IOU
  // ships descriptors and repays lazily. The paper's headline claim, at
  // fleet scale: copy-on-reference slashes the freeze (downtime) tail.
  ClusterConfig iou = TestConfig();
  iou.policy.strategy = TransferStrategy::kPureIou;
  ClusterConfig copy = TestConfig();
  copy.policy.strategy = TransferStrategy::kPureCopy;
  const ClusterResult iou_result = RunClusterTrial(iou);
  const ClusterResult copy_result = RunClusterTrial(copy);
  ASSERT_GT(iou_result.migrations_completed, 0u);
  ASSERT_GT(copy_result.migrations_completed, 0u);
  EXPECT_GT(copy_result.downtime_p50, iou_result.downtime_p50);
  // And pure-copy leaves no debt behind.
  EXPECT_EQ(copy_result.pages_pulled, 0u);
}

TEST(Cluster, DetectsSteadyStateOnLongEnoughRuns) {
  ClusterConfig config = TestConfig();
  config.duration = Sec(120.0);
  const ClusterResult result = RunClusterTrial(config);
  EXPECT_TRUE(result.steady_detected);
  EXPECT_GT(result.steady_at, SimTime{0});
  EXPECT_LT(result.steady_at, SimTime{config.duration});
  EXPECT_GT(result.steady_migrations_per_sec, 0.0);
}

TEST(Cluster, WatchdogTripsOnTinyEventBudget) {
  ClusterConfig config = TestConfig();
  config.max_events = 5000;  // far below what the trial needs
  const ClusterResult result = RunClusterTrial(config);
  EXPECT_TRUE(result.hung);
  // The trial still returns what it saw instead of spinning forever.
  EXPECT_GT(result.arrived, 0u);
  EXPECT_LT(result.arrived, RunClusterTrial(TestConfig()).arrived);
}

// A representative heterogeneous fleet: a third of the hosts run fast
// CPUs, a third slow links, and two hosts are diskless.
std::vector<HostCalibration> MixedCalibrations(int host_count) {
  std::vector<HostCalibration> calibrations(static_cast<std::size_t>(host_count));
  for (int i = 0; i < host_count; ++i) {
    HostCalibration& cal = calibrations[static_cast<std::size_t>(i)];
    if (i % 3 == 1) {
      cal.cpu_multiplier = 4.0;
    } else if (i % 3 == 2) {
      cal.wire_latency_multiplier = 2.0;
      cal.wire_bandwidth_multiplier = 0.5;
    }
    cal.diskless = i < 2;
  }
  return calibrations;
}

TEST(Cluster, MixedCalibrationsStayByteIdenticalAcrossShards) {
  // The shard-count determinism contract must survive heterogeneity: the
  // calibrated cost paths go through the same deterministic engine.
  ClusterConfig config = TestConfig();
  config.calibrations = MixedCalibrations(config.host_count);
  config.shards = 1;
  const std::string reference = ClusterResultToJson(RunClusterTrial(config)).Dump(2);
  EXPECT_NE(reference.find("\"census_ok\": true"), std::string::npos);
  config.shards = 2;
  config.shard_threads = 2;
  EXPECT_EQ(ClusterResultToJson(RunClusterTrial(config)).Dump(2), reference);
}

TEST(Cluster, DisklessHostsNeverAnchorBacking) {
  // Under an owed-page strategy the balancer degrades any migration off a
  // diskless host to pure-copy; the invariant counter proves no
  // copy-on-reference debt was ever anchored where no spindle can serve it.
  ClusterConfig config = TestConfig();
  config.calibrations = MixedCalibrations(config.host_count);
  config.policy.strategy = TransferStrategy::kPureIou;
  const ClusterResult result = RunClusterTrial(config);
  EXPECT_FALSE(result.hung);
  EXPECT_TRUE(result.census_ok);
  ASSERT_GT(result.migrations_completed, 0u);
  EXPECT_EQ(result.diskless_backing_anchors, 0u);
  EXPECT_GT(result.diskless_copy_forced, 0u);
}

TEST(Cluster, FasterFleetFinishesMoreWork) {
  // Crank every CPU to 4x: the same arrival stream must complete at least
  // as many processes as the homogeneous fleet (slices shrink by the
  // multiplier), and the homogeneous run is untouched by the empty vector.
  ClusterConfig slow = TestConfig();
  ClusterConfig fast = TestConfig();
  fast.calibrations.assign(static_cast<std::size_t>(fast.host_count), HostCalibration{});
  for (HostCalibration& cal : fast.calibrations) {
    cal.cpu_multiplier = 4.0;
  }
  const ClusterResult slow_result = RunClusterTrial(slow);
  const ClusterResult fast_result = RunClusterTrial(fast);
  EXPECT_GT(fast_result.completed, slow_result.completed);
}

TEST(Cluster, ShardEnvKnobParsesAndClamps) {
  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARDS"), 0);
  EXPECT_EQ(SimShardCount(), 1);  // never configured: serial-equivalent default
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "8", 1), 0);
  EXPECT_EQ(SimShardCount(), 8);
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "9999", 1), 0);
  EXPECT_EQ(SimShardCount(), 64);  // clamped
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "0", 1), 0);
  EXPECT_EQ(SimShardCount(), 1);
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "garbage", 1), 0);
  EXPECT_EQ(SimShardCount(), 1);
  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARDS"), 0);

  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARD_THREADS"), 0);
  EXPECT_EQ(SimShardThreadCount(), 1);
  ASSERT_EQ(setenv("ACCENT_SIM_SHARD_THREADS", "2", 1), 0);
  EXPECT_EQ(SimShardThreadCount(), 2);
  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARD_THREADS"), 0);
}

TEST(Cluster, ConfigZeroShardsReadsEnvKnob) {
  // shards == 0 defers to ACCENT_SIM_SHARDS; the result must still match
  // the explicit shards=1 run byte for byte (the knob is engine-only).
  ClusterConfig explicit_one = TestConfig();
  explicit_one.shards = 1;
  const std::string reference =
      ClusterResultToJson(RunClusterTrial(explicit_one)).Dump(2);

  ClusterConfig from_env = TestConfig();
  from_env.shards = 0;
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "3", 1), 0);
  EXPECT_EQ(ClusterResultToJson(RunClusterTrial(from_env)).Dump(2), reference);
  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARDS"), 0);
}

}  // namespace
}  // namespace accent
