// Segment store and user-level SegmentBacker tests (section 2.2: any
// process can lazily back memory through one of its ports).
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/vm/backer.h"
#include "src/vm/imag_protocol.h"

namespace accent {
namespace {

TEST(Segment, SparseStoreReadsZeroForAbsentPages) {
  Simulator sim;
  SegmentTable table(&sim);
  Segment* seg = table.CreateReal(8 * kPageSize, "s");
  EXPECT_EQ(seg->ReadPage(0), PageData{});
  EXPECT_FALSE(seg->HasPage(0));
  seg->StorePage(3, MakePatternPage(3));
  EXPECT_TRUE(seg->HasPage(3));
  EXPECT_EQ(seg->ReadPage(3), MakePatternPage(3));
  EXPECT_EQ(seg->stored_pages(), 1u);
}

TEST(Segment, StoringZeroPageKeepsSparse) {
  Simulator sim;
  SegmentTable table(&sim);
  Segment* seg = table.CreateReal(8 * kPageSize, "s");
  seg->StorePage(1, MakePatternPage(1));
  seg->StorePage(1, PageData{});  // overwrite with zeros -> drop
  EXPECT_FALSE(seg->HasPage(1));
  EXPECT_EQ(seg->stored_pages(), 0u);
}

TEST(Segment, TableLifecycle) {
  Simulator sim;
  SegmentTable table(&sim);
  Segment* seg = table.CreateReal(kPageSize, "s");
  const SegmentId id = seg->id();
  EXPECT_EQ(table.Find(id), seg);
  table.Destroy(id);
  EXPECT_EQ(table.Find(id), nullptr);
  EXPECT_EQ(table.count(), 0u);
}

TEST(Segment, ImaginaryCarriesBacking) {
  Simulator sim;
  SegmentTable table(&sim);
  const IouRef iou{PortId(1), SegmentId(2), 3 * kPageSize};
  Segment* seg = table.CreateImaginary(16 * kPageSize, iou, "i");
  EXPECT_EQ(seg->kind(), SegmentKind::kImaginary);
  EXPECT_EQ(seg->backing().backing_port, PortId(1));
  EXPECT_EQ(seg->backing().offset, 3 * kPageSize);
}

class BackerTest : public ::testing::Test {
 protected:
  BackerTest()
      : backer_(bed.host(1)->id, &bed.sim(), &bed.costs(), &bed.fabric(), &bed.segments(),
                CpuWork::kProcess, "backer") {
    backer_.Start();
  }

  // Sends a raw read request from host 0 and returns the reply pages.
  std::vector<PageRef> Request(IouRef iou, ByteCount offset, std::uint32_t pages) {
    struct Sink : Receiver {
      std::vector<PageRef> pages;
      bool got = false;
      void HandleMessage(Message msg) override {
        got = true;
        pages = msg.regions.at(0).pages;
      }
    } sink;
    const PortId reply = bed.fabric().AllocatePort(bed.host(0)->id, &sink, "reply");

    ImagReadRequest request;
    request.request_id = 77;
    request.segment = iou.segment;
    request.offset = offset;
    request.page_count = pages;
    request.reply_port = reply;

    Message msg;
    msg.dest = iou.backing_port;
    msg.op = MsgOp::kImagReadRequest;
    msg.inline_bytes = bed.costs().fault_request_bytes;
    msg.body = request;
    EXPECT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
    bed.sim().Run();
    EXPECT_TRUE(sink.got);
    return sink.pages;
  }

  Testbed bed;
  SegmentBacker backer_;
};

TEST_F(BackerTest, ServesSinglePage) {
  Segment* obj = bed.segments().CreateReal(4 * kPageSize, "obj");
  obj->StorePage(2, MakePatternPage(2));
  const IouRef iou = backer_.Back(obj);
  const auto pages = Request(iou, 2 * kPageSize, 1);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], MakePatternPage(2));
  EXPECT_EQ(backer_.pages_served(), 1u);
}

TEST_F(BackerTest, ClampsAtObjectEnd) {
  Segment* obj = bed.segments().CreateReal(4 * kPageSize, "obj");
  const IouRef iou = backer_.Back(obj);
  const auto pages = Request(iou, 2 * kPageSize, 10);
  EXPECT_EQ(pages.size(), 2u);
}

TEST_F(BackerTest, ZeroPagesWithinObjectAreServed) {
  Segment* obj = bed.segments().CreateReal(4 * kPageSize, "obj");
  const IouRef iou = backer_.Back(obj);
  const auto pages = Request(iou, 0, 1);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_TRUE(IsZeroPage(pages[0]));
}

TEST_F(BackerTest, BackPagesBuildsObject) {
  const IouRef iou = backer_.BackPages(16 * kPageSize, 4 * kPageSize,
                                       std::vector<PageData>{MakePatternPage(10), MakePatternPage(11)}, "built");
  const auto pages = Request(iou, 4 * kPageSize, 2);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], MakePatternPage(10));
  EXPECT_EQ(pages[1], MakePatternPage(11));
}

TEST_F(BackerTest, BackSparsePagesBuildsVaIndexedObject) {
  std::vector<std::pair<PageIndex, PageData>> sparse;
  sparse.emplace_back(100, MakePatternPage(100));
  sparse.emplace_back(5000, MakePatternPage(5000));
  const IouRef iou = backer_.BackSparsePages(kAddressSpaceLimit, std::move(sparse), "sparse");
  EXPECT_EQ(Request(iou, 100 * kPageSize, 1)[0], MakePatternPage(100));
  EXPECT_EQ(Request(iou, 5000 * kPageSize, 1)[0], MakePatternPage(5000));
}

TEST_F(BackerTest, DeathRetiresObject) {
  Segment* obj = bed.segments().CreateReal(kPageSize, "obj");
  const IouRef iou = backer_.Back(obj);
  EXPECT_EQ(backer_.object_count(), 1u);

  Message death;
  death.dest = iou.backing_port;
  death.op = MsgOp::kImagSegmentDeath;
  death.body = ImagSegmentDeath{iou.segment};
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(death)).ok());
  bed.sim().Run();
  EXPECT_EQ(backer_.object_count(), 0u);
  EXPECT_EQ(backer_.deaths_received(), 1u);
  EXPECT_FALSE(backer_.Owns(iou.segment));
}

TEST_F(BackerTest, RefCountedDeathRetiresOnlyAtZero) {
  // Two references to the same object: the first death notice leaves it
  // serving, the second retires it (section 2.2: "until all references to
  // it die out").
  Segment* obj = bed.segments().CreateReal(kPageSize, "shared");
  obj->StorePage(0, MakePatternPage(3));
  const IouRef iou = backer_.Back(obj);
  backer_.AddRef(iou.segment);
  EXPECT_EQ(backer_.RefCount(iou.segment), 2u);

  auto send_death = [&]() {
    Message death;
    death.dest = iou.backing_port;
    death.op = MsgOp::kImagSegmentDeath;
    death.body = ImagSegmentDeath{iou.segment};
    ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(death)).ok());
    bed.sim().Run();
  };

  send_death();
  EXPECT_EQ(backer_.object_count(), 1u);
  EXPECT_EQ(backer_.RefCount(iou.segment), 1u);
  // Still serving after the first death.
  EXPECT_EQ(Request(iou, 0, 1)[0], MakePatternPage(3));

  send_death();
  EXPECT_EQ(backer_.object_count(), 0u);
  // Externally-owned segment: dropped from service but not destroyed.
  EXPECT_NE(bed.segments().Find(iou.segment), nullptr);
}

TEST_F(BackerTest, BackerOwnedObjectsAreDestroyedAtZeroRefs) {
  const IouRef iou = backer_.BackPages(4 * kPageSize, 0, std::vector<PageData>{MakePatternPage(1)}, "owned");
  Message death;
  death.dest = iou.backing_port;
  death.op = MsgOp::kImagSegmentDeath;
  death.body = ImagSegmentDeath{iou.segment};
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(death)).ok());
  bed.sim().Run();
  EXPECT_EQ(bed.segments().Find(iou.segment), nullptr);  // created by the backer
}

TEST_F(BackerTest, MultipleObjectsIndependentlyAddressed) {
  Segment* a = bed.segments().CreateReal(kPageSize, "a");
  a->StorePage(0, MakePatternPage(1));
  Segment* b = bed.segments().CreateReal(kPageSize, "b");
  b->StorePage(0, MakePatternPage(2));
  const IouRef iou_a = backer_.Back(a);
  const IouRef iou_b = backer_.Back(b);
  EXPECT_EQ(Request(iou_a, 0, 1)[0], MakePatternPage(1));
  EXPECT_EQ(Request(iou_b, 0, 1)[0], MakePatternPage(2));
}

// --- Handoff protocol guards (backing-ownership transfer) -----------------

// Two backers on different hosts, as in a chain collapse: `peer_` plays the
// evacuating intermediary (B), `backer_` the origin owner (A).
class HandoffTest : public BackerTest {
 protected:
  HandoffTest()
      : peer_(bed.host(0)->id, &bed.sim(), &bed.costs(), &bed.fabric(), &bed.segments(),
              CpuWork::kProcess, "peer") {
    peer_.Start();
  }

  void SendDeath(const IouRef& iou) {
    Message death;
    death.dest = iou.backing_port;
    death.op = MsgOp::kImagSegmentDeath;
    death.body = ImagSegmentDeath{iou.segment};
    ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(death)).ok());
    bed.sim().Run();
  }

  SegmentBacker peer_;
};

// Regression: the handoff moves the exporter's outstanding reference, not
// just the pages. Without it the target object retires as soon as its
// pre-existing references drain, stranding every rebound client on a
// destroyed segment (observed as pages touched only at B resolving to
// nothing at C after the chain collapse).
TEST_F(HandoffTest, MergeTransfersTheOutstandingReference) {
  const IouRef origin = backer_.BackPages(4 * kPageSize, 0,
                                          std::vector<PageData>{MakePatternPage(1)}, "origin");
  const IouRef moving = peer_.BackPages(4 * kPageSize, kPageSize,
                                        std::vector<PageData>{MakePatternPage(9)}, "moving");
  ASSERT_EQ(backer_.RefCount(origin.segment), 1u);

  bool accepted = false;
  peer_.ExportObject(moving.segment, origin, [&](bool ok) { accepted = ok; });
  bed.sim().Run();
  ASSERT_TRUE(accepted);
  EXPECT_EQ(backer_.handoffs_received(), 1u);
  EXPECT_EQ(backer_.handoff_pages_merged(), 1u);
  // The rebound client now counts against the merged object.
  EXPECT_EQ(backer_.RefCount(origin.segment), 2u);

  // The original client's death leaves the object serving the rebound one...
  SendDeath(origin);
  EXPECT_EQ(backer_.object_count(), 1u);
  EXPECT_EQ(Request(origin, kPageSize, 1)[0], MakePatternPage(9));  // merged page
  // ...and only the rebound client's death retires it.
  SendDeath(origin);
  EXPECT_EQ(backer_.object_count(), 0u);
}

// A lossy wire can re-deliver the final death notice; the tombstone absorbs
// it instead of tripping the unbalanced-death CHECK.
TEST_F(HandoffTest, DuplicateFinalDeathIsAbsorbed) {
  const IouRef iou =
      backer_.BackPages(kPageSize, 0, std::vector<PageData>{MakePatternPage(1)}, "once");
  SendDeath(iou);
  EXPECT_EQ(backer_.object_count(), 0u);
  SendDeath(iou);
  EXPECT_EQ(backer_.duplicate_deaths(), 1u);
}

// A death for an object this backer never knew is a protocol violation
// (over-kill / misrouted notice) and must fail loudly, not underflow.
TEST_F(HandoffTest, UnbalancedDeathForUnknownObjectAborts) {
  const IouRef bogus{backer_.port(), SegmentId{9999}, 0};
  EXPECT_DEATH(
      {
        Message death;
        death.dest = bogus.backing_port;
        death.op = MsgOp::kImagSegmentDeath;
        death.body = ImagSegmentDeath{bogus.segment};
        (void)bed.fabric().Send(bed.host(0)->id, std::move(death));
        bed.sim().Run();
      },
      "unbalanced imaginary segment death");
}

// The sole client dies while its object is mid-export (death races the
// handoff): the object retires normally, the counter records the race, and
// the ack still resolves so the exporter's state machine unwinds.
TEST_F(HandoffTest, DeathDuringExportRetiresAndStillAcks) {
  const IouRef origin = backer_.BackPages(4 * kPageSize, 0,
                                          std::vector<PageData>{MakePatternPage(1)}, "origin");
  const IouRef moving = peer_.BackPages(4 * kPageSize, kPageSize,
                                        std::vector<PageData>{MakePatternPage(9)}, "moving");
  bool acked = false;
  peer_.ExportObject(moving.segment, origin, [&](bool) { acked = true; });
  // The death overtakes the handoff: it is handled before the peer's ack
  // round-trip completes.
  Message death;
  death.dest = moving.backing_port;
  death.op = MsgOp::kImagSegmentDeath;
  death.body = ImagSegmentDeath{moving.segment};
  ASSERT_TRUE(bed.fabric().Send(bed.host(1)->id, std::move(death)).ok());
  bed.sim().Run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(peer_.deaths_during_export(), 1u);
  EXPECT_EQ(peer_.object_count(), 0u);
}

// After RetireToStub, requests and deaths addressed to the old object are
// forwarded to the new owner — and the forwarded death balances the
// reference the handoff transferred.
TEST_F(HandoffTest, StubForwardsRequestsAndDeathsToNewOwner) {
  const IouRef origin = backer_.BackPages(4 * kPageSize, 0,
                                          std::vector<PageData>{MakePatternPage(1)}, "origin");
  const IouRef moving = peer_.BackPages(4 * kPageSize, kPageSize,
                                        std::vector<PageData>{MakePatternPage(9)}, "moving");
  bool accepted = false;
  peer_.ExportObject(moving.segment, origin, [&](bool ok) { accepted = ok; });
  bed.sim().Run();
  ASSERT_TRUE(accepted);
  peer_.RetireToStub(moving.segment, origin);
  EXPECT_EQ(peer_.object_count(), 0u);
  EXPECT_EQ(peer_.stub_count(), 1u);

  // A read that raced the collapse still resolves, via the stub.
  EXPECT_EQ(Request(moving, kPageSize, 1)[0], MakePatternPage(9));
  EXPECT_EQ(peer_.requests_forwarded(), 1u);

  // The straggler's death is forwarded too and lands on the merged object.
  ASSERT_EQ(backer_.RefCount(origin.segment), 2u);
  SendDeath(moving);
  EXPECT_EQ(peer_.deaths_forwarded(), 1u);
  EXPECT_EQ(backer_.RefCount(origin.segment), 1u);
}

}  // namespace
}  // namespace accent
