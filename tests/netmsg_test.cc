// NetMsgServer tests: fragmentation/reassembly, IOU substitution (section
// 2.4), the NoIOUs bit, adopted-object backing, and cost structure.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"

namespace accent {
namespace {

struct Sink : Receiver {
  std::vector<Message> received;
  void HandleMessage(Message msg) override { received.push_back(std::move(msg)); }
};

class NetMsgTest : public ::testing::Test {
 protected:
  PortId RemotePort() { return bed.fabric().AllocatePort(bed.host(1)->id, &sink, "remote"); }

  Message DataMessage(PortId dest, int pages, MsgOp op = MsgOp::kUser) {
    Message msg;
    msg.dest = dest;
    msg.op = op;
    std::vector<PageData> data;
    for (int i = 0; i < pages; ++i) {
      data.push_back(MakePatternPage(static_cast<std::uint64_t>(i) + 1));
    }
    msg.regions.push_back(MemoryRegion::Data(0, std::move(data)));
    return msg;
  }

  Testbed bed;
  Sink sink;
};

TEST_F(NetMsgTest, LargeMessagesFragment) {
  const PortId port = RemotePort();
  Message msg = DataMessage(port, 100, MsgOp::kUser);
  msg.no_ious = true;  // keep the data physical for this test
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  const auto& stats = bed.netmsg(0)->stats();
  // 100 pages ~ 51 KB over 16 KB fragments -> 4 fragments.
  EXPECT_EQ(stats.fragments_sent, 4u);
  EXPECT_EQ(bed.netmsg(1)->stats().fragments_received, 4u);
  EXPECT_EQ(stats.messages_forwarded, 1u);
  // Payload integrity after reassembly.
  EXPECT_EQ(sink.received[0].regions.at(0).pages.at(37), MakePatternPage(38));
}

TEST_F(NetMsgTest, SubstitutesIousForEligibleRealRegions) {
  const PortId port = RemotePort();
  Message msg = DataMessage(port, 100, MsgOp::kUser);  // no_ious defaults false
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  const Message& arrived = sink.received[0];
  ASSERT_EQ(arrived.regions.size(), 1u);
  EXPECT_EQ(arrived.regions[0].mem_class, MemClass::kImag);
  EXPECT_TRUE(arrived.regions[0].iou.valid());
  EXPECT_EQ(bed.netmsg(0)->stats().regions_cached, 1u);
  EXPECT_EQ(bed.netmsg(0)->stats().bytes_cached, 100 * kPageSize);
  // The bytes stayed home: far fewer than 51 KB crossed.
  EXPECT_LT(bed.traffic().TotalBytes(), 2048u);
  // The local backer now owns the object.
  EXPECT_TRUE(bed.netmsg(0)->backer().Owns(arrived.regions[0].iou.segment));
}

TEST_F(NetMsgTest, NoIousBitInhibitsSubstitution) {
  const PortId port = RemotePort();
  Message msg = DataMessage(port, 100, MsgOp::kUser);
  msg.no_ious = true;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].regions.at(0).mem_class, MemClass::kReal);
  EXPECT_EQ(bed.netmsg(0)->stats().regions_cached, 0u);
  EXPECT_GT(bed.traffic().TotalBytes(), 100 * kPageSize);
}

TEST_F(NetMsgTest, CachingKnobDisablesSubstitution) {
  bed.netmsg(0)->set_iou_caching(false);
  const PortId port = RemotePort();
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, DataMessage(port, 20, MsgOp::kUser)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].regions.at(0).mem_class, MemClass::kReal);
}

TEST_F(NetMsgTest, ProtocolRepliesNeverSubstituted) {
  const PortId port = RemotePort();
  Message msg = DataMessage(port, 20, MsgOp::kImagReadReply);
  msg.body = std::string("opaque");
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].regions.at(0).mem_class, MemClass::kReal);
}

TEST_F(NetMsgTest, SubstitutedDataIsServedOnFault) {
  // End-to-end copy-on-reference through the NetMsgServer cache: host 1 maps
  // the IOU region and faults pages back from host 0's cache.
  const PortId port = RemotePort();
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, DataMessage(port, 10, MsgOp::kUser)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  const MemoryRegion& region = sink.received[0].regions.at(0);
  ASSERT_EQ(region.mem_class, MemClass::kImag);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(1)->id);
  IouRef iou = region.iou;
  const ByteCount target = iou.offset + region.base;
  iou.offset = 0;
  Segment* standin = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space->MapImaginary(0, region.size, standin, target);

  for (PageIndex p = 0; p < 10; ++p) {
    bool done = false;
    bed.pager(1)->Access(space.get(), PageBase(p), false, [&](const AccessOutcome&) {
      done = true;
    });
    bed.sim().Run();
    ASSERT_TRUE(done);
    EXPECT_EQ(space->ReadPage(p), MakePatternPage(p + 1)) << "page " << p;
  }
}

TEST_F(NetMsgTest, AdoptPagesCreatesVaIndexedBackedObject) {
  std::vector<std::pair<PageIndex, PageRef>> pages;
  pages.emplace_back(7, MakePatternPage(7));
  pages.emplace_back(9000, MakePatternPage(9000));
  const IouRef iou = bed.netmsg(0)->AdoptPages(std::move(pages), "adopted");
  EXPECT_TRUE(iou.valid());
  EXPECT_EQ(iou.backing_port, bed.netmsg(0)->backing_port());
  EXPECT_TRUE(bed.netmsg(0)->backer().Owns(iou.segment));
}

TEST_F(NetMsgTest, StoreAndForwardSerialisesCpuPhases) {
  // The receiver's per-byte handling must start only after the last
  // fragment: end-to-end time ~ 2x one node's processing, not ~1x.
  const PortId port = RemotePort();
  Message msg = DataMessage(port, 200, MsgOp::kUser);  // ~102 KB
  msg.no_ious = true;
  const ByteCount wire_estimate = 200 * kPageSize;
  const SimTime start = bed.sim().Now();
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  const double elapsed = ToSeconds(bed.sim().Now() - start);
  const double one_side = ToSeconds(bed.costs().netmsg_per_byte) * wire_estimate;
  EXPECT_GT(elapsed, 1.8 * one_side);
}

TEST_F(NetMsgTest, InterleavedTransfersReassembleIndependently) {
  const PortId port = RemotePort();
  // Two large messages from both directions at once.
  Sink sink0;
  const PortId back_port = bed.fabric().AllocatePort(bed.host(0)->id, &sink0, "back");
  Message a = DataMessage(port, 64, MsgOp::kUser);
  a.no_ious = true;
  Message b = DataMessage(back_port, 48, MsgOp::kUser);
  b.no_ious = true;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(a)).ok());
  ASSERT_TRUE(bed.fabric().Send(bed.host(1)->id, std::move(b)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  ASSERT_EQ(sink0.received.size(), 1u);
  EXPECT_EQ(sink.received[0].regions.at(0).pages.size(), 64u);
  EXPECT_EQ(sink0.received[0].regions.at(0).pages.size(), 48u);
}

}  // namespace
}  // namespace accent
