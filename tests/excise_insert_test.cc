// ExciseProcess / InsertProcess tests: the two messages are self-contained
// and reconstruct the process bit-for-bit, including port rights, trace
// position and every memory class.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/proc/excise.h"

namespace accent {
namespace {

class ExciseInsertTest : public ::testing::Test {
 protected:
  // Builds a small process on host 0 with all three memory classes.
  std::unique_ptr<Process> BuildProcess() {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    image_ = bed.segments().CreateReal(8 * kPageSize, "img");
    for (PageIndex p = 0; p < 8; ++p) {
      image_->StorePage(p, MakePatternPage(p + 1));
    }
    space->MapReal(0, 8 * kPageSize, image_, 0, false);
    space->Validate(8 * kPageSize, 16 * kPageSize);
    // Private page with a distinctive byte.
    space->InstallPage(2, MakePatternPage(42));
    bed.host(0)->memory->Insert(space->id(), 0, false);
    bed.host(0)->memory->Insert(space->id(), 2, true);

    auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "guinea", bed.host(0),
                                          std::move(space), /*microstate_token=*/0xfeed);
    proc->SetTrace(TraceBuilder().Compute(Ms(1)).Terminate().Build(), 0);
    return proc;
  }

  ExciseResult Excise(Process* proc) {
    ExciseResult result;
    bool done = false;
    ExciseProcess(proc, [&](ExciseResult r) {
      result = std::move(r);
      done = true;
    });
    bed.sim().Run();
    EXPECT_TRUE(done);
    return result;
  }

  std::unique_ptr<Process> Insert(HostEnv* env, ExciseResult excised) {
    std::unique_ptr<Process> inserted;
    bool done = false;
    InsertProcess(env, std::move(excised.core), std::move(excised.rimas),
                  [&](std::unique_ptr<Process> p, InsertResult) {
                    inserted = std::move(p);
                    done = true;
                  });
    bed.sim().Run();
    EXPECT_TRUE(done);
    return inserted;
  }

  Testbed bed;
  Segment* image_ = nullptr;
};

TEST_F(ExciseInsertTest, CoreMessageCarriesContext) {
  auto proc = BuildProcess();
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "owned");
  proc->AttachReceiveRight(port);
  ExciseResult excised = Excise(proc.get());

  EXPECT_EQ(excised.core.op, MsgOp::kMigrateCore);
  EXPECT_TRUE(excised.core.has_amap);
  EXPECT_EQ(excised.core.inline_bytes, bed.costs().core_context_bytes);
  ASSERT_EQ(excised.core.rights.size(), 1u);
  EXPECT_EQ(excised.core.rights[0].port, port);
  const auto& body = excised.core.BodyAs<CoreBody>();
  EXPECT_EQ(body.microstate_token, 0xfeedu);
  EXPECT_EQ(body.name, "guinea");
  EXPECT_EQ(proc->state(), ProcState::kExcised);
}

TEST_F(ExciseInsertTest, RimasCarriesRealDataAndShape) {
  auto proc = BuildProcess();
  ExciseResult excised = Excise(proc.get());
  ASSERT_EQ(excised.rimas.regions.size(), 1u);  // one Real interval
  const MemoryRegion& region = excised.rimas.regions[0];
  EXPECT_EQ(region.mem_class, MemClass::kReal);
  EXPECT_EQ(region.size, 8 * kPageSize);
  EXPECT_EQ(region.pages[1], MakePatternPage(2));
  EXPECT_EQ(region.pages[2], MakePatternPage(42));  // private copy shipped, not origin
  // RealZero never travels: the AMap describes it.
  EXPECT_EQ(excised.core.amap.BytesOf(MemClass::kRealZero), 8 * kPageSize);
}

TEST_F(ExciseInsertTest, ExcisionClearsResidency) {
  auto proc = BuildProcess();
  const SpaceId space = proc->space()->id();
  EXPECT_EQ(bed.host(0)->memory->ResidentCount(space), 2u);
  Excise(proc.get());
  EXPECT_EQ(bed.host(0)->memory->ResidentCount(space), 0u);
}

TEST_F(ExciseInsertTest, RoundTripPreservesEveryByte) {
  auto proc = BuildProcess();
  ExciseResult excised = Excise(proc.get());
  auto inserted = Insert(bed.host(1), std::move(excised));
  ASSERT_NE(inserted, nullptr);

  AddressSpace* space = inserted->space();
  EXPECT_EQ(space->host(), bed.host(1)->id);
  for (PageIndex p = 0; p < 8; ++p) {
    const PageData expected = p == 2 ? MakePatternPage(42) : MakePatternPage(p + 1);
    EXPECT_EQ(space->ReadPage(p), expected) << "page " << p;
  }
  EXPECT_EQ(space->ClassOf(8 * kPageSize), MemClass::kRealZero);
  EXPECT_EQ(space->ClassOf(16 * kPageSize), MemClass::kBad);
  EXPECT_EQ(space->RealBytes(), 8 * kPageSize);
  EXPECT_EQ(space->RealZeroBytes(), 8 * kPageSize);
  EXPECT_EQ(inserted->microstate_token(), 0xfeedu);
  EXPECT_EQ(inserted->state(), ProcState::kReady);
  // Shipped pages arrive resident.
  EXPECT_EQ(bed.host(1)->memory->ResidentCount(space->id()), 8u);
}

TEST_F(ExciseInsertTest, PortRightsMoveWithContext) {
  auto proc = BuildProcess();
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "owned");
  proc->AttachReceiveRight(port);
  ExciseResult excised = Excise(proc.get());
  auto inserted = Insert(bed.host(1), std::move(excised));

  EXPECT_EQ(bed.fabric().HomeOf(port), bed.host(1)->id);
  // A sender on host 0 still reaches the port (location transparency).
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  EXPECT_EQ(inserted->user_messages_received(), 1u);
}

TEST_F(ExciseInsertTest, TracePositionSurvives) {
  auto proc = BuildProcess();
  auto trace = TraceBuilder()
                   .Compute(Ms(1))
                   .Read(0)
                   .Compute(Ms(1))
                   .Terminate()
                   .Build();
  proc->SetTrace(trace, 2);  // already past the first two ops
  ExciseResult excised = Excise(proc.get());
  auto inserted = Insert(bed.host(1), std::move(excised));
  EXPECT_EQ(inserted->trace_pc(), 2u);
  inserted->Start();
  bed.sim().Run();
  EXPECT_TRUE(inserted->done());
}

TEST_F(ExciseInsertTest, ImaginaryMappingsSurviveReExcision) {
  // A process whose memory is still partly owed can be excised again and
  // the IOUs keep pointing at the original backer (re-migration).
  auto proc = BuildProcess();
  AddressSpace* space = proc->space();
  const IouRef iou{bed.netmsg(1)->backing_port(), SegmentId(4242), 0};
  Segment* standin = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space->MapImaginary(32 * kPageSize, 40 * kPageSize, standin, 32 * kPageSize);

  ExciseResult excised = Excise(proc.get());
  bool found_iou = false;
  for (const MemoryRegion& region : excised.rimas.regions) {
    if (region.mem_class == MemClass::kImag) {
      found_iou = true;
      EXPECT_EQ(region.iou.backing_port, bed.netmsg(1)->backing_port());
      EXPECT_EQ(region.iou.segment, SegmentId(4242));
      EXPECT_EQ(region.iou.offset, 32 * kPageSize);
    }
  }
  EXPECT_TRUE(found_iou);

  auto inserted = Insert(bed.host(1), std::move(excised));
  EXPECT_EQ(inserted->space()->ClassOf(33 * kPageSize), MemClass::kImag);
  const auto target = inserted->space()->ImagTargetOf(33 * kPageSize);
  EXPECT_EQ(target.backer_offset, 33 * kPageSize);
}

TEST_F(ExciseInsertTest, ExciseTimingsFollowCostModel) {
  auto proc = BuildProcess();
  ExciseResult excised = Excise(proc.get());
  EXPECT_GT(excised.amap_time.count(), 0);
  EXPECT_GT(excised.rimas_time.count(), 0);
  EXPECT_GE(excised.overall_time, excised.amap_time + excised.rimas_time);
  // Small process: under a second, like Minprog in Table 4-4.
  EXPECT_LT(ToSeconds(excised.overall_time), 1.0);
}

}  // namespace
}  // namespace accent
