// Process execution-engine tests: trace stepping, fault blocking,
// suspension draining, termination side effects.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/proc/process.h"

namespace accent {
namespace {

class ProcessTest : public ::testing::Test {
 protected:
  std::unique_ptr<Process> Make(TracePtr trace) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    space->Validate(0, 64 * kPageSize);
    auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                          std::move(space), 1);
    proc->SetTrace(std::move(trace), 0);
    return proc;
  }

  Testbed bed;
};

TEST_F(ProcessTest, RunsComputeAndTerminates) {
  auto proc = Make(TraceBuilder().Compute(Ms(10)).Compute(Ms(5)).Terminate().Build());
  bool terminated = false;
  proc->set_on_terminate([&](Process*) { terminated = true; });
  proc->Start();
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
  EXPECT_TRUE(terminated);
  EXPECT_EQ(proc->finish_time() - proc->start_time(), Ms(15));
  EXPECT_EQ(bed.cpu(0)->BusyTime(CpuWork::kProcess), Ms(15));
}

TEST_F(ProcessTest, WritesLandInAddressSpace) {
  auto proc = Make(TraceBuilder().Write(100, 77).Terminate().Build());
  proc->Start();
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
  EXPECT_EQ(proc->space()->ReadByte(100), 77);
}

TEST_F(ProcessTest, TouchesFaultThroughPager) {
  auto proc = Make(TraceBuilder().Read(0).Read(kPageSize).Terminate().Build());
  proc->Start();
  bed.sim().Run();
  EXPECT_EQ(bed.pager(0)->stats().fillzero_faults, 2u);
}

TEST_F(ProcessTest, SuspendBetweenOpsIsImmediate) {
  auto proc = Make(TraceBuilder().Compute(Sec(100.0)).Terminate().Build());
  bool suspended = false;
  proc->RequestSuspend([&] { suspended = true; });
  EXPECT_TRUE(suspended);  // never started: already quiescent
  EXPECT_EQ(proc->state(), ProcState::kReady);
}

TEST_F(ProcessTest, SuspendDrainsInFlightAccess) {
  // A remote fault takes ~100 ms; request suspension mid-fault.
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  // Remote imaginary page backed by host 1's NetMsgServer cache.
  std::vector<std::pair<PageIndex, PageRef>> pages;
  pages.emplace_back(8, MakePatternPage(8));
  const IouRef iou = bed.netmsg(1)->AdoptPages(std::move(pages), "t");
  Segment* standin = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "s");
  space->MapImaginary(8 * kPageSize, 9 * kPageSize, standin, 8 * kPageSize);

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                        std::move(space), 1);
  proc->SetTrace(
      TraceBuilder().Read(8 * kPageSize).Compute(Ms(1)).Terminate().Build(), 0);
  proc->Start();
  bed.sim().RunUntil(Ms(10));  // inside the remote fault
  bool suspended = false;
  proc->RequestSuspend([&] { suspended = true; });
  EXPECT_FALSE(suspended);  // must drain first
  bed.sim().Run();
  EXPECT_TRUE(suspended);
  EXPECT_EQ(proc->state(), ProcState::kSuspended);
  // The access completed (page present, pc advanced) before quiescence.
  EXPECT_TRUE(proc->space()->HasPrivatePage(8));
  EXPECT_EQ(proc->trace_pc(), 1u);
  // Resume finishes the trace.
  proc->Start();
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
}

TEST_F(ProcessTest, TerminationNotifiesBackersAndFreesMemory) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  std::vector<std::pair<PageIndex, PageRef>> pages;
  pages.emplace_back(4, MakePatternPage(4));
  const IouRef iou = bed.netmsg(1)->AdoptPages(std::move(pages), "t");
  Segment* standin = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "s");
  space->MapImaginary(4 * kPageSize, 5 * kPageSize, standin, 4 * kPageSize);
  const SpaceId space_id = space->id();

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                        std::move(space), 1);
  proc->SetTrace(TraceBuilder().Read(0).Terminate().Build(), 0);
  proc->Start();
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
  EXPECT_EQ(bed.host(0)->memory->ResidentCount(space_id), 0u);
  // Imaginary Segment Death reached the backer even though never touched.
  EXPECT_EQ(bed.netmsg(1)->backer().deaths_received(), 1u);
  EXPECT_EQ(bed.netmsg(1)->backer().object_count(), 0u);
}

TEST_F(ProcessTest, ReceivesUserMessages) {
  auto proc = Make(TraceBuilder().Compute(Ms(1)).Terminate().Build());
  const PortId port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "inbox");
  proc->AttachReceiveRight(port);
  Message msg;
  msg.dest = port;
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  EXPECT_EQ(proc->user_messages_received(), 1u);
}

TEST_F(ProcessTest, TraceHelpers) {
  auto trace = TraceBuilder()
                   .Compute(Ms(10))
                   .Read(0)
                   .Write(kPageSize, 1)
                   .Read(3)  // same page as the first read
                   .Compute(Ms(5))
                   .Terminate()
                   .Build();
  EXPECT_EQ(TraceComputeTime(*trace), Ms(15));
  EXPECT_EQ(TraceTouchedPages(*trace), 2u);
}

TEST_F(ProcessTest, StateNames) {
  EXPECT_STREQ(ProcStateName(ProcState::kReady), "ready");
  EXPECT_STREQ(ProcStateName(ProcState::kDone), "done");
  EXPECT_STREQ(ProcStateName(ProcState::kExcised), "excised");
}

}  // namespace
}  // namespace accent
