// Edge-path coverage: mixed-region substitution, COW file mappings across
// migration, wire-size properties, scan contiguity, CPU submit reentrancy.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/fs/file_service.h"
#include "src/workloads/trace_gen.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

struct Sink : Receiver {
  std::vector<Message> received;
  void HandleMessage(Message msg) override { received.push_back(std::move(msg)); }
};

TEST(MixedRegions, SubstitutionPreservesNonRealRegions) {
  Testbed bed;
  Sink sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "p");

  Message msg;
  msg.dest = port;
  msg.regions.push_back(MemoryRegion::Data(0, std::vector<PageData>{MakePatternPage(1), MakePatternPage(2)}));
  msg.regions.push_back(MemoryRegion::Zero(2 * kPageSize, 4 * kPageSize));
  msg.regions.push_back(MemoryRegion::Iou(6 * kPageSize, 2 * kPageSize,
                                          IouRef{PortId(99), SegmentId(99), 0}));
  msg.regions.push_back(
      MemoryRegion::Data(8 * kPageSize, std::vector<PageData>{MakePatternPage(3)}));
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();

  ASSERT_EQ(sink.received.size(), 1u);
  const Message& arrived = sink.received[0];
  // Real regions collapsed into one consolidated IOU; zero and foreign IOU
  // regions pass through untouched.
  int zero = 0;
  int iou = 0;
  int real = 0;
  for (const MemoryRegion& region : arrived.regions) {
    switch (region.mem_class) {
      case MemClass::kRealZero: ++zero; break;
      case MemClass::kImag: ++iou; break;
      case MemClass::kReal: ++real; break;
      case MemClass::kBad: FAIL();
    }
  }
  EXPECT_EQ(real, 0);
  EXPECT_EQ(zero, 1);
  EXPECT_EQ(iou, 2);  // the original foreign IOU + the consolidated one
  // The consolidated IOU spans both Real regions' extent [0, 9 pages).
  bool found_span = false;
  for (const MemoryRegion& region : arrived.regions) {
    if (region.mem_class == MemClass::kImag && region.base == 0) {
      EXPECT_EQ(region.size, 9 * kPageSize);
      found_span = true;
    }
  }
  EXPECT_TRUE(found_span);
}

TEST(MixedRegions, SubstitutionShrinksWireSize) {
  Testbed bed;
  Sink sink;
  const PortId port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "p");
  Message msg;
  msg.dest = port;
  std::vector<PageData> pages(64, MakePatternPage(4));
  msg.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
  const ByteCount before = msg.WireSize(bed.costs());
  ASSERT_TRUE(bed.fabric().Send(bed.host(0)->id, std::move(msg)).ok());
  bed.sim().Run();
  ASSERT_EQ(sink.received.size(), 1u);
  const ByteCount after = sink.received[0].WireSize(bed.costs());
  EXPECT_LT(after * 100, before);  // >100x smaller on the wire
}

TEST(CowFileMapping, ModifiedFileSurvivesMigration) {
  // A process maps a local file copy-on-write, modifies one page, then
  // migrates. The destination sees the private modification; the file's
  // own pages are untouched at the source.
  Testbed bed;
  FileServer server(bed.host(0));
  server.Start();
  Segment* file = server.CreateFile("src.pas", 8 * kPageSize, 300);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  FileClient client(bed.host(0), server.port());
  client.Start();
  bool opened = false;
  client.OpenAndMap("src.pas", space.get(), 0, [&](FileClient::OpenResult r) {
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.lazy);  // local: mapped copy-on-write
    opened = true;
  });
  bed.sim().Run();
  ASSERT_TRUE(opened);

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "editor",
                                        bed.host(0), std::move(space), 1);
  proc->SetTrace(TraceBuilder()
                     .Write(2 * kPageSize + 7, 0xEE)  // COW on page 2
                     .Read(5 * kPageSize)
                     .Terminate()
                     .Build(),
                 0);
  // Run it locally first so the COW happens at the source.
  proc->Start();
  bed.sim().RunUntil(Ms(200));
  ASSERT_TRUE(proc->space()->HasPrivatePage(2));

  // Then migrate a fresh copy of the same situation mid-run: rebuild with
  // a watchpoint before the read.
  bed.manager(0)->RegisterLocal(proc.get());
  bool migrated = false;
  // The process may have finished already (trace is short); if so, verify
  // the source-side COW semantics instead.
  if (!proc->done()) {
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureCopy,
                            [&](const MigrationRecord&) { migrated = true; });
    bed.sim().Run();
    ASSERT_TRUE(migrated);
    Process* remote = bed.manager(1)->adopted().at(0).get();
    EXPECT_TRUE(remote->done());
    EXPECT_EQ(remote->space()->ReadByte(2 * kPageSize + 7), 0xEE);
    EXPECT_EQ(remote->space()->ReadPage(5), MakePatternPage(305));
  }
  // The file itself never saw the private write.
  EXPECT_EQ(PageByteAt(file->ReadPage(2), 7), PageByteAt(MakePatternPage(302), 7));
}

TEST(ScanContiguity, SequentialWorkloadsArePrefetchFriendly) {
  // The Pasmac generator must produce mostly-adjacent touch pairs (the
  // basis of its ~78% prefetch hit rate).
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(WorkloadByName("PM-Start"), bed.host(0), 42);
  std::vector<PageIndex> order;
  const std::set<PageIndex> real(instance.real_page_list.begin(),
                                 instance.real_page_list.end());
  for (const TraceOp& op : *instance.process->trace()) {
    if (op.kind == TraceOp::Kind::kTouch && real.count(PageOf(op.addr)) != 0) {
      order.push_back(PageOf(op.addr));
    }
  }
  std::size_t adjacent = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    adjacent += (order[i] == order[i - 1] + 1) ? 1 : 0;
  }
  const double fraction = static_cast<double>(adjacent) / static_cast<double>(order.size());
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.95);  // density 0.8 leaves skips
}

TEST(CpuReentrancy, WorkSubmittedFromCompletionRunsAfterQueued) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  std::vector<int> order;
  cpu.Submit(CpuWork::kProcess, Ms(1), [&] {
    order.push_back(1);
    cpu.Submit(CpuWork::kProcess, Ms(1), [&] { order.push_back(3); });
  });
  cpu.Submit(CpuWork::kProcess, Ms(1), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(WorkloadLayout, ZeroTouchSampleIsAlwaysSufficient) {
  // Every representative must expose enough RealZero pages for its trace's
  // output writes (a construction-time invariant of BuildWorkload).
  Testbed bed;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    WorkloadInstance instance = BuildWorkload(spec, bed.host(0), 7);
    std::uint64_t zero_writes = 0;
    for (const TraceOp& op : *instance.process->trace()) {
      if (op.kind == TraceOp::Kind::kTouch &&
          instance.planned_touches.count(PageOf(op.addr)) == 0 &&
          std::find(instance.real_page_list.begin(), instance.real_page_list.end(),
                    PageOf(op.addr)) == instance.real_page_list.end()) {
        ++zero_writes;
      }
    }
    EXPECT_EQ(zero_writes, spec.zero_touches) << spec.name;
    bed.host(0)->memory->RemoveSpace(instance.process->space()->id());
  }
}

}  // namespace
}  // namespace accent
