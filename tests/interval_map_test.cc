// IntervalMap: unit tests plus a randomized property check against a
// brute-force byte-level reference model.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/base/interval_map.h"
#include "src/base/rng.h"

namespace accent {
namespace {

using Map = IntervalMap<int>;

std::vector<Map::Interval> Collect(const Map& map) {
  std::vector<Map::Interval> out;
  map.ForEach([&](const Map::Interval& iv) { out.push_back(iv); });
  return out;
}

TEST(IntervalMap, EmptyByDefault) {
  Map map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.interval_count(), 0u);
  EXPECT_EQ(map.TotalBytes(), 0u);
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(~0ull - 1), nullptr);
}

TEST(IntervalMap, SingleAssign) {
  Map map;
  map.Assign(100, 200, 7);
  EXPECT_EQ(map.interval_count(), 1u);
  EXPECT_EQ(map.TotalBytes(), 100u);
  EXPECT_EQ(map.Find(99), nullptr);
  ASSERT_NE(map.Find(100), nullptr);
  EXPECT_EQ(*map.Find(100), 7);
  EXPECT_EQ(*map.Find(199), 7);
  EXPECT_EQ(map.Find(200), nullptr);
}

TEST(IntervalMap, AdjacentEqualValuesCoalesce) {
  Map map;
  map.Assign(0, 10, 1);
  map.Assign(10, 20, 1);
  EXPECT_EQ(map.interval_count(), 1u);
  auto iv = map.FindInterval(5);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->begin, 0u);
  EXPECT_EQ(iv->end, 20u);
}

TEST(IntervalMap, AdjacentDifferentValuesStaySplit) {
  Map map;
  map.Assign(0, 10, 1);
  map.Assign(10, 20, 2);
  EXPECT_EQ(map.interval_count(), 2u);
}

TEST(IntervalMap, OverwriteMiddleSplitsInterval) {
  Map map;
  map.Assign(0, 30, 1);
  map.Assign(10, 20, 2);
  const auto intervals = Collect(map);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].end, 10u);
  EXPECT_EQ(intervals[1].value, 2);
  EXPECT_EQ(intervals[2].begin, 20u);
  EXPECT_EQ(intervals[2].value, 1);
}

TEST(IntervalMap, OverwriteWithSameValueKeepsOneInterval) {
  Map map;
  map.Assign(0, 30, 1);
  map.Assign(10, 20, 1);
  EXPECT_EQ(map.interval_count(), 1u);
}

TEST(IntervalMap, EraseMiddle) {
  Map map;
  map.Assign(0, 30, 1);
  map.Erase(10, 20);
  EXPECT_EQ(map.interval_count(), 2u);
  EXPECT_EQ(map.Find(15), nullptr);
  EXPECT_NE(map.Find(5), nullptr);
  EXPECT_NE(map.Find(25), nullptr);
  EXPECT_EQ(map.TotalBytes(), 20u);
}

TEST(IntervalMap, EraseUnmappedIsNoop) {
  Map map;
  map.Assign(0, 10, 1);
  map.Erase(100, 200);
  EXPECT_EQ(map.interval_count(), 1u);
}

TEST(IntervalMap, CoversDetectsGaps) {
  Map map;
  map.Assign(0, 10, 1);
  map.Assign(20, 30, 1);
  EXPECT_TRUE(map.Covers(0, 10));
  EXPECT_TRUE(map.Covers(2, 8));
  EXPECT_FALSE(map.Covers(0, 30));
  EXPECT_FALSE(map.Covers(5, 25));
  EXPECT_FALSE(map.Covers(10, 20));
}

TEST(IntervalMap, CoversAcrossAdjacentDifferentValues) {
  Map map;
  map.Assign(0, 10, 1);
  map.Assign(10, 20, 2);
  EXPECT_TRUE(map.Covers(0, 20));
}

TEST(IntervalMap, ForEachInClipsToWindow) {
  Map map;
  map.Assign(0, 100, 1);
  std::vector<Map::Interval> seen;
  map.ForEachIn(30, 60, [&](const Map::Interval& iv) { seen.push_back(iv); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].begin, 30u);
  EXPECT_EQ(seen[0].end, 60u);
}

TEST(IntervalMap, ForEachInSkipsDisjointIntervals) {
  Map map;
  map.Assign(0, 10, 1);
  map.Assign(50, 60, 2);
  int count = 0;
  map.ForEachIn(20, 40, [&](const Map::Interval&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(IntervalMap, FindMutableAllowsInPlaceEdit) {
  Map map;
  map.Assign(0, 10, 1);
  int* value = map.FindMutable(5);
  ASSERT_NE(value, nullptr);
  *value = 9;
  EXPECT_EQ(*map.Find(5), 9);
  EXPECT_EQ(map.FindMutable(10), nullptr);
}

TEST(IntervalMap, HandlesFullAddressRangeScale) {
  // Validating 4 GB costs one node (the Lisp birth-time pattern).
  Map map;
  map.Assign(0, 4ull * 1024 * 1024 * 1024, 1);
  EXPECT_EQ(map.interval_count(), 1u);
  EXPECT_EQ(map.TotalBytes(), 4ull * 1024 * 1024 * 1024);
}

// --- randomized property check -------------------------------------------

// Reference model: value per byte.
class ReferenceModel {
 public:
  void Assign(Addr b, Addr e, int v) {
    for (Addr a = b; a < e; ++a) {
      bytes_[a] = v;
    }
  }
  void Erase(Addr b, Addr e) {
    for (Addr a = b; a < e; ++a) {
      bytes_.erase(a);
    }
  }
  std::optional<int> Find(Addr a) const {
    auto it = bytes_.find(a);
    if (it == bytes_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  ByteCount TotalBytes() const { return bytes_.size(); }

 private:
  std::map<Addr, int> bytes_;
};

class IntervalMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalMapProperty, MatchesByteLevelModelUnderRandomOps) {
  Rng rng(GetParam());
  Map map;
  ReferenceModel model;
  constexpr Addr kSpace = 256;

  for (int step = 0; step < 400; ++step) {
    const Addr b = rng.NextBelow(kSpace - 1);
    const Addr e = b + 1 + rng.NextBelow(kSpace - b - 1) ;
    const int v = static_cast<int>(rng.NextBelow(3));
    if (rng.NextBool(0.7)) {
      map.Assign(b, e, v);
      model.Assign(b, e, v);
    } else {
      map.Erase(b, e);
      model.Erase(b, e);
    }

    // Full equivalence over the space.
    for (Addr a = 0; a < kSpace; ++a) {
      const int* got = map.Find(a);
      const std::optional<int> want = model.Find(a);
      ASSERT_EQ(got != nullptr, want.has_value()) << "addr " << a << " step " << step;
      if (got != nullptr) {
        ASSERT_EQ(*got, *want) << "addr " << a << " step " << step;
      }
    }
    ASSERT_EQ(map.TotalBytes(), model.TotalBytes());

    // Structural invariants: sorted, disjoint, non-empty, coalesced.
    Addr prev_end = 0;
    int prev_value = -1;
    bool first = true;
    bool adjacent_equal = false;
    map.ForEach([&](const Map::Interval& iv) {
      ASSERT_LT(iv.begin, iv.end);
      if (!first) {
        ASSERT_GE(iv.begin, prev_end);
        if (iv.begin == prev_end && iv.value == prev_value) {
          adjacent_equal = true;
        }
      }
      prev_end = iv.end;
      prev_value = iv.value;
      first = false;
    });
    ASSERT_FALSE(adjacent_equal) << "uncoalesced adjacent intervals at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace accent
