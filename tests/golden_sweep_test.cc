// Golden-digest regression gate over the paper's full 77-trial sweep.
//
// Hashes the canonical JSON serialisation of every trial result in the
// 7-workload x 11-config grid into one FNV-1a digest and asserts it matches
// the value recorded before the zero-copy data-plane refactor. Any change to
// simulated timings, byte traffic, checksums, series buckets or pager stats
// — however small — moves the digest, so a perf refactor that accidentally
// perturbs results fails loudly here rather than silently shifting tables
// in docs/RESULTS.md.
//
// The digest is over TrialResultToJson(...).Dump(), the exact per-trial
// encoding used by the on-disk sweep cache; matching here also implies the
// .accent_sweep_cache trial rows stay byte-identical.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/experiments/sweep.h"
#include "src/experiments/sweep_cache.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// Captured from the seed tree (pre-refactor) by running this very test with
// the expectation left blank and recording the reported digest.
constexpr std::uint64_t kGoldenSweepDigest = 0x5798e77cf186ffd8ull;

std::uint64_t Fnv1a(std::uint64_t hash, const std::string& text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(GoldenSweep, FullGridDigestMatchesPreRefactorValue) {
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  std::size_t trials = 0;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    const std::vector<TrialConfig> configs = StrategySweepConfigs(spec.name);
    const std::vector<TrialResult> results = RunTrials(configs);
    ASSERT_EQ(results.size(), configs.size()) << spec.name;
    for (const TrialResult& result : results) {
      digest = Fnv1a(digest, TrialResultToJson(result).Dump());
      digest = Fnv1a(digest, "\n");
      ++trials;
    }
  }
  EXPECT_EQ(trials, 77u);
  EXPECT_EQ(digest, kGoldenSweepDigest)
      << "sweep results changed: new digest 0x" << std::hex << digest;
}

}  // namespace
}  // namespace accent
