// Lifecycle-trial tests: executed pre-migration phases, emergent resident
// sets, and the PM-Start/Mid/End life-stage trends.
#include <gtest/gtest.h>

#include "src/experiments/lifecycle.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

TEST(SuspendAt, StopsExactlyAtTheWatchpoint) {
  Testbed bed;
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, 16 * kPageSize);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                        std::move(space), 1);
  TraceBuilder trace;
  for (int i = 0; i < 10; ++i) {
    trace.Compute(Ms(10));
  }
  trace.Terminate();
  proc->SetTrace(trace.Build(), 0);

  bool reached = false;
  proc->SuspendAt(5, [&]() { reached = true; });
  proc->Start();
  bed.sim().Run();
  EXPECT_TRUE(reached);
  EXPECT_EQ(proc->state(), ProcState::kSuspended);
  EXPECT_EQ(proc->trace_pc(), 5u);
  EXPECT_FALSE(proc->done());

  proc->Start();  // resume past the watchpoint
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
}

TEST(Lifecycle, PreMigrationPhaseBuildsEmergentResidency) {
  LifecycleConfig config;
  config.image_pages = 200;
  config.zero_pages = 100;
  config.output_pages = 40;
  config.compute = Sec(2.0);
  config.migrate_at = 0.5;
  const LifecycleResult result = RunLifecycle(config);

  // Half the scan ran at home: ~100 image pages plus ~20 output pages were
  // touched, and all of them are resident (they fit in memory): the disk
  // cache effect.
  EXPECT_GT(result.pre_touched_pages, 100u);
  EXPECT_GE(result.resident_bytes, 100 * kPageSize);
  EXPECT_NEAR(static_cast<double>(result.resident_bytes) / kPageSize,
              static_cast<double>(result.pre_touched_pages), 4.0);
}

TEST(Lifecycle, LaterMigrationTouchesLessRemotely) {
  // The PM-Start vs PM-End trend (Table 4-3): the later in life, the
  // smaller the remotely-touched fraction under pure-IOU.
  LifecycleConfig config;
  config.image_pages = 300;
  config.zero_pages = 100;
  config.output_pages = 30;
  config.compute = Sec(3.0);

  config.migrate_at = 0.1;
  const LifecycleResult early = RunLifecycle(config);
  config.migrate_at = 0.9;
  const LifecycleResult late = RunLifecycle(config);

  EXPECT_GT(early.dest_pager.imag_faults, 200u);  // most of the scan remote
  EXPECT_LT(late.dest_pager.imag_faults, 50u);    // little left to do
  EXPECT_GT(early.FractionOfImageTouchedRemotely(),
            3.0 * late.FractionOfImageTouchedRemotely());
  // And the later migration carries a *larger* emergent resident set.
  EXPECT_GT(late.resident_bytes, early.resident_bytes);
}

TEST(Lifecycle, ResidentSetStrategyShipsTheEmergentSet) {
  LifecycleConfig config;
  config.image_pages = 200;
  config.zero_pages = 80;
  config.output_pages = 20;
  config.compute = Sec(2.0);
  config.migrate_at = 0.5;
  config.strategy = TransferStrategy::kResidentSet;
  const LifecycleResult result = RunLifecycle(config);
  EXPECT_EQ(result.migration.resident_bytes_shipped, result.resident_bytes);
  // Resident pages are the *already-scanned* prefix: nearly useless
  // remotely, so the remaining scan still faults (section 4.2.3's verdict).
  EXPECT_GT(result.dest_pager.imag_faults, 60u);
}

TEST(Lifecycle, SmallMemoryEvictsAndStillMigratesCorrectly) {
  // With tiny physical memory the pre-phase thrashes; the emergent resident
  // set is capped at the frame count and the trial still completes.
  LifecycleConfig config;
  config.image_pages = 200;
  config.zero_pages = 80;
  config.output_pages = 20;
  config.compute = Sec(2.0);
  config.migrate_at = 0.5;
  config.frames_per_host = 64;
  const LifecycleResult result = RunLifecycle(config);
  EXPECT_LE(result.resident_bytes, 64 * kPageSize);
  EXPECT_GT(result.remote_touched_pages, 0u);
}

TEST(Lifecycle, DeterministicPerConfig) {
  LifecycleConfig config;
  config.image_pages = 150;
  config.zero_pages = 50;
  config.output_pages = 10;
  config.compute = Sec(1.0);
  config.migrate_at = 0.3;
  const LifecycleResult a = RunLifecycle(config);
  const LifecycleResult b = RunLifecycle(config);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.resident_bytes, b.resident_bytes);
}

}  // namespace
}  // namespace accent
