// Accessibility Map unit tests (section 2.3 semantics).
#include <gtest/gtest.h>

#include "src/vm/amap.h"

namespace accent {
namespace {

TEST(AMap, UnmappedIsBadMem) {
  AMap amap;
  EXPECT_EQ(amap.ClassOf(0), MemClass::kBad);
  EXPECT_EQ(amap.ClassOf(kAddressSpaceLimit - 1), MemClass::kBad);
  EXPECT_TRUE(amap.empty());
}

TEST(AMap, FourDistancesRoundTrip) {
  AMap amap;
  amap.Set(0, 512, MemClass::kRealZero);
  amap.Set(512, 1024, MemClass::kReal);
  amap.Set(1024, 1536, MemClass::kImag);
  EXPECT_EQ(amap.ClassOf(0), MemClass::kRealZero);
  EXPECT_EQ(amap.ClassOf(512), MemClass::kReal);
  EXPECT_EQ(amap.ClassOf(1024), MemClass::kImag);
  EXPECT_EQ(amap.ClassOf(1536), MemClass::kBad);
  EXPECT_EQ(amap.entry_count(), 3u);
}

TEST(AMap, SettingBadErases) {
  AMap amap;
  amap.Set(0, 1024, MemClass::kReal);
  amap.Set(256, 512, MemClass::kBad);
  EXPECT_EQ(amap.ClassOf(0), MemClass::kReal);
  EXPECT_EQ(amap.ClassOf(300), MemClass::kBad);
  EXPECT_EQ(amap.ClassOf(512), MemClass::kReal);
}

TEST(AMap, BytesOfSumsPerClass) {
  AMap amap;
  amap.Set(0, 512, MemClass::kReal);
  amap.Set(512, 2048, MemClass::kRealZero);
  amap.Set(4096, 4608, MemClass::kReal);
  EXPECT_EQ(amap.BytesOf(MemClass::kReal), 1024u);
  EXPECT_EQ(amap.BytesOf(MemClass::kRealZero), 1536u);
  EXPECT_EQ(amap.BytesOf(MemClass::kImag), 0u);
  EXPECT_EQ(amap.TotalMappedBytes(), 2560u);
}

TEST(AMap, RangeAvoidsImagMem) {
  // The deadlock guard: servers ask "can I touch this range safely?".
  AMap amap;
  amap.Set(0, 1024, MemClass::kReal);
  amap.Set(1024, 1536, MemClass::kImag);
  EXPECT_TRUE(amap.RangeAvoids(0, 1024, MemClass::kImag));
  EXPECT_FALSE(amap.RangeAvoids(0, 1536, MemClass::kImag));
  EXPECT_FALSE(amap.RangeAvoids(1100, 1200, MemClass::kImag));
}

TEST(AMap, RangeAvoidsBadChecksCoverage) {
  AMap amap;
  amap.Set(0, 512, MemClass::kReal);
  amap.Set(1024, 1536, MemClass::kReal);
  EXPECT_TRUE(amap.RangeAvoids(0, 512, MemClass::kBad));
  EXPECT_FALSE(amap.RangeAvoids(0, 1536, MemClass::kBad));  // hole = BadMem
}

TEST(AMap, PageGranularReclassification) {
  // An imaginary page becomes Real once fetched; neighbours stay owed.
  AMap amap;
  amap.Set(0, 10 * kPageSize, MemClass::kImag);
  amap.Set(3 * kPageSize, 4 * kPageSize, MemClass::kReal);
  EXPECT_EQ(amap.ClassOf(2 * kPageSize), MemClass::kImag);
  EXPECT_EQ(amap.ClassOf(3 * kPageSize), MemClass::kReal);
  EXPECT_EQ(amap.ClassOf(4 * kPageSize), MemClass::kImag);
  EXPECT_EQ(amap.entry_count(), 3u);
}

TEST(AMap, SerializedSizeFollowsEntries) {
  AMap amap;
  for (int i = 0; i < 10; ++i) {
    const Addr base = static_cast<Addr>(i) * 2 * kPageSize;
    amap.Set(base, base + kPageSize, MemClass::kReal);
  }
  EXPECT_EQ(amap.entry_count(), 10u);
  EXPECT_EQ(amap.SerializedSize(16), 160u);
}

TEST(AMap, EqualityComparesStructure) {
  AMap a;
  AMap b;
  a.Set(0, 512, MemClass::kReal);
  b.Set(0, 512, MemClass::kReal);
  EXPECT_TRUE(a == b);
  b.Set(512, 1024, MemClass::kRealZero);
  EXPECT_FALSE(a == b);
}

TEST(AMap, CopyIsIndependent) {
  AMap a;
  a.Set(0, 512, MemClass::kReal);
  AMap b = a;  // the Core message carries a snapshot
  a.Set(0, 512, MemClass::kImag);
  EXPECT_EQ(b.ClassOf(0), MemClass::kReal);
  EXPECT_EQ(a.ClassOf(0), MemClass::kImag);
}

TEST(AMap, MemClassNames) {
  EXPECT_STREQ(MemClassName(MemClass::kBad), "BadMem");
  EXPECT_STREQ(MemClassName(MemClass::kRealZero), "RealZeroMem");
  EXPECT_STREQ(MemClassName(MemClass::kReal), "RealMem");
  EXPECT_STREQ(MemClassName(MemClass::kImag), "ImagMem");
}

TEST(AMap, FourGigabyteValidationIsOneEntry) {
  AMap amap;
  amap.Set(0, kAddressSpaceLimit, MemClass::kRealZero);
  EXPECT_EQ(amap.entry_count(), 1u);
  EXPECT_EQ(amap.BytesOf(MemClass::kRealZero), kAddressSpaceLimit);
}

}  // namespace
}  // namespace accent
