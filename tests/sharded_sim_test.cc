// Semantics of the sharded (conservative-window) simulator engine:
// configuration, host-shard assignment, the three scheduling entry points
// (ScheduleAt from inside events, ScheduleAtHost at setup, ScheduleCross
// for network edges), canonical cross-shard merge order, the per-shard
// clock, partial drains under RunUntil, Stop at window barriers, the
// watchdog introspection surface (pending_events / PendingEventsByShard /
// PendingEventTimes) and the lookahead safety contract. The headline
// determinism claim — identical execution for every shard count — is
// asserted here on a ping-pong microkernel and again, full-stack, in
// tests/cluster_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/sim/simulator.h"

namespace accent {
namespace {

constexpr SimDuration kLookahead = Ms(4);

TEST(ShardedSim, SerialUnlessConfigured) {
  Simulator sim;
  EXPECT_FALSE(sim.sharded());
  EXPECT_EQ(sim.shard_count(), 0);
  int runs = 0;
  sim.ScheduleAt(Ms(1), [&runs] { ++runs; });
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(ShardedSim, ConfigureAndAssign) {
  Simulator sim;
  sim.ConfigureShards(3, kLookahead);
  EXPECT_TRUE(sim.sharded());
  EXPECT_EQ(sim.shard_count(), 3);
  EXPECT_EQ(sim.lookahead(), kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 2);
  EXPECT_EQ(sim.shard_of_host(HostId(1)), 0);
  EXPECT_EQ(sim.shard_of_host(HostId(2)), 2);
}

TEST(ShardedSim, PerShardClockInsideEvents) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  // One worker: both shards' events write the shared `observed` vector, and
  // the recording-order assertion below relies on sequential shard order.
  sim.set_shard_threads(1);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  std::vector<SimTime> observed;
  sim.ScheduleAtHost(HostId(1), Ms(1), [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAtHost(HostId(2), Ms(2), [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAtHost(HostId(1), Ms(9), [&] { observed.push_back(sim.Now()); });
  EXPECT_EQ(sim.Run(), 3u);
  ASSERT_EQ(observed.size(), 3u);
  // Both t=1ms and t=2ms fall in the first window; shard 0 runs first, so
  // the recording order is per-shard, but every event sees its own time.
  EXPECT_EQ(observed[0], Ms(1));
  EXPECT_EQ(observed[1], Ms(2));
  EXPECT_EQ(observed[2], Ms(9));
  EXPECT_EQ(sim.events_executed(), 3u);
  EXPECT_TRUE(sim.empty());
}

TEST(ShardedSim, SelfSchedulingStaysOnShard) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  int chain = 0;
  sim.ScheduleAtHost(HostId(1), Ms(1), [&] {
    ++chain;
    sim.ScheduleAfter(Ms(1), [&] {
      ++chain;
      sim.ScheduleAfter(Ms(10), [&] { ++chain; });  // crosses a window barrier
    });
  });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(chain, 3);
}

TEST(ShardedSim, CrossShardMergeOrderIsCanonical) {
  // Hosts 1 and 2 live on different shards and both send host 3 an event
  // arriving at the same instant. Delivery order at host 3 must be source
  // host, then the source's own send order — never shard layout or
  // execution interleaving.
  for (int shards : {1, 2, 3}) {
    Simulator sim;
    sim.ConfigureShards(shards, kLookahead);
    sim.AssignHostShard(HostId(1), 0);
    sim.AssignHostShard(HostId(2), shards > 1 ? 1 : 0);
    sim.AssignHostShard(HostId(3), shards > 2 ? 2 : 0);
    std::vector<std::string> delivered;
    const SimTime arrival = Ms(10);
    // Host 2's sends happen first in wall-clock setup order; host 1 still
    // delivers first because the merge key leads with the source host.
    sim.ScheduleAtHost(HostId(2), Ms(1), [&] {
      sim.ScheduleCross(HostId(2), HostId(3), arrival,
                        [&] { delivered.push_back("b0"); });
      sim.ScheduleCross(HostId(2), HostId(3), arrival,
                        [&] { delivered.push_back("b1"); });
    });
    sim.ScheduleAtHost(HostId(1), Ms(2), [&] {
      sim.ScheduleCross(HostId(1), HostId(3), arrival,
                        [&] { delivered.push_back("a0"); });
    });
    sim.Run();
    ASSERT_EQ(delivered.size(), 3u) << "shards=" << shards;
    EXPECT_EQ(delivered[0], "a0") << "shards=" << shards;
    EXPECT_EQ(delivered[1], "b0") << "shards=" << shards;
    EXPECT_EQ(delivered[2], "b1") << "shards=" << shards;
  }
}

TEST(ShardedSim, SetupTimeCrossSendsAreAllowed) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  int runs = 0;
  sim.ScheduleCross(HostId(1), HostId(2), Ms(5), [&runs] { ++runs; });
  EXPECT_EQ(sim.pending_events(), 1u);  // parked in the inbox, still counted
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(ShardedSim, RunUntilPartialDrain) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  int runs = 0;
  sim.ScheduleAtHost(HostId(1), Ms(10), [&runs] { ++runs; });
  sim.ScheduleAtHost(HostId(2), Ms(50), [&runs] { ++runs; });
  EXPECT_FALSE(sim.RunUntil(Ms(20)));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.Now(), Ms(20));  // clock parks at the deadline between runs
  // Events at exactly the deadline still execute.
  EXPECT_TRUE(sim.RunUntil(Ms(50)));
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(sim.empty());
}

TEST(ShardedSim, StopTakesEffectAtTheNextBarrier) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  int runs = 0;
  sim.ScheduleAtHost(HostId(1), Ms(1), [&] {
    ++runs;
    sim.Stop();
  });
  sim.ScheduleAtHost(HostId(2), Ms(40), [&runs] { ++runs; });  // later window
  sim.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(ShardedSim, WatchdogIntrospectionSeesEveryShardAndInbox) {
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  sim.ScheduleAtHost(HostId(1), Ms(3), [] {});
  sim.ScheduleAtHost(HostId(2), Ms(1), [] {});
  sim.ScheduleAtHost(HostId(2), Ms(7), [] {});
  sim.ScheduleCross(HostId(1), HostId(2), Ms(5), [] {});  // inbox-parked
  EXPECT_EQ(sim.pending_events(), 4u);
  const std::vector<std::size_t> by_shard = sim.PendingEventsByShard();
  ASSERT_EQ(by_shard.size(), 2u);
  EXPECT_EQ(by_shard[0], 1u);
  EXPECT_EQ(by_shard[1], 3u);  // two queued + one inbox
  const std::vector<SimTime> times = sim.PendingEventTimes(3);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], Ms(1));
  EXPECT_EQ(times[1], Ms(3));
  EXPECT_EQ(times[2], Ms(5));
}

TEST(ShardedSim, PingPongScheduleIsIdenticalForEveryShardCount) {
  // Four hosts pass a token around the ring via ScheduleCross; each host
  // logs its local receive times. The per-host traces must be identical
  // whether the ring shares one shard or is split across four.
  auto run = [](int shards) {
    Simulator sim;
    sim.ConfigureShards(shards, kLookahead);
    const int kHosts = 4;
    for (int h = 1; h <= kHosts; ++h) {
      sim.AssignHostShard(HostId(static_cast<std::uint64_t>(h)), (h - 1) % shards);
    }
    std::vector<std::vector<SimTime>> log(kHosts + 1);
    struct Ring {
      Simulator* sim;
      std::vector<std::vector<SimTime>>* log;
      int hops_left;
    } ring{&sim, &log, 40};
    // InlineEvent capture: one pointer, recursion through a function ptr.
    struct Hop {
      static void At(Ring* ring, int host) {
        (*ring->log)[static_cast<std::size_t>(host)].push_back(ring->sim->Now());
        if (--ring->hops_left == 0) {
          return;
        }
        const int next = host % 4 + 1;
        ring->sim->ScheduleCross(HostId(static_cast<std::uint64_t>(host)),
                                 HostId(static_cast<std::uint64_t>(next)),
                                 ring->sim->Now() + kLookahead,
                                 [ring, next] { Hop::At(ring, next); });
      }
    };
    sim.ScheduleAtHost(HostId(1), Ms(1), [&ring] { Hop::At(&ring, 1); });
    sim.Run();
    return log;
  };
  const auto baseline = run(1);
  EXPECT_EQ(run(2), baseline);
  EXPECT_EQ(run(4), baseline);
}

TEST(ShardedSimDeath, LookaheadViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  sim.ScheduleAtHost(HostId(1), Ms(1), [&sim] {
    // Arrival inside the current conservative window: the destination shard
    // may already have run past it, so this must abort loudly.
    sim.ScheduleCross(HostId(1), HostId(2), sim.Now() + kLookahead - Us(1), [] {});
  });
  EXPECT_DEATH(sim.Run(), "inside the lookahead window");
}

TEST(ShardedSimDeath, SetupEntryPointsRejectMisuse) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Simulator sim;
  sim.ConfigureShards(2, kLookahead);
  sim.AssignHostShard(HostId(1), 0);
  sim.AssignHostShard(HostId(2), 1);
  // Sharded ScheduleAt has no shard to land on outside event execution.
  EXPECT_DEATH(sim.ScheduleAt(Ms(1), [] {}), "use ScheduleAtHost");
  // ScheduleAtHost is setup-only; events must self-schedule.
  sim.ScheduleAtHost(HostId(1), Ms(1), [&sim] {
    sim.ScheduleAtHost(HostId(1), Ms(2), [] {});
  });
  EXPECT_DEATH(sim.Run(), "ScheduleAtHost during window execution");
}

}  // namespace
}  // namespace accent
