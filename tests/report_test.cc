// Report/CSV rendering tests.
#include <gtest/gtest.h>

#include <sstream>

#include "src/experiments/report.h"

namespace accent {
namespace {

TrialResult SampleTrial() {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  config.prefetch = 1;
  return RunTrial(config);
}

TEST(Report, HumanReadableContainsKeyFacts) {
  const TrialResult trial = SampleTrial();
  const std::string report = TrialReport(trial);
  EXPECT_NE(report.find("Minprog"), std::string::npos);
  EXPECT_NE(report.find("pure-IOU"), std::string::npos);
  EXPECT_NE(report.find("142,336"), std::string::npos);  // Real bytes
  EXPECT_NE(report.find("RIMAS transfer"), std::string::npos);
  EXPECT_NE(report.find("imaginary"), std::string::npos);
}

TEST(Report, CsvRowMatchesHeaderArity) {
  const TrialResult trial = SampleTrial();
  const std::string header = TrialCsvHeader();
  const std::string row = TrialCsvRow(trial);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_EQ(row.substr(0, 8), "Minprog,");
}

TEST(Report, CsvDocumentOnePlusNRows) {
  const std::vector<TrialResult> trials = {SampleTrial(), SampleTrial()};
  const std::string csv = TrialsToCsv(trials);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_EQ(csv.find("workload,"), 0u);
}

TEST(Report, CsvValuesRoundTrip) {
  const TrialResult trial = SampleTrial();
  std::stringstream row(TrialCsvRow(trial));
  std::string field;
  std::getline(row, field, ',');
  EXPECT_EQ(field, "Minprog");
  std::getline(row, field, ',');
  EXPECT_EQ(field, "pure-IOU");
  std::getline(row, field, ',');
  EXPECT_EQ(field, "1");  // prefetch
  std::getline(row, field, ',');
  EXPECT_EQ(field, "42");  // seed
  std::getline(row, field, ',');
  EXPECT_EQ(field, "142336");  // real_bytes
}

TEST(Report, SeriesCsvSumsToTotals) {
  const TrialResult trial = SampleTrial();
  const std::string csv = SeriesToCsv(trial);
  std::stringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,fault_bytes,other_bytes");
  ByteCount fault = 0;
  ByteCount other = 0;
  while (std::getline(in, line)) {
    std::stringstream fields(line);
    std::string t, f, o;
    std::getline(fields, t, ',');
    std::getline(fields, f, ',');
    std::getline(fields, o, ',');
    fault += std::stoull(f);
    other += std::stoull(o);
  }
  EXPECT_EQ(fault, trial.bytes_fault);
  EXPECT_EQ(fault + other, trial.bytes_total);
}

}  // namespace
}  // namespace accent
