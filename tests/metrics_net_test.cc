// Unit tests for the metrics formatting and the network/traffic substrate.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/metrics/table.h"
#include "src/net/network.h"
#include "src/net/traffic.h"

namespace accent {
namespace {

// --- formatting ---------------------------------------------------------------

TEST(Format, Commas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(4228129280ull), "4,228,129,280");
}

TEST(Format, Seconds) {
  EXPECT_EQ(FormatSeconds(1.5), "1.50");
  EXPECT_EQ(FormatSeconds(Ms(2500)), "2.50");
  EXPECT_EQ(FormatSeconds(0.1234, 3), "0.123");
}

TEST(Format, Percent) {
  EXPECT_EQ(FormatPercent(0.582), "58.2%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "12345"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  // Every line is equally terminated; row count = header + rule + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

// --- traffic recorder ---------------------------------------------------------

TEST(TrafficRecorder, AccumulatesByKind) {
  Simulator sim;
  TrafficRecorder recorder(&sim, Ms(100));
  recorder.Record(TrafficKind::kBulkData, 1000);
  recorder.Record(TrafficKind::kBulkData, 500);
  recorder.Record(TrafficKind::kFaultData, 64);
  EXPECT_EQ(recorder.BytesOf(TrafficKind::kBulkData), 1500u);
  EXPECT_EQ(recorder.BytesOf(TrafficKind::kFaultData), 64u);
  EXPECT_EQ(recorder.TotalBytes(), 1564u);
  EXPECT_EQ(recorder.MessagesOf(TrafficKind::kBulkData), 2u);
  EXPECT_EQ(recorder.TotalMessages(), 3u);
}

TEST(TrafficRecorder, BucketsByTime) {
  Simulator sim;
  TrafficRecorder recorder(&sim, Ms(100));
  recorder.Record(TrafficKind::kControl, 10);
  sim.ScheduleAt(Ms(250), [&] { recorder.Record(TrafficKind::kControl, 20); });
  sim.Run();
  ASSERT_EQ(recorder.buckets().size(), 3u);
  EXPECT_EQ(recorder.buckets()[0].bytes[static_cast<int>(TrafficKind::kControl)], 10u);
  EXPECT_EQ(recorder.buckets()[1].bytes[static_cast<int>(TrafficKind::kControl)], 0u);
  EXPECT_EQ(recorder.buckets()[2].bytes[static_cast<int>(TrafficKind::kControl)], 20u);
  EXPECT_EQ(recorder.buckets()[2].start, Ms(200));
}

TEST(TrafficRecorder, ResetClearsEverything) {
  Simulator sim;
  TrafficRecorder recorder(&sim, Ms(100));
  recorder.Record(TrafficKind::kCoreContext, 10);
  recorder.Reset();
  EXPECT_EQ(recorder.TotalBytes(), 0u);
  EXPECT_TRUE(recorder.buckets().empty());
}

// --- network wire -------------------------------------------------------------

TEST(Network, DeliversAfterSerializationAndLatency) {
  Simulator sim;
  CostTable costs;
  TrafficRecorder recorder(&sim, Ms(500));
  Network net(&sim, &costs, &recorder);
  SimTime delivered{0};
  const ByteCount bytes = 100000;
  net.Transmit(HostId(1), HostId(2), bytes, TrafficKind::kBulkData,
               [&] { delivered = sim.Now(); });
  sim.Run();
  const auto serialize =
      SimDuration(static_cast<std::int64_t>(bytes / costs.wire_bytes_per_sec * 1e6));
  EXPECT_EQ(delivered, serialize + costs.wire_latency);
  EXPECT_EQ(net.bytes_carried(), bytes);
  EXPECT_EQ(net.transmissions(), 1u);
  EXPECT_EQ(recorder.BytesOf(TrafficKind::kBulkData), bytes);
}

TEST(Network, SharedMediumSerializesTransmissions) {
  Simulator sim;
  CostTable costs;
  Network net(&sim, &costs, nullptr);
  SimTime first{0};
  SimTime second{0};
  net.Transmit(HostId(1), HostId(2), 100000, TrafficKind::kControl,
               [&] { first = sim.Now(); });
  net.Transmit(HostId(2), HostId(1), 100000, TrafficKind::kControl,
               [&] { second = sim.Now(); });
  sim.Run();
  // The second transmission queued behind the first on the single wire.
  EXPECT_GT(second, first);
  const auto serialize =
      SimDuration(static_cast<std::int64_t>(100000 / costs.wire_bytes_per_sec * 1e6));
  EXPECT_EQ(second - first, serialize);
}

TEST(Network, ZeroByteTransmissionStillHasLatency) {
  Simulator sim;
  CostTable costs;
  Network net(&sim, &costs, nullptr);
  SimTime delivered{0};
  net.Transmit(HostId(1), HostId(2), 0, TrafficKind::kControl, [&] { delivered = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered, costs.wire_latency);
}

// --- cost table sanity ---------------------------------------------------------

TEST(Costs, AnchorsAreInternallyConsistent) {
  const CostTable& costs = PerqCosts();
  // Local fault anchor: pager CPU + one disk read ~= 40.8 ms.
  EXPECT_NEAR(ToSeconds(costs.pager_disk_fault_cpu + costs.disk_page_read), 0.0408, 0.001);
  // Bulk throughput: two nodes' per-byte handling ~= 15 KB/s end to end.
  const double per_byte_s = 2.0 * ToSeconds(costs.netmsg_per_byte);
  EXPECT_NEAR(1.0 / per_byte_s, 15150.0, 500.0);
  // Pages are the Accent page size.
  EXPECT_EQ(kPageSize, 512u);
}

}  // namespace
}  // namespace accent
