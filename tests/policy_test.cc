// Automatic load-balancing policy tests (§6 future work): sampling,
// dispersal-aware candidate selection, convergence, no-thrash behaviour.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/policy/load_balancer.h"

namespace accent {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : bed(MakeConfig()) {}

  static TestbedConfig MakeConfig() {
    TestbedConfig config;
    config.host_count = 3;
    return config;
  }

  // `touch_pages` limits the pages the trace cycles through (0 = all of the
  // image), so tests can shape the resident set independently of RealMem.
  std::unique_ptr<Process> MakeJob(const std::string& name, SimDuration compute,
                                   PageIndex image_pages, PageIndex touch_pages = 0) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    Segment* image = bed.segments().CreateReal(image_pages * kPageSize, "img");
    for (PageIndex p = 0; p < image_pages; ++p) {
      image->StorePage(p, MakePatternPage(p + 1));
    }
    space->MapReal(0, image_pages * kPageSize, image, 0, false);
    auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), name, bed.host(0),
                                          std::move(space), 1);
    TraceBuilder trace;
    const PageIndex cycle = touch_pages == 0 ? image_pages : touch_pages;
    const auto slices = std::max<std::int64_t>(1, compute / Sec(1.0));
    for (std::int64_t i = 0; i < slices; ++i) {
      trace.Compute(compute / slices);
      trace.Read(PageBase(static_cast<PageIndex>(i) % cycle));
    }
    trace.Terminate();
    proc->SetTrace(trace.Build(), 0);
    return proc;
  }

  LoadBalancerPolicy MakePolicy(PolicyConfig config = PolicyConfig{}) {
    LoadBalancerPolicy policy(&bed.sim(), config);
    for (int i = 0; i < bed.host_count(); ++i) {
      policy.AddHost(bed.host(i), bed.manager(i));
    }
    return policy;
  }

  Testbed bed;
};

TEST_F(PolicyTest, SampleLoadsCountsRunnableProcesses) {
  auto a = MakeJob("a", Sec(30.0), 8);
  auto b = MakeJob("b", Sec(30.0), 8);
  bed.manager(0)->RegisterLocal(a.get());
  bed.manager(0)->RegisterLocal(b.get());
  a->Start();
  b->Start();
  bed.sim().RunUntil(Ms(100));  // let the engines queue their CPU slices

  LoadBalancerPolicy policy = MakePolicy();
  const auto loads = policy.SampleLoads();
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0].runnable, 2);
  EXPECT_EQ(loads[1].runnable, 0);
  EXPECT_EQ(loads[2].runnable, 0);
  EXPECT_GT(loads[0].cpu_backlog.count(), 0);
}

TEST_F(PolicyTest, DispersalAwareCandidatePrefersLightAnchor) {
  auto heavy = MakeJob("heavy", Sec(30.0), 256);  // 128 KB anchored
  auto light = MakeJob("light", Sec(30.0), 8);    // 4 KB anchored
  bed.manager(0)->RegisterLocal(heavy.get());
  bed.manager(0)->RegisterLocal(light.get());
  EXPECT_GT(LoadBalancerPolicy::LocalAnchorBytes(*heavy),
            LoadBalancerPolicy::LocalAnchorBytes(*light));
  EXPECT_EQ(LoadBalancerPolicy::PickCandidate(*bed.manager(0)), light.get());
}

TEST_F(PolicyTest, BalancesAnOverloadedHost) {
  std::vector<std::unique_ptr<Process>> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob("job-" + std::to_string(i), Sec(60.0), 16));
    bed.manager(0)->RegisterLocal(jobs.back().get());
    jobs.back()->Start();
  }

  PolicyConfig config;
  config.sample_period = Sec(3.0);
  LoadBalancerPolicy policy = MakePolicy(config);
  policy.Start();
  bed.sim().Run();

  EXPECT_GE(policy.migrations_triggered(), 3u);  // spread 6 jobs off host 1
  EXPECT_GT(policy.samples_taken(), 3u);
  // Work landed on the other hosts and finished there.
  EXPECT_GE(bed.manager(1)->adopted().size() + bed.manager(2)->adopted().size(), 3u);
  // Every job finished somewhere (husks of re-balanced processes remain
  // kExcised in their intermediate host's adopted list).
  int finished = 0;
  for (const auto& job : jobs) {
    if (job->done()) {
      ++finished;
    }
  }
  for (int host = 0; host < 3; ++host) {  // a job can be balanced back home
    for (const auto& adopted : bed.manager(host)->adopted()) {
      if (adopted->state() != ProcState::kExcised) {
        EXPECT_TRUE(adopted->done()) << adopted->name();
        ++finished;
      }
    }
  }
  EXPECT_EQ(finished, 6);
  // Convergence: no residual imbalance above threshold.
  const auto loads = policy.SampleLoads();
  for (const HostLoad& load : loads) {
    EXPECT_EQ(load.runnable, 0);
  }
}

TEST_F(PolicyTest, NoMigrationBelowThreshold) {
  auto a = MakeJob("a", Sec(20.0), 8);
  bed.manager(0)->RegisterLocal(a.get());
  a->Start();

  PolicyConfig config;
  config.sample_period = Sec(2.0);
  config.imbalance_threshold = 2;  // one process never trips it
  LoadBalancerPolicy policy = MakePolicy(config);
  policy.Start();
  bed.sim().Run();
  EXPECT_EQ(policy.migrations_triggered(), 0u);
  EXPECT_TRUE(a->done());
}

TEST_F(PolicyTest, HysteresisWaitsOutTransientImbalance) {
  std::vector<std::unique_ptr<Process>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob("job-" + std::to_string(i), Sec(60.0), 16));
    bed.manager(0)->RegisterLocal(jobs.back().get());
    jobs.back()->Start();
  }

  PolicyConfig config;
  config.sample_period = Sec(3.0);
  config.hysteresis = 2;  // act on the third consecutive imbalanced sample
  LoadBalancerPolicy policy = MakePolicy(config);
  policy.Start();

  // Probe just after each of the first three samples: the imbalance is
  // present from the start, but the policy must sit out two full periods.
  std::uint64_t after_first = 99, after_second = 99, after_third = 99;
  bed.sim().ScheduleAt(Sec(3.0) + Ms(1), [&]() { after_first = policy.migrations_triggered(); });
  bed.sim().ScheduleAt(Sec(6.0) + Ms(1), [&]() { after_second = policy.migrations_triggered(); });
  bed.sim().ScheduleAt(Sec(9.0) + Ms(1), [&]() { after_third = policy.migrations_triggered(); });
  bed.sim().Run();

  EXPECT_EQ(after_first, 0u);
  EXPECT_EQ(after_second, 0u);
  EXPECT_EQ(after_third, 1u);
  EXPECT_GE(policy.migrations_triggered(), 1u);
  for (const HostLoad& load : policy.SampleLoads()) {
    EXPECT_EQ(load.runnable, 0);  // still converges, just later
  }
}

TEST_F(PolicyTest, DispersalWeightReordersCandidates) {
  // "cold": big image, touches a single page — lots of RealMem, tiny hot
  // set. "hot": small image, cycles its whole footprint — little RealMem,
  // everything resident.
  auto cold = MakeJob("cold", Sec(30.0), 64, 1);
  auto hot = MakeJob("hot", Sec(30.0), 8);
  bed.manager(0)->RegisterLocal(cold.get());
  bed.manager(0)->RegisterLocal(hot.get());
  cold->Start();
  hot->Start();
  bed.sim().RunUntil(Sec(20.0));  // let residency build up

  const ByteCount cold_resident =
      bed.host(0)->memory->ResidentCount(cold->space()->id()) * kPageSize;
  const ByteCount hot_resident =
      bed.host(0)->memory->ResidentCount(hot->space()->id()) * kPageSize;
  ASSERT_GT(hot_resident, cold_resident);

  // Ignoring residency, the small-image job is the cheaper move; once
  // resident frames dominate the metric, the cold job is.
  EXPECT_EQ(LoadBalancerPolicy::PickCandidate(*bed.manager(0), 0.0), hot.get());
  const double heavy = static_cast<double>(cold->space()->RealBytes()) /
                       static_cast<double>(hot_resident - cold_resident) * 2.0;
  EXPECT_EQ(LoadBalancerPolicy::PickCandidate(*bed.manager(0), heavy), cold.get());
}

TEST_F(PolicyTest, ConfigurationSweepConverges) {
  // The knobs compose: every (threshold, hysteresis, weight) cell balances
  // the same overloaded host and drains all work.
  for (int threshold : {2, 3}) {
    for (int hysteresis : {0, 1}) {
      for (double weight : {0.0, 4.0}) {
        Testbed local_bed(MakeConfig());
        std::vector<std::unique_ptr<Process>> jobs;
        for (int i = 0; i < 4; ++i) {
          auto space = std::make_unique<AddressSpace>(SpaceId(local_bed.sim().AllocateId()),
                                                      local_bed.host(0)->id);
          Segment* image = local_bed.segments().CreateReal(16 * kPageSize, "img");
          space->MapReal(0, 16 * kPageSize, image, 0, false);
          auto proc = std::make_unique<Process>(ProcId(local_bed.sim().AllocateId()),
                                                "job-" + std::to_string(i),
                                                local_bed.host(0), std::move(space), 1);
          TraceBuilder trace;
          for (int s = 0; s < 20; ++s) {
            trace.Compute(Sec(1.0));
            trace.Read(PageBase(static_cast<PageIndex>(s) % 16));
          }
          trace.Terminate();
          proc->SetTrace(trace.Build(), 0);
          local_bed.manager(0)->RegisterLocal(proc.get());
          proc->Start();
          jobs.push_back(std::move(proc));
        }

        PolicyConfig config;
        config.sample_period = Sec(2.0);
        config.imbalance_threshold = threshold;
        config.hysteresis = hysteresis;
        config.dispersal_weight = weight;
        LoadBalancerPolicy policy(&local_bed.sim(), config);
        for (int h = 0; h < local_bed.host_count(); ++h) {
          policy.AddHost(local_bed.host(h), local_bed.manager(h));
        }
        policy.Start();
        local_bed.sim().Run();

        EXPECT_GE(policy.migrations_triggered(), 1u)
            << "threshold=" << threshold << " hysteresis=" << hysteresis
            << " weight=" << weight;
        for (const HostLoad& load : policy.SampleLoads()) {
          EXPECT_EQ(load.runnable, 0)
              << "threshold=" << threshold << " hysteresis=" << hysteresis
              << " weight=" << weight;
        }
      }
    }
  }
}

TEST_F(PolicyTest, FasterCpuWinsDestinationTieAtEqualLoad) {
  // Hosts 1 and 2 are both idle; host 2 advertises a 4x CPU. The calibrated
  // destination pick must break the runnable tie towards the faster
  // machine (the identity pick is first-index and would choose host 1).
  std::vector<std::unique_ptr<Process>> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(MakeJob("job-" + std::to_string(i), Sec(30.0), 8));
    bed.manager(0)->RegisterLocal(jobs.back().get());
    jobs.back()->Start();
  }

  PolicyConfig config;
  config.sample_period = Sec(3.0);
  config.imbalance_threshold = 3;  // exactly one migration, then balanced
  LoadBalancerPolicy policy(&bed.sim(), config);
  HostCalibration fast;
  fast.cpu_multiplier = 4.0;
  policy.AddHost(bed.host(0), bed.manager(0));
  policy.AddHost(bed.host(1), bed.manager(1));
  policy.AddHost(bed.host(2), bed.manager(2), fast);
  policy.Start();
  bed.sim().Run();

  EXPECT_EQ(policy.migrations_triggered(), 1u);
  EXPECT_EQ(bed.manager(1)->adopted().size(), 0u);
  ASSERT_EQ(bed.manager(2)->adopted().size(), 1u);
  EXPECT_TRUE(bed.manager(2)->adopted().at(0)->done());
}

TEST_F(PolicyTest, IdentityCalibrationsKeepTheHomogeneousDestinationPick) {
  // Same setup with identity calibrations everywhere: the historical
  // first-index tie-break must be reproduced exactly (host 1 wins).
  std::vector<std::unique_ptr<Process>> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(MakeJob("job-" + std::to_string(i), Sec(30.0), 8));
    bed.manager(0)->RegisterLocal(jobs.back().get());
    jobs.back()->Start();
  }

  PolicyConfig config;
  config.sample_period = Sec(3.0);
  config.imbalance_threshold = 3;
  LoadBalancerPolicy policy(&bed.sim(), config);
  policy.AddHost(bed.host(0), bed.manager(0));
  policy.AddHost(bed.host(1), bed.manager(1), HostCalibration{});
  policy.AddHost(bed.host(2), bed.manager(2), HostCalibration{});
  policy.Start();
  bed.sim().Run();

  EXPECT_EQ(policy.migrations_triggered(), 1u);
  EXPECT_EQ(bed.manager(1)->adopted().size(), 1u);
  EXPECT_EQ(bed.manager(2)->adopted().size(), 0u);
}

TEST_F(PolicyTest, DisklessSourceNeverAnchorsBackingDegradesToPureCopy) {
  // An owed-page strategy off a diskless source would leave
  // copy-on-reference debt anchored where no spindle can serve it; the
  // policy must ship everything physically instead and count the
  // degradation.
  std::vector<std::unique_ptr<Process>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob("job-" + std::to_string(i), Sec(30.0), 8));
    bed.manager(0)->RegisterLocal(jobs.back().get());
    jobs.back()->Start();
  }

  PolicyConfig config;
  config.sample_period = Sec(3.0);
  config.strategy = TransferStrategy::kPureIou;
  LoadBalancerPolicy policy(&bed.sim(), config);
  HostCalibration diskless;
  diskless.diskless = true;
  policy.AddHost(bed.host(0), bed.manager(0), diskless);
  policy.AddHost(bed.host(1), bed.manager(1));
  policy.AddHost(bed.host(2), bed.manager(2));
  policy.Start();
  bed.sim().Run();

  ASSERT_GE(policy.migrations_triggered(), 1u);
  // Every migration in this run leaves the diskless host, so every one
  // must have been degraded.
  EXPECT_EQ(policy.diskless_copy_forced(), policy.migrations_triggered());
  std::size_t landed = 0;
  for (int host = 1; host <= 2; ++host) {
    for (const auto& adopted : bed.manager(host)->adopted()) {
      EXPECT_TRUE(adopted->done()) << adopted->name();
      ++landed;
    }
  }
  EXPECT_GE(landed, 1u);
}

TEST_F(PolicyTest, PolicyStopsWhenWorkDrains) {
  auto a = MakeJob("a", Sec(5.0), 8);
  bed.manager(0)->RegisterLocal(a.get());
  a->Start();
  LoadBalancerPolicy policy = MakePolicy();
  policy.Start();
  bed.sim().Run();  // must terminate: the policy stops rescheduling itself
  EXPECT_TRUE(a->done());
}

}  // namespace
}  // namespace accent
