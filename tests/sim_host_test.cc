// Unit tests for the simulation kernel and the host models (CPU, disk,
// physical memory).
#include <gtest/gtest.h>

#include "src/host/cpu.h"
#include "src/host/disk.h"
#include "src/host/physical_memory.h"
#include "src/sim/simulator.h"

namespace accent {
namespace {

// --- simulator ----------------------------------------------------------------

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Ms(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Ms(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Ms(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Ms(30));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(Ms(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(Ms(1), [&] {
    ++fired;
    sim.ScheduleAfter(Ms(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Ms(2));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Ms(10), [&] { ++fired; });
  sim.ScheduleAt(Ms(30), [&] { ++fired; });
  EXPECT_FALSE(sim.RunUntil(Ms(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Ms(20));
  EXPECT_TRUE(sim.RunUntil(Ms(100)));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  EXPECT_TRUE(sim.RunUntil(Ms(50)));
  EXPECT_EQ(sim.Now(), Ms(50));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Ms(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(Ms(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, AllocateIdIsUnique) {
  Simulator sim;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ids.insert(sim.AllocateId()).second);
  }
}

// --- cpu -----------------------------------------------------------------------

TEST(Cpu, SerialisesWorkFcfs) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  std::vector<int> order;
  SimTime first_done{0};
  SimTime second_done{0};
  cpu.Submit(CpuWork::kProcess, Ms(10), [&] {
    order.push_back(1);
    first_done = sim.Now();
  });
  cpu.Submit(CpuWork::kPager, Ms(5), [&] {
    order.push_back(2);
    second_done = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(first_done, Ms(10));
  EXPECT_EQ(second_done, Ms(15));  // queued behind the first
}

TEST(Cpu, AttributesBusyTimeByCategory) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  cpu.Submit(CpuWork::kNetMsgServer, Ms(7), nullptr);
  cpu.Submit(CpuWork::kNetMsgServer, Ms(3), nullptr);
  cpu.Submit(CpuWork::kPager, Ms(5), nullptr);
  sim.Run();
  EXPECT_EQ(cpu.BusyTime(CpuWork::kNetMsgServer), Ms(10));
  EXPECT_EQ(cpu.BusyTime(CpuWork::kPager), Ms(5));
  EXPECT_EQ(cpu.BusyTime(CpuWork::kProcess), Ms(0));
  EXPECT_EQ(cpu.TotalBusyTime(), Ms(15));
  cpu.ResetAccounting();
  EXPECT_EQ(cpu.TotalBusyTime(), Ms(0));
}

TEST(Cpu, IdleGapsDontAccumulateBusy) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  cpu.Submit(CpuWork::kProcess, Ms(2), nullptr);
  sim.Run();
  sim.ScheduleAt(Ms(100), [&] { cpu.Submit(CpuWork::kProcess, Ms(2), nullptr); });
  sim.Run();
  EXPECT_EQ(cpu.TotalBusyTime(), Ms(4));
  EXPECT_EQ(cpu.available_at(), Ms(102));
}

TEST(Cpu, ZeroCostWorkCompletesImmediately) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  bool done = false;
  cpu.Submit(CpuWork::kKernel, SimDuration::zero(), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now(), SimTime{0});
}

// --- disk ------------------------------------------------------------------------

TEST(Disk, ChargesPerPageLatency) {
  Simulator sim;
  CostTable costs;
  Disk disk(&sim, &costs);
  SimTime done_at{0};
  disk.Read(2, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, costs.disk_page_read * 2);
  EXPECT_EQ(disk.reads_completed(), 2u);
}

TEST(Disk, QueuesRequestsFcfs) {
  Simulator sim;
  CostTable costs;
  Disk disk(&sim, &costs);
  SimTime read_done{0};
  SimTime write_done{0};
  disk.Write(1, [&] { write_done = sim.Now(); });
  disk.Read(1, [&] { read_done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(write_done, costs.disk_page_write);
  EXPECT_EQ(read_done, costs.disk_page_write + costs.disk_page_read);
  EXPECT_EQ(disk.busy_time(), costs.disk_page_write + costs.disk_page_read);
}

// --- physical memory ------------------------------------------------------------------

TEST(PhysicalMemory, InsertAndContains) {
  PhysicalMemory memory(4);
  const SpaceId space(1);
  EXPECT_FALSE(memory.Contains(space, 10));
  EXPECT_FALSE(memory.Insert(space, 10, false).has_value());
  EXPECT_TRUE(memory.Contains(space, 10));
  EXPECT_EQ(memory.used_frames(), 1u);
}

TEST(PhysicalMemory, EvictsLeastRecentlyUsed) {
  PhysicalMemory memory(2);
  const SpaceId space(1);
  memory.Insert(space, 1, false);
  memory.Insert(space, 2, false);
  memory.Touch(space, 1);  // 2 becomes LRU
  auto eviction = memory.Insert(space, 3, false);
  ASSERT_TRUE(eviction.has_value());
  EXPECT_EQ(eviction->page, 2u);
  EXPECT_FALSE(eviction->dirty);
  EXPECT_TRUE(memory.Contains(space, 1));
  EXPECT_FALSE(memory.Contains(space, 2));
}

TEST(PhysicalMemory, DirtyBitTravelsWithEviction) {
  PhysicalMemory memory(1);
  const SpaceId space(1);
  memory.Insert(space, 1, false);
  memory.MarkDirty(space, 1);
  EXPECT_TRUE(memory.IsDirty(space, 1));
  auto eviction = memory.Insert(space, 2, false);
  ASSERT_TRUE(eviction.has_value());
  EXPECT_TRUE(eviction->dirty);
}

TEST(PhysicalMemory, ReinsertRefreshesRecencyAndDirtiness) {
  PhysicalMemory memory(2);
  const SpaceId space(1);
  memory.Insert(space, 1, true);
  memory.Insert(space, 2, false);
  EXPECT_FALSE(memory.Insert(space, 1, false).has_value());  // refresh, no eviction
  EXPECT_TRUE(memory.IsDirty(space, 1));                     // dirtiness sticks
  auto eviction = memory.Insert(space, 3, false);
  ASSERT_TRUE(eviction.has_value());
  EXPECT_EQ(eviction->page, 2u);  // 1 was refreshed, 2 is the victim
}

TEST(PhysicalMemory, SpacesAreIndependent) {
  PhysicalMemory memory(10);
  const SpaceId a(1);
  const SpaceId b(2);
  memory.Insert(a, 5, false);
  memory.Insert(b, 5, true);
  EXPECT_TRUE(memory.Contains(a, 5));
  EXPECT_TRUE(memory.Contains(b, 5));
  EXPECT_FALSE(memory.IsDirty(a, 5));
  EXPECT_TRUE(memory.IsDirty(b, 5));
  EXPECT_EQ(memory.ResidentCount(a), 1u);
}

TEST(PhysicalMemory, RemoveSpaceDropsEverything) {
  PhysicalMemory memory(10);
  const SpaceId a(1);
  const SpaceId b(2);
  memory.Insert(a, 1, false);
  memory.Insert(a, 2, false);
  memory.Insert(b, 3, false);
  const auto removed = memory.RemoveSpace(a);
  EXPECT_EQ(removed, (std::vector<PageIndex>{1, 2}));
  EXPECT_EQ(memory.used_frames(), 1u);
  EXPECT_TRUE(memory.Contains(b, 3));
}

TEST(PhysicalMemory, PagesOfSortedAscending) {
  PhysicalMemory memory(10);
  const SpaceId space(1);
  for (PageIndex p : {9u, 3u, 7u, 1u}) {
    memory.Insert(space, p, false);
  }
  EXPECT_EQ(memory.PagesOf(space), (std::vector<PageIndex>{1, 3, 7, 9}));
}

TEST(PhysicalMemory, RemoveSingleIsIdempotent) {
  PhysicalMemory memory(4);
  const SpaceId space(1);
  memory.Insert(space, 1, false);
  memory.Remove(space, 1);
  memory.Remove(space, 1);
  EXPECT_EQ(memory.used_frames(), 0u);
}

}  // namespace
}  // namespace accent
