// Content-addressed page service tests (docs/INTERNALS.md §15): the
// PageHash identity discipline, ContentCache LRU lifecycle, PageDirectory
// propagation/crash handling, and the holder-crash fault-walk fallback.
#include <map>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/experiments/chain.h"
#include "src/experiments/testbed.h"
#include "src/net/page_service.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// ---------------------------------------------------------------------------
// Identity properties: equal payloads <=> equal hashes.

TEST(PageHashProperty, EqualPayloadsHashEqually) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const PageData a = MakePatternPage(seed);
    const PageData b = MakePatternPage(seed);  // regenerated, not copied
    EXPECT_EQ(ComputePageHash(a), ComputePageHash(b)) << "seed " << seed;
    // The PageRef memo agrees with the free function.
    EXPECT_EQ(PageRef(a).Hash(), ComputePageHash(b)) << "seed " << seed;
  }
  // The interned zero page, an empty PageData and a materialised all-zero
  // page are the same logical contents and must share one hash.
  EXPECT_EQ(PageRef{}.Hash(), ZeroPageHash());
  EXPECT_EQ(ComputePageHash(PageData{}), ZeroPageHash());
  EXPECT_EQ(ComputePageHash(PageData(kPageSize, 0)), ZeroPageHash());
}

TEST(PageHashProperty, DistinctPayloadsHashDistinctly) {
  // Sample the page universe the simulator actually produces — pattern
  // pages plus the single-byte mutations workload traces perform — and
  // require every distinct payload to get a distinct hash.
  std::map<PageHash, std::uint64_t> seen;
  std::uint64_t label = 0;
  auto expect_fresh = [&](const PageData& page) {
    const PageHash hash = ComputePageHash(page);
    ++label;
    const auto [it, inserted] = seen.emplace(hash, label);
    EXPECT_TRUE(inserted) << "pages " << it->second << " and " << label
                          << " collide on the 128-bit content hash";
  };
  for (std::uint64_t seed = 1; seed <= 512; ++seed) {
    expect_fresh(MakePatternPage(seed));
  }
  // Single-byte mutations of one base page, at every offset stride.
  const PageData base = MakePatternPage(99);
  for (ByteCount offset = 0; offset < kPageSize; offset += 7) {
    PageData mutated = base;
    mutated[offset] ^= 0x01;
    expect_fresh(mutated);
  }
  // Position sensitivity: the same words shifted by one slot must not alias.
  PageData rotated = base;
  std::rotate(rotated.begin(), rotated.begin() + 8, rotated.end());
  expect_fresh(rotated);
  EXPECT_EQ(seen.count(ZeroPageHash()), 0u);
}

// ---------------------------------------------------------------------------
// The deliberate collision: integrity checksums are never dedup identity.
//
// A full 64-bit FNV collision costs a 2^32 birthday search — outside any
// unit-test budget — but the weakness scales linearly: colliding the
// checksum truncated to k bits costs ~2^(k/2) work. Mining a 32-bit
// collision here takes milliseconds, which is exactly why a linearly-mixed
// 64-bit checksum must never name content: its collision margin is mineable
// dust next to the avalanche-mixed 128-bit PageHash, and the cache enforces
// that by re-verifying bytes against the full PageHash at every insertion.
TEST(DeliberateCollision, MinedChecksumCollisionNeverAliasesDedupIdentity) {
  std::unordered_map<std::uint32_t, std::uint64_t> low_bits_seen;
  std::uint64_t seed_a = 0;
  std::uint64_t seed_b = 0;
  for (std::uint64_t seed = 1; seed < 1u << 20; ++seed) {
    const auto low = static_cast<std::uint32_t>(PageIntegrityChecksum(MakePatternPage(seed)));
    const auto [it, inserted] = low_bits_seen.emplace(low, seed);
    if (!inserted) {
      seed_a = it->second;
      seed_b = seed;
      break;
    }
  }
  ASSERT_NE(seed_a, 0u) << "no truncated-checksum collision in 2^20 pages";

  const PageData a = MakePatternPage(seed_a);
  const PageData b = MakePatternPage(seed_b);
  ASSERT_NE(a, b);
  ASSERT_EQ(static_cast<std::uint32_t>(PageIntegrityChecksum(a)),
            static_cast<std::uint32_t>(PageIntegrityChecksum(b)));

  // The deliberately-collided pair stays fully separated under PageHash...
  const PageRef ref_a(a);
  const PageRef ref_b(b);
  ASSERT_NE(ref_a.Hash(), ref_b.Hash());

  // ...and the cache can never cross-serve them: each hash yields exactly
  // its own bytes, and the colliding sibling's hash stays a miss.
  ContentCache cache(/*capacity_pages=*/16);
  EXPECT_TRUE(cache.InsertVerified(ref_a.Hash(), ref_a));
  const PageRef* hit = cache.Lookup(ref_a.Hash());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, a);
  EXPECT_EQ(cache.Lookup(ref_b.Hash()), nullptr);

  // Forged identity — page B claiming page A's name — is rejected and
  // counted, and the cache still serves A's exact bytes afterwards.
  EXPECT_FALSE(cache.InsertVerified(ref_a.Hash(), ref_b));
  EXPECT_EQ(cache.stats().hash_mismatches, 1u);
  hit = cache.Lookup(ref_a.Hash());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, a);
}

// ---------------------------------------------------------------------------
// ContentCache lifecycle.

TEST(ContentCacheTest, LruEvictsColdestUnderCapacityPressure) {
  ContentCache cache(/*capacity_pages=*/3);
  std::vector<PageRef> pages;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    pages.emplace_back(MakePatternPage(seed));
  }

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.InsertVerified(pages[i].Hash(), pages[i]));
  }
  ASSERT_EQ(cache.size_pages(), 3);
  // Touch page 0 so page 1 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(pages[0].Hash()), nullptr);

  ASSERT_TRUE(cache.InsertVerified(pages[3].Hash(), pages[3]));
  EXPECT_EQ(cache.size_pages(), 3);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Contains(pages[1].Hash())) << "victim must be the coldest entry";
  EXPECT_TRUE(cache.Contains(pages[0].Hash()));
  EXPECT_TRUE(cache.Contains(pages[2].Hash()));

  // Pressure keeps working: one more insertion evicts exactly one more.
  ASSERT_TRUE(cache.InsertVerified(pages[4].Hash(), pages[4]));
  EXPECT_EQ(cache.size_pages(), 3);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.Contains(pages[2].Hash()));
  EXPECT_EQ(cache.stats().insertions, 5u);
}

TEST(ContentCacheTest, ZeroPagesAndDuplicatesDoNotConsumeCapacity) {
  ContentCache cache(/*capacity_pages=*/4);
  EXPECT_FALSE(cache.InsertVerified(ZeroPageHash(), PageRef{}));
  EXPECT_EQ(cache.size_pages(), 0);

  const PageRef page(MakePatternPage(7));
  EXPECT_TRUE(cache.InsertVerified(page.Hash(), page));
  EXPECT_TRUE(cache.InsertVerified(page.Hash(), page));  // re-insert: refresh, no growth
  EXPECT_EQ(cache.size_pages(), 1);
}

// ---------------------------------------------------------------------------
// PageDirectory: propagation, ranking, crash handling.

TEST(PageDirectoryTest, AnnouncementsBecomeVisibleAfterPropagation) {
  PageDirectory directory(/*propagation=*/Ms(4));
  const PageHash hash = ComputePageHash(MakePatternPage(1));
  directory.SetServicePort(HostId(2), PortId(20));
  directory.RecordHolder(hash, HostId(2), SimTime(0));

  EXPECT_FALSE(directory.NearestHolder(hash, SimTime(0) + Ms(3), HostId(3), HostId(1))
                   .has_value())
      << "a probe must be able to race an announcement";
  const auto holder = directory.NearestHolder(hash, SimTime(0) + Ms(4), HostId(3), HostId(1));
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, HostId(2));
}

TEST(PageDirectoryTest, RanksHoldersByLinkCostAndExcludesParties) {
  PageDirectory directory(Ms(0));
  const PageHash hash = ComputePageHash(MakePatternPage(2));
  directory.SetHostRank(HostId(2), 2.0);
  directory.SetHostRank(HostId(3), 1.0);  // cheaper link
  directory.SetServicePort(HostId(2), PortId(20));
  directory.SetServicePort(HostId(3), PortId(30));
  directory.RecordHolder(hash, HostId(2), SimTime(0));
  directory.RecordHolder(hash, HostId(3), SimTime(0));

  auto holder = directory.NearestHolder(hash, SimTime(0), HostId(4), HostId(1));
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, HostId(3));
  // The querying host and the origin never count as holders.
  holder = directory.NearestHolder(hash, SimTime(0), HostId(3), HostId(1));
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, HostId(2));
  EXPECT_FALSE(directory.NearestHolder(hash, SimTime(0), HostId(3), HostId(2)).has_value());
}

TEST(PageDirectoryTest, DropHostForgetsEveryHolding) {
  PageDirectory directory(Ms(0));
  const PageHash h1 = ComputePageHash(MakePatternPage(1));
  const PageHash h2 = ComputePageHash(MakePatternPage(2));
  directory.SetServicePort(HostId(2), PortId(20));
  directory.RecordHolder(h1, HostId(2), SimTime(0));
  directory.RecordHolder(h2, HostId(2), SimTime(0));

  directory.DropHost(HostId(2));
  EXPECT_FALSE(directory.NearestHolder(h1, SimTime(0), HostId(3), HostId(1)).has_value());
  EXPECT_FALSE(directory.NearestHolder(h2, SimTime(0), HostId(3), HostId(1)).has_value());
  EXPECT_EQ(directory.hosts_dropped(), 1u);

  // The host may come back and re-announce; old entries never resurface.
  directory.RecordHolder(h1, HostId(2), SimTime(0));
  EXPECT_TRUE(directory.NearestHolder(h1, SimTime(0), HostId(3), HostId(1)).has_value());
  EXPECT_FALSE(directory.NearestHolder(h2, SimTime(0), HostId(3), HostId(1)).has_value());
}

// ---------------------------------------------------------------------------
// Holder crash mid-fault: the walk falls back to the origin, no hang.

TEST(PageServiceFaultWalk, HolderCrashMidFaultFallsBackToOrigin) {
  TestbedConfig config;
  config.host_count = 3;
  config.content_cache = true;
  // Host index 1 (HostId 2) — the first destination, hence the only
  // non-origin holder — dies for good at 150 s, before the second
  // migration's faults go looking for it.
  config.fault_plan.crashes.push_back(CrashWindow{HostId(2), SimTime(0) + Sec(150.0),
                                                  kFaultForever});
  Testbed bed(config);
  const std::uint64_t reference = ChainReferenceChecksum("Minprog", 42);

  // Round 1, 0 -> 1: seeds host 1's ContentCache with the image and
  // announces it in the directory.
  WorkloadInstance first = BuildWorkload(WorkloadByName("Minprog"), bed.host(0), 42);
  bed.manager(0)->RegisterLocal(first.process.get());
  Process* landed1 = nullptr;
  bed.manager(1)->set_on_insert([&](Process* inserted) { landed1 = inserted; });
  bool migrated1 = false;
  bed.manager(0)->Migrate(first.process.get(), bed.manager(1)->port(),
                          TransferStrategy::kPureIou,
                          [&](const MigrationRecord&) { migrated1 = true; });

  // Round 2, 0 -> 2, launched only after the holder is dead: the fault
  // walk's holder pulls must time out, drop host 1 from the directory and
  // re-pull from the origin.
  WorkloadInstance second = BuildWorkload(WorkloadByName("Minprog"), bed.host(0), 42);
  Process* landed2 = nullptr;
  bed.manager(2)->set_on_insert([&](Process* inserted) { landed2 = inserted; });
  bool migrated2 = false;
  bed.sim().ScheduleAt(SimTime(0) + Sec(200.0), [&] {
    bed.manager(0)->RegisterLocal(second.process.get());
    bed.manager(0)->Migrate(second.process.get(), bed.manager(2)->port(),
                            TransferStrategy::kPureIou,
                            [&](const MigrationRecord&) { migrated2 = true; });
  });

  ASSERT_TRUE(bed.RunGuarded(Sec(3600.0))) << "holder crash must never strand a fault";
  ASSERT_TRUE(migrated1 && landed1 != nullptr && landed1->done());
  ASSERT_TRUE(migrated2 && landed2 != nullptr && landed2->done());

  // Both incarnations observed exactly the reference contents.
  EXPECT_EQ(ObservableChecksum(*landed1->space(), bed.segments(), first.planned_touches),
            reference);
  EXPECT_EQ(ObservableChecksum(*landed2->space(), bed.segments(), second.planned_touches),
            reference);

  const PagerStats& stats = bed.pager(2)->stats();
  EXPECT_GE(stats.cache_holder_failovers, 1u) << "round 2 never probed the dead holder";
  EXPECT_EQ(stats.cache_pages_from_holders, 0u) << "a dead holder cannot serve payload";
  EXPECT_EQ(stats.cache_hash_rejects, 0u);
  EXPECT_GE(bed.page_directory()->hosts_dropped(), 1u)
      << "the timed-out holder must be dropped from the directory";
  EXPECT_GT(stats.imag_pages_fetched, 0u) << "the origin served the fallback pulls";
}

}  // namespace
}  // namespace accent
