// PageRef + PageStore unit tests: the zero-copy data plane's foundations.
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/page_data.h"
#include "src/base/page_ref.h"
#include "src/base/page_store.h"

namespace accent {
namespace {

TEST(PageRefTest, DefaultIsInternedZeroPage) {
  ResetPageCounters();
  PageRef zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(IsZeroPage(zero));
  EXPECT_EQ(zero.use_count(), 0);
  EXPECT_EQ(PageByteAt(zero, 0), 0);
  EXPECT_EQ(PageByteAt(zero, kPageSize - 1), 0);

  // Copying zero pages allocates nothing and counts nothing.
  PageRef other = zero;
  const PageCounterSnapshot counters = ReadPageCounters();
  EXPECT_EQ(counters.payload_allocs, 0u);
  EXPECT_EQ(counters.page_bytes_copied, 0u);
  EXPECT_EQ(counters.payload_shares, 0u);
}

TEST(PageRefTest, ZeroWriteToZeroPageStaysInterned) {
  PageRef zero;
  zero.WriteByte(17, 0);
  EXPECT_TRUE(zero.IsZero());  // still no payload
  zero.WriteByte(17, 5);
  EXPECT_FALSE(zero.IsZero());
  EXPECT_EQ(zero.ByteAt(17), 5);
  EXPECT_EQ(zero.ByteAt(16), 0);
}

TEST(PageRefTest, ChecksumParityWithPageData) {
  const PageData pattern = MakePatternPage(7);
  const PageRef ref(pattern);
  EXPECT_EQ(PageIntegrityChecksum(ref), PageIntegrityChecksum(pattern));
  // Zero page hashes identically to an empty PageData (kPageSize zeros).
  EXPECT_EQ(PageIntegrityChecksum(PageRef{}), PageIntegrityChecksum(PageData{}));
}

TEST(PageRefTest, EqualityMatchesPageDataSemantics) {
  const PageRef a(MakePatternPage(3));
  const PageRef b(MakePatternPage(3));
  const PageRef c(MakePatternPage(4));
  EXPECT_EQ(a, b);  // distinct payloads, same bytes
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a, MakePatternPage(3));
  EXPECT_EQ(MakePatternPage(3), a);  // C++20 reversed candidate
  // Old convention: an empty page is not equal to a materialised zero page.
  PageRef materialised(PageData(kPageSize, 0));
  EXPECT_FALSE(PageRef{} == materialised);
}

TEST(PageRefTest, CopySharesPayloadWithoutCopyingBytes) {
  ResetPageCounters();
  PageRef a(MakePatternPage(1));
  EXPECT_EQ(ReadPageCounters().payload_allocs, 1u);
  PageRef b = a;
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.use_count(), 2);
  const PageCounterSnapshot counters = ReadPageCounters();
  EXPECT_EQ(counters.payload_allocs, 1u);  // no second allocation
  EXPECT_EQ(counters.page_bytes_copied, 0u);
  EXPECT_EQ(counters.payload_shares, 1u);
}

TEST(PageRefTest, CowWriteIsolatesSharers) {
  ResetPageCounters();
  PageRef a(MakePatternPage(2));
  PageRef b = a;
  const std::uint8_t original = a.ByteAt(100);
  b.WriteByte(100, static_cast<std::uint8_t>(original + 1));
  EXPECT_EQ(a.ByteAt(100), original) << "writer must not be visible to sharers";
  EXPECT_EQ(b.ByteAt(100), static_cast<std::uint8_t>(original + 1));
  EXPECT_EQ(a.use_count(), 1);
  EXPECT_EQ(b.use_count(), 1);
  const PageCounterSnapshot counters = ReadPageCounters();
  EXPECT_EQ(counters.cow_breaks, 1u);
  EXPECT_EQ(counters.page_bytes_copied, kPageSize);
}

TEST(PageRefTest, ExclusiveWriteDoesNotClone) {
  ResetPageCounters();
  PageRef a(MakePatternPage(5));
  a.WriteByte(0, 42);
  const PageCounterSnapshot counters = ReadPageCounters();
  EXPECT_EQ(counters.cow_breaks, 0u);
  EXPECT_EQ(counters.page_bytes_copied, 0u);
}

TEST(PageRefTest, LegacyDeepCopyModeClonesOnCopy) {
  ResetPageCounters();
  PageRef a(MakePatternPage(6));
  SetLegacyDeepCopyMode(true);
  PageRef b = a;
  SetLegacyDeepCopyMode(false);
  EXPECT_EQ(a.use_count(), 1);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_EQ(a, b);
  const PageCounterSnapshot counters = ReadPageCounters();
  EXPECT_EQ(counters.page_bytes_copied, kPageSize);
  EXPECT_EQ(counters.payload_shares, 0u);
}

TEST(PageStoreTest, StoreFindEraseRoundTrip) {
  PageStore store;
  EXPECT_TRUE(store.empty());
  store.Store(10, PageRef(MakePatternPage(10)));
  store.Store(11, PageRef(MakePatternPage(11)));
  store.Store(12, PageRef(MakePatternPage(12)));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.run_count(), 1u) << "contiguous pages coalesce into one run";
  ASSERT_NE(store.Find(11), nullptr);
  EXPECT_EQ(*store.Find(11), MakePatternPage(11));
  EXPECT_EQ(store.Find(9), nullptr);
  EXPECT_EQ(store.Find(13), nullptr);
  store.Erase(11);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.run_count(), 2u) << "interior erase splits the run";
  EXPECT_EQ(store.Find(11), nullptr);
  EXPECT_NE(store.Find(10), nullptr);
  EXPECT_NE(store.Find(12), nullptr);
}

TEST(PageStoreTest, BridgingStoreMergesRuns) {
  PageStore store;
  store.Store(5, PageRef(MakePatternPage(5)));
  store.Store(7, PageRef(MakePatternPage(7)));
  EXPECT_EQ(store.run_count(), 2u);
  store.Store(6, PageRef(MakePatternPage(6)));
  EXPECT_EQ(store.run_count(), 1u);
  EXPECT_EQ(store.size(), 3u);
  for (PageIndex p = 5; p <= 7; ++p) {
    ASSERT_NE(store.Find(p), nullptr) << p;
    EXPECT_EQ(*store.Find(p), MakePatternPage(p));
  }
}

TEST(PageStoreTest, PrependAndReplace) {
  PageStore store;
  store.Store(20, PageRef(MakePatternPage(20)));
  store.Store(19, PageRef(MakePatternPage(19)));  // prepend to run
  EXPECT_EQ(store.run_count(), 1u);
  store.Store(20, PageRef(MakePatternPage(99)));  // replace in place
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(*store.Find(20), MakePatternPage(99));
  EXPECT_EQ(*store.Find(19), MakePatternPage(19));
}

TEST(PageStoreTest, ZeroRefsArePresentEntries) {
  PageStore store;
  store.Store(3, PageRef{});
  EXPECT_TRUE(store.Contains(3));
  EXPECT_TRUE(store.Find(3)->IsZero());
  EXPECT_EQ(store.size(), 1u);
}

TEST(PageStoreTest, EraseRangeCarvesHoles) {
  PageStore store;
  for (PageIndex p = 0; p < 10; ++p) {
    store.Store(p, PageRef(MakePatternPage(p)));
  }
  store.EraseRange(3, 7);
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.run_count(), 2u);
  for (PageIndex p = 0; p < 10; ++p) {
    EXPECT_EQ(store.Contains(p), p < 3 || p >= 7) << p;
  }
  // Range spanning several runs, ends beyond the data.
  store.EraseRange(0, 100);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.run_count(), 0u);
}

TEST(PageStoreTest, EraseRangeTrimsEdges) {
  PageStore store;
  for (PageIndex p = 10; p < 20; ++p) {
    store.Store(p, PageRef(MakePatternPage(p)));
  }
  store.EraseRange(5, 12);  // overlaps the front only
  EXPECT_EQ(store.size(), 8u);
  EXPECT_FALSE(store.Contains(11));
  EXPECT_TRUE(store.Contains(12));
  store.EraseRange(18, 25);  // overlaps the back only
  EXPECT_EQ(store.size(), 6u);
  EXPECT_TRUE(store.Contains(17));
  EXPECT_FALSE(store.Contains(18));
  EXPECT_EQ(store.run_count(), 1u);
}

TEST(PageStoreTest, ForEachVisitsAscending) {
  PageStore store;
  store.Store(50, PageRef(MakePatternPage(50)));
  store.Store(2, PageRef(MakePatternPage(2)));
  store.Store(51, PageRef(MakePatternPage(51)));
  std::vector<PageIndex> seen;
  store.ForEach([&](PageIndex page, const PageRef& ref) {
    seen.push_back(page);
    EXPECT_EQ(ref, MakePatternPage(page));
  });
  EXPECT_EQ(seen, (std::vector<PageIndex>{2, 50, 51}));
}

TEST(PageStoreTest, SharedPayloadAcrossStores) {
  // The same payload stored in two stores (source segment + message +
  // destination space in real life) is one allocation with three holders.
  ResetPageCounters();
  PageRef page(MakePatternPage(1));
  PageStore a;
  PageStore b;
  a.Store(0, page);
  b.Store(9, page);
  EXPECT_EQ(page.use_count(), 3);
  EXPECT_EQ(ReadPageCounters().payload_allocs, 1u);
}

}  // namespace
}  // namespace accent
