// Fault injection and the reliable transport built to survive it.
//
// The headline property (the ISSUE's acceptance bar): under any seeded
// drop + duplicate + reorder plan with no permanent partition, every
// migration completes and the destination's touched pages are
// byte-identical to the lossless run. Crash windows then exercise the
// other two verdicts — source-side rollback when the destination dies
// mid-transfer, and a terminal IOU fault (never a hang) when the source
// dies while copy-on-reference pages are still owed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/experiments/failure_sweep.h"
#include "src/experiments/testbed.h"
#include "src/net/fault.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// --- FaultInjector unit behaviour ----------------------------------------

TEST(FaultInjectorTest, TrivialPlanIsDisabled) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  FaultPlan lossy;
  lossy.drop = 0.01;
  EXPECT_TRUE(lossy.enabled());
  FaultPlan crashy;
  crashy.crashes.push_back(CrashWindow{HostId(1), Sec(1.0), Sec(2.0)});
  EXPECT_TRUE(crashy.enabled());
}

TEST(FaultInjectorTest, VerdictStreamIsSeedDeterministic) {
  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.delay = 0.3;
  plan.reorder = 0.3;
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  FaultInjector c(plan, 100);
  bool any_difference_from_c = false;
  for (int i = 0; i < 2000; ++i) {
    const SimTime now = Us(i);
    const FaultVerdict va = a.Judge(HostId(1), HostId(2), now);
    const FaultVerdict vb = b.Judge(HostId(1), HostId(2), now);
    const FaultVerdict vc = c.Judge(HostId(1), HostId(2), now);
    EXPECT_EQ(va.lost, vb.lost);
    ASSERT_EQ(va.extra_delays.size(), vb.extra_delays.size());
    for (std::size_t d = 0; d < va.extra_delays.size(); ++d) {
      EXPECT_EQ(va.extra_delays[d], vb.extra_delays[d]);
    }
    if (va.lost != vc.lost || va.extra_delays != vc.extra_delays) {
      any_difference_from_c = true;
    }
  }
  EXPECT_TRUE(any_difference_from_c);  // a different seed draws differently
}

TEST(FaultInjectorTest, ExtremeProbabilitiesBehaveExactly) {
  FaultPlan drop_all;
  drop_all.drop = 1.0;
  FaultInjector dropper(drop_all, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(dropper.Judge(HostId(1), HostId(2), SimTime{0}).lost);
  }
  EXPECT_EQ(dropper.stats().packets_dropped, 50u);

  FaultPlan dup_all;
  dup_all.duplicate = 1.0;
  FaultInjector duper(dup_all, 7);
  for (int i = 0; i < 50; ++i) {
    const FaultVerdict verdict = duper.Judge(HostId(1), HostId(2), SimTime{0});
    EXPECT_FALSE(verdict.lost);
    EXPECT_EQ(verdict.extra_delays.size(), 2u);
  }
  EXPECT_EQ(duper.stats().packets_duplicated, 50u);
}

TEST(FaultInjectorTest, CrashWindowsAndPartitionsBlockInInterval) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{HostId(2), Sec(1.0), Sec(2.0)});
  plan.crashes.push_back(CrashWindow{HostId(3), Sec(5.0), kFaultForever});
  plan.partitions.push_back(LinkPartition{HostId(1), HostId(4), Sec(1.0), Sec(2.0)});
  FaultInjector injector(plan, 7);

  EXPECT_FALSE(injector.HostDown(HostId(2), Ms(999)));
  EXPECT_TRUE(injector.HostDown(HostId(2), Sec(1.0)));
  EXPECT_TRUE(injector.HostDown(HostId(2), Ms(1999)));
  EXPECT_FALSE(injector.HostDown(HostId(2), Sec(2.0)));  // end exclusive
  EXPECT_TRUE(injector.HostDown(HostId(3), Sec(100000.0)));  // permanent

  // Partitions are symmetric; unrelated pairs are unaffected.
  EXPECT_TRUE(injector.LinkCut(HostId(1), HostId(4), Sec(1.5)));
  EXPECT_TRUE(injector.LinkCut(HostId(4), HostId(1), Sec(1.5)));
  EXPECT_FALSE(injector.LinkCut(HostId(1), HostId(4), Sec(2.5)));
  EXPECT_FALSE(injector.LinkCut(HostId(1), HostId(2), Sec(1.5)));

  // A blocked transmission is lost and accounted as blocked, not dropped.
  EXPECT_TRUE(injector.Judge(HostId(1), HostId(2), Sec(1.5)).lost);
  EXPECT_TRUE(injector.Judge(HostId(2), HostId(1), Sec(1.5)).lost);
  EXPECT_EQ(injector.stats().packets_blocked, 2u);
  EXPECT_EQ(injector.stats().packets_dropped, 0u);
}

// --- lossless path stays untouched ----------------------------------------

TEST(FaultWiringTest, DefaultTestbedCarriesNoFaultMachinery) {
  Testbed bed;
  EXPECT_EQ(bed.fault_injector(), nullptr);
  for (int host = 0; host < bed.host_count(); ++host) {
    EXPECT_FALSE(bed.netmsg(host)->reliable());
    EXPECT_EQ(bed.netmsg(host)->stats().acks_sent, 0u);
  }
  EXPECT_EQ(bed.network().deliveries_lost(), 0u);
}

TEST(FaultWiringTest, FaultPlanSwitchesOnReliableTransport) {
  TestbedConfig config;
  config.fault_plan.drop = 0.05;
  Testbed bed(config);
  ASSERT_NE(bed.fault_injector(), nullptr);
  for (int host = 0; host < bed.host_count(); ++host) {
    EXPECT_TRUE(bed.netmsg(host)->reliable());
  }
}

TEST(FaultWiringTest, RunGuardedFlagsEventsBeyondTheHorizon) {
  Testbed bed;
  EXPECT_TRUE(bed.RunGuarded(Sec(1.0)));  // empty queue drains trivially
  bed.sim().ScheduleAfter(Sec(7200.0), []() {});
  EXPECT_FALSE(bed.RunGuarded(Sec(3600.0)));
  EXPECT_EQ(bed.sim().pending_events(), 1u);
  EXPECT_TRUE(bed.RunGuarded(Sec(7200.0)));  // reachable after all
}

// --- the acceptance property ----------------------------------------------

// Any seeded drop+duplicate+delay+reorder plan (no partitions, no crashes):
// the migration must complete and the destination's touched pages must be
// byte-identical to the lossless baseline, for a randomly drawn workload
// and strategy.
class LossyPlanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyPlanProperty, AnyLossyPlanCompletesByteIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);

  FailureScenario scenario;
  scenario.name = "random";
  scenario.drop = 0.01 + 0.07 * rng.NextDouble();
  scenario.duplicate = 0.08 * rng.NextDouble();
  scenario.delay = 0.25 * rng.NextDouble();
  scenario.reorder = 0.30 * rng.NextDouble();

  const std::vector<WorkloadSpec>& workloads = RepresentativeWorkloads();
  const std::string workload = workloads[rng.NextBelow(workloads.size())].name;
  const auto strategy = static_cast<TransferStrategy>(rng.NextBelow(3));
  SCOPED_TRACE(workload + "/" + StrategyName(strategy) + " drop=" +
               std::to_string(scenario.drop) + " dup=" + std::to_string(scenario.duplicate) +
               " reorder=" + std::to_string(scenario.reorder));

  const FailureBaseline baseline = RunFailureBaseline(workload, strategy, seed);
  const FailureTrialResult trial =
      RunFailureTrial(workload, strategy, scenario, baseline, seed);

  EXPECT_EQ(trial.outcome, FailureOutcome::kCompleted);
  EXPECT_TRUE(trial.integrity_ok);
  EXPECT_GE(trial.slowdown, 1.0);  // retries never make it faster
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyPlanProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LossyTransport, RetriesAndDedupDoRealWork) {
  // A bulk transfer under the acceptance recipe must actually exercise the
  // machinery: packets lost on the wire, fragments retransmitted,
  // duplicates suppressed at the receiver — and still land intact.
  FailureScenario lossy = FailureScenarios()[1];
  ASSERT_EQ(lossy.name, "lossy5");
  const FailureBaseline baseline =
      RunFailureBaseline("Lisp-Del", TransferStrategy::kPureCopy, 42);
  const FailureTrialResult trial =
      RunFailureTrial("Lisp-Del", TransferStrategy::kPureCopy, lossy, baseline, 42);
  EXPECT_EQ(trial.outcome, FailureOutcome::kCompleted);
  EXPECT_TRUE(trial.integrity_ok);
  EXPECT_GT(trial.deliveries_lost, 0u);
  EXPECT_GT(trial.fragments_retransmitted, 0u);
  EXPECT_GT(trial.retransmit_bytes, 0u);
  EXPECT_GT(trial.duplicates_suppressed, 0u);
  EXPECT_EQ(trial.transfers_dead_lettered, 0u);
}

// --- crash windows ---------------------------------------------------------

TEST(CrashScenarios, DestinationCrashAbortsAndRollsBack) {
  const FailureScenario& dest_crash = FailureScenarios()[2];
  ASSERT_TRUE(dest_crash.crash_dest);
  for (TransferStrategy strategy : {TransferStrategy::kPureCopy, TransferStrategy::kPureIou,
                                    TransferStrategy::kResidentSet}) {
    SCOPED_TRACE(StrategyName(strategy));
    const FailureBaseline baseline = RunFailureBaseline("PM-Mid", strategy, 42);
    const FailureTrialResult trial =
        RunFailureTrial("PM-Mid", strategy, dest_crash, baseline, 42);
    EXPECT_EQ(trial.outcome, FailureOutcome::kAborted);
    EXPECT_TRUE(trial.rolled_back);
    // The rolled-back process reran its trace at home over identical data.
    EXPECT_TRUE(trial.integrity_ok);
    EXPECT_GT(trial.finished.count(), 0);
    EXPECT_GT(trial.transfers_dead_lettered, 0u);
  }
}

TEST(CrashScenarios, SourceCrashIsTerminalFaultForIouButSurvivedByPureCopy) {
  const FailureScenario& source_crash = FailureScenarios()[3];
  ASSERT_TRUE(source_crash.crash_source);

  // Pure-copy carries no residual dependency: the source's death after
  // resumption must be invisible.
  const FailureBaseline copy_base =
      RunFailureBaseline("PM-Mid", TransferStrategy::kPureCopy, 42);
  const FailureTrialResult copy_trial =
      RunFailureTrial("PM-Mid", TransferStrategy::kPureCopy, source_crash, copy_base, 42);
  EXPECT_EQ(copy_trial.outcome, FailureOutcome::kCompleted);
  EXPECT_TRUE(copy_trial.integrity_ok);

  // Pure-IOU owes every page to the dead source: the next fetch can never
  // be satisfied and must surface as a terminal fault — not a hang.
  const FailureBaseline iou_base =
      RunFailureBaseline("PM-Mid", TransferStrategy::kPureIou, 42);
  const FailureTrialResult iou_trial =
      RunFailureTrial("PM-Mid", TransferStrategy::kPureIou, source_crash, iou_base, 42);
  EXPECT_EQ(iou_trial.outcome, FailureOutcome::kTerminalFault);
  EXPECT_GT(iou_trial.transfers_dead_lettered, 0u);
}

// --- matrix plumbing -------------------------------------------------------

TEST(FailureMatrixTest, ScenarioGridIsStable) {
  const std::vector<FailureScenario>& scenarios = FailureScenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "drop2");
  EXPECT_EQ(scenarios[1].name, "lossy5");
  EXPECT_DOUBLE_EQ(scenarios[1].drop, 0.05);
  EXPECT_DOUBLE_EQ(scenarios[1].duplicate, 0.05);
  EXPECT_GT(scenarios[1].reorder, 0.0);
  EXPECT_EQ(scenarios[2].name, "dest_crash");
  EXPECT_EQ(scenarios[3].name, "source_crash");
}

TEST(FailureMatrixTest, JsonCarriesCountsAndTrials) {
  FailureMatrix matrix;
  FailureTrialResult trial;
  trial.workload = "Minprog";
  trial.strategy = TransferStrategy::kPureIou;
  trial.scenario = "lossy5";
  trial.outcome = FailureOutcome::kCompleted;
  trial.integrity_ok = true;
  matrix.trials.push_back(trial);
  matrix.completed = 1;

  const Json json = FailureMatrixToJson(matrix);
  EXPECT_EQ(json.Get("bench").AsString(), "failure_matrix");
  EXPECT_EQ(json.Get("completed").AsUint64(), 1u);
  EXPECT_EQ(json.Get("hung").AsUint64(), 0u);
  ASSERT_EQ(json.Get("trials").AsArray().size(), 1u);
  const Json& entry = json.Get("trials").AsArray()[0];
  EXPECT_EQ(entry.Get("outcome").AsString(), "completed");
  EXPECT_EQ(entry.Get("strategy").AsString(), std::string(StrategyName(trial.strategy)));
  // Canonical: equal matrices dump byte-identically.
  EXPECT_EQ(json.Dump(2), FailureMatrixToJson(matrix).Dump(2));
}

}  // namespace
}  // namespace accent
