// CPU priority-lane tests and the fault-priority NetMsgServer behaviour.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/vm/backer.h"

namespace accent {
namespace {

TEST(CpuPriority, HighLaneOvertakesQueuedNormalWork) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  std::vector<int> order;
  cpu.Submit(CpuWork::kProcess, Ms(10), [&] { order.push_back(1); });  // running
  cpu.Submit(CpuWork::kProcess, Ms(10), [&] { order.push_back(2); });  // queued normal
  cpu.Submit(CpuWork::kPager, Ms(1), [&] { order.push_back(3); }, CpuPriority::kHigh);
  sim.Run();
  // The high item cannot preempt the running one but beats the queued one.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(CpuPriority, AllNormalIsPlainFcfs) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    cpu.Submit(CpuWork::kProcess, Ms(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CpuPriority, HighLaneIsFcfsWithinItself) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  std::vector<int> order;
  cpu.Submit(CpuWork::kProcess, Ms(10), nullptr);
  cpu.Submit(CpuWork::kPager, Ms(1), [&] { order.push_back(1); }, CpuPriority::kHigh);
  cpu.Submit(CpuWork::kPager, Ms(1), [&] { order.push_back(2); }, CpuPriority::kHigh);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CpuPriority, AvailableAtReflectsBacklog) {
  Simulator sim;
  Cpu cpu(&sim, HostId(1));
  EXPECT_EQ(cpu.available_at(), sim.Now());
  cpu.Submit(CpuWork::kProcess, Ms(10), nullptr);
  cpu.Submit(CpuWork::kProcess, Ms(5), nullptr);
  EXPECT_EQ(cpu.available_at(), SimTime(Ms(15)));
  EXPECT_EQ(cpu.queued_items(), 1u);  // one running, one queued
  sim.Run();
  EXPECT_EQ(cpu.queued_items(), 0u);
}

TEST(FaultPriority, FaultServiceOvertakesBulkTransfer) {
  // A remote fault issued while a large pure-copy RIMAS is streaming out of
  // the same host: with the priority lane the fault's request overtakes the
  // queued bulk fragments; without it, it waits for all of them.
  auto run = [](bool priority) {
    TestbedConfig config;
    config.costs.fault_priority_lane = priority;
    Testbed bed(config);

    // Backed object on host 1 (source of both bulk and fault service).
    Segment* obj = bed.segments().CreateReal(16 * kPageSize, "obj");
    for (PageIndex p = 0; p < 16; ++p) {
      obj->StorePage(p, MakePatternPage(p));
    }
    SegmentBacker* backer = &bed.netmsg(0)->backer();
    const IouRef iou = backer->Back(obj);

    // Host 2 maps it and will fault.
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(1)->id);
    Segment* standin = bed.segments().CreateImaginary(16 * kPageSize, iou, "standin");
    space->MapImaginary(0, 16 * kPageSize, standin, 0);

    // Kick off a 1 MB bulk transfer host 1 -> host 2.
    struct Sink : Receiver {
      void HandleMessage(Message) override {}
    };
    static Sink sink;
    const PortId bulk_port = bed.fabric().AllocatePort(bed.host(1)->id, &sink, "bulk");
    Message bulk;
    bulk.dest = bulk_port;
    bulk.no_ious = true;
    std::vector<PageData> pages(2048, MakePatternPage(9));
    bulk.regions.push_back(MemoryRegion::Data(0, std::move(pages)));
    ACCENT_CHECK(bed.fabric().Send(bed.host(0)->id, std::move(bulk)).ok());

    // Fault shortly after the bulk send began.
    SimDuration fault_latency{0};
    bed.sim().RunUntil(Ms(500));
    const SimTime start = bed.sim().Now();
    bool done = false;
    bed.pager(1)->Access(space.get(), 3 * kPageSize, false, [&](const AccessOutcome& o) {
      EXPECT_FALSE(o.failed);
      fault_latency = bed.sim().Now() - start;
      done = true;
    });
    bed.sim().Run();
    EXPECT_TRUE(done);
    EXPECT_EQ(space->ReadPage(3), MakePatternPage(3));
    return fault_latency;
  };

  const SimDuration without = run(false);
  const SimDuration with = run(true);
  // Without the lane the fault waits behind ~64 s of bulk handling.
  EXPECT_GT(ToSeconds(without), 10.0);
  // With it, it slips between fragments: well under a second of queueing.
  EXPECT_LT(ToSeconds(with), 2.0);
  EXPECT_LT(ToSeconds(with) * 5, ToSeconds(without));
}

}  // namespace
}  // namespace accent
