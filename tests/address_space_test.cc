// Address-space tests: layout, classification, data plane, IOU targets.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/vm/address_space.h"

namespace accent {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() : space_(SpaceId(1), HostId(1)) {}

  Testbed bed;
  AddressSpace space_;
};

TEST_F(AddressSpaceTest, ValidateCreatesRealZero) {
  space_.Validate(0, 4 * kPageSize);
  EXPECT_EQ(space_.ClassOf(0), MemClass::kRealZero);
  EXPECT_EQ(space_.ClassOf(4 * kPageSize - 1), MemClass::kRealZero);
  EXPECT_EQ(space_.ClassOf(4 * kPageSize), MemClass::kBad);
  EXPECT_EQ(space_.RealZeroBytes(), 4 * kPageSize);
  EXPECT_EQ(space_.RealBytes(), 0u);
}

TEST_F(AddressSpaceTest, ValidateWholeSpaceIsCheap) {
  // The Lisp pattern: 4 GB validated at birth.
  space_.Validate(0, kAddressSpaceLimit);
  EXPECT_EQ(space_.TotalValidatedBytes(), kAddressSpaceLimit);
  EXPECT_EQ(space_.map_entries(), 1u);
}

TEST_F(AddressSpaceTest, MapRealClassifiesAndReads) {
  Segment* seg = bed.segments().CreateReal(8 * kPageSize, "img");
  seg->StorePage(0, MakePatternPage(7));
  space_.MapReal(2 * kPageSize, 4 * kPageSize, seg, 0, false);
  EXPECT_EQ(space_.ClassOf(2 * kPageSize), MemClass::kReal);
  EXPECT_EQ(space_.ReadPage(2), MakePatternPage(7));
  EXPECT_EQ(space_.ReadPage(3), PageData{});  // sparse segment page
  EXPECT_EQ(space_.RealBytes(), 2 * kPageSize);
}

TEST_F(AddressSpaceTest, SegmentOffsetsRespected) {
  Segment* seg = bed.segments().CreateReal(8 * kPageSize, "img");
  seg->StorePage(3, MakePatternPage(99));
  // VA page 10 maps to segment page 3.
  space_.MapReal(10 * kPageSize, 12 * kPageSize, seg, 3 * kPageSize, false);
  EXPECT_EQ(space_.ReadPage(10), MakePatternPage(99));
}

TEST_F(AddressSpaceTest, ReadByteThroughMapping) {
  Segment* seg = bed.segments().CreateReal(kPageSize, "img");
  PageData page = MakePatternPage(5);
  const std::uint8_t expected = page[17];
  seg->StorePage(0, std::move(page));
  space_.MapReal(0, kPageSize, seg, 0, false);
  EXPECT_EQ(space_.ReadByte(17), expected);
}

TEST_F(AddressSpaceTest, InstallPageMakesPrivateAndReal) {
  space_.Validate(0, 2 * kPageSize);
  EXPECT_FALSE(space_.HasPrivatePage(0));
  space_.InstallPage(0, MakePatternPage(3));
  EXPECT_TRUE(space_.HasPrivatePage(0));
  EXPECT_EQ(space_.ClassOf(0), MemClass::kReal);
  EXPECT_EQ(space_.ClassOf(kPageSize), MemClass::kRealZero);
  EXPECT_EQ(space_.ReadPage(0), MakePatternPage(3));
}

TEST_F(AddressSpaceTest, WriteRequiresPrivatePage) {
  space_.Validate(0, kPageSize);
  space_.InstallPage(0, PageData{});
  space_.WriteByte(5, 42);
  EXPECT_EQ(space_.ReadByte(5), 42);
  EXPECT_EQ(space_.ReadByte(6), 0);
}

TEST_F(AddressSpaceTest, PrivatePageShadowsSegment) {
  Segment* seg = bed.segments().CreateReal(kPageSize, "img");
  seg->StorePage(0, MakePatternPage(1));
  space_.MapReal(0, kPageSize, seg, 0, false);
  space_.InstallPage(0, MakePatternPage(2));
  EXPECT_EQ(space_.ReadPage(0), MakePatternPage(2));
  EXPECT_EQ(seg->ReadPage(0), MakePatternPage(1));  // origin untouched
}

TEST_F(AddressSpaceTest, NeedsCopyOnWriteOnlyForSegmentBackedPages) {
  Segment* seg = bed.segments().CreateReal(kPageSize, "img");
  space_.MapReal(0, kPageSize, seg, 0, false);
  space_.Validate(kPageSize, 2 * kPageSize);
  EXPECT_TRUE(space_.NeedsCopyOnWrite(0));
  EXPECT_FALSE(space_.NeedsCopyOnWrite(1));
  space_.InstallPage(0, space_.ReadPage(0));
  EXPECT_FALSE(space_.NeedsCopyOnWrite(0));
}

TEST_F(AddressSpaceTest, ImagTargetComputesBackerOffset) {
  const IouRef iou{PortId(9), SegmentId(9), 4 * kPageSize};
  Segment* imag = bed.segments().CreateImaginary(64 * kPageSize, iou, "standin");
  space_.MapImaginary(10 * kPageSize, 20 * kPageSize, imag, 2 * kPageSize);
  EXPECT_EQ(space_.ClassOf(10 * kPageSize), MemClass::kImag);
  const auto target = space_.ImagTargetOf(12 * kPageSize);
  EXPECT_EQ(target.iou.backing_port, PortId(9));
  // iou.offset (4 pages) + seg offset (2 pages anchor + 2 pages in) = 8 pages.
  EXPECT_EQ(target.backer_offset, 8 * kPageSize);
}

TEST_F(AddressSpaceTest, ImagRunLengthStopsAtClassBoundary) {
  const IouRef iou{PortId(9), SegmentId(9), 0};
  Segment* imag = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space_.MapImaginary(0, 8 * kPageSize, imag, 0);
  space_.Validate(8 * kPageSize, 9 * kPageSize);
  EXPECT_EQ(space_.ImagRunLength(0, 100), 8u);
  EXPECT_EQ(space_.ImagRunLength(5, 100), 3u);
  EXPECT_EQ(space_.ImagRunLength(5, 2), 2u);  // clamped by max_pages
}

TEST_F(AddressSpaceTest, ImagRunLengthStopsAtFetchedPage) {
  const IouRef iou{PortId(9), SegmentId(9), 0};
  Segment* imag = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space_.MapImaginary(0, 8 * kPageSize, imag, 0);
  space_.InstallPage(4, MakePatternPage(1));  // page 4 fetched -> Real
  EXPECT_EQ(space_.ImagRunLength(0, 100), 4u);
}

TEST_F(AddressSpaceTest, ImagRunLengthStopsAtBackerDiscontinuity) {
  const IouRef iou_a{PortId(9), SegmentId(9), 0};
  const IouRef iou_b{PortId(10), SegmentId(10), 0};
  Segment* a = bed.segments().CreateImaginary(kAddressSpaceLimit, iou_a, "a");
  Segment* b = bed.segments().CreateImaginary(kAddressSpaceLimit, iou_b, "b");
  space_.MapImaginary(0, 4 * kPageSize, a, 0);
  space_.MapImaginary(4 * kPageSize, 8 * kPageSize, b, 4 * kPageSize);
  EXPECT_EQ(space_.ImagRunLength(0, 100), 4u);
}

TEST_F(AddressSpaceTest, ImaginaryBackersDeduplicated) {
  const IouRef iou{PortId(9), SegmentId(9), 0};
  Segment* imag = bed.segments().CreateImaginary(kAddressSpaceLimit, iou, "standin");
  space_.MapImaginary(0, 2 * kPageSize, imag, 0);
  space_.MapImaginary(10 * kPageSize, 12 * kPageSize, imag, 10 * kPageSize);
  const auto backers = space_.ImaginaryBackers();
  ASSERT_EQ(backers.size(), 1u);
  EXPECT_EQ(backers[0].backing_port, PortId(9));
}

TEST_F(AddressSpaceTest, UnmapRemovesEverything) {
  space_.Validate(0, 4 * kPageSize);
  space_.InstallPage(1, MakePatternPage(1));
  space_.Unmap(0, 4 * kPageSize);
  EXPECT_EQ(space_.ClassOf(0), MemClass::kBad);
  EXPECT_FALSE(space_.HasPrivatePage(1));
  EXPECT_EQ(space_.TotalValidatedBytes(), 0u);
}

TEST_F(AddressSpaceTest, RealPagesEnumeratesAscending) {
  Segment* seg = bed.segments().CreateReal(16 * kPageSize, "img");
  space_.MapReal(8 * kPageSize, 10 * kPageSize, seg, 0, false);
  space_.MapReal(2 * kPageSize, 3 * kPageSize, seg, 4 * kPageSize, false);
  EXPECT_EQ(space_.RealPages(), (std::vector<PageIndex>{2, 8, 9}));
}

TEST_F(AddressSpaceTest, TouchedTracking) {
  space_.Validate(0, 4 * kPageSize);
  space_.NoteTouched(1);
  space_.NoteTouched(1);
  space_.NoteTouched(3);
  EXPECT_EQ(space_.touched_pages().size(), 2u);
}

}  // namespace
}  // namespace accent
