// Workload construction tests, parameterized over all seven
// representatives: the staged processes must reproduce Tables 4-1 and 4-2
// byte-for-byte and obey every structural invariant the trials rely on.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/workloads/trace_gen.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {
 protected:
  const WorkloadSpec& spec() const { return WorkloadByName(GetParam()); }
};

TEST_P(WorkloadParamTest, CompositionMatchesTable41) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  const AddressSpace& space = *instance.process->space();
  EXPECT_EQ(space.RealBytes(), spec().real_bytes);
  EXPECT_EQ(space.RealZeroBytes(), spec().zero_bytes);
  EXPECT_EQ(space.TotalValidatedBytes(), spec().total_bytes());
  EXPECT_EQ(space.ImagBytes(), 0u);
}

TEST_P(WorkloadParamTest, ResidentSetMatchesTable42) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  EXPECT_EQ(bed.host(0)->memory->ResidentCount(instance.process->space()->id()),
            spec().resident_pages());
  // Every resident page is a RealMem page.
  const std::set<PageIndex> real(instance.real_page_list.begin(),
                                 instance.real_page_list.end());
  for (PageIndex page : instance.resident_pages) {
    EXPECT_TRUE(real.count(page) != 0) << "resident page " << page << " is not RealMem";
  }
}

TEST_P(WorkloadParamTest, MapComplexityMatchesLayout) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  EXPECT_EQ(instance.process->space()->map_entries(),
            spec().real_regions + spec().zero_regions);
}

TEST_P(WorkloadParamTest, TraceTouchesExactlyThePlan) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  EXPECT_EQ(instance.planned_touches.size(), spec().touched_real_pages);
  const Trace& trace = *instance.process->trace();
  std::set<PageIndex> traced;
  const std::set<PageIndex> real(instance.real_page_list.begin(),
                                 instance.real_page_list.end());
  std::uint64_t zero_touches = 0;
  for (const TraceOp& op : trace) {
    if (op.kind != TraceOp::Kind::kTouch) {
      continue;
    }
    const PageIndex page = PageOf(op.addr);
    if (real.count(page) != 0) {
      traced.insert(page);
    } else {
      ++zero_touches;
      EXPECT_TRUE(op.write);  // zero-region touches are output writes
    }
  }
  EXPECT_EQ(traced, instance.planned_touches);
  EXPECT_EQ(zero_touches, spec().zero_touches);
}

TEST_P(WorkloadParamTest, OverlapBetweenResidentAndTouched) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  std::uint64_t overlap = 0;
  const std::set<PageIndex> resident(instance.resident_pages.begin(),
                                     instance.resident_pages.end());
  for (PageIndex page : instance.planned_touches) {
    overlap += resident.count(page);
  }
  EXPECT_EQ(overlap, spec().resident_touched_overlap);
}

TEST_P(WorkloadParamTest, ComputeBudgetHonoured) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  const SimDuration compute = TraceComputeTime(*instance.process->trace());
  // Slicing truncates: within 1% + a few slices of the budget.
  EXPECT_LE(compute, spec().compute + Ms(1));
  EXPECT_GE(ToSeconds(compute), ToSeconds(spec().compute) * 0.95);
}

TEST_P(WorkloadParamTest, DeterministicForSameSeed) {
  Testbed bed_a;
  Testbed bed_b;
  WorkloadInstance a = BuildWorkload(spec(), bed_a.host(0), 7);
  WorkloadInstance b = BuildWorkload(spec(), bed_b.host(0), 7);
  EXPECT_EQ(a.planned_touches, b.planned_touches);
  EXPECT_EQ(a.resident_pages, b.resident_pages);
  EXPECT_EQ(a.process->trace()->size(), b.process->trace()->size());
}

TEST_P(WorkloadParamTest, DifferentSeedsDifferInPlan) {
  if (spec().pattern == AccessPattern::kMinimal) {
    GTEST_SKIP() << "Minprog's working set is deterministic by design";
  }
  Testbed bed_a;
  Testbed bed_b;
  WorkloadInstance a = BuildWorkload(spec(), bed_a.host(0), 1);
  WorkloadInstance b = BuildWorkload(spec(), bed_b.host(0), 2);
  EXPECT_NE(a.planned_touches, b.planned_touches);
}

TEST_P(WorkloadParamTest, RealPagesCarryPatternData) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(spec(), bed.host(0), 42);
  const AddressSpace& space = *instance.process->space();
  // Spot-check several pages across the image.
  for (std::size_t i = 0; i < instance.real_page_list.size();
       i += std::max<std::size_t>(1, instance.real_page_list.size() / 16)) {
    const PageIndex page = instance.real_page_list[i];
    EXPECT_EQ(space.ReadPage(page), MakePatternPage(WorkloadPageSeed(42, page)))
        << "page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRepresentatives, WorkloadParamTest,
                         ::testing::Values("Minprog", "Lisp-T", "Lisp-Del", "PM-Start",
                                           "PM-Mid", "PM-End", "Chess"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(WorkloadRegistry, SevenRepresentatives) {
  EXPECT_EQ(RepresentativeWorkloads().size(), 7u);
}

TEST(WorkloadRegistry, SequentialScanIsAscending) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(WorkloadByName("PM-Start"), bed.host(0), 42);
  const Trace& trace = *instance.process->trace();
  const std::set<PageIndex> real(instance.real_page_list.begin(),
                                 instance.real_page_list.end());
  PageIndex last = 0;
  for (const TraceOp& op : trace) {
    if (op.kind != TraceOp::Kind::kTouch || real.count(PageOf(op.addr)) == 0) {
      continue;
    }
    EXPECT_GT(PageOf(op.addr), last) << "Pasmac scan must ascend";
    last = PageOf(op.addr);
  }
}

TEST(WorkloadRegistry, LispClustersAverageUnderTwoPages) {
  // The clustered generator produces ~1.7-page clusters so PF1 hit rate
  // lands near the paper's 40%.
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(WorkloadByName("Lisp-Del"), bed.host(0), 42);
  std::vector<PageIndex> touched(instance.planned_touches.begin(),
                                 instance.planned_touches.end());
  std::uint64_t clusters = 0;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (i == 0 || touched[i] != touched[i - 1] + 1) {
      ++clusters;
    }
  }
  const double mean = static_cast<double>(touched.size()) / static_cast<double>(clusters);
  EXPECT_GT(mean, 1.2);
  EXPECT_LT(mean, 2.6);
}

}  // namespace
}  // namespace accent
