// Pre-copy migration baseline tests (the V-system comparison of section 5):
// iterative shipment while running, acknowledged rounds, tiny downtime,
// byte overhead, and full data integrity including mid-round writes.
#include <gtest/gtest.h>

#include "src/experiments/precopy.h"
#include "src/experiments/testbed.h"

namespace accent {
namespace {

class PreCopyTest : public ::testing::Test {
 protected:
  // A process that keeps writing while the migration runs.
  std::unique_ptr<Process> BuildWriter(Testbed* bed, int writes, SimDuration gap) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                                bed->host(0)->id);
    Segment* image = bed->segments().CreateReal(64 * kPageSize, "img");
    for (PageIndex p = 0; p < 64; ++p) {
      image->StorePage(p, MakePatternPage(p + 1));
    }
    space->MapReal(0, 64 * kPageSize, image, 0, false);
    space->Validate(64 * kPageSize, 128 * kPageSize);

    auto proc = std::make_unique<Process>(ProcId(bed->sim().AllocateId()), "writer",
                                          bed->host(0), std::move(space), 11);
    TraceBuilder trace;
    for (int i = 0; i < writes; ++i) {
      trace.Write(PageBase(i % 64) + 100, static_cast<std::uint8_t>(i + 1));
      trace.Compute(gap);
    }
    trace.Terminate();
    proc->SetTrace(trace.Build(), 0);
    return proc;
  }

  MigrationRecord MigratePre(Testbed* bed, Process* proc, PreCopyConfig config) {
    MigrationRecord record;
    bool done = false;
    bed->manager(0)->RegisterLocal(proc);
    bed->manager(0)->MigratePreCopy(proc, bed->manager(1)->port(), config,
                                    [&](const MigrationRecord& r) {
                                      record = r;
                                      done = true;
                                    });
    bed->sim().Run();
    EXPECT_TRUE(done);
    return record;
  }
};

TEST_F(PreCopyTest, MigratesWithIntactData) {
  Testbed bed;
  auto proc = BuildWriter(&bed, 40, Ms(200));
  proc->Start();
  bed.sim().RunUntil(Ms(500));  // a few writes happen before migration starts

  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});
  ASSERT_EQ(bed.manager(1)->adopted().size(), 1u);
  Process* remote = bed.manager(1)->adopted()[0].get();
  EXPECT_TRUE(remote->done());

  // Every image page is present and correct — the written byte of each
  // touched page reflects the *last* write to it, wherever it happened.
  const Trace& trace = *remote->trace();
  std::map<PageIndex, std::uint8_t> last_write;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kTouch && op.write) {
      last_write[PageOf(op.addr)] = op.value;
    }
  }
  for (PageIndex p = 0; p < 64; ++p) {
    const PageRef page = remote->space()->ReadPage(p);
    auto it = last_write.find(p);
    if (it != last_write.end()) {
      EXPECT_EQ(PageByteAt(page, 100), it->second) << "page " << p;
    }
    // Unwritten bytes of the image still match the original pattern.
    EXPECT_EQ(PageByteAt(page, 7), PageByteAt(MakePatternPage(p + 1), 7)) << "page " << p;
  }
  EXPECT_GE(record.precopy_rounds, 1);
}

TEST_F(PreCopyTest, DowntimeIsMuchSmallerThanPureCopy) {
  // Pure-copy baseline downtime.
  SimDuration copy_downtime;
  {
    Testbed bed;
    auto proc = BuildWriter(&bed, 30, Ms(100));
    proc->Start();
    bed.sim().RunUntil(Ms(300));
    MigrationRecord record;
    bool done = false;
    bed.manager(0)->RegisterLocal(proc.get());
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureCopy,
                            [&](const MigrationRecord& r) {
                              record = r;
                              done = true;
                            });
    bed.sim().Run();
    ASSERT_TRUE(done);
    copy_downtime = record.Downtime();
  }

  Testbed bed;
  auto proc = BuildWriter(&bed, 30, Ms(100));
  proc->Start();
  bed.sim().RunUntil(Ms(300));
  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});

  // 64 pages of image: pure-copy freezes through the whole ~3 s transfer;
  // pre-copy freezes only for the final dirty pages.
  EXPECT_LT(ToSeconds(record.Downtime()), ToSeconds(copy_downtime) * 0.8);
  EXPECT_GT(record.frozen, record.requested);  // it really ran during rounds
}

TEST_F(PreCopyTest, TotalBytesExceedPureCopy) {
  // Section 5: "both hosts still paid the transfer costs" — iterative
  // copying re-ships dirtied pages, so total traffic >= one full copy.
  ByteCount copy_bytes;
  {
    Testbed bed;
    auto proc = BuildWriter(&bed, 30, Ms(100));
    bed.manager(0)->RegisterLocal(proc.get());
    bool done = false;
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureCopy,
                            [&](const MigrationRecord&) { done = true; });
    bed.sim().Run();
    ASSERT_TRUE(done);
    copy_bytes = bed.traffic().TotalBytes();
  }

  Testbed bed;
  auto proc = BuildWriter(&bed, 30, Ms(100));
  proc->Start();
  bed.sim().RunUntil(Ms(300));
  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});
  EXPECT_GT(record.precopy_bytes, 0u);
  EXPECT_GE(bed.traffic().TotalBytes(), copy_bytes);
}

TEST_F(PreCopyTest, ConvergesEarlyWhenWritesStop) {
  Testbed bed;
  // Writes finish quickly; later rounds see an empty dirty set.
  auto proc = BuildWriter(&bed, 3, Ms(10));
  proc->Start();
  bed.sim().Run();  // run to completion? No: terminate would fire. Use a fresh one.
  // The process terminated already; use a never-started one instead: its
  // dirty set is empty after round 0, so pre-copy freezes at round 1.
  auto idle = BuildWriter(&bed, 5, Ms(10));
  PreCopyConfig config;
  config.max_rounds = 5;
  const MigrationRecord record = MigratePre(&bed, idle.get(), config);
  EXPECT_LE(record.precopy_rounds, 2);  // snapshot + at most one dirty round
  Process* remote = bed.manager(1)->adopted().back().get();
  EXPECT_TRUE(remote->done());
}

TEST_F(PreCopyTest, DirtyBitmapIsExactUnderCow) {
  // The dirty bitmap must record exactly the written pages — no more (reads
  // and faults of clean pages stay clean in the write-only trace below), no
  // fewer — and each first write to a freshly materialised page breaks COW
  // on the payload the pager shared in from the segment. Bitmap bits and
  // cow_breaks therefore move in lockstep.
  constexpr int kWrites = 24;  // 24 distinct pages (BuildWriter cycles i % 64)
  Testbed bed;
  auto proc = BuildWriter(&bed, kWrites, Ms(5));
  // Extend the trace: after a long pause, one more write to the (by then
  // resident, re-cleaned) first page — the trap case checked at the end.
  TraceBuilder trace;
  for (int i = 0; i < kWrites; ++i) {
    trace.Write(PageBase(i % 64) + 100, static_cast<std::uint8_t>(i + 1));
    trace.Compute(Ms(5));
  }
  trace.Compute(Sec(10.0));
  trace.Write(PageBase(0) + 101, 0x7f);
  trace.Terminate();
  proc->SetTrace(trace.Build(), 0);

  AddressSpace* space = proc->space();
  space->MarkAllClean();
  space->ArmWriteTracking();

  const PageCounterSnapshot before = ReadPageCounters();
  proc->Start();
  bed.sim().RunUntil(Sec(5.0));  // all kWrites writes done; mid-pause
  const PageCounterSnapshot after = ReadPageCounters();

  EXPECT_EQ(space->dirty_count(), static_cast<std::size_t>(kWrites));
  EXPECT_EQ(after.cow_breaks - before.cow_breaks, static_cast<std::uint64_t>(kWrites));
  for (PageIndex p = 0; p < kWrites; ++p) {
    EXPECT_TRUE(space->IsDirty(p)) << "page " << p;
  }
  for (PageIndex p = kWrites; p < 64; ++p) {
    EXPECT_FALSE(space->IsDirty(p)) << "page " << p;
  }
  // Non-resident first writes set the bitmap bit inside the page fault
  // they were already taking — no extra write-protect trap fires.
  EXPECT_EQ(space->tracked_write_faults(), 0u);

  // A write to a now-resident clean page is the case that does trip the
  // tracking trap: re-clean the bitmap and let the trace's final write run.
  space->MarkAllClean();
  bed.sim().Run();
  EXPECT_TRUE(proc->done());
  EXPECT_EQ(space->dirty_count(), 1u);
  EXPECT_TRUE(space->IsDirty(0));
  EXPECT_EQ(space->tracked_write_faults(), 1u);
}

TEST_F(PreCopyTest, SloPredictorFreezesEarly) {
  // A generous downtime target is met at the first ack — the predictor
  // freezes immediately instead of burning the remaining rounds.
  Testbed bed;
  auto proc = BuildWriter(&bed, 60, Ms(150));
  proc->Start();
  PreCopyConfig config;
  config.max_rounds = 8;
  config.stop_threshold = 0;
  config.target_downtime = Sec(30.0);
  const MigrationRecord record = MigratePre(&bed, proc.get(), config);
  EXPECT_EQ(record.precopy_rounds, 1);
  EXPECT_TRUE(record.precopy_slo_met);
  EXPECT_GT(ToSeconds(record.precopy_predicted_downtime), 0.0);
  EXPECT_LE(record.precopy_predicted_downtime, config.target_downtime);
}

TEST_F(PreCopyTest, StagnationCutsRoundsWhenWriterOutpacesWire) {
  // An unreachable target plus a writer that re-dirties its working set
  // every round: once a round fails to shrink the dirty set, further
  // rounds only waste bytes, so the manager freezes (well short of the
  // round cap) with the SLO honestly reported as missed.
  Testbed bed;
  auto proc = BuildWriter(&bed, 400, Ms(20));
  proc->Start();
  PreCopyConfig config;
  config.max_rounds = 16;
  config.stop_threshold = 0;
  config.target_downtime = Ms(1);
  const MigrationRecord record = MigratePre(&bed, proc.get(), config);
  EXPECT_LT(record.precopy_rounds, 16);
  EXPECT_FALSE(record.precopy_slo_met);
  // The WWS estimate tracked the writer's nonzero per-round dirty counts.
  EXPECT_GT(record.precopy_wws_pages, 0.0);
}

TEST_F(PreCopyTest, SweepIsThreadCountInvariant) {
  // Cells run in private testbeds, so sweep results — down to per-cell
  // round counts and byte totals — cannot depend on worker scheduling.
  const PreCopySweepSummary t1 = RunPreCopySweep(42, 1);
  const PreCopySweepSummary t2 = RunPreCopySweep(42, 2);
  const PreCopySweepSummary t8 = RunPreCopySweep(42, 8);
  ASSERT_EQ(t1.cells.size(), t2.cells.size());
  ASSERT_EQ(t1.cells.size(), t8.cells.size());
  for (std::size_t i = 0; i < t1.cells.size(); ++i) {
    for (const PreCopySweepSummary* other : {&t2, &t8}) {
      const PreCopySweepCellResult& a = t1.cells[i];
      const PreCopySweepCellResult& b = other->cells[i];
      EXPECT_EQ(a.cell.workload, b.cell.workload);
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.rounds, b.rounds) << a.cell.workload << " cell " << i;
      EXPECT_EQ(a.downtime.count(), b.downtime.count()) << a.cell.workload;
      EXPECT_EQ(a.page_bytes, b.page_bytes) << a.cell.workload;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << a.cell.workload;
    }
  }
  EXPECT_EQ(t1.completed, t1.cells.size());
  EXPECT_EQ(t1.hung, 0u);
}

TEST_F(PreCopyTest, RoundsAreAcknowledgedFlowControl) {
  Testbed bed;
  auto proc = BuildWriter(&bed, 60, Ms(150));
  proc->Start();
  PreCopyConfig config;
  config.max_rounds = 4;
  config.stop_threshold = 0;
  const MigrationRecord record = MigratePre(&bed, proc.get(), config);
  // All configured rounds ran (the writer keeps dirtying).
  EXPECT_EQ(record.precopy_rounds, 4);
  // Each round shipped something; bytes grow beyond one image copy.
  EXPECT_GT(record.precopy_bytes, 64u * kPageSize);
}

}  // namespace
}  // namespace accent
