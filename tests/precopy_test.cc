// Pre-copy migration baseline tests (the V-system comparison of section 5):
// iterative shipment while running, acknowledged rounds, tiny downtime,
// byte overhead, and full data integrity including mid-round writes.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"

namespace accent {
namespace {

class PreCopyTest : public ::testing::Test {
 protected:
  // A process that keeps writing while the migration runs.
  std::unique_ptr<Process> BuildWriter(Testbed* bed, int writes, SimDuration gap) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                                bed->host(0)->id);
    Segment* image = bed->segments().CreateReal(64 * kPageSize, "img");
    for (PageIndex p = 0; p < 64; ++p) {
      image->StorePage(p, MakePatternPage(p + 1));
    }
    space->MapReal(0, 64 * kPageSize, image, 0, false);
    space->Validate(64 * kPageSize, 128 * kPageSize);

    auto proc = std::make_unique<Process>(ProcId(bed->sim().AllocateId()), "writer",
                                          bed->host(0), std::move(space), 11);
    TraceBuilder trace;
    for (int i = 0; i < writes; ++i) {
      trace.Write(PageBase(i % 64) + 100, static_cast<std::uint8_t>(i + 1));
      trace.Compute(gap);
    }
    trace.Terminate();
    proc->SetTrace(trace.Build(), 0);
    return proc;
  }

  MigrationRecord MigratePre(Testbed* bed, Process* proc, PreCopyConfig config) {
    MigrationRecord record;
    bool done = false;
    bed->manager(0)->RegisterLocal(proc);
    bed->manager(0)->MigratePreCopy(proc, bed->manager(1)->port(), config,
                                    [&](const MigrationRecord& r) {
                                      record = r;
                                      done = true;
                                    });
    bed->sim().Run();
    EXPECT_TRUE(done);
    return record;
  }
};

TEST_F(PreCopyTest, MigratesWithIntactData) {
  Testbed bed;
  auto proc = BuildWriter(&bed, 40, Ms(200));
  proc->Start();
  bed.sim().RunUntil(Ms(500));  // a few writes happen before migration starts

  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});
  ASSERT_EQ(bed.manager(1)->adopted().size(), 1u);
  Process* remote = bed.manager(1)->adopted()[0].get();
  EXPECT_TRUE(remote->done());

  // Every image page is present and correct — the written byte of each
  // touched page reflects the *last* write to it, wherever it happened.
  const Trace& trace = *remote->trace();
  std::map<PageIndex, std::uint8_t> last_write;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kTouch && op.write) {
      last_write[PageOf(op.addr)] = op.value;
    }
  }
  for (PageIndex p = 0; p < 64; ++p) {
    const PageRef page = remote->space()->ReadPage(p);
    auto it = last_write.find(p);
    if (it != last_write.end()) {
      EXPECT_EQ(PageByteAt(page, 100), it->second) << "page " << p;
    }
    // Unwritten bytes of the image still match the original pattern.
    EXPECT_EQ(PageByteAt(page, 7), PageByteAt(MakePatternPage(p + 1), 7)) << "page " << p;
  }
  EXPECT_GE(record.precopy_rounds, 1);
}

TEST_F(PreCopyTest, DowntimeIsMuchSmallerThanPureCopy) {
  // Pure-copy baseline downtime.
  SimDuration copy_downtime;
  {
    Testbed bed;
    auto proc = BuildWriter(&bed, 30, Ms(100));
    proc->Start();
    bed.sim().RunUntil(Ms(300));
    MigrationRecord record;
    bool done = false;
    bed.manager(0)->RegisterLocal(proc.get());
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureCopy,
                            [&](const MigrationRecord& r) {
                              record = r;
                              done = true;
                            });
    bed.sim().Run();
    ASSERT_TRUE(done);
    copy_downtime = record.Downtime();
  }

  Testbed bed;
  auto proc = BuildWriter(&bed, 30, Ms(100));
  proc->Start();
  bed.sim().RunUntil(Ms(300));
  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});

  // 64 pages of image: pure-copy freezes through the whole ~3 s transfer;
  // pre-copy freezes only for the final dirty pages.
  EXPECT_LT(ToSeconds(record.Downtime()), ToSeconds(copy_downtime) * 0.8);
  EXPECT_GT(record.frozen, record.requested);  // it really ran during rounds
}

TEST_F(PreCopyTest, TotalBytesExceedPureCopy) {
  // Section 5: "both hosts still paid the transfer costs" — iterative
  // copying re-ships dirtied pages, so total traffic >= one full copy.
  ByteCount copy_bytes;
  {
    Testbed bed;
    auto proc = BuildWriter(&bed, 30, Ms(100));
    bed.manager(0)->RegisterLocal(proc.get());
    bool done = false;
    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureCopy,
                            [&](const MigrationRecord&) { done = true; });
    bed.sim().Run();
    ASSERT_TRUE(done);
    copy_bytes = bed.traffic().TotalBytes();
  }

  Testbed bed;
  auto proc = BuildWriter(&bed, 30, Ms(100));
  proc->Start();
  bed.sim().RunUntil(Ms(300));
  const MigrationRecord record = MigratePre(&bed, proc.get(), PreCopyConfig{});
  EXPECT_GT(record.precopy_bytes, 0u);
  EXPECT_GE(bed.traffic().TotalBytes(), copy_bytes);
}

TEST_F(PreCopyTest, ConvergesEarlyWhenWritesStop) {
  Testbed bed;
  // Writes finish quickly; later rounds see an empty dirty set.
  auto proc = BuildWriter(&bed, 3, Ms(10));
  proc->Start();
  bed.sim().Run();  // run to completion? No: terminate would fire. Use a fresh one.
  // The process terminated already; use a never-started one instead: its
  // dirty set is empty after round 0, so pre-copy freezes at round 1.
  auto idle = BuildWriter(&bed, 5, Ms(10));
  PreCopyConfig config;
  config.max_rounds = 5;
  const MigrationRecord record = MigratePre(&bed, idle.get(), config);
  EXPECT_LE(record.precopy_rounds, 2);  // snapshot + at most one dirty round
  Process* remote = bed.manager(1)->adopted().back().get();
  EXPECT_TRUE(remote->done());
}

TEST_F(PreCopyTest, RoundsAreAcknowledgedFlowControl) {
  Testbed bed;
  auto proc = BuildWriter(&bed, 60, Ms(150));
  proc->Start();
  PreCopyConfig config;
  config.max_rounds = 4;
  config.stop_threshold = 0;
  const MigrationRecord record = MigratePre(&bed, proc.get(), config);
  // All configured rounds ran (the writer keeps dirtying).
  EXPECT_EQ(record.precopy_rounds, 4);
  // Each round shipped something; bytes grow beyond one image copy.
  EXPECT_GT(record.precopy_bytes, 64u * kPageSize);
}

}  // namespace
}  // namespace accent
