// Pager tests: every fault class, latencies against the paper's anchors,
// prefetch behaviour, waiter joining, page-out accounting, death notices.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/vm/backer.h"

namespace accent {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  PagerTest() {
    space_ = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()), bed.host(0)->id);
    image_ = bed.segments().CreateReal(64 * kPageSize, "image");
    for (PageIndex p = 0; p < 64; ++p) {
      image_->StorePage(p, MakePatternPage(p + 1));
    }
    // Remote backer on host 1.
    backer_ = std::make_unique<SegmentBacker>(bed.host(1)->id, &bed.sim(), &bed.costs(),
                                              &bed.fabric(), &bed.segments(), CpuWork::kProcess,
                                              "test-backer");
    backer_->Start();
    remote_obj_ = bed.segments().CreateReal(64 * kPageSize, "remote");
    for (PageIndex p = 0; p < 64; ++p) {
      remote_obj_->StorePage(p, MakePatternPage(p + 1000));
    }
    iou_ = backer_->Back(remote_obj_);
    standin_ = bed.segments().CreateImaginary(64 * kPageSize, iou_, "standin");

    // Layout: [0,16) real, [16,32) zero, [32,48) imaginary.
    space_->MapReal(0, 16 * kPageSize, image_, 0, false);
    space_->Validate(16 * kPageSize, 32 * kPageSize);
    space_->MapImaginary(32 * kPageSize, 48 * kPageSize, standin_, 0);
  }

  AccessOutcome Touch(Addr addr, bool write = false) {
    AccessOutcome outcome;
    bool done = false;
    bed.pager(0)->Access(space_.get(), addr, write, [&](const AccessOutcome& o) {
      outcome = o;
      done = true;
    });
    bed.sim().Run();
    EXPECT_TRUE(done);
    return outcome;
  }

  SimDuration TimedTouch(Addr addr, bool write = false) {
    const SimTime start = bed.sim().Now();
    Touch(addr, write);
    return bed.sim().Now() - start;
  }

  Testbed bed;
  std::unique_ptr<AddressSpace> space_;
  Segment* image_ = nullptr;
  Segment* remote_obj_ = nullptr;
  Segment* standin_ = nullptr;
  std::unique_ptr<SegmentBacker> backer_;
  IouRef iou_;
};

TEST_F(PagerTest, FillZeroFaultNeverTouchesDisk) {
  const AccessOutcome outcome = Touch(16 * kPageSize);
  EXPECT_EQ(outcome.fault, FaultKind::kFillZero);
  EXPECT_EQ(bed.host(0)->disk->reads_completed(), 0u);
  EXPECT_TRUE(bed.host(0)->memory->Contains(space_->id(), 16));
  EXPECT_EQ(bed.pager(0)->stats().fillzero_faults, 1u);
  EXPECT_EQ(space_->ClassOf(16 * kPageSize), MemClass::kReal);  // touched => real
}

TEST_F(PagerTest, DiskFaultMatchesPaperAnchor) {
  const SimDuration latency = TimedTouch(0);
  // Paper: 40.8 ms local fault.
  EXPECT_NEAR(ToSeconds(latency), 0.0408, 0.005);
  EXPECT_EQ(bed.host(0)->disk->reads_completed(), 1u);
  EXPECT_EQ(bed.pager(0)->stats().disk_faults, 1u);
}

TEST_F(PagerTest, ResidentHitIsCheapAndTracked) {
  Touch(0);
  const SimDuration hit = TimedTouch(0);
  EXPECT_LT(hit, Ms(1));
  EXPECT_EQ(bed.pager(0)->stats().resident_hits, 1u);
}

TEST_F(PagerTest, RemoteImaginaryFaultMatchesPaperAnchor) {
  const SimDuration latency = TimedTouch(32 * kPageSize);
  // Paper: 115 ms; our calibration budgets ~108 ms.
  EXPECT_NEAR(ToSeconds(latency), 0.115, 0.02);
  EXPECT_EQ(bed.pager(0)->stats().imag_faults, 1u);
  // Paper: ~2.8x the 40.8 ms local fault.
  const double ratio = ToSeconds(latency) / 0.0408;
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 3.2);
}

TEST_F(PagerTest, ImaginaryFaultDeliversCorrectData) {
  Touch(32 * kPageSize);
  EXPECT_EQ(space_->ReadPage(32), MakePatternPage(1000));
  EXPECT_EQ(space_->ClassOf(32 * kPageSize), MemClass::kReal);
  // Neighbours remain owed without prefetch.
  EXPECT_EQ(space_->ClassOf(33 * kPageSize), MemClass::kImag);
}

TEST_F(PagerTest, ImaginaryFaultWithOffsetMapping) {
  // Map VA pages [48,52) at backer pages [8,12).
  space_->MapImaginary(48 * kPageSize, 52 * kPageSize, standin_, 8 * kPageSize);
  Touch(49 * kPageSize);
  EXPECT_EQ(space_->ReadPage(49), MakePatternPage(1000 + 9));
}

TEST_F(PagerTest, PrefetchFetchesContiguousRun) {
  bed.pager(0)->set_prefetch_pages(3);
  Touch(32 * kPageSize);
  const PagerStats& stats = bed.pager(0)->stats();
  EXPECT_EQ(stats.imag_faults, 1u);
  EXPECT_EQ(stats.imag_pages_fetched, 4u);
  EXPECT_EQ(stats.prefetched_pages, 3u);
  EXPECT_EQ(space_->ClassOf(33 * kPageSize), MemClass::kReal);
  EXPECT_EQ(space_->ClassOf(35 * kPageSize), MemClass::kReal);
  EXPECT_EQ(space_->ClassOf(36 * kPageSize), MemClass::kImag);
  EXPECT_EQ(space_->ReadPage(35), MakePatternPage(1000 + 3));
}

TEST_F(PagerTest, PrefetchHitsAreCounted) {
  bed.pager(0)->set_prefetch_pages(1);
  Touch(32 * kPageSize);
  Touch(33 * kPageSize);  // served by the prefetched page
  const PagerStats& stats = bed.pager(0)->stats();
  EXPECT_EQ(stats.imag_faults, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.resident_hits, 1u);
}

TEST_F(PagerTest, PrefetchClampedAtMappingBoundary) {
  bed.pager(0)->set_prefetch_pages(100);
  Touch(46 * kPageSize);  // pages 46,47 end the imaginary region
  EXPECT_EQ(bed.pager(0)->stats().imag_pages_fetched, 2u);
}

TEST_F(PagerTest, ConcurrentFaultsOnSamePageJoin) {
  int completions = 0;
  bed.pager(0)->Access(space_.get(), 32 * kPageSize, false,
                       [&](const AccessOutcome&) { ++completions; });
  bed.pager(0)->Access(space_.get(), 32 * kPageSize, false,
                       [&](const AccessOutcome&) { ++completions; });
  bed.sim().Run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(bed.pager(0)->stats().imag_faults, 1u);  // one request served both
  EXPECT_EQ(backer_->requests_served(), 1u);
}

TEST_F(PagerTest, FaultOnPrefetchCoveredPageJoins) {
  bed.pager(0)->set_prefetch_pages(2);
  int completions = 0;
  bed.pager(0)->Access(space_.get(), 32 * kPageSize, false,
                       [&](const AccessOutcome&) { ++completions; });
  bed.pager(0)->Access(space_.get(), 34 * kPageSize, false,
                       [&](const AccessOutcome&) { ++completions; });
  bed.sim().Run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(bed.pager(0)->stats().imag_faults, 1u);
}

TEST_F(PagerTest, WriteToSharedSegmentPageCopiesOnWrite) {
  Touch(0);  // make resident
  EXPECT_FALSE(space_->HasPrivatePage(0));
  Touch(0, /*write=*/true);  // resident write: copy-on-write resolution
  EXPECT_TRUE(space_->HasPrivatePage(0));
  EXPECT_GE(bed.pager(0)->stats().cow_faults, 1u);
  // The origin segment is unchanged by the private copy.
  EXPECT_EQ(image_->ReadPage(0), MakePatternPage(1));
}

TEST_F(PagerTest, WriteFaultOnNonResidentSegmentPage) {
  // A write to a page that is neither resident nor private: disk fault,
  // then the deferred copy, all before the access completes.
  const AccessOutcome outcome = Touch(PageBase(1), /*write=*/true);
  EXPECT_EQ(outcome.fault, FaultKind::kDisk);
  EXPECT_TRUE(space_->HasPrivatePage(1));
  EXPECT_TRUE(bed.host(0)->memory->IsDirty(space_->id(), 1));
  EXPECT_GE(bed.pager(0)->stats().cow_faults, 1u);
  EXPECT_EQ(image_->ReadPage(1), MakePatternPage(2));  // origin intact
}

TEST_F(PagerTest, EvictionPagesOutDirtyPages) {
  // Shrink memory so faults evict.
  TestbedConfig config;
  config.frames_per_host = 4;
  Testbed small(config);
  auto space = std::make_unique<AddressSpace>(SpaceId(small.sim().AllocateId()),
                                              small.host(0)->id);
  space->Validate(0, 64 * kPageSize);
  auto touch = [&](PageIndex page) {
    bool done = false;
    small.pager(0)->Access(space.get(), PageBase(page), true, [&](const AccessOutcome&) {
      done = true;
    });
    small.sim().Run();
    ASSERT_TRUE(done);
  };
  for (PageIndex p = 0; p < 8; ++p) {
    touch(p);
  }
  // 8 dirty zero-fill pages through 4 frames: 4 page-outs.
  EXPECT_EQ(small.pager(0)->stats().pageouts, 4u);
  EXPECT_EQ(small.host(0)->disk->writes_completed(), 4u);
  // Data survives eviction (contents live in the private store).
  EXPECT_TRUE(space->HasPrivatePage(0));
}

TEST_F(PagerTest, DeathNoticeReachesBacker) {
  Touch(32 * kPageSize);
  EXPECT_EQ(backer_->deaths_received(), 0u);
  bed.pager(0)->NotifySpaceDeath(space_.get());
  bed.sim().Run();
  EXPECT_EQ(backer_->deaths_received(), 1u);
  EXPECT_EQ(backer_->object_count(), 0u);  // cache retired
}

TEST_F(PagerTest, StatsResetWorks) {
  Touch(0);
  bed.pager(0)->ResetStats();
  EXPECT_EQ(bed.pager(0)->stats().disk_faults, 0u);
}

}  // namespace
}  // namespace accent
