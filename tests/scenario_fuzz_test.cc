// The fixed adversarial fuzz corpus (seeds 1..64) as individual ctest
// cases: every seeded scenario — random heterogeneous topology x workload
// x fault plan x strategy x optional re-migration — must satisfy all the
// standing oracles (content integrity, zero hangs, balanced backer
// references, 1-vs-2-shard fleet identity). A failing seed names itself:
// re-run it interactively with tools/migrate_sim --replay-seed=N.
#include <gtest/gtest.h>

#include "src/experiments/scenario_fuzz.h"

namespace accent {
namespace {

class ScenarioFuzzCorpus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzzCorpus, SeedSatisfiesAllOracles) {
  const FuzzScenario scenario = MakeScenario(GetParam());
  const FuzzScenarioResult result = RunScenario(scenario);
  EXPECT_TRUE(result.ok()) << "seed " << GetParam() << " failed [" << result.failure
                           << "] scenario: " << scenario.Describe()
                           << "\nreplay with: tools/migrate_sim --replay-seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ScenarioFuzz, ScenarioFuzzCorpus, ::testing::Range<std::uint64_t>(1, 65));

// Scenario construction is a pure function of the seed: the corpus a CI run
// checks is the corpus --replay-seed reconstructs.
TEST(ScenarioFuzz, ScenarioIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 17ull, 345ull}) {
    const FuzzScenario a = MakeScenario(seed);
    const FuzzScenario b = MakeScenario(seed);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_EQ(a.host_count, b.host_count);
    EXPECT_EQ(a.prefetch, b.prefetch);
    EXPECT_EQ(a.drop, b.drop);
  }
}

// Every scenario runs on private simulations, so the corpus result —
// including the emitted JSON — cannot depend on worker-thread count.
TEST(ScenarioFuzz, CorpusJsonIsThreadCountInvariant) {
  const Json sequential = FuzzCorpusToJson(RunFuzzCorpus(1, 8, /*threads=*/1));
  const Json parallel = FuzzCorpusToJson(RunFuzzCorpus(1, 8, /*threads=*/4));
  EXPECT_EQ(sequential.Dump(), parallel.Dump());
}

// The generator must keep exercising the interesting corners: across a
// modest seed range we expect heterogeneous calibrations, diskless hosts,
// re-migrations, lossy plans and crashes all to appear.
TEST(ScenarioFuzz, GeneratorCoversTheAdversarialCorners) {
  int calibrated = 0;
  int diskless = 0;
  int remigrate = 0;
  int lossy = 0;
  int crash = 0;
  int partition = 0;
  int cached = 0;
  int small_cache = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FuzzScenario sc = MakeScenario(seed);
    cached += sc.content_cache ? 1 : 0;
    small_cache += (sc.content_cache && sc.content_cache_pages <= 64) ? 1 : 0;
    calibrated += AnyCalibrated(sc.calibrations) ? 1 : 0;
    for (const HostCalibration& cal : sc.calibrations) {
      if (cal.diskless) {
        ++diskless;
        break;
      }
    }
    remigrate += sc.remigrate ? 1 : 0;
    lossy += (sc.drop > 0.0 || sc.duplicate > 0.0 || sc.delay > 0.0) ? 1 : 0;
    crash += (sc.crash_dest || sc.crash_source) ? 1 : 0;
    partition += sc.partition_transfer ? 1 : 0;
  }
  EXPECT_GT(calibrated, 10);
  EXPECT_GT(diskless, 2);
  EXPECT_GT(remigrate, 5);
  EXPECT_GT(lossy, 20);
  EXPECT_GT(crash, 5);
  EXPECT_GT(partition, 3);
  // The content-cache draw must keep both halves of the space populated,
  // including capacities small enough to force eviction mid-migration.
  EXPECT_GT(cached, 20);
  EXPECT_LT(cached, 44);
  EXPECT_GT(small_cache, 2);
}

}  // namespace
}  // namespace accent
