// Parameterized prefetch sweep across every representative: the structural
// invariants behind Figures 4-1/4-3/4-4's prefetch columns.
#include <gtest/gtest.h>

#include "src/experiments/trial.h"

namespace accent {
namespace {

class PrefetchSweepTest : public ::testing::TestWithParam<const char*> {
 protected:
  TrialResult Run(std::uint32_t prefetch) const {
    TrialConfig config;
    config.workload = GetParam();
    config.strategy = TransferStrategy::kPureIou;
    config.prefetch = prefetch;
    return RunTrial(config);
  }
};

TEST_P(PrefetchSweepTest, FaultCountFallsMonotonicallyWithPrefetch) {
  std::uint64_t last_faults = ~0ull;
  for (std::uint32_t prefetch : kPaperPrefetchValues) {
    const TrialResult trial = Run(prefetch);
    // Prefetch can only merge faults, never create them.
    EXPECT_LE(trial.dest_pager.imag_faults, last_faults)
        << GetParam() << " PF" << prefetch;
    last_faults = trial.dest_pager.imag_faults;
  }
}

TEST_P(PrefetchSweepTest, FetchedPagesCoverTouchesAndNeverExceedReal) {
  for (std::uint32_t prefetch : kPaperPrefetchValues) {
    const TrialResult trial = Run(prefetch);
    EXPECT_GE(trial.dest_pager.imag_pages_fetched, trial.spec.touched_real_pages)
        << GetParam() << " PF" << prefetch;
    EXPECT_LE(trial.dest_pager.imag_pages_fetched * kPageSize, trial.spec.real_bytes)
        << GetParam() << " PF" << prefetch;
    // Fetch = faulted pages + prefetched pages.
    EXPECT_EQ(trial.dest_pager.imag_pages_fetched,
              trial.dest_pager.imag_faults + trial.dest_pager.prefetched_pages);
  }
}

TEST_P(PrefetchSweepTest, FaultBytesGrowWithPrefetchDeadWeight) {
  // Total fault-channel bytes are minimal at PF0 (only touched pages move).
  const TrialResult base = Run(0);
  const TrialResult heavy = Run(15);
  EXPECT_GE(heavy.bytes_fault + 2 * kPageSize, base.bytes_fault)
      << GetParam();  // PF15 never moves fewer bytes (small slack for protocol)
  // At PF0, fault bytes are bounded by touched pages + per-fault overhead.
  const ByteCount per_fault_cap = kPageSize + 256;
  EXPECT_LE(base.bytes_fault, base.spec.touched_real_pages * per_fault_cap);
}

TEST_P(PrefetchSweepTest, RemoteExecutionNeverWorseWithSinglePagePrefetch) {
  // §4.4.2: "one page should be prefetched regardless of the transfer
  // strategy chosen" — PF1 must not lose to PF0 end-to-end.
  const TrialResult pf0 = Run(0);
  const TrialResult pf1 = Run(1);
  EXPECT_LE(ToSeconds(pf1.TransferPlusExec()), ToSeconds(pf0.TransferPlusExec()) * 1.001)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllRepresentatives, PrefetchSweepTest,
                         ::testing::Values("Minprog", "Lisp-T", "Lisp-Del", "PM-Start",
                                           "PM-Mid", "PM-End", "Chess"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace accent
