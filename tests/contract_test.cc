// Contract enforcement: the ACCENT_EXPECTS/ENSURES discipline must fail
// loudly on misuse. Death tests document the API's preconditions.
#include <gtest/gtest.h>

#include "src/base/interval_map.h"
#include "src/base/rng.h"
#include "src/experiments/testbed.h"
#include "src/proc/trace.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, IntervalMapRejectsEmptyRange) {
  IntervalMap<int> map;
  EXPECT_DEATH(map.Assign(10, 10, 1), "ACCENT_CHECK");
  EXPECT_DEATH(map.Erase(10, 5), "ACCENT_CHECK");
}

TEST(ContractDeathTest, RngRejectsZeroBound) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBelow(0), "ACCENT_CHECK");
}

TEST(ContractDeathTest, SimulatorRejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.ScheduleAt(Ms(10), [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(Ms(5), [] {}), "scheduling into the past");
}

TEST(ContractDeathTest, AddressSpaceRejectsUnalignedRanges) {
  AddressSpace space(SpaceId(1), HostId(1));
  EXPECT_DEATH(space.Validate(0, 100), "not page aligned");
}

TEST(ContractDeathTest, AddressSpaceRejectsDoubleValidation) {
  AddressSpace space(SpaceId(1), HostId(1));
  space.Validate(0, kPageSize);
  EXPECT_DEATH(space.Validate(0, kPageSize), "existing mapping");
}

TEST(ContractDeathTest, AddressSpaceRejectsWriteToNonPrivatePage) {
  AddressSpace space(SpaceId(1), HostId(1));
  space.Validate(0, kPageSize);
  EXPECT_DEATH(space.WriteByte(0, 1), "non-private page");
}

TEST(ContractDeathTest, AddressSpaceRejectsReadingOwedMemory) {
  Testbed bed;
  AddressSpace space(SpaceId(bed.sim().AllocateId()), bed.host(0)->id);
  Segment* standin = bed.segments().CreateImaginary(
      kPageSize, IouRef{PortId(1), SegmentId(1), 0}, "s");
  space.MapImaginary(0, kPageSize, standin, 0);
  EXPECT_DEATH(space.ReadPage(0), "unfetched imaginary");
}

TEST(ContractDeathTest, TraceMustEndWithTerminate) {
  TraceBuilder builder;
  builder.Compute(Ms(1));
  EXPECT_DEATH(builder.Build(), "must end with Terminate");
}

TEST(ContractDeathTest, ProcessCannotBeExcisedWhileRunning) {
  Testbed bed;
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                        std::move(space), 1);
  proc->SetTrace(TraceBuilder().Compute(Sec(10.0)).Terminate().Build(), 0);
  proc->Start();
  bed.sim().RunUntil(Ms(100));  // mid-compute
  EXPECT_DEATH(proc->TakeSpace(), "non-quiescent");
}

TEST(ContractDeathTest, MapRealRejectsOverhang) {
  Testbed bed;
  AddressSpace space(SpaceId(bed.sim().AllocateId()), bed.host(0)->id);
  Segment* seg = bed.segments().CreateReal(2 * kPageSize, "s");
  EXPECT_DEATH(space.MapReal(0, 4 * kPageSize, seg, 0, false), "ACCENT_CHECK");
}

TEST(ContractDeathTest, WorkloadRegistryRejectsUnknownName) {
  EXPECT_DEATH(WorkloadByName("NoSuchProgram"), "unknown workload");
}

TEST(ContractDeathTest, SuspendAtRejectsPassedWatchpoint) {
  Testbed bed;
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "p", bed.host(0),
                                        std::move(space), 1);
  proc->SetTrace(
      TraceBuilder().Compute(Ms(1)).Compute(Ms(1)).Compute(Ms(1)).Terminate().Build(), 0);
  proc->Start();
  bed.sim().Run();
  EXPECT_DEATH(proc->SuspendAt(1, [] {}), "ACCENT_CHECK");
}

}  // namespace
}  // namespace accent
