// File service tests: IPC-based opens, whole-file mapping, lazy remote
// access (copy-on-reference for files, section 6), write-back.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/fs/file_service.h"

namespace accent {
namespace {

class FileServiceTest : public ::testing::Test {
 protected:
  FileServiceTest()
      : server_(bed.host(1)),  // files live on host 2
        local_client_(bed.host(1), PortId()),
        remote_client_(bed.host(0), PortId()) {}

  void SetUp() override {
    server_.Start();
    local_client_ = FileClient(bed.host(1), server_.port());
    local_client_.Start();
    remote_client_ = FileClient(bed.host(0), server_.port());
    remote_client_.Start();
  }

  FileClient::OpenResult Open(FileClient* client, HostEnv* env, const std::string& name,
                              AddressSpace* space, Addr base) {
    FileClient::OpenResult result;
    bool done = false;
    client->OpenAndMap(name, space, base, [&](FileClient::OpenResult r) {
      result = r;
      done = true;
    });
    bed.sim().Run();
    EXPECT_TRUE(done);
    (void)env;
    return result;
  }

  // Touches a page through the host's pager and returns success.
  void Fault(int host, AddressSpace* space, Addr addr, bool write = false) {
    bool done = false;
    bed.pager(host)->Access(space, addr, write, [&](const AccessOutcome&) { done = true; });
    bed.sim().Run();
    ASSERT_TRUE(done);
  }

  Testbed bed;
  FileServer server_;
  FileClient local_client_;
  FileClient remote_client_;
};

TEST_F(FileServiceTest, CreateAndFind) {
  Segment* file = server_.CreateFile("data.db", 64 * kPageSize, 500);
  EXPECT_EQ(server_.Find("data.db"), file);
  EXPECT_EQ(server_.Find("missing"), nullptr);
  EXPECT_EQ(file->page_count(), 64u);
  EXPECT_EQ(file->ReadPage(3), MakePatternPage(503));
}

TEST_F(FileServiceTest, OpenMissingFileFails) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  const auto result = Open(&remote_client_, bed.host(0), "missing", space.get(), 0);
  EXPECT_FALSE(result.ok);
}

TEST_F(FileServiceTest, LocalOpenMapsDirectly) {
  server_.CreateFile("data.db", 16 * kPageSize, 500);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(1)->id);
  const auto result = Open(&local_client_, bed.host(1), "data.db", space.get(), 0);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.lazy);
  EXPECT_EQ(space->ClassOf(0), MemClass::kReal);
  EXPECT_EQ(space->ReadPage(5), MakePatternPage(505));
  // A local touch is a disk fault, not an imaginary one.
  Fault(1, space.get(), 5 * kPageSize);
  EXPECT_EQ(bed.pager(1)->stats().disk_faults, 1u);
  EXPECT_EQ(bed.pager(1)->stats().imag_faults, 0u);
}

TEST_F(FileServiceTest, RemoteOpenIsCopyOnReference) {
  server_.CreateFile("data.db", 64 * kPageSize, 500);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  const auto result = Open(&remote_client_, bed.host(0), "data.db", space.get(), 0);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.lazy);
  EXPECT_EQ(space->ClassOf(0), MemClass::kImag);

  const ByteCount before = bed.traffic().TotalBytes();
  Fault(0, space.get(), 9 * kPageSize);
  EXPECT_EQ(space->ReadPage(9), MakePatternPage(509));
  EXPECT_EQ(bed.pager(0)->stats().imag_faults, 1u);
  // Only ~a page crossed the wire for the fault.
  EXPECT_LT(bed.traffic().TotalBytes() - before, 2 * kPageSize);
  // Untouched remainder is still owed.
  EXPECT_EQ(space->ClassOf(10 * kPageSize), MemClass::kImag);
}

TEST_F(FileServiceTest, RemoteReadsAreCorrectEverywhere) {
  server_.CreateFile("data.db", 32 * kPageSize, 900);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "data.db", space.get(), 8 * kPageSize).ok);
  for (PageIndex p : {0u, 7u, 15u, 31u}) {
    Fault(0, space.get(), (8 + p) * kPageSize);
    EXPECT_EQ(space->ReadPage(8 + p), MakePatternPage(900 + p)) << "file page " << p;
  }
}

TEST_F(FileServiceTest, TwoClientsShareOneBackedObject) {
  server_.CreateFile("data.db", 8 * kPageSize, 100);
  auto space_a = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
  auto space_b = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "data.db", space_a.get(), 0).ok);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "data.db", space_b.get(), 0).ok);
  Fault(0, space_a.get(), 0);
  Fault(0, space_b.get(), kPageSize);
  EXPECT_EQ(space_a->ReadPage(0), MakePatternPage(100));
  EXPECT_EQ(space_b->ReadPage(1), MakePatternPage(101));
  EXPECT_EQ(server_.opens_served(), 2u);
}

TEST_F(FileServiceTest, SharedFileSurvivesOneClientsDeath) {
  // Two processes map the same exported file; one terminates. Its death
  // notice must not retire the file's backing for the survivor.
  server_.CreateFile("shared.db", 8 * kPageSize, 600);

  auto make_proc = [&](const char* name) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                                bed.host(0)->id);
    auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), name,
                                          bed.host(0), std::move(space), 1);
    return proc;
  };
  auto first = make_proc("first");
  auto second = make_proc("second");
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "shared.db", first->space(), 0).ok);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "shared.db", second->space(), 0).ok);

  first->SetTrace(TraceBuilder().Read(0).Terminate().Build(), 0);
  first->Start();
  bed.sim().Run();
  ASSERT_TRUE(first->done());  // its death notice went out

  // The survivor can still fault pages from the server.
  Fault(0, second->space(), 5 * kPageSize);
  EXPECT_EQ(second->space()->ReadPage(5), MakePatternPage(605));

  // When the survivor also dies, the backing is retired.
  second->SetTrace(TraceBuilder().Terminate().Build(), 0);
  second->Start();
  bed.sim().Run();
  ASSERT_TRUE(second->done());
  // The backing registration is gone but the *file itself* remains intact
  // on the server (the backer never owned it).
  Segment* file = server_.Find("shared.db");
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->ReadPage(5), MakePatternPage(605));
  EXPECT_NE(bed.segments().Find(file->id()), nullptr);
}

TEST_F(FileServiceTest, WriteBackUpdatesTheFile) {
  server_.CreateFile("out.txt", 8 * kPageSize, 0);  // sparse output file
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "out.txt", space.get(), 0).ok);

  // Write two pages locally (faulting them in first).
  Fault(0, space.get(), 2 * kPageSize, /*write=*/true);
  space->WriteByte(2 * kPageSize + 10, 0xAB);
  Fault(0, space.get(), 3 * kPageSize, /*write=*/true);
  space->WriteByte(3 * kPageSize + 20, 0xCD);

  bool flushed = false;
  bool flush_ok = false;
  remote_client_.WriteBack("out.txt", space.get(), 0, {2, 3}, [&](bool ok) {
    flushed = true;
    flush_ok = ok;
  });
  bed.sim().Run();
  ASSERT_TRUE(flushed);
  EXPECT_TRUE(flush_ok);
  EXPECT_EQ(server_.pages_written_back(), 2u);

  Segment* file = server_.Find("out.txt");
  EXPECT_EQ(PageByteAt(file->ReadPage(2), 10), 0xAB);
  EXPECT_EQ(PageByteAt(file->ReadPage(3), 20), 0xCD);
  // Written contents reached the server's disk too.
  EXPECT_GE(bed.host(1)->disk->writes_completed(), 2u);
}

TEST_F(FileServiceTest, WriteBackOfUnknownFileFailsGracefully) {
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  space->Validate(0, kPageSize);
  space->InstallPage(0, MakePatternPage(1));
  bool flushed = false;
  bool flush_ok = true;
  remote_client_.WriteBack("missing", space.get(), 0, {0}, [&](bool ok) {
    flushed = true;
    flush_ok = ok;
  });
  bed.sim().Run();
  EXPECT_TRUE(flushed);
  EXPECT_FALSE(flush_ok);
}

TEST_F(FileServiceTest, MappedFileSurvivesMigration) {
  // A process with a lazily-mapped remote file migrates; the file mapping
  // (an imaginary range) travels as an IOU pointing at the file server.
  server_.CreateFile("data.db", 16 * kPageSize, 321);
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  ASSERT_TRUE(Open(&remote_client_, bed.host(0), "data.db", space.get(), 0).ok);
  space->Validate(16 * kPageSize, 24 * kPageSize);

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "filer",
                                        bed.host(0), std::move(space), 1);
  proc->SetTrace(
      TraceBuilder().Read(4 * kPageSize).Read(12 * kPageSize).Terminate().Build(), 0);

  bed.manager(0)->RegisterLocal(proc.get());
  bool done = false;
  bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord&) { done = true; });
  bed.sim().Run();
  ASSERT_TRUE(done);
  Process* remote = bed.manager(1)->adopted().at(0).get();
  EXPECT_TRUE(remote->done());
  // The file pages were fetched from the file server (now local to host 2).
  EXPECT_EQ(remote->space()->ReadPage(4), MakePatternPage(325));
  EXPECT_EQ(remote->space()->ReadPage(12), MakePatternPage(333));
}

}  // namespace
}  // namespace accent
