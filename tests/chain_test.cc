// Multi-hop re-migration: the A -> B -> C chain and its collapse.
#include <gtest/gtest.h>

#include "src/base/page_data.h"
#include "src/experiments/chain.h"
#include "src/experiments/testbed.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// Reference incarnation: one lossless single-hop pure-copy migration run to
// completion at the destination (same page representation as the chain's
// final incarnation at C).
struct Reference {
  Testbed bed;
  Process* remote = nullptr;
  std::set<PageIndex> planned;
};

void RunReference(Reference* ref, const std::string& workload, std::uint64_t seed) {
  WorkloadInstance instance = BuildWorkload(WorkloadByName(workload), ref->bed.host(0), seed);
  ref->planned = instance.planned_touches;
  Process* proc = instance.process.get();
  ref->bed.manager(0)->RegisterLocal(proc);
  ref->bed.manager(1)->set_on_insert([ref](Process* inserted) { ref->remote = inserted; });
  bool done = false;
  ref->bed.manager(0)->Migrate(proc, ref->bed.manager(1)->port(), TransferStrategy::kPureCopy,
                               [&done](const MigrationRecord&) { done = true; });
  ref->bed.sim().Run();
  ASSERT_TRUE(done);
  ASSERT_NE(ref->remote, nullptr);
  ASSERT_TRUE(ref->remote->done());
}

// One A -> B -> C chain run, instrumented for page-level comparison.
struct ChainRun {
  Testbed bed{[] {
    TestbedConfig config;
    config.host_count = 3;
    return config;
  }()};
  Process* at_c = nullptr;
  std::set<PageIndex> planned;
  bool hop1_done = false;
  bool hop2_done = false;
  bool collapse_done = false;
  ChainCollapseStats collapse;
};

void RunChain(ChainRun* run, const std::string& workload, TransferStrategy strategy,
              std::uint32_t prefetch, std::uint64_t seed) {
  Testbed& bed = run->bed;
  bed.SetPrefetch(prefetch);
  WorkloadInstance instance = BuildWorkload(WorkloadByName(workload), bed.host(0), seed);
  run->planned = instance.planned_touches;
  Process* proc = instance.process.get();
  bed.manager(0)->RegisterLocal(proc);

  bed.manager(2)->set_on_insert([run](Process* inserted) { run->at_c = inserted; });
  bed.manager(1)->set_on_collapse([run](const ChainCollapseStats& stats) {
    run->collapse_done = true;
    run->collapse = stats;
  });
  bed.manager(1)->set_on_insert([run, &bed, strategy](Process* at_b) {
    const std::size_t pc = at_b->trace_pc();
    const std::size_t size = at_b->trace()->size();
    std::size_t target = pc + (size - pc) / 2;
    if (target <= pc) {
      target = pc + 1;
    }
    at_b->SuspendAt(target, [run, &bed, strategy, at_b]() {
      bed.manager(1)->Migrate(at_b, bed.manager(2)->port(), strategy,
                              [run](const MigrationRecord&) { run->hop2_done = true; });
    });
  });

  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), strategy,
                          [run](const MigrationRecord&) { run->hop1_done = true; });
  ASSERT_TRUE(bed.RunGuarded());
  ASSERT_TRUE(run->hop1_done);
  ASSERT_TRUE(run->hop2_done);
  ASSERT_NE(run->at_c, nullptr);
  ASSERT_TRUE(run->at_c->done());
}

// The contents a fault would observe for `page`: the private copy when
// materialised, otherwise (a page still owed to the backing chain) the
// backer object's stored page, resolved through the segment table.
PageRef ObservablePage(const AddressSpace& space, const SegmentTable& segments,
                       PageIndex page) {
  if (space.HasPrivatePage(page)) {
    return space.ReadPage(page);
  }
  if (space.ClassOf(PageBase(page)) == MemClass::kImag) {
    const AddressSpace::ImagTarget target = space.ImagTargetOf(PageBase(page));
    Segment* backer = segments.Find(target.iou.segment);
    return backer != nullptr ? backer->ReadPage(PageOf(target.backer_offset)) : PageRef{};
  }
  return space.ReadPage(page);
}

class ChainStrategyTest : public ::testing::TestWithParam<TransferStrategy> {};

// Every planned page at C matches the single-hop reference incarnation,
// byte for byte — the chain (and its collapse) may not corrupt anything.
// Pages the process touched only at B stay owed to the backing chain; after
// the collapse they must resolve through A (never the evacuated B), with
// the merged contents intact.
TEST_P(ChainStrategyTest, PreservesEveryPlannedPage) {
  Reference ref;
  ASSERT_NO_FATAL_FAILURE(RunReference(&ref, "Minprog", 42));

  ChainRun run;
  ASSERT_NO_FATAL_FAILURE(RunChain(&run, "Minprog", GetParam(), 0, 42));

  const PortId b_backing = run.bed.netmsg(1)->backing_port();
  for (PageIndex page : ref.planned) {
    const AddressSpace& space = *run.at_c->space();
    if (!space.HasPrivatePage(page) && space.ClassOf(PageBase(page)) == MemClass::kImag) {
      // Residual routing: no planned page may still be owed to B.
      EXPECT_NE(space.ImagTargetOf(PageBase(page)).iou.backing_port.value, b_backing.value)
          << "page " << page << " still owed to the evacuated intermediary";
    }
    EXPECT_EQ(PageIntegrityChecksum(ObservablePage(space, run.bed.segments(), page)),
              PageIntegrityChecksum(ObservablePage(*ref.remote->space(), ref.bed.segments(), page)))
        << "page " << page << " content mismatch";
  }
}

// Copy-on-reference chains collapse; after the collapse the intermediary
// owns no objects (only forwarding stubs) and serves no further requests.
TEST_P(ChainStrategyTest, IntermediaryIsEvacuatedAfterCollapse) {
  const TransferStrategy strategy = GetParam();
  ChainRun run;
  ASSERT_NO_FATAL_FAILURE(RunChain(&run, "Minprog", strategy, 0, 42));

  if (strategy == TransferStrategy::kPureCopy) {
    EXPECT_FALSE(run.collapse_done);  // no IOUs, nothing to collapse
    return;
  }
  EXPECT_TRUE(run.collapse_done);
  EXPECT_EQ(run.collapse.rebinds_acked, run.collapse.objects_handed_off);
  EXPECT_EQ(run.bed.manager(1)->chains_collapsed(), 1u);

  SegmentBacker& b = run.bed.netmsg(1)->backer();
  EXPECT_EQ(b.object_count(), 0u);
  if (strategy == TransferStrategy::kPureIou) {
    // Pure-IOU leaves B holding everything the process touched there, so the
    // collapse must genuinely move objects and leave forwarding stubs.
    EXPECT_GT(run.collapse.objects_handed_off, 0u);
    EXPECT_GT(run.collapse.segments_rebound, 0u);
    EXPECT_GT(b.stub_count(), 0u);
    EXPECT_GT(b.handoff_pages_sent(), 0u);
  } else {
    // Resident-set ships B's entire resident set physically on hop 2 and the
    // remainder was still owed to A, so B never became a backer: the collapse
    // is a (correct) no-op evacuation.
    EXPECT_EQ(b.stub_count(), run.collapse.objects_handed_off);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ChainStrategyTest,
                         ::testing::Values(TransferStrategy::kPureCopy,
                                           TransferStrategy::kPureIou,
                                           TransferStrategy::kResidentSet),
                         [](const ::testing::TestParamInfo<TransferStrategy>& info) {
                           switch (info.param) {
                             case TransferStrategy::kPureCopy:
                               return "PureCopy";
                             case TransferStrategy::kPureIou:
                               return "PureIou";
                             case TransferStrategy::kResidentSet:
                               return "ResidentSet";
                             case TransferStrategy::kPreCopy:
                               return "PreCopy";
                           }
                           return "Unknown";
                         });

// The packaged trial harness agrees: one cell of the grid end to end.
TEST(ChainTrial, PureIouTrialMeetsEveryGate) {
  ChainTrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  const ChainTrialResult result = RunChainTrial(config);
  EXPECT_TRUE(result.drained);
  EXPECT_TRUE(result.hop1_done);
  EXPECT_TRUE(result.hop2_done);
  EXPECT_TRUE(result.finished_at_c);
  EXPECT_TRUE(result.integrity_ok);
  EXPECT_TRUE(result.collapse_done);
  EXPECT_EQ(result.b_requests_after_collapse, 0u);
  EXPECT_EQ(result.b_forwards_after_collapse, 0u);
  EXPECT_EQ(result.b_objects_after_collapse, 0u);
  EXPECT_GT(result.b_stubs, 0u);
  EXPECT_GT(result.c_imag_faults, 0u);
}

// B dies for good right after its chain collapsed; the process on C keeps
// running to completion — its residual dependency moved to A.
TEST(ChainCrash, IntermediaryDeathAfterCollapseIsSurvivable) {
  ChainTrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  const ChainCrashResult result = RunChainCrashTrial(config);
  EXPECT_TRUE(result.baseline.collapse_done);
  EXPECT_TRUE(result.survived);
  EXPECT_TRUE(result.crashed.finished_at_c);
  EXPECT_TRUE(result.crashed.integrity_ok);
}

}  // namespace
}  // namespace accent
