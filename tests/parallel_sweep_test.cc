// Determinism contract of the parallel sweep engine: for any thread count,
// results must be byte-identical — every TrialResult metric field — to the
// serial sweep. Also covers the sweep-cache JSON round trip and the
// ACCENT_SWEEP_THREADS / thread-pool plumbing underneath.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/experiments/chain.h"
#include "src/experiments/cluster.h"
#include "src/experiments/failure_sweep.h"
#include "src/experiments/sweep.h"
#include "src/experiments/sweep_cache.h"
#include "src/experiments/trial.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// Field-by-field equality for every metric the evaluation reports. Exact
// (==) on purpose: the engines must agree bit-for-bit, not approximately.
void ExpectTrialResultsIdentical(const TrialResult& a, const TrialResult& b,
                                 const std::string& label) {
  SCOPED_TRACE(label);
  // Config echo.
  EXPECT_EQ(a.config.workload, b.config.workload);
  EXPECT_EQ(a.config.strategy, b.config.strategy);
  EXPECT_EQ(a.config.prefetch, b.config.prefetch);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.iou_caching, b.config.iou_caching);
  EXPECT_EQ(a.config.frames_per_host, b.config.frames_per_host);
  EXPECT_EQ(a.config.traffic_bucket, b.config.traffic_bucket);
  // Spec echo.
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.spec.real_bytes, b.spec.real_bytes);
  EXPECT_EQ(a.spec.zero_bytes, b.spec.zero_bytes);
  EXPECT_EQ(a.spec.resident_bytes, b.spec.resident_bytes);
  EXPECT_EQ(a.spec.touched_real_pages, b.spec.touched_real_pages);
  EXPECT_EQ(a.spec.compute, b.spec.compute);
  // Migration phases.
  EXPECT_EQ(a.migration.requested, b.migration.requested);
  EXPECT_EQ(a.migration.excise_done, b.migration.excise_done);
  EXPECT_EQ(a.migration.core_sent, b.migration.core_sent);
  EXPECT_EQ(a.migration.rimas_sent, b.migration.rimas_sent);
  EXPECT_EQ(a.migration.excise_amap, b.migration.excise_amap);
  EXPECT_EQ(a.migration.excise_rimas, b.migration.excise_rimas);
  EXPECT_EQ(a.migration.excise_overall, b.migration.excise_overall);
  EXPECT_EQ(a.migration.core_arrived, b.migration.core_arrived);
  EXPECT_EQ(a.migration.rimas_arrived, b.migration.rimas_arrived);
  EXPECT_EQ(a.migration.insert_time, b.migration.insert_time);
  EXPECT_EQ(a.migration.resumed, b.migration.resumed);
  EXPECT_EQ(a.migration.resident_bytes_shipped, b.migration.resident_bytes_shipped);
  EXPECT_EQ(a.migration.precopy_rounds, b.migration.precopy_rounds);
  EXPECT_EQ(a.migration.precopy_bytes, b.migration.precopy_bytes);
  EXPECT_EQ(a.migration.frozen, b.migration.frozen);
  // Completion and traffic.
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.remote_exec, b.remote_exec);
  EXPECT_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.bytes_control, b.bytes_control);
  EXPECT_EQ(a.bytes_core, b.bytes_core);
  EXPECT_EQ(a.bytes_bulk, b.bytes_bulk);
  EXPECT_EQ(a.bytes_fault, b.bytes_fault);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.netmsg_busy, b.netmsg_busy);
  EXPECT_EQ(a.series_bucket, b.series_bucket);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].start, b.series[i].start) << "bucket " << i;
    EXPECT_EQ(a.series[i].bytes, b.series[i].bytes) << "bucket " << i;
  }
  // Destination pager.
  EXPECT_EQ(a.dest_pager.resident_hits, b.dest_pager.resident_hits);
  EXPECT_EQ(a.dest_pager.fillzero_faults, b.dest_pager.fillzero_faults);
  EXPECT_EQ(a.dest_pager.disk_faults, b.dest_pager.disk_faults);
  EXPECT_EQ(a.dest_pager.cow_faults, b.dest_pager.cow_faults);
  EXPECT_EQ(a.dest_pager.imag_faults, b.dest_pager.imag_faults);
  EXPECT_EQ(a.dest_pager.imag_pages_fetched, b.dest_pager.imag_pages_fetched);
  EXPECT_EQ(a.dest_pager.prefetched_pages, b.dest_pager.prefetched_pages);
  EXPECT_EQ(a.dest_pager.prefetch_hits, b.dest_pager.prefetch_hits);
  EXPECT_EQ(a.dest_pager.pageouts, b.dest_pager.pageouts);
  EXPECT_EQ(a.dest_pager.address_errors, b.dest_pager.address_errors);
  EXPECT_EQ(a.dest_pager.failed_fetches, b.dest_pager.failed_fetches);
  EXPECT_EQ(a.real_bytes_transferred, b.real_bytes_transferred);

  // Belt and braces: the canonical JSON dumps must also match byte for
  // byte, which covers any field a future PR adds but forgets to list here.
  EXPECT_EQ(TrialResultToJson(a).Dump(), TrialResultToJson(b).Dump());
}

TEST(ParallelSweep, MatchesSerialSweepUnder1And2And8Threads) {
  const std::string workload = "Minprog";
  const std::vector<TrialResult> serial = RunStrategySweep(workload);
  ASSERT_EQ(serial.size(), 11u);  // copy + 2 strategies x 5 prefetch values

  for (int threads : {1, 2, 8}) {
    const std::vector<TrialResult> parallel =
        RunStrategySweepParallel(workload, 42, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ExpectTrialResultsIdentical(serial[i], parallel[i],
                                  "threads=" + std::to_string(threads) + " trial=" +
                                      std::to_string(i));
    }
  }
}

TEST(ParallelSweep, GridOrderMatchesSerialContract) {
  const std::vector<TrialConfig> configs = StrategySweepConfigs("Chess", 7);
  ASSERT_EQ(configs.size(), 11u);
  EXPECT_EQ(configs[0].strategy, TransferStrategy::kPureCopy);
  for (std::size_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(configs[i].strategy, TransferStrategy::kPureIou);
    EXPECT_EQ(configs[i].prefetch, kPaperPrefetchValues[i - 1]);
  }
  for (std::size_t i = 6; i <= 10; ++i) {
    EXPECT_EQ(configs[i].strategy, TransferStrategy::kResidentSet);
    EXPECT_EQ(configs[i].prefetch, kPaperPrefetchValues[i - 6]);
  }
  for (const TrialConfig& config : configs) {
    EXPECT_EQ(config.workload, "Chess");
    EXPECT_EQ(config.seed, 7u);
  }
}

TEST(ParallelSweep, FailureMatrixIsByteIdenticalAcross1And2And8Threads) {
  // Fault-injection trials consume extra randomness (every packet verdict
  // draws from the injector's Rng), so this is the sharper determinism
  // claim: the verdict stream is keyed to each trial's private simulator,
  // never to wall-clock interleaving. The canonical JSON dump covers every
  // outcome, counter and checksum in one comparison. The thread count goes
  // in through ACCENT_SWEEP_THREADS to exercise the same plumbing CI uses.
  std::string reference;
  for (const char* threads : {"1", "2", "8"}) {
    ASSERT_EQ(setenv("ACCENT_SWEEP_THREADS", threads, 1), 0);
    const std::string dump = FailureMatrixToJson(RunFailureMatrix(42, 0)).Dump(2);
    if (reference.empty()) {
      reference = dump;
      EXPECT_NE(reference.find("\"hung\": 0"), std::string::npos);
    } else {
      EXPECT_EQ(dump, reference) << "threads=" << threads;
    }
  }
  ASSERT_EQ(unsetenv("ACCENT_SWEEP_THREADS"), 0);
}

TEST(ParallelSweep, ChainSweepIsByteIdenticalAcross1And2And8Threads) {
  // The A -> B -> C chain grid runs three-host testbeds with a mid-trace
  // re-migration and an IOU-chain collapse per trial; the same determinism
  // contract holds: thread count cannot reach any result.
  const std::vector<ChainTrialConfig> configs = ChainSweepConfigs("Minprog", 42);
  const std::string serial = ChainSweepToJson(RunChainTrials(configs, 1), {}).Dump(2);
  EXPECT_NE(serial.find("\"hung\": 0"), std::string::npos);
  EXPECT_EQ(ChainSweepToJson(RunChainTrials(configs, 2), {}).Dump(2), serial);
  EXPECT_EQ(ChainSweepToJson(RunChainTrials(configs, 8), {}).Dump(2), serial);
}

TEST(ParallelSweep, ClusterTrialIsByteIdenticalAcross1And2And8Shards) {
  // The sharded-core determinism contract, stated where the other engine
  // determinism contracts live: a fleet trial's canonical JSON is identical
  // for every shard count, including with real worker threads underneath
  // (which is what the tsan preset exercises here).
  ClusterConfig config;
  config.host_count = 10;
  config.duration = Sec(40.0);
  config.initial_processes_per_host = 5;
  config.arrivals_per_host_per_sec = 0.5;
  config.mean_service_sec = 12.0;
  config.policy.sample_period = Sec(2.0);
  config.shards = 1;
  const std::string reference =
      ClusterResultToJson(RunClusterTrial(config)).Dump(2);
  EXPECT_NE(reference.find("\"hung\": false"), std::string::npos);
  EXPECT_NE(reference.find("\"census_ok\": true"), std::string::npos);
  for (int shards : {2, 8}) {
    config.shards = shards;
    config.shard_threads = 2;
    EXPECT_EQ(ClusterResultToJson(RunClusterTrial(config)).Dump(2), reference)
        << "shards=" << shards;
  }
}

TEST(ParallelSweep, CachedClusterTrialIsByteIdenticalAcross1And2And8Shards) {
  // Same contract with the content cache on: all dedup state (per-host
  // class caches, confirm accounting) is owned by destination-shard events,
  // so the fleet cache must not cost a byte of determinism.
  ClusterConfig config;
  config.host_count = 10;
  config.duration = Sec(40.0);
  config.initial_processes_per_host = 5;
  config.arrivals_per_host_per_sec = 0.5;
  config.mean_service_sec = 12.0;
  config.policy.sample_period = Sec(2.0);
  config.content_cache = true;
  config.content_cache_pages = 256;  // small enough to force evictions
  config.shards = 1;
  const std::string reference =
      ClusterResultToJson(RunClusterTrial(config)).Dump(2);
  EXPECT_NE(reference.find("\"hung\": false"), std::string::npos);
  EXPECT_NE(reference.find("\"census_ok\": true"), std::string::npos);
  EXPECT_EQ(reference.find("\"pages_deduped\": 0,"), std::string::npos)
      << "the cached trial must actually dedup pages";
  for (int shards : {2, 8}) {
    config.shards = shards;
    config.shard_threads = 2;
    EXPECT_EQ(ClusterResultToJson(RunClusterTrial(config)).Dump(2), reference)
        << "shards=" << shards;
  }
}

TEST(ParallelSweep, GoldenDigestHoldsWithShardKnobSet) {
  // ACCENT_SIM_SHARDS selects the engine for cluster trials only; the
  // classic two-host testbeds never call ConfigureShards, so the golden
  // 77-trial digest (tests/golden_sweep_test.cc) must be unreachable by the
  // knob. Same digest constant, same FNV-1a fold, knob set the whole time.
  ASSERT_EQ(setenv("ACCENT_SIM_SHARDS", "1", 1), 0);
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  auto fold = [&digest](const std::string& text) {
    for (unsigned char c : text) {
      digest ^= c;
      digest *= 1099511628211ull;
    }
  };
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    for (const TrialResult& result : RunTrials(StrategySweepConfigs(spec.name))) {
      fold(TrialResultToJson(result).Dump());
      fold("\n");
    }
  }
  EXPECT_EQ(digest, 0x5798e77cf186ffd8ull)
      << "ACCENT_SIM_SHARDS leaked into the classic serial engine";
  ASSERT_EQ(unsetenv("ACCENT_SIM_SHARDS"), 0);
}

TEST(SweepThreads, EnvVarOverridesAndClamps) {
  ASSERT_EQ(setenv("ACCENT_SWEEP_THREADS", "3", 1), 0);
  EXPECT_EQ(SweepThreadCount(), 3);
  // Non-positive and garbage values fall back to the hardware default.
  ASSERT_EQ(setenv("ACCENT_SWEEP_THREADS", "0", 1), 0);
  EXPECT_EQ(SweepThreadCount(), ThreadPool::HardwareThreads());
  ASSERT_EQ(setenv("ACCENT_SWEEP_THREADS", "-4", 1), 0);
  EXPECT_EQ(SweepThreadCount(), ThreadPool::HardwareThreads());
  ASSERT_EQ(setenv("ACCENT_SWEEP_THREADS", "lots", 1), 0);
  EXPECT_EQ(SweepThreadCount(), ThreadPool::HardwareThreads());
  ASSERT_EQ(unsetenv("ACCENT_SWEEP_THREADS"), 0);
  EXPECT_GE(SweepThreadCount(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(threads, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(SweepCacheTest, JsonRoundTripIsLossless) {
  const std::vector<TrialResult> results = RunStrategySweepParallel("Minprog", 42, 2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Json json = TrialResultToJson(results[i]);
    const TrialResult reloaded = TrialResultFromJson(Json::Parse(json.Dump(2)));
    ExpectTrialResultsIdentical(results[i], reloaded, "trial=" + std::to_string(i));
  }
}

TEST(SweepCacheTest, FileRoundTripAndValidation) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "accent_sweep_cache_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "sweep.json").string();

  const std::vector<TrialConfig> configs = StrategySweepConfigs("Minprog", 42);
  const std::vector<TrialResult> results = RunTrials(configs, 2);
  WriteSweepFile(path, results);

  std::vector<TrialResult> loaded;
  ASSERT_TRUE(LoadSweepFile(path, configs, &loaded));
  ASSERT_EQ(loaded.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ExpectTrialResultsIdentical(results[i], loaded[i], "trial=" + std::to_string(i));
  }

  // A different expected grid (other seed) must be rejected, not served.
  EXPECT_FALSE(LoadSweepFile(path, StrategySweepConfigs("Minprog", 43), &loaded));
  // Truncated/corrupt files are a miss, not an abort.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"format_version\": 1, \"trials\": [";
  }
  EXPECT_FALSE(LoadSweepFile(path, configs, &loaded));
  EXPECT_FALSE(LoadSweepFile((dir / "absent.json").string(), configs, &loaded));
  std::filesystem::remove_all(dir);
}

TEST(SweepCacheTest, DiskCacheServesIdenticalResultsAcrossInstances) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "accent_sweep_cache_test2";
  std::filesystem::remove_all(dir);

  DiskSweepCache writer(dir.string());
  const std::vector<TrialResult>& computed = writer.For("Minprog", 42, 2);
  EXPECT_EQ(writer.computes(), 1);
  EXPECT_EQ(writer.disk_hits(), 0);

  // A fresh instance (a different bench binary, in effect) must load the
  // same grid from disk without re-simulating.
  DiskSweepCache reader(dir.string());
  const std::vector<TrialResult>& loaded = reader.For("Minprog", 42, 2);
  EXPECT_EQ(reader.computes(), 0);
  EXPECT_EQ(reader.disk_hits(), 1);
  ASSERT_EQ(loaded.size(), computed.size());
  for (std::size_t i = 0; i < computed.size(); ++i) {
    ExpectTrialResultsIdentical(computed[i], loaded[i], "trial=" + std::to_string(i));
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepCacheTest, KeyChangesWithGridContents) {
  const std::string base = SweepCacheKey(StrategySweepConfigs("Minprog", 42));
  EXPECT_EQ(base, SweepCacheKey(StrategySweepConfigs("Minprog", 42)));  // stable
  EXPECT_NE(base, SweepCacheKey(StrategySweepConfigs("Minprog", 43)));
  EXPECT_NE(base, SweepCacheKey(StrategySweepConfigs("Chess", 42)));

  std::vector<TrialConfig> tweaked = StrategySweepConfigs("Minprog", 42);
  tweaked[3].iou_caching = false;
  EXPECT_NE(base, SweepCacheKey(tweaked));
}

}  // namespace
}  // namespace accent
