// End-to-end migration tests: the MigrationManager pipeline under every
// strategy, data integrity, chained migrations, remote commands.
#include <gtest/gtest.h>

#include "src/experiments/testbed.h"
#include "src/workloads/trace_gen.h"

namespace accent {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  // A process with all three memory classes and a trace that reads and
  // writes across them, with self-checks via expected bytes.
  std::unique_ptr<Process> BuildProcess(Testbed* bed) {
    auto space = std::make_unique<AddressSpace>(SpaceId(bed->sim().AllocateId()),
                                                bed->host(0)->id);
    Segment* image = bed->segments().CreateReal(32 * kPageSize, "img");
    for (PageIndex p = 0; p < 32; ++p) {
      image->StorePage(p, MakePatternPage(p + 1));
    }
    space->MapReal(0, 32 * kPageSize, image, 0, false);
    space->Validate(32 * kPageSize, 64 * kPageSize);
    for (PageIndex p : {0u, 5u, 13u}) {
      bed->host(0)->memory->Insert(space->id(), p, false);
    }

    auto proc = std::make_unique<Process>(ProcId(bed->sim().AllocateId()), "traveler",
                                          bed->host(0), std::move(space), 7);
    TraceBuilder builder;
    builder.Compute(Ms(5));
    for (PageIndex p = 0; p < 32; p += 3) {
      builder.Read(PageBase(p));
    }
    builder.Write(40 * kPageSize + 9, 0x5e);
    builder.Compute(Ms(5));
    builder.Terminate();
    proc->SetTrace(builder.Build(), 0);
    return proc;
  }

  MigrationRecord Migrate(Testbed* bed, Process* proc, TransferStrategy strategy) {
    MigrationRecord record;
    bool done = false;
    bed->manager(0)->RegisterLocal(proc);
    bed->manager(0)->Migrate(proc, bed->manager(1)->port(), strategy,
                             [&](const MigrationRecord& r) {
                               record = r;
                               done = true;
                             });
    bed->sim().Run();
    EXPECT_TRUE(done);
    return record;
  }
};

class MigrationStrategyTest
    : public MigrationTest,
      public ::testing::WithParamInterface<TransferStrategy> {};

TEST_P(MigrationStrategyTest, ProcessCompletesRemotelyWithIntactData) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  const MigrationRecord record = Migrate(&bed, proc.get(), GetParam());

  ASSERT_EQ(bed.manager(1)->adopted().size(), 1u);
  Process* remote = bed.manager(1)->adopted()[0].get();
  EXPECT_TRUE(remote->done());
  EXPECT_EQ(remote->id(), record.proc);
  EXPECT_EQ(remote->microstate_token(), 7u);

  // Every image page reads back exactly, touched or not.
  for (PageIndex p = 0; p < 32; ++p) {
    if (remote->space()->ClassOf(PageBase(p)) == MemClass::kImag) {
      continue;  // untouched owed page — data still lives with the backer
    }
    EXPECT_EQ(remote->space()->ReadPage(p), MakePatternPage(p + 1)) << "page " << p;
  }
  // The remote write landed.
  EXPECT_EQ(remote->space()->ReadByte(40 * kPageSize + 9), 0x5e);

  // Record sanity.
  EXPECT_GT(record.excise_overall.count(), 0);
  EXPECT_GT(record.insert_time.count(), 0);
  EXPECT_GE(record.rimas_arrived, record.rimas_sent);
  EXPECT_GE(record.resumed, record.core_arrived);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MigrationStrategyTest,
                         ::testing::Values(TransferStrategy::kPureCopy,
                                           TransferStrategy::kPureIou,
                                           TransferStrategy::kResidentSet),
                         [](const auto& info) {
                           return std::string(StrategyName(info.param)) == "pure-copy"
                                      ? "PureCopy"
                                      : StrategyName(info.param) == std::string("pure-IOU")
                                            ? "PureIou"
                                            : "ResidentSet";
                         });

TEST_F(MigrationTest, PureCopyShipsEverythingEagerly) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  Migrate(&bed, proc.get(), TransferStrategy::kPureCopy);
  EXPECT_EQ(bed.pager(1)->stats().imag_faults, 0u);
  EXPECT_GT(bed.traffic().BytesOf(TrafficKind::kBulkData), 32 * kPageSize);
  // No residual imaginary memory at the destination.
  Process* remote = bed.manager(1)->adopted()[0].get();
  EXPECT_EQ(remote->space()->ImagBytes(), 0u);
}

TEST_F(MigrationTest, PureIouFetchesOnlyTouchedPages) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  Migrate(&bed, proc.get(), TransferStrategy::kPureIou);
  // 11 distinct image pages touched (0,3,...,30).
  EXPECT_EQ(bed.pager(1)->stats().imag_faults, 11u);
  EXPECT_EQ(bed.pager(1)->stats().imag_pages_fetched, 11u);
  // Untouched pages never crossed the wire.
  EXPECT_LT(bed.traffic().BytesOf(TrafficKind::kFaultData), 12 * (kPageSize + 256));
  // The source NetMsgServer became the backer.
  EXPECT_EQ(bed.netmsg(0)->stats().regions_cached, 1u);
}

TEST_F(MigrationTest, ResidentSetShipsExactlyTheResidentPages) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  const MigrationRecord record = Migrate(&bed, proc.get(), TransferStrategy::kResidentSet);
  EXPECT_EQ(record.resident_bytes_shipped, 3 * kPageSize);
  // Touched pages outside the resident set fault remotely: 11 touched,
  // 3 resident (0, 5 is not in the touch stride 0,3,6..., 13 is not) — page
  // 0 overlaps, so 10 remote faults.
  EXPECT_EQ(bed.pager(1)->stats().imag_faults, 10u);
}

TEST_F(MigrationTest, TerminationKillsSourceCache) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  Migrate(&bed, proc.get(), TransferStrategy::kPureIou);
  // After remote termination, the Imaginary Segment Death notice retires
  // the NetMsgServer's cached object.
  EXPECT_EQ(bed.netmsg(0)->backer().deaths_received(), 1u);
  EXPECT_EQ(bed.netmsg(0)->backer().object_count(), 0u);
}

TEST_F(MigrationTest, RemoteMigrateRequestCommand) {
  Testbed bed;
  auto proc = BuildProcess(&bed);
  bed.manager(0)->RegisterLocal(proc.get());

  // Host 1 commands host 0 to push the process over (the paper's
  // MigrationManager accepts and executes commands).
  MigrateRequestBody body;
  body.proc = proc->id();
  body.dest_manager = bed.manager(1)->port();
  body.strategy = TransferStrategy::kPureIou;
  Message command;
  command.dest = bed.manager(0)->port();
  command.op = MsgOp::kMigrateRequest;
  command.inline_bytes = 32;
  command.body = body;
  ASSERT_TRUE(bed.fabric().Send(bed.host(1)->id, std::move(command)).ok());
  bed.sim().Run();

  ASSERT_EQ(bed.manager(1)->adopted().size(), 1u);
  EXPECT_TRUE(bed.manager(1)->adopted()[0]->done());
}

TEST_F(MigrationTest, ChainedMigrationAcrossThreeHosts) {
  // A -> B -> C with the process still holding IOUs on A: the second hop
  // re-ships the owed ranges as IOUs pointing at A's cache.
  TestbedConfig config;
  config.host_count = 3;
  Testbed bed(config);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* image = bed.segments().CreateReal(16 * kPageSize, "img");
  for (PageIndex p = 0; p < 16; ++p) {
    image->StorePage(p, MakePatternPage(p + 21));
  }
  space->MapReal(0, 16 * kPageSize, image, 0, false);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "hopper",
                                        bed.host(0), std::move(space), 3);
  // Touch pages 0 and 1 on host B (between the hops nothing runs; the trace
  // runs only at the final destination).
  proc->SetTrace(TraceBuilder().Read(0).Read(PageBase(1)).Read(PageBase(9)).Terminate().Build(),
                 0);

  // Hop 1: A -> B, pure-IOU, but don't start the process — we migrate the
  // suspended arrival onward. Use the manager API directly.
  bed.manager(0)->RegisterLocal(proc.get());
  bool hop1 = false;
  bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord&) { hop1 = true; });
  // Let the first hop complete (including the remote run — the trace will
  // execute on B; that's fine, the point is the second hop of a process
  // that still holds owed memory... so use a long compute prefix instead).
  bed.sim().Run();
  ASSERT_TRUE(hop1);
  ASSERT_EQ(bed.manager(1)->adopted().size(), 1u);
  Process* on_b = bed.manager(1)->adopted()[0].get();
  EXPECT_TRUE(on_b->done());
  // Pages all readable on B.
  for (PageIndex p : {0u, 1u, 9u}) {
    EXPECT_EQ(on_b->space()->ReadPage(p), MakePatternPage(p + 21));
  }
}

TEST_F(MigrationTest, SecondHopWithOwedMemory) {
  // A -> B -> C where B forwards the process onward the moment it arrives,
  // before it executes anything: the memory is still fully owed to A's
  // NetMsgServer cache when the process reaches C, and C's faults resolve
  // against A (the physically-dispersed address space of section 6).
  TestbedConfig config;
  config.host_count = 3;
  Testbed bed(config);

  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* image = bed.segments().CreateReal(8 * kPageSize, "img");
  for (PageIndex p = 0; p < 8; ++p) {
    image->StorePage(p, MakePatternPage(p + 77));
  }
  space->MapReal(0, 8 * kPageSize, image, 0, false);
  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "hopper2",
                                        bed.host(0), std::move(space), 3);
  proc->SetTrace(TraceBuilder().Read(0).Read(PageBase(6)).Terminate().Build(), 0);
  bed.manager(0)->RegisterLocal(proc.get());

  // As soon as B inserts the process, push it on to C (suspend drains
  // nothing: the first trace op has not run yet).
  bed.manager(1)->set_on_insert([&](Process* arrived) {
    bed.manager(1)->Migrate(arrived, bed.manager(2)->port(), TransferStrategy::kPureIou,
                            [](const MigrationRecord&) {});
  });

  bool hop1 = false;
  bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), TransferStrategy::kPureIou,
                          [&](const MigrationRecord&) { hop1 = true; });
  bed.sim().Run();
  ASSERT_TRUE(hop1);

  ASSERT_EQ(bed.manager(2)->adopted().size(), 1u);
  Process* on_c = bed.manager(2)->adopted()[0].get();
  EXPECT_TRUE(on_c->done());
  // The trace executed on C, fetching its pages from A's cache (B never
  // faulted them in).
  EXPECT_EQ(bed.pager(1)->stats().imag_faults, 0u);
  EXPECT_EQ(bed.pager(2)->stats().imag_faults, 2u);
  EXPECT_EQ(on_c->space()->ReadPage(0), MakePatternPage(77));
  EXPECT_EQ(on_c->space()->ReadPage(6), MakePatternPage(83));
  // Termination on C retires A's cached object.
  EXPECT_EQ(bed.netmsg(0)->backer().deaths_received(), 1u);
}

}  // namespace
}  // namespace accent
