// Cross-cutting trial properties, parameterized across workloads and
// strategies: the invariants behind every table and figure.
#include <gtest/gtest.h>

#include "src/experiments/trial.h"

namespace accent {
namespace {

struct TrialCase {
  const char* workload;
  TransferStrategy strategy;
  std::uint32_t prefetch;
};

std::string CaseName(const ::testing::TestParamInfo<TrialCase>& info) {
  std::string name = info.param.workload;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  switch (info.param.strategy) {
    case TransferStrategy::kPureCopy: name += "_Copy"; break;
    case TransferStrategy::kPureIou: name += "_Iou"; break;
    case TransferStrategy::kResidentSet: name += "_Rs"; break;
    case TransferStrategy::kPreCopy: name += "_PreCopy"; break;
  }
  return name + "_PF" + std::to_string(info.param.prefetch);
}

class TrialPropertyTest : public ::testing::TestWithParam<TrialCase> {
 protected:
  TrialResult Run() const {
    TrialConfig config;
    config.workload = GetParam().workload;
    config.strategy = GetParam().strategy;
    config.prefetch = GetParam().prefetch;
    return RunTrial(config);
  }
};

TEST_P(TrialPropertyTest, Invariants) {
  const TrialResult result = Run();
  const TrialCase& param = GetParam();

  // The process finished remotely, after resumption.
  EXPECT_GT(result.finished, result.migration.resumed);
  EXPECT_GT(result.remote_exec.count(), 0);

  // Phase ordering.
  EXPECT_GE(result.migration.excise_done, result.migration.requested);
  EXPECT_GE(result.migration.rimas_sent, result.migration.excise_done);
  EXPECT_GT(result.migration.rimas_arrived, result.migration.rimas_sent);
  EXPECT_GT(result.migration.core_arrived, result.migration.core_sent);
  EXPECT_GE(result.migration.resumed, result.migration.core_arrived);

  // Excision sub-phases compose.
  EXPECT_GE(result.migration.excise_overall,
            result.migration.excise_amap + result.migration.excise_rimas);

  // Byte accounting: categories sum to the total.
  EXPECT_EQ(result.bytes_total, result.bytes_control + result.bytes_core +
                                    result.bytes_bulk + result.bytes_fault);
  EXPECT_GT(result.bytes_core, 0u);

  // Traffic series sums to the total too.
  ByteCount series_total = 0;
  for (const auto& bucket : result.series) {
    for (ByteCount b : bucket.bytes) {
      series_total += b;
    }
  }
  EXPECT_EQ(series_total, result.bytes_total);

  // Strategy-specific structure.
  switch (param.strategy) {
    case TransferStrategy::kPureCopy:
      EXPECT_EQ(result.dest_pager.imag_faults, 0u);
      EXPECT_EQ(result.bytes_fault, 0u);
      EXPECT_GE(result.bytes_bulk, result.spec.real_bytes);
      EXPECT_DOUBLE_EQ(result.FractionOfRealTransferred(), 1.0);
      break;
    case TransferStrategy::kPureIou: {
      EXPECT_GT(result.dest_pager.imag_faults, 0u);
      // Fetched pages cover at least the planned touches of real memory and
      // never exceed RealMem.
      EXPECT_GE(result.dest_pager.imag_pages_fetched, result.spec.touched_real_pages);
      EXPECT_LE(result.real_bytes_transferred, result.spec.real_bytes);
      if (param.prefetch == 0) {
        // Without prefetch, exactly the touched pages are fetched.
        EXPECT_EQ(result.dest_pager.imag_pages_fetched, result.spec.touched_real_pages);
        EXPECT_EQ(result.dest_pager.imag_faults, result.spec.touched_real_pages);
      }
      break;
    }
    case TransferStrategy::kResidentSet:
      EXPECT_EQ(result.migration.resident_bytes_shipped, result.spec.resident_bytes);
      // Remote faults cover touched-minus-overlap (exactly, at PF0).
      if (param.prefetch == 0) {
        EXPECT_EQ(result.dest_pager.imag_faults,
                  result.spec.touched_real_pages - result.spec.resident_touched_overlap);
      }
      break;
    case TransferStrategy::kPreCopy:
      // Pre-copy ships everything physically; like pure-copy, the
      // destination never takes a remote fault. The round/downtime
      // structure has its own gates in the pre-copy sweep.
      EXPECT_EQ(result.dest_pager.imag_faults, 0u);
      EXPECT_EQ(result.bytes_fault, 0u);
      EXPECT_GE(result.bytes_bulk, result.spec.real_bytes);
      break;
  }

  // Zero-fill traffic never crosses the wire: bulk bytes are bounded by
  // RealMem plus descriptors, regardless of the (huge) validated size.
  EXPECT_LT(result.bytes_bulk, result.spec.real_bytes + 128 * 1024);

  // Prefetch accounting sanity.
  EXPECT_LE(result.dest_pager.prefetch_hits, result.dest_pager.prefetched_pages);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrialPropertyTest,
    ::testing::Values(
        TrialCase{"Minprog", TransferStrategy::kPureCopy, 0},
        TrialCase{"Minprog", TransferStrategy::kPureIou, 0},
        TrialCase{"Minprog", TransferStrategy::kPureIou, 3},
        TrialCase{"Minprog", TransferStrategy::kResidentSet, 0},
        TrialCase{"Lisp-T", TransferStrategy::kPureCopy, 0},
        TrialCase{"Lisp-T", TransferStrategy::kPureIou, 0},
        TrialCase{"Lisp-T", TransferStrategy::kResidentSet, 1},
        TrialCase{"Lisp-Del", TransferStrategy::kPureIou, 0},
        TrialCase{"Lisp-Del", TransferStrategy::kPureIou, 15},
        TrialCase{"Lisp-Del", TransferStrategy::kResidentSet, 0},
        TrialCase{"PM-Start", TransferStrategy::kPureCopy, 0},
        TrialCase{"PM-Start", TransferStrategy::kPureIou, 0},
        TrialCase{"PM-Start", TransferStrategy::kPureIou, 7},
        TrialCase{"PM-Mid", TransferStrategy::kPureIou, 1},
        TrialCase{"PM-End", TransferStrategy::kResidentSet, 3},
        TrialCase{"Chess", TransferStrategy::kPureCopy, 0},
        TrialCase{"Chess", TransferStrategy::kPureIou, 0},
        TrialCase{"Chess", TransferStrategy::kResidentSet, 15}),
    CaseName);

// --- relational properties across strategies ------------------------------------

class TrialRelationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TrialRelationTest, IouTransfersLessAndFasterThanCopy) {
  TrialConfig config;
  config.workload = GetParam();
  config.strategy = TransferStrategy::kPureCopy;
  const TrialResult copy = RunTrial(config);
  config.strategy = TransferStrategy::kPureIou;
  const TrialResult iou = RunTrial(config);
  config.strategy = TransferStrategy::kResidentSet;
  const TrialResult rs = RunTrial(config);

  // Table 4-5 ordering: IOU < RS < Copy transfer times.
  EXPECT_LT(iou.migration.RimasTransferTime(), rs.migration.RimasTransferTime());
  EXPECT_LT(rs.migration.RimasTransferTime(), copy.migration.RimasTransferTime());

  // Figure 4-3: IOU moves fewer bytes than copy.
  EXPECT_LT(iou.bytes_total, copy.bytes_total);

  // Figure 4-4: IOU costs less message handling than copy (PM-Start ties
  // within a few percent; allow 5%).
  EXPECT_LT(ToSeconds(iou.netmsg_busy), ToSeconds(copy.netmsg_busy) * 1.05);

  // Remote execution: copy is never slower (it pre-paid everything).
  EXPECT_LE(copy.remote_exec, iou.remote_exec);

  // Table 4-3: RS ships at least as much of RealMem as IOU touches.
  EXPECT_GE(rs.real_bytes_transferred + kPageSize, iou.real_bytes_transferred);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TrialRelationTest,
                         ::testing::Values("Minprog", "Lisp-T", "Lisp-Del", "PM-Start",
                                           "PM-Mid", "PM-End", "Chess"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(TrialDeterminism, SameConfigSameResult) {
  TrialConfig config;
  config.workload = "PM-End";
  config.strategy = TransferStrategy::kPureIou;
  config.prefetch = 3;
  const TrialResult a = RunTrial(config);
  const TrialResult b = RunTrial(config);
  EXPECT_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.netmsg_busy, b.netmsg_busy);
  EXPECT_EQ(a.dest_pager.imag_faults, b.dest_pager.imag_faults);
}

TEST(TrialDeterminism, SeedChangesAccessPlanNotComposition) {
  // Different seeds pick different pages but identical *counts*, so the
  // aggregate metrics are seed-stable — composition is a property of the
  // workload class, not of the sampled plan.
  TrialConfig config;
  config.workload = "Lisp-Del";
  config.strategy = TransferStrategy::kPureIou;
  config.seed = 1;
  const TrialResult a = RunTrial(config);
  config.seed = 2;
  const TrialResult b = RunTrial(config);
  EXPECT_EQ(a.spec.real_bytes, b.spec.real_bytes);
  EXPECT_EQ(a.dest_pager.imag_faults, b.dest_pager.imag_faults);
  EXPECT_EQ(a.bytes_total, b.bytes_total);
}

}  // namespace
}  // namespace accent
