# Empty dependencies file for figure_4_1.
# This may be replaced when dependencies are built.
