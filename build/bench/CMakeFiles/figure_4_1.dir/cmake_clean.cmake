file(REMOVE_RECURSE
  "CMakeFiles/figure_4_1.dir/figure_4_1.cc.o"
  "CMakeFiles/figure_4_1.dir/figure_4_1.cc.o.d"
  "figure_4_1"
  "figure_4_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
