# Empty dependencies file for table_4_2.
# This may be replaced when dependencies are built.
