file(REMOVE_RECURSE
  "CMakeFiles/table_4_2.dir/table_4_2.cc.o"
  "CMakeFiles/table_4_2.dir/table_4_2.cc.o.d"
  "table_4_2"
  "table_4_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
