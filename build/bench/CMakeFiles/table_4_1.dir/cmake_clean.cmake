file(REMOVE_RECURSE
  "CMakeFiles/table_4_1.dir/table_4_1.cc.o"
  "CMakeFiles/table_4_1.dir/table_4_1.cc.o.d"
  "table_4_1"
  "table_4_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
