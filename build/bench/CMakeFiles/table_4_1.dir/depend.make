# Empty dependencies file for table_4_1.
# This may be replaced when dependencies are built.
