file(REMOVE_RECURSE
  "CMakeFiles/figure_4_4.dir/figure_4_4.cc.o"
  "CMakeFiles/figure_4_4.dir/figure_4_4.cc.o.d"
  "figure_4_4"
  "figure_4_4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
