# Empty compiler generated dependencies file for figure_4_4.
# This may be replaced when dependencies are built.
