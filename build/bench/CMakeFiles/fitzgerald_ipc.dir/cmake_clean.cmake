file(REMOVE_RECURSE
  "CMakeFiles/fitzgerald_ipc.dir/fitzgerald_ipc.cc.o"
  "CMakeFiles/fitzgerald_ipc.dir/fitzgerald_ipc.cc.o.d"
  "fitzgerald_ipc"
  "fitzgerald_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitzgerald_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
