# Empty dependencies file for fitzgerald_ipc.
# This may be replaced when dependencies are built.
