file(REMOVE_RECURSE
  "CMakeFiles/bystander_impact.dir/bystander_impact.cc.o"
  "CMakeFiles/bystander_impact.dir/bystander_impact.cc.o.d"
  "bystander_impact"
  "bystander_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bystander_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
