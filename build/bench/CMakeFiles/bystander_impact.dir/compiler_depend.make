# Empty compiler generated dependencies file for bystander_impact.
# This may be replaced when dependencies are built.
