# Empty dependencies file for ablation_iou_caching.
# This may be replaced when dependencies are built.
