file(REMOVE_RECURSE
  "CMakeFiles/ablation_iou_caching.dir/ablation_iou_caching.cc.o"
  "CMakeFiles/ablation_iou_caching.dir/ablation_iou_caching.cc.o.d"
  "ablation_iou_caching"
  "ablation_iou_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iou_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
