file(REMOVE_RECURSE
  "CMakeFiles/lifecycle_pasmac.dir/lifecycle_pasmac.cc.o"
  "CMakeFiles/lifecycle_pasmac.dir/lifecycle_pasmac.cc.o.d"
  "lifecycle_pasmac"
  "lifecycle_pasmac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifecycle_pasmac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
