# Empty dependencies file for lifecycle_pasmac.
# This may be replaced when dependencies are built.
