# Empty dependencies file for figure_4_2.
# This may be replaced when dependencies are built.
