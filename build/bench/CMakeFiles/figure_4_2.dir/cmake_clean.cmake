file(REMOVE_RECURSE
  "CMakeFiles/figure_4_2.dir/figure_4_2.cc.o"
  "CMakeFiles/figure_4_2.dir/figure_4_2.cc.o.d"
  "figure_4_2"
  "figure_4_2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
