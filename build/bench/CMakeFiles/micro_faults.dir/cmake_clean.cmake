file(REMOVE_RECURSE
  "CMakeFiles/micro_faults.dir/micro_faults.cc.o"
  "CMakeFiles/micro_faults.dir/micro_faults.cc.o.d"
  "micro_faults"
  "micro_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
