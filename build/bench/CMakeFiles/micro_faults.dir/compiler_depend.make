# Empty compiler generated dependencies file for micro_faults.
# This may be replaced when dependencies are built.
