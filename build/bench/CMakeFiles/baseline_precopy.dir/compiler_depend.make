# Empty compiler generated dependencies file for baseline_precopy.
# This may be replaced when dependencies are built.
