file(REMOVE_RECURSE
  "CMakeFiles/baseline_precopy.dir/baseline_precopy.cc.o"
  "CMakeFiles/baseline_precopy.dir/baseline_precopy.cc.o.d"
  "baseline_precopy"
  "baseline_precopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_precopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
