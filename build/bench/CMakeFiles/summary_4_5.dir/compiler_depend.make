# Empty compiler generated dependencies file for summary_4_5.
# This may be replaced when dependencies are built.
