file(REMOVE_RECURSE
  "CMakeFiles/summary_4_5.dir/summary_4_5.cc.o"
  "CMakeFiles/summary_4_5.dir/summary_4_5.cc.o.d"
  "summary_4_5"
  "summary_4_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_4_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
