file(REMOVE_RECURSE
  "CMakeFiles/table_4_3.dir/table_4_3.cc.o"
  "CMakeFiles/table_4_3.dir/table_4_3.cc.o.d"
  "table_4_3"
  "table_4_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
