# Empty dependencies file for figure_4_3.
# This may be replaced when dependencies are built.
