file(REMOVE_RECURSE
  "CMakeFiles/figure_4_3.dir/figure_4_3.cc.o"
  "CMakeFiles/figure_4_3.dir/figure_4_3.cc.o.d"
  "figure_4_3"
  "figure_4_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
