file(REMOVE_RECURSE
  "CMakeFiles/table_4_4.dir/table_4_4.cc.o"
  "CMakeFiles/table_4_4.dir/table_4_4.cc.o.d"
  "table_4_4"
  "table_4_4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
