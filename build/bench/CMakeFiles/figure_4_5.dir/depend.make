# Empty dependencies file for figure_4_5.
# This may be replaced when dependencies are built.
