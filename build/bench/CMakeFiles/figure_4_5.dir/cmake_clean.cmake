file(REMOVE_RECURSE
  "CMakeFiles/figure_4_5.dir/figure_4_5.cc.o"
  "CMakeFiles/figure_4_5.dir/figure_4_5.cc.o.d"
  "figure_4_5"
  "figure_4_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_4_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
