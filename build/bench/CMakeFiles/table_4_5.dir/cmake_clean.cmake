file(REMOVE_RECURSE
  "CMakeFiles/table_4_5.dir/table_4_5.cc.o"
  "CMakeFiles/table_4_5.dir/table_4_5.cc.o.d"
  "table_4_5"
  "table_4_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_4_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
