file(REMOVE_RECURSE
  "CMakeFiles/metrics_net_test.dir/metrics_net_test.cc.o"
  "CMakeFiles/metrics_net_test.dir/metrics_net_test.cc.o.d"
  "metrics_net_test"
  "metrics_net_test.pdb"
  "metrics_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
