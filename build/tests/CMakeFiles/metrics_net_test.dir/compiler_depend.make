# Empty compiler generated dependencies file for metrics_net_test.
# This may be replaced when dependencies are built.
