file(REMOVE_RECURSE
  "CMakeFiles/trial_properties_test.dir/trial_properties_test.cc.o"
  "CMakeFiles/trial_properties_test.dir/trial_properties_test.cc.o.d"
  "trial_properties_test"
  "trial_properties_test.pdb"
  "trial_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trial_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
