# Empty dependencies file for trial_properties_test.
# This may be replaced when dependencies are built.
