# Empty dependencies file for excise_insert_test.
# This may be replaced when dependencies are built.
