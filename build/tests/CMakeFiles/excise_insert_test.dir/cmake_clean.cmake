file(REMOVE_RECURSE
  "CMakeFiles/excise_insert_test.dir/excise_insert_test.cc.o"
  "CMakeFiles/excise_insert_test.dir/excise_insert_test.cc.o.d"
  "excise_insert_test"
  "excise_insert_test.pdb"
  "excise_insert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excise_insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
