file(REMOVE_RECURSE
  "CMakeFiles/netmsg_test.dir/netmsg_test.cc.o"
  "CMakeFiles/netmsg_test.dir/netmsg_test.cc.o.d"
  "netmsg_test"
  "netmsg_test.pdb"
  "netmsg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmsg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
