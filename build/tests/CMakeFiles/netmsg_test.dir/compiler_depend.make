# Empty compiler generated dependencies file for netmsg_test.
# This may be replaced when dependencies are built.
