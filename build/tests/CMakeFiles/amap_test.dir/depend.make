# Empty dependencies file for amap_test.
# This may be replaced when dependencies are built.
