file(REMOVE_RECURSE
  "CMakeFiles/amap_test.dir/amap_test.cc.o"
  "CMakeFiles/amap_test.dir/amap_test.cc.o.d"
  "amap_test"
  "amap_test.pdb"
  "amap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
