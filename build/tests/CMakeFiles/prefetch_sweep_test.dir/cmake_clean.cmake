file(REMOVE_RECURSE
  "CMakeFiles/prefetch_sweep_test.dir/prefetch_sweep_test.cc.o"
  "CMakeFiles/prefetch_sweep_test.dir/prefetch_sweep_test.cc.o.d"
  "prefetch_sweep_test"
  "prefetch_sweep_test.pdb"
  "prefetch_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
