file(REMOVE_RECURSE
  "CMakeFiles/interval_map_test.dir/interval_map_test.cc.o"
  "CMakeFiles/interval_map_test.dir/interval_map_test.cc.o.d"
  "interval_map_test"
  "interval_map_test.pdb"
  "interval_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
