# Empty dependencies file for interval_map_test.
# This may be replaced when dependencies are built.
