file(REMOVE_RECURSE
  "CMakeFiles/trial_smoke_test.dir/trial_smoke_test.cc.o"
  "CMakeFiles/trial_smoke_test.dir/trial_smoke_test.cc.o.d"
  "trial_smoke_test"
  "trial_smoke_test.pdb"
  "trial_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trial_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
