# Empty compiler generated dependencies file for trial_smoke_test.
# This may be replaced when dependencies are built.
