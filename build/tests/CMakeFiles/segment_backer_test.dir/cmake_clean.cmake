file(REMOVE_RECURSE
  "CMakeFiles/segment_backer_test.dir/segment_backer_test.cc.o"
  "CMakeFiles/segment_backer_test.dir/segment_backer_test.cc.o.d"
  "segment_backer_test"
  "segment_backer_test.pdb"
  "segment_backer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_backer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
