# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/amap_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/contract_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/excise_insert_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/file_service_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/netmsg_test[1]_include.cmake")
include("/root/repo/build/tests/segment_backer_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_net_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/pager_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/precopy_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/priority_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/interval_map_test[1]_include.cmake")
include("/root/repo/build/tests/sim_host_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/trial_properties_test[1]_include.cmake")
include("/root/repo/build/tests/trial_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
