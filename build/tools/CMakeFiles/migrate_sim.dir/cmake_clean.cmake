file(REMOVE_RECURSE
  "CMakeFiles/migrate_sim.dir/migrate_sim.cc.o"
  "CMakeFiles/migrate_sim.dir/migrate_sim.cc.o.d"
  "migrate_sim"
  "migrate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
