# Empty dependencies file for migrate_sim.
# This may be replaced when dependencies are built.
