# Empty compiler generated dependencies file for accent_vm.
# This may be replaced when dependencies are built.
