file(REMOVE_RECURSE
  "CMakeFiles/accent_vm.dir/address_space.cc.o"
  "CMakeFiles/accent_vm.dir/address_space.cc.o.d"
  "CMakeFiles/accent_vm.dir/backer.cc.o"
  "CMakeFiles/accent_vm.dir/backer.cc.o.d"
  "CMakeFiles/accent_vm.dir/pager.cc.o"
  "CMakeFiles/accent_vm.dir/pager.cc.o.d"
  "CMakeFiles/accent_vm.dir/segment.cc.o"
  "CMakeFiles/accent_vm.dir/segment.cc.o.d"
  "libaccent_vm.a"
  "libaccent_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
