file(REMOVE_RECURSE
  "libaccent_vm.a"
)
