file(REMOVE_RECURSE
  "CMakeFiles/accent_amap.dir/amap.cc.o"
  "CMakeFiles/accent_amap.dir/amap.cc.o.d"
  "libaccent_amap.a"
  "libaccent_amap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_amap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
