file(REMOVE_RECURSE
  "libaccent_amap.a"
)
