# Empty dependencies file for accent_amap.
# This may be replaced when dependencies are built.
