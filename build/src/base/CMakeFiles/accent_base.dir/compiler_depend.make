# Empty compiler generated dependencies file for accent_base.
# This may be replaced when dependencies are built.
