file(REMOVE_RECURSE
  "CMakeFiles/accent_base.dir/check.cc.o"
  "CMakeFiles/accent_base.dir/check.cc.o.d"
  "CMakeFiles/accent_base.dir/logging.cc.o"
  "CMakeFiles/accent_base.dir/logging.cc.o.d"
  "CMakeFiles/accent_base.dir/page_data.cc.o"
  "CMakeFiles/accent_base.dir/page_data.cc.o.d"
  "CMakeFiles/accent_base.dir/rng.cc.o"
  "CMakeFiles/accent_base.dir/rng.cc.o.d"
  "libaccent_base.a"
  "libaccent_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
