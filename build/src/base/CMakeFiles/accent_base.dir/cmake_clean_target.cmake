file(REMOVE_RECURSE
  "libaccent_base.a"
)
