file(REMOVE_RECURSE
  "libaccent_fs.a"
)
