# Empty dependencies file for accent_fs.
# This may be replaced when dependencies are built.
