file(REMOVE_RECURSE
  "CMakeFiles/accent_fs.dir/file_service.cc.o"
  "CMakeFiles/accent_fs.dir/file_service.cc.o.d"
  "libaccent_fs.a"
  "libaccent_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
