# Empty compiler generated dependencies file for accent_metrics.
# This may be replaced when dependencies are built.
