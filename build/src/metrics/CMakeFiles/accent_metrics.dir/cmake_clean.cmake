file(REMOVE_RECURSE
  "CMakeFiles/accent_metrics.dir/table.cc.o"
  "CMakeFiles/accent_metrics.dir/table.cc.o.d"
  "libaccent_metrics.a"
  "libaccent_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
