file(REMOVE_RECURSE
  "libaccent_metrics.a"
)
