
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu.cc" "src/host/CMakeFiles/accent_host.dir/cpu.cc.o" "gcc" "src/host/CMakeFiles/accent_host.dir/cpu.cc.o.d"
  "/root/repo/src/host/disk.cc" "src/host/CMakeFiles/accent_host.dir/disk.cc.o" "gcc" "src/host/CMakeFiles/accent_host.dir/disk.cc.o.d"
  "/root/repo/src/host/physical_memory.cc" "src/host/CMakeFiles/accent_host.dir/physical_memory.cc.o" "gcc" "src/host/CMakeFiles/accent_host.dir/physical_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/accent_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/accent_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
