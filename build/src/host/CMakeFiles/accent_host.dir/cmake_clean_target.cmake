file(REMOVE_RECURSE
  "libaccent_host.a"
)
