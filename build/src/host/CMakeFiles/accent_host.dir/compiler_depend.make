# Empty compiler generated dependencies file for accent_host.
# This may be replaced when dependencies are built.
