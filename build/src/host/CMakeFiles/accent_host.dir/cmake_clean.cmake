file(REMOVE_RECURSE
  "CMakeFiles/accent_host.dir/cpu.cc.o"
  "CMakeFiles/accent_host.dir/cpu.cc.o.d"
  "CMakeFiles/accent_host.dir/disk.cc.o"
  "CMakeFiles/accent_host.dir/disk.cc.o.d"
  "CMakeFiles/accent_host.dir/physical_memory.cc.o"
  "CMakeFiles/accent_host.dir/physical_memory.cc.o.d"
  "libaccent_host.a"
  "libaccent_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
