file(REMOVE_RECURSE
  "libaccent_policy.a"
)
