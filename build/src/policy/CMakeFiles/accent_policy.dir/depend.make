# Empty dependencies file for accent_policy.
# This may be replaced when dependencies are built.
