
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/load_balancer.cc" "src/policy/CMakeFiles/accent_policy.dir/load_balancer.cc.o" "gcc" "src/policy/CMakeFiles/accent_policy.dir/load_balancer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/migration/CMakeFiles/accent_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/accent_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/accent_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/accent_base.dir/DependInfo.cmake"
  "/root/repo/build/src/netmsg/CMakeFiles/accent_netmsg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/accent_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/accent_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/accent_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/accent_amap.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/accent_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
