file(REMOVE_RECURSE
  "CMakeFiles/accent_policy.dir/load_balancer.cc.o"
  "CMakeFiles/accent_policy.dir/load_balancer.cc.o.d"
  "libaccent_policy.a"
  "libaccent_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
