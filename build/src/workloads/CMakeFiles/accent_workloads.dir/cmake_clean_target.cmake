file(REMOVE_RECURSE
  "libaccent_workloads.a"
)
