file(REMOVE_RECURSE
  "CMakeFiles/accent_workloads.dir/trace_gen.cc.o"
  "CMakeFiles/accent_workloads.dir/trace_gen.cc.o.d"
  "CMakeFiles/accent_workloads.dir/workload.cc.o"
  "CMakeFiles/accent_workloads.dir/workload.cc.o.d"
  "libaccent_workloads.a"
  "libaccent_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
