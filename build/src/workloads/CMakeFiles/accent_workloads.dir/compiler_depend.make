# Empty compiler generated dependencies file for accent_workloads.
# This may be replaced when dependencies are built.
