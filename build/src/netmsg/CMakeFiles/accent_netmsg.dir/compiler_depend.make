# Empty compiler generated dependencies file for accent_netmsg.
# This may be replaced when dependencies are built.
