file(REMOVE_RECURSE
  "CMakeFiles/accent_netmsg.dir/netmsgserver.cc.o"
  "CMakeFiles/accent_netmsg.dir/netmsgserver.cc.o.d"
  "libaccent_netmsg.a"
  "libaccent_netmsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_netmsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
