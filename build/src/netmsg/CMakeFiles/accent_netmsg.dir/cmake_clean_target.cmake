file(REMOVE_RECURSE
  "libaccent_netmsg.a"
)
