# Empty dependencies file for accent_net.
# This may be replaced when dependencies are built.
