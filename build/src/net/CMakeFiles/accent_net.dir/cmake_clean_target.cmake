file(REMOVE_RECURSE
  "libaccent_net.a"
)
