file(REMOVE_RECURSE
  "CMakeFiles/accent_net.dir/network.cc.o"
  "CMakeFiles/accent_net.dir/network.cc.o.d"
  "CMakeFiles/accent_net.dir/traffic.cc.o"
  "CMakeFiles/accent_net.dir/traffic.cc.o.d"
  "libaccent_net.a"
  "libaccent_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
