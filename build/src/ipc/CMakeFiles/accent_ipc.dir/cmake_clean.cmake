file(REMOVE_RECURSE
  "CMakeFiles/accent_ipc.dir/fabric.cc.o"
  "CMakeFiles/accent_ipc.dir/fabric.cc.o.d"
  "CMakeFiles/accent_ipc.dir/message.cc.o"
  "CMakeFiles/accent_ipc.dir/message.cc.o.d"
  "libaccent_ipc.a"
  "libaccent_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
