file(REMOVE_RECURSE
  "libaccent_ipc.a"
)
