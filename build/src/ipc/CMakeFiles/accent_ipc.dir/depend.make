# Empty dependencies file for accent_ipc.
# This may be replaced when dependencies are built.
