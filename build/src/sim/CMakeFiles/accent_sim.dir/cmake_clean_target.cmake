file(REMOVE_RECURSE
  "libaccent_sim.a"
)
