# Empty dependencies file for accent_sim.
# This may be replaced when dependencies are built.
