file(REMOVE_RECURSE
  "CMakeFiles/accent_sim.dir/simulator.cc.o"
  "CMakeFiles/accent_sim.dir/simulator.cc.o.d"
  "libaccent_sim.a"
  "libaccent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
