file(REMOVE_RECURSE
  "libaccent_experiments.a"
)
