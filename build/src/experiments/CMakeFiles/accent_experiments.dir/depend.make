# Empty dependencies file for accent_experiments.
# This may be replaced when dependencies are built.
