file(REMOVE_RECURSE
  "CMakeFiles/accent_experiments.dir/lifecycle.cc.o"
  "CMakeFiles/accent_experiments.dir/lifecycle.cc.o.d"
  "CMakeFiles/accent_experiments.dir/report.cc.o"
  "CMakeFiles/accent_experiments.dir/report.cc.o.d"
  "CMakeFiles/accent_experiments.dir/testbed.cc.o"
  "CMakeFiles/accent_experiments.dir/testbed.cc.o.d"
  "CMakeFiles/accent_experiments.dir/trial.cc.o"
  "CMakeFiles/accent_experiments.dir/trial.cc.o.d"
  "libaccent_experiments.a"
  "libaccent_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
