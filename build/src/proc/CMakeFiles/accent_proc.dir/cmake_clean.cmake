file(REMOVE_RECURSE
  "CMakeFiles/accent_proc.dir/excise.cc.o"
  "CMakeFiles/accent_proc.dir/excise.cc.o.d"
  "CMakeFiles/accent_proc.dir/process.cc.o"
  "CMakeFiles/accent_proc.dir/process.cc.o.d"
  "CMakeFiles/accent_proc.dir/trace.cc.o"
  "CMakeFiles/accent_proc.dir/trace.cc.o.d"
  "libaccent_proc.a"
  "libaccent_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
