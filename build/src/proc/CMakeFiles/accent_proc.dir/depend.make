# Empty dependencies file for accent_proc.
# This may be replaced when dependencies are built.
