file(REMOVE_RECURSE
  "libaccent_proc.a"
)
