# Empty compiler generated dependencies file for accent_migration.
# This may be replaced when dependencies are built.
