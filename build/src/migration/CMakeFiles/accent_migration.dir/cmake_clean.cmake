file(REMOVE_RECURSE
  "CMakeFiles/accent_migration.dir/migration_manager.cc.o"
  "CMakeFiles/accent_migration.dir/migration_manager.cc.o.d"
  "libaccent_migration.a"
  "libaccent_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accent_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
