file(REMOVE_RECURSE
  "libaccent_migration.a"
)
