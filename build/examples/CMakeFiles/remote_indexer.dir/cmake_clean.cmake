file(REMOVE_RECURSE
  "CMakeFiles/remote_indexer.dir/remote_indexer.cpp.o"
  "CMakeFiles/remote_indexer.dir/remote_indexer.cpp.o.d"
  "remote_indexer"
  "remote_indexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
