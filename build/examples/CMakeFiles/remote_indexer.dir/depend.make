# Empty dependencies file for remote_indexer.
# This may be replaced when dependencies are built.
