# Empty dependencies file for lazy_file_server.
# This may be replaced when dependencies are built.
