file(REMOVE_RECURSE
  "CMakeFiles/lazy_file_server.dir/lazy_file_server.cpp.o"
  "CMakeFiles/lazy_file_server.dir/lazy_file_server.cpp.o.d"
  "lazy_file_server"
  "lazy_file_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_file_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
