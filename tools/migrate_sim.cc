// migrate_sim: command-line driver for single migration trials.
//
//   migrate_sim --list
//   migrate_sim --workload=Lisp-Del --strategy=iou --prefetch=3
//   migrate_sim --workload=PM-Start --strategy=rs --series
//
// Runs one trial on the simulated two-Perq testbed and prints the full
// measurement record: phase timings, byte traffic by category, fault
// behaviour, message-handling cost, and (with --series) the transfer-rate
// series of Figure 4-5.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/logging.h"
#include "src/experiments/report.h"
#include "src/experiments/scenario_fuzz.h"
#include "src/experiments/trial.h"
#include "src/metrics/table.h"
#include "src/trace/trace.h"

namespace accent {
namespace {

void PrintUsage() {
  std::printf(
      "usage: migrate_sim [options]\n"
      "  --list                 list the representative workloads and exit\n"
      "  --workload=NAME        which process to migrate (default Minprog)\n"
      "  --strategy=copy|iou|rs|precopy\n"
      "                         transfer strategy (default iou)\n"
      "  --prefetch=N           pages prefetched per imaginary fault (default 0)\n"
      "  --precopy-rounds=N     pre-copy: max live rounds before freezing (default 3)\n"
      "  --precopy-stop=N       pre-copy: freeze once <= N pages are dirty (default 4)\n"
      "  --target-downtime-ms=N pre-copy: freeze early once the predicted final\n"
      "                         round fits in N ms (default off)\n"
      "  --seed=N               trial seed (default 42)\n"
      "  --frames=N             destination physical memory frames (default 4096)\n"
      "  --no-iou-caching       disable NetMsgServer IOU substitution\n"
      "  --content-cache        enable the content-addressed page service\n"
      "                         (capacity: ACCENT_CONTENT_CACHE_PAGES, default 4096)\n"
      "  --trace-out=FILE       write a Chrome-trace JSON of the trial (Perfetto)\n"
      "  --trace-verbose        also record per-fragment / per-dispatch events\n"
      "  --series               print the byte transfer-rate series\n"
      "  --csv                  emit one machine-readable CSV row\n"
      "  --sweep                run the full strategy x prefetch grid as CSV\n"
      "  --replay-seed=N        re-run one fuzz-corpus scenario (see\n"
      "                         bench/fuzz_corpus) and print its verdict\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  if (arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

// Re-runs one fuzzed scenario by seed — the loop a failing corpus run
// prints ("replay with: tools/migrate_sim --replay-seed=N") lands here.
int ReplayScenario(std::uint64_t seed) {
  // Scenario failures log their diagnosis; make sure it prints.
  if (Logger::Get().level() < LogLevel::kError) {
    Logger::Get().set_level(LogLevel::kError);
  }
  const FuzzScenario scenario = MakeScenario(seed);
  std::printf("scenario: %s\n", scenario.Describe().c_str());
  const FuzzScenarioResult r = RunScenario(scenario);
  std::printf("outcome:            %s\n", FailureOutcomeName(r.outcome));
  std::printf("rolled back:        %s\n", r.rolled_back ? "yes" : "no");
  std::printf("remigrated:         %s\n", r.remigrated ? "yes" : "no");
  std::printf("integrity ok:       %s\n", r.integrity_ok ? "yes" : "NO");
  std::printf("hang:               %s\n", r.hang ? "YES" : "no");
  std::printf("backer balanced:    %s\n", r.backer_balanced ? "yes" : "NO");
  std::printf("shard match:        %s\n", r.shard_match ? "yes" : "NO");
  std::printf("fleet census ok:    %s\n", r.cluster_census_ok ? "yes" : "NO");
  std::printf("fleet hung:         %s\n", r.cluster_hung ? "YES" : "no");
  std::printf("diskless anchors:   %llu\n",
              static_cast<unsigned long long>(r.diskless_backing_anchors));
  if (!r.failure.empty()) {
    std::printf("failure:            %s\n", r.failure.c_str());
  }
  std::printf("verdict:            %s\n", r.ok() ? "PASS" : "FAIL");
  return r.ok() ? 0 : 1;
}

int Run(int argc, char** argv) {
  TrialConfig config;
  config.workload = "Minprog";
  config.strategy = TransferStrategy::kPureIou;
  bool series = false;
  bool csv = false;
  bool sweep = false;
  std::string trace_out;
  bool trace_verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--list", &value)) {
      std::printf("Representative workloads (section 4.1):\n");
      for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
        std::printf("  %-9s Real %9s B, total %13s B, RS %9s B — %s\n", spec.name.c_str(),
                    FormatWithCommas(spec.real_bytes).c_str(),
                    FormatWithCommas(spec.total_bytes()).c_str(),
                    FormatWithCommas(spec.resident_bytes).c_str(),
                    spec.pattern == AccessPattern::kSequentialScan ? "sequential scan"
                    : spec.pattern == AccessPattern::kRandomClustered ? "clustered random"
                    : spec.pattern == AccessPattern::kComputeBound ? "compute bound"
                                                                    : "minimal");
      }
      return 0;
    }
    if (ParseFlag(argv[i], "--workload", &value)) {
      config.workload = value;
    } else if (ParseFlag(argv[i], "--strategy", &value)) {
      if (value == "copy") {
        config.strategy = TransferStrategy::kPureCopy;
      } else if (value == "iou") {
        config.strategy = TransferStrategy::kPureIou;
      } else if (value == "rs") {
        config.strategy = TransferStrategy::kResidentSet;
      } else if (value == "precopy") {
        config.strategy = TransferStrategy::kPreCopy;
      } else {
        std::fprintf(stderr, "unknown strategy '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--prefetch", &value)) {
      config.prefetch = static_cast<std::uint32_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--precopy-rounds", &value)) {
      config.precopy_max_rounds = std::stoi(value);
    } else if (ParseFlag(argv[i], "--precopy-stop", &value)) {
      config.precopy_stop_threshold = static_cast<PageIndex>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--target-downtime-ms", &value)) {
      config.precopy_target_downtime = Ms(std::stoll(value));
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      config.seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "--frames", &value)) {
      config.frames_per_host = std::stoul(value);
    } else if (ParseFlag(argv[i], "--no-iou-caching", &value)) {
      config.iou_caching = false;
    } else if (ParseFlag(argv[i], "--content-cache", &value)) {
      config.content_cache = true;
      if (const char* pages = std::getenv("ACCENT_CONTENT_CACHE_PAGES"); pages != nullptr) {
        const std::int64_t parsed = std::strtoll(pages, nullptr, 10);
        if (parsed < 1) {
          std::fprintf(stderr, "ACCENT_CONTENT_CACHE_PAGES must be >= 1, got '%s'\n", pages);
          return 2;
        }
        config.content_cache_pages = parsed;
      }
    } else if (ParseFlag(argv[i], "--trace-out", &value)) {
      trace_out = value;
    } else if (ParseFlag(argv[i], "--trace-verbose", &value)) {
      trace_verbose = true;
    } else if (ParseFlag(argv[i], "--series", &value)) {
      series = true;
    } else if (ParseFlag(argv[i], "--csv", &value)) {
      csv = true;
    } else if (ParseFlag(argv[i], "--sweep", &value)) {
      sweep = true;
    } else if (ParseFlag(argv[i], "--replay-seed", &value)) {
      return ReplayScenario(std::stoull(value));
    } else if (ParseFlag(argv[i], "--help", &value) || ParseFlag(argv[i], "-h", &value)) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  if (sweep) {
    std::printf("%s", TrialsToCsv(RunStrategySweep(config.workload, config.seed)).c_str());
    return 0;
  }

  Tracer tracer;
  if (!trace_out.empty()) {
    tracer.set_verbose(trace_verbose);
    config.tracer = &tracer;
  }

  const TrialResult r = RunTrial(config);
  if (!trace_out.empty()) {
    if (!tracer.WriteChromeTraceFile(trace_out)) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events -> %s (open in https://ui.perfetto.dev)\n",
                 tracer.size(), trace_out.c_str());
  }
  if (csv) {
    std::printf("%s\n%s\n", TrialCsvHeader().c_str(), TrialCsvRow(r).c_str());
    if (series) {
      std::printf("%s", SeriesToCsv(r).c_str());
    }
    return 0;
  }

  std::printf("%s", TrialReport(r).c_str());

  if (series) {
    std::printf("\nTransfer-rate series (bucket %.1f s):\n", ToSeconds(r.series_bucket));
    for (const auto& bucket : r.series) {
      ByteCount fault = bucket.bytes[static_cast<int>(TrafficKind::kFaultData)];
      ByteCount total = 0;
      for (ByteCount b : bucket.bytes) {
        total += b;
      }
      if (total == 0) {
        continue;
      }
      std::printf("  %8.1f s  %10s B (%s B fault)\n", ToSeconds(bucket.start),
                  FormatWithCommas(total).c_str(), FormatWithCommas(fault).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Run(argc, argv); }
