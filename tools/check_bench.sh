#!/usr/bin/env bash
# Runs a bench binary and validates the schema of the BENCH_*.json it
# emits, so tier-1 ctest runs keep the perf/failure trajectory
# machine-readable (and loudly fail if a refactor breaks a bench).
#
# Usage:
#   check_bench.sh <micro_sim-binary> [output.json]
#   check_bench.sh --failure <failure_sweep-binary> [output.json]
#   check_bench.sh --sweep <run_all-binary> [output.json]
#   check_bench.sh --chain <chain_sweep-binary> [output.json]
#   check_bench.sh --cluster <cluster_sweep-binary> [output.json]
#   check_bench.sh --fuzz <fuzz_corpus-binary> [output.json]
#   check_bench.sh --dedup <dedup_sweep-binary> [output.json]
#   check_bench.sh --precopy <precopy_sweep-binary> [output.json]
set -euo pipefail

MODE=sim
if [ "${1:-}" = "--failure" ]; then
  MODE=failure
  shift
elif [ "${1:-}" = "--sweep" ]; then
  MODE=sweep
  shift
elif [ "${1:-}" = "--chain" ]; then
  MODE=chain
  shift
elif [ "${1:-}" = "--cluster" ]; then
  MODE=cluster
  shift
elif [ "${1:-}" = "--fuzz" ]; then
  MODE=fuzz
  shift
elif [ "${1:-}" = "--dedup" ]; then
  MODE=dedup
  shift
elif [ "${1:-}" = "--precopy" ]; then
  MODE=precopy
  shift
fi

BIN=${1:?usage: check_bench.sh [--failure] <bench binary> [out.json]}

status=0
if [ "$MODE" = "sim" ]; then
  OUT=${2:-BENCH_sim.json}
  # Modest event budget: this is a schema/regression tripwire in CI, not the
  # full measurement run (invoke micro_sim directly for that).
  "$BIN" --events 100000 --reps 2 --out "$OUT"
  KEYS="bench schema_version events inline_events_per_sec legacy_events_per_sec \
        inline_ns_per_event legacy_ns_per_event speedup \
        copy_trial_legacy_bytes_copied copy_trial_zero_copy_bytes_copied \
        copy_reduction sweep_trials sweep_legacy_seconds \
        sweep_zero_copy_seconds sweep_speedup sweep_results_identical"

  # The binary itself asserts result parity and copy_reduction >= 2; re-assert
  # the headline invariants from the emitted JSON.
  if ! grep -q '"sweep_results_identical": true' "$OUT"; then
    echo "check_bench: data-plane modes disagree on simulated results" >&2
    status=1
  fi
  if ! grep -q '"sweep_trials": 77' "$OUT"; then
    echo "check_bench: data-plane sweep did not cover the 77-trial grid" >&2
    status=1
  fi
elif [ "$MODE" = "sweep" ]; then
  OUT=${2:-BENCH_sweep.json}
  # Serves the 77-trial grid from the on-disk cache (simulating on a cold
  # cache), folds it into the metrics registry and emits the summary.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version seed trial_count workloads metrics trials \
        counters histograms downtime_seconds rimas_transfer_seconds \
        faults.iou_pulls bytes.total messages.total \
        rs_calibrated rs_zero_scan_per_mb_us"

  if ! grep -q '"bench": "sweep"' "$OUT"; then
    echo "check_bench: $OUT is not a sweep summary" >&2
    status=1
  fi
  if grep -q '"trial_count": 0' "$OUT"; then
    echo "check_bench: sweep summary carries no trials" >&2
    status=1
  fi
elif [ "$MODE" = "chain" ]; then
  OUT=${2:-BENCH_chain.json}
  # The A -> B -> C grid (7 workloads x 11 strategy/prefetch cells) plus the
  # B-crash-after-collapse trials. The binary exits non-zero if any
  # post-collapse request touched the evacuated intermediary, any trial hung
  # or finished corrupted, or the crash trial lost the process.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version trial_count collapses \
        b_requests_after_collapse_total b_forwards_after_collapse_total \
        b_objects_after_collapse_total integrity_failures hung \
        crash_trial_count b_crash_survived trials crash_trials"

  # Belt and braces: re-assert the evacuation + survival invariants.
  if ! grep -q '"b_requests_after_collapse_total": 0' "$OUT"; then
    echo "check_bench: post-collapse requests hit the intermediary in $OUT" >&2
    status=1
  fi
  if ! grep -q '"b_forwards_after_collapse_total": 0' "$OUT"; then
    echo "check_bench: post-collapse requests were forwarded through the intermediary in $OUT" >&2
    status=1
  fi
  if ! grep -q '"integrity_failures": 0' "$OUT"; then
    echo "check_bench: chain sweep reports corrupted completions in $OUT" >&2
    status=1
  fi
  if ! grep -q '"hung": 0' "$OUT"; then
    echo "check_bench: chain sweep reports hung trials in $OUT" >&2
    status=1
  fi
  if ! grep -q '"b_crash_survived": true' "$OUT"; then
    echo "check_bench: process did not survive the intermediary crash in $OUT" >&2
    status=1
  fi
elif [ "$MODE" = "cluster" ]; then
  OUT=${2:-BENCH_cluster.json}
  # The 480-host churn trial at 1/2/8 shards (byte-compared, best-of-reps
  # walls) plus the 16-point balancer policy grid. The binary exits non-zero
  # if any trial hung, any census failed to balance, the shard counts
  # disagreed on results, or 8 shards failed to beat 1.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version seed reps hosts processes_arrived trial_count \
        hung integrity_failures identical_across_shards \
        wall_seconds_shards_1 wall_seconds_shards_2 wall_seconds_shards_8 \
        speedup_shards_2 speedup_shards_8 big_trial policy_sweep \
        steady_migrations_per_sec queueing_p99_us downtime_p99_us"

  # Belt and braces: re-assert the headline invariants from the JSON.
  if ! grep -q '"hung": 0' "$OUT"; then
    echo "check_bench: cluster sweep reports hung trials in $OUT" >&2
    status=1
  fi
  if ! grep -q '"integrity_failures": 0' "$OUT"; then
    echo "check_bench: cluster sweep reports census failures in $OUT" >&2
    status=1
  fi
  if ! grep -q '"identical_across_shards": true' "$OUT"; then
    echo "check_bench: shard counts disagree on trial results in $OUT" >&2
    status=1
  fi
  SPEEDUP=$(grep -o '"speedup_shards_8": [0-9.eE+-]*' "$OUT" | head -n1 | awk '{print $2}')
  if [ -z "$SPEEDUP" ] || ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s > 1.0) }'; then
    echo "check_bench: 8-shard speedup '$SPEEDUP' is not > 1 in $OUT" >&2
    status=1
  fi
elif [ "$MODE" = "fuzz" ]; then
  OUT=${2:-BENCH_fuzz.json}
  # The seeded adversarial corpus (ACCENT_FUZZ_SEEDS scenarios, default 64):
  # random heterogeneous topology x workload x fault plan x strategy x
  # optional re-migration, checked against the standing oracles. The binary
  # exits non-zero on any oracle failure; every failing scenario prints its
  # seed and a migrate_sim --replay-seed line.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version first_seed scenario_count completed aborted \
        terminal_faults hung integrity_failures backer_imbalances \
        shard_divergences cluster_census_failures cluster_hangs \
        diskless_backing_anchors payload_leak remigrations crash_scenarios \
        cached_scenarios dedup_failures failures scenarios"

  # Belt and braces: re-assert the headline oracles from the emitted JSON.
  if ! grep -q '"integrity_failures": 0' "$OUT"; then
    echo "check_bench: fuzz corpus reports corrupted completions in $OUT" >&2
    status=1
  fi
  if ! grep -q '"hung": 0' "$OUT"; then
    echo "check_bench: fuzz corpus reports hung scenarios in $OUT" >&2
    status=1
  fi
  if ! grep -q '"shard_divergences": 0' "$OUT"; then
    echo "check_bench: fuzz corpus reports shard-count divergence in $OUT" >&2
    status=1
  fi
  if ! grep -q '"dedup_failures": 0' "$OUT"; then
    echo "check_bench: fuzz corpus reports dedup identity violations in $OUT" >&2
    status=1
  fi
  if ! grep -q '"failures": 0' "$OUT"; then
    echo "check_bench: fuzz corpus reports oracle failures in $OUT" >&2
    status=1
  fi
elif [ "$MODE" = "dedup" ]; then
  OUT=${2:-BENCH_dedup.json}
  # The same Table 4-1 program migrated N times across the calibrated fleet,
  # content cache on vs off. The binary exits non-zero if the origin served
  # more than half of the faulted pages as payload, if the cached run failed
  # to move strictly fewer bytes than the baseline, if the cache-off run
  # touched the dedup plane at all, or on any integrity failure.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version workload seed repeats hosts \
        origin_offload_ratio wire_bytes_cached wire_bytes_baseline \
        wire_bytes_saved integrity_failures hung cached baseline metrics \
        faulted_pages origin_payload_pages offloaded_pages \
        cache_hits cache_misses cache_insertions cache_evictions rounds"

  # Belt and braces: re-assert the headline gates from the emitted JSON.
  # Several gate keys recur inside the nested cached/baseline result objects
  # (where e.g. the baseline's offload ratio is legitimately 0), so every
  # grep anchors on the two-space indent of a top-level key.
  if ! grep -q '^  "integrity_failures": 0' "$OUT"; then
    echo "check_bench: dedup sweep reports integrity failures in $OUT" >&2
    status=1
  fi
  if ! grep -q '^  "hung": 0' "$OUT"; then
    echo "check_bench: dedup sweep reports hung rounds in $OUT" >&2
    status=1
  fi
  RATIO=$(grep -o '^  "origin_offload_ratio": [0-9.eE+-]*' "$OUT" | head -n1 | awk '{print $2}')
  if [ -z "$RATIO" ] || ! awk -v r="$RATIO" 'BEGIN { exit !(r >= 0.5) }'; then
    echo "check_bench: origin offload '$RATIO' is below 0.5 in $OUT" >&2
    status=1
  fi
  CACHED=$(grep -o '^  "wire_bytes_cached": [0-9]*' "$OUT" | head -n1 | awk '{print $2}')
  BASE=$(grep -o '^  "wire_bytes_baseline": [0-9]*' "$OUT" | head -n1 | awk '{print $2}')
  if [ -z "$CACHED" ] || [ -z "$BASE" ] || ! awk -v c="$CACHED" -v b="$BASE" 'BEGIN { exit !(c < b) }'; then
    echo "check_bench: cached wire bytes '$CACHED' not below baseline '$BASE' in $OUT" >&2
    status=1
  fi
elif [ "$MODE" = "precopy" ]; then
  OUT=${2:-BENCH_precopy.json}
  # The live pre-copy grid: 7 workloads x (3 paper strategies + round caps
  # {1,4,8} x downtime SLOs {off, 1 s, 5 s}). The binary exits non-zero if
  # any trial hung or failed to complete, if pre-copy did not beat pure-copy
  # on downtime for the compute-bound workloads, if the page-byte ordering
  # precopy >= pure-copy >= IOU broke, or if the SLO predictor never fired.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version seed trial_count completed hung \
        downtime_wins downtime_win_ok bytes_ordering_ok slo_ok pareto cells \
        downtime_s page_bytes wws_pages predicted_downtime_s slo_met rounds"

  # Belt and braces: re-assert the headline gates from the emitted JSON.
  if ! grep -q '"hung": 0' "$OUT"; then
    echo "check_bench: pre-copy sweep reports hung trials in $OUT" >&2
    status=1
  fi
  if ! grep -q '"downtime_win_ok": true' "$OUT"; then
    echo "check_bench: pre-copy did not beat pure-copy on downtime for the compute-bound workloads in $OUT" >&2
    status=1
  fi
  if ! grep -q '"bytes_ordering_ok": true' "$OUT"; then
    echo "check_bench: page-byte ordering precopy >= pure-copy >= IOU broke in $OUT" >&2
    status=1
  fi
  if ! grep -q '"slo_ok": true' "$OUT"; then
    echo "check_bench: the downtime-SLO predictor never fired on a compute-bound workload in $OUT" >&2
    status=1
  fi
else
  OUT=${2:-BENCH_failure.json}
  # The full matrix (7 workloads x 4 strategies x 4 scenarios). The binary
  # itself exits non-zero if any trial hung or completed with corrupted
  # contents, so set -e makes those hard failures here.
  "$BIN" --out "$OUT"
  KEYS="bench schema_version trial_count completed aborted terminal_faults \
        hung integrity_failures trials"

  # Belt and braces: re-assert the invariants from the emitted JSON.
  if ! grep -q '"hung": 0' "$OUT"; then
    echo "check_bench: failure matrix reports hung trials in $OUT" >&2
    status=1
  fi
  if ! grep -q '"integrity_failures": 0' "$OUT"; then
    echo "check_bench: failure matrix reports corrupted completions in $OUT" >&2
    status=1
  fi
fi

for key in $KEYS; do
  if ! grep -q "\"$key\"" "$OUT"; then
    echo "check_bench: missing key \"$key\" in $OUT" >&2
    status=1
  fi
done

# Rates must be positive numbers, not nan/inf.
if grep -qiE "nan|inf" "$OUT"; then
  echo "check_bench: non-finite number in $OUT" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "check_bench: $OUT schema ok"
fi
exit "$status"
