#!/usr/bin/env bash
# Runs the micro_sim event-loop benchmark and validates the schema of the
# BENCH_sim.json it emits, so tier-1 ctest runs keep the perf trajectory
# machine-readable (and loudly fail if a refactor breaks the bench).
#
# Usage: check_bench.sh <micro_sim-binary> [output.json]
set -euo pipefail

BIN=${1:?usage: check_bench.sh <micro_sim binary> [out.json]}
OUT=${2:-BENCH_sim.json}

# Modest event budget: this is a schema/regression tripwire in CI, not the
# full measurement run (invoke micro_sim directly for that).
"$BIN" --events 100000 --reps 2 --out "$OUT"

status=0
for key in bench schema_version events inline_events_per_sec legacy_events_per_sec \
           inline_ns_per_event legacy_ns_per_event speedup; do
  if ! grep -q "\"$key\"" "$OUT"; then
    echo "check_bench: missing key \"$key\" in $OUT" >&2
    status=1
  fi
done

# Rates must be positive numbers, not nan/inf.
if grep -qiE "nan|inf" "$OUT"; then
  echo "check_bench: non-finite number in $OUT" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "check_bench: $OUT schema ok"
fi
exit "$status"
