// render_results: turns BENCH_*.json into docs/RESULTS.md.
//
//   render_results --sweep build/BENCH_sweep.json --out docs/RESULTS.md
//
// Reads the sweep summary emitted by `run_all` (and, when present, the
// micro_sim and failure_sweep reports) and renders the paper-shaped result
// tables — Tables 4-1 .. 4-5, the failure matrix, the event-loop micro
// bench — as Markdown, with the paper's published values alongside ours.
// The emitted file carries a template-version marker; the docs_check ctest
// compares it against --print-template-version to catch a stale RESULTS.md.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/metrics/table.h"

namespace accent {
namespace {

// Bump when the set of tables or their columns change, so a committed
// docs/RESULTS.md rendered by an older binary fails docs_check.
constexpr int kTemplateVersion = 6;

// -------------------------------------------------------------------------
// Paper constants (Zayas, SOSP 1987). Mirrors the kPaper arrays in
// bench/table_4_*.cc; a value of -1 renders as "(n/a)" — the paper does not
// report that cell.

struct PaperSizes {  // Table 4-1
  const char* name;
  double real, realz, total, pct_realz;
};
constexpr PaperSizes kPaperSizes[] = {
    {"Minprog", 142336, 187904, 330240, 56.9},
    {"Lisp-T", 2203136, 4225926144, 4228129280, 99.9},
    {"Lisp-Del", 2200064, 4225929216, 4228129280, 99.9},
    {"PM-Start", 449024, 501760, 950784, 52.8},
    {"PM-Mid", 446464, 466432, 912896, 51.1},
    {"PM-End", 492032, 398848, 890880, 44.8},
    {"Chess", 195584, 305152, 500736, 60.9},
};

struct PaperResident {  // Table 4-2
  const char* name;
  double rs_size, pct_real, pct_total;
};
constexpr PaperResident kPaperResident[] = {
    {"Minprog", 71680, 50.4, 21.7},  {"Lisp-T", 190464, 8.6, 0.005},
    {"Lisp-Del", 190464, 8.7, 0.005}, {"PM-Start", 132096, 29.4, 13.9},
    {"PM-Mid", 190976, 42.8, 20.9},  {"PM-End", 302080, 61.4, 33.9},
    {"Chess", 110080, 56.3, 22.0},
};

struct PaperAccessed {  // Table 4-3 (percent of address space accessed)
  const char* name;
  double iou_real, iou_total, rs_real, rs_total;
};
constexpr PaperAccessed kPaperAccessed[] = {
    {"Minprog", 8.6, 3.7, 50.4, 21.7}, {"Lisp-T", -1, -1, -1, -1},
    {"Lisp-Del", 16.5, 0.002, 17.4, 0.009}, {"PM-Start", 58.0, 27.4, 76.0, 35.9},
    {"PM-Mid", 51.5, 25.2, -1, -1},    {"PM-End", 26.9, 14.8, 72.5, 40.1},
    {"Chess", 35.6, 13.9, 66.0, 25.8},
};

struct PaperExcision {  // Table 4-4
  const char* name;
  double amap, rimas, overall;
};
constexpr PaperExcision kPaperExcision[] = {
    {"Minprog", 0.37, 0.36, 0.82}, {"Lisp-T", 2.12, 0.59, 2.79},
    {"Lisp-Del", 2.46, 0.73, 3.38}, {"PM-Start", 0.98, 0.63, 1.67},
    {"PM-Mid", 1.01, 0.68, 1.74},  {"PM-End", 1.40, 0.94, 2.45},
    {"Chess", 0.37, 0.43, 1.00},
};

struct PaperTransfer {  // Table 4-5
  const char* name;
  double iou, rs, copy;
};
constexpr PaperTransfer kPaperTransfer[] = {
    {"Minprog", 0.16, 5.0, 8.5},   {"Lisp-T", 0.16, 25.8, 157.0},
    {"Lisp-Del", 0.17, 25.8, 168.5}, {"PM-Start", 0.15, 9.0, 30.8},
    {"PM-Mid", 0.16, 13.0, 28.1},  {"PM-End", 0.19, 20.5, 31.0},
    {"Chess", 0.21, 7.7, 11.7},
};

// -------------------------------------------------------------------------
// Markdown table builder.

class MdTable {
 public:
  explicit MdTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  std::string ToString() const {
    std::ostringstream out;
    auto emit = [&out](const std::vector<std::string>& cells) {
      out << '|';
      for (const std::string& cell : cells) {
        out << ' ' << cell << " |";
      }
      out << '\n';
    };
    emit(headers_);
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << (c == 0 ? " --- |" : " ---: |");
    }
    out << '\n';
    for (const auto& row : rows_) {
      emit(row);
    }
    return out.str();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Paper(double value, int precision = 2) {
  if (value < 0) {
    return "(n/a)";
  }
  return "(" + FormatDouble(value, precision) + ")";
}

std::string PaperBytes(double value) {
  if (value < 0) {
    return "(n/a)";
  }
  return "(" + FormatWithCommas(static_cast<std::uint64_t>(value)) + ")";
}

// `value` is already a percentage (the paper prints percentages directly).
std::string PaperPercent(double value, int precision = 1) {
  if (value < 0) {
    return "(n/a)";
  }
  return "(" + FormatDouble(value, precision) + "%)";
}

// -------------------------------------------------------------------------
// Sweep-summary access.

// Trials are keyed by (workload, strategy, prefetch); only the
// iou_caching=true rows belong to the paper grid proper.
class SweepIndex {
 public:
  explicit SweepIndex(const Json& sweep) : sweep_(sweep) {
    for (const Json& trial : sweep.Get("trials").AsArray()) {
      if (!trial.Get("iou_caching").AsBool()) {
        continue;
      }
      const std::string key = Key(trial.Get("workload").AsString(),
                                  trial.Get("strategy").AsString(),
                                  trial.Get("prefetch").AsUint64());
      trials_.emplace(key, &trial);
    }
  }

  // Aborts if the trial is missing: every table below draws from the fixed
  // 77-trial grid, so absence means BENCH_sweep.json is malformed.
  const Json& Find(const std::string& workload, const std::string& strategy,
                   std::uint64_t prefetch = 0) const {
    auto it = trials_.find(Key(workload, strategy, prefetch));
    if (it == trials_.end()) {
      std::fprintf(stderr, "render_results: sweep summary is missing trial %s/%s/pf%llu\n",
                   workload.c_str(), strategy.c_str(),
                   static_cast<unsigned long long>(prefetch));
      std::exit(1);
    }
    return *it->second;
  }

  const Json& sweep() const { return sweep_; }

 private:
  static std::string Key(const std::string& workload, const std::string& strategy,
                         std::uint64_t prefetch) {
    return workload + "|" + strategy + "|" + std::to_string(prefetch);
  }

  const Json& sweep_;
  std::map<std::string, const Json*> trials_;
};

double Seconds(const Json& trial, const char* key) {
  return trial.Get(key).AsDouble() / 1e6;
}

// -------------------------------------------------------------------------
// Sections.

void RenderTable41(const SweepIndex& index, std::ostream& out) {
  out << "## Table 4-1: Address space sizes in bytes\n\n"
      << "Real memory (touched, backed pages), real-but-zero (allocated, "
         "never-written fill-zero regions) and their sum, per representative "
         "process. Paper values in parentheses.\n\n";
  MdTable table({"Process", "Real", "(paper)", "RealZ", "(paper)", "Total", "(paper)",
                 "%RealZ", "(paper)"});
  for (const PaperSizes& row : kPaperSizes) {
    const Json& trial = index.Find(row.name, "pure-IOU");
    const std::uint64_t real = trial.Get("spec_real_bytes").AsUint64();
    const std::uint64_t zero = trial.Get("spec_zero_bytes").AsUint64();
    const std::uint64_t total = trial.Get("spec_total_bytes").AsUint64();
    table.AddRow({row.name, FormatWithCommas(real), PaperBytes(row.real),
                  FormatWithCommas(zero), PaperBytes(row.realz), FormatWithCommas(total),
                  PaperBytes(row.total),
                  FormatPercent(static_cast<double>(zero) / static_cast<double>(total)),
                  PaperPercent(row.pct_realz)});
  }
  out << table.ToString() << '\n';
}

void RenderTable42(const SweepIndex& index, std::ostream& out) {
  out << "## Table 4-2: Resident set sizes\n\n"
      << "Pages resident in physical memory at migration time. Paper values in "
         "parentheses.\n\n";
  MdTable table({"Process", "RS bytes", "(paper)", "% of Real", "(paper)", "% of Total",
                 "(paper)"});
  for (const PaperResident& row : kPaperResident) {
    const Json& trial = index.Find(row.name, "resident-set");
    const std::uint64_t rs = trial.Get("spec_resident_bytes").AsUint64();
    const double real = trial.Get("spec_real_bytes").AsDouble();
    const double total = trial.Get("spec_total_bytes").AsDouble();
    table.AddRow({row.name, FormatWithCommas(rs), PaperBytes(row.rs_size),
                  FormatPercent(rs / real), PaperPercent(row.pct_real),
                  FormatPercent(rs / total, 3), PaperPercent(row.pct_total, 3)});
  }
  out << table.ToString() << '\n';
}

void RenderTable43(const SweepIndex& index, std::ostream& out) {
  out << "## Table 4-3: Percent of address space accessed after migration\n\n"
      << "Fraction of the source address space the destination actually pulled "
         "over the wire, pure-IOU vs resident-set. Paper values in parentheses; "
         "(n/a) where the paper does not report the cell.\n\n";
  MdTable table({"Process", "IOU %Real", "(paper)", "IOU %Total", "(paper)", "RS %Real",
                 "(paper)", "RS %Total", "(paper)"});
  for (const PaperAccessed& row : kPaperAccessed) {
    const Json& iou = index.Find(row.name, "pure-IOU");
    const Json& rs = index.Find(row.name, "resident-set");
    table.AddRow({row.name, FormatPercent(iou.Get("frac_real_transferred").AsDouble()),
                  PaperPercent(row.iou_real),
                  FormatPercent(iou.Get("frac_total_transferred").AsDouble(), 3),
                  PaperPercent(row.iou_total, 3),
                  FormatPercent(rs.Get("frac_real_transferred").AsDouble()),
                  PaperPercent(row.rs_real),
                  FormatPercent(rs.Get("frac_total_transferred").AsDouble(), 3),
                  PaperPercent(row.rs_total, 3)});
  }
  out << table.ToString() << '\n';
}

void RenderTable44(const SweepIndex& index, std::ostream& out) {
  out << "## Table 4-4: Process excision times in seconds\n\n"
      << "AMap construction + RIMAS collapse + packaging, measured from the "
         "ExciseProcess trap (pure-copy, prefetch 0). Paper values in "
         "parentheses; section 4.3.1 reports insertion at 0.263 s (Minprog) to "
         "0.853 s (Lisp-Del).\n\n";
  MdTable table({"Process", "AMap", "(paper)", "RIMAS", "(paper)", "Overall", "(paper)",
                 "Insert"});
  for (const PaperExcision& row : kPaperExcision) {
    const Json& trial = index.Find(row.name, "pure-copy");
    table.AddRow({row.name, FormatSeconds(Seconds(trial, "excise_amap_us")),
                  Paper(row.amap), FormatSeconds(Seconds(trial, "excise_rimas_us")),
                  Paper(row.rimas), FormatSeconds(Seconds(trial, "excise_overall_us")),
                  Paper(row.overall), FormatSeconds(Seconds(trial, "insert_time_us"))});
  }
  out << table.ToString() << '\n';
}

void RenderTable45(const SweepIndex& index, std::ostream& out) {
  out << "## Table 4-5: Address space transfer times in seconds\n\n"
      << "Time from handing the RIMAS message to the IPC system until its "
         "arrival at the destination, per strategy (prefetch 0). Paper values "
         "in parentheses. `RS-cal` re-runs the resident-set trials with the "
         "zero-fill map-walk charge (`costs.rs_zero_scan_per_mb`) the paper's "
         "measured column carries — Lisp validates its whole 4 GB heap at "
         "birth, so partitioning its RIMAS walks ~4 GB of RealZero map.\n\n";

  // Calibrated resident-set rows (fresh trials, not the cached grid);
  // rendered as (n/a) when an older BENCH_sweep.json lacks the section.
  std::map<std::string, double> rs_cal;
  if (const Json* section = index.sweep().Find("rs_calibrated")) {
    for (const Json& row : section->AsArray()) {
      rs_cal[row.Get("workload").AsString()] =
          row.Get("rimas_transfer_us").AsDouble() / 1e6;
    }
  }

  MdTable table({"Process", "Pure-IOU", "(paper)", "RS", "RS-cal", "(paper)", "Copy",
                 "(paper)"});
  for (const PaperTransfer& row : kPaperTransfer) {
    const Json& iou = index.Find(row.name, "pure-IOU");
    const Json& rs = index.Find(row.name, "resident-set");
    const Json& copy = index.Find(row.name, "pure-copy");
    const auto cal = rs_cal.find(row.name);
    table.AddRow({row.name, FormatSeconds(Seconds(iou, "rimas_transfer_us")),
                  Paper(row.iou), FormatSeconds(Seconds(rs, "rimas_transfer_us")),
                  cal == rs_cal.end() ? "(n/a)" : FormatSeconds(cal->second, 1),
                  Paper(row.rs, 1), FormatSeconds(Seconds(copy, "rimas_transfer_us"), 1),
                  Paper(row.copy, 1)});
  }
  out << table.ToString() << '\n';
}

void RenderMetrics(const Json& sweep, std::ostream& out) {
  out << "## Sweep metrics registry\n\n"
      << "Aggregated over all " << sweep.Get("trial_count").AsUint64()
      << " grid trials (see `docs/OBSERVABILITY.md` for the schema).\n\n";
  const Json& metrics = sweep.Get("metrics");

  MdTable counters({"Counter", "Value"});
  for (const auto& [name, value] : metrics.Get("counters").AsObject()) {
    counters.AddRow({"`" + name + "`", FormatWithCommas(value.AsUint64())});
  }
  out << counters.ToString() << '\n';

  MdTable histograms({"Histogram", "Count", "Mean", "Min", "Max"});
  for (const auto& [name, h] : metrics.Get("histograms").AsObject()) {
    const std::uint64_t count = h.Get("count").AsUint64();
    const double mean = count == 0 ? 0.0 : h.Get("sum").AsDouble() / count;
    histograms.AddRow({"`" + name + "`", FormatWithCommas(count), FormatDouble(mean, 3),
                       FormatDouble(h.Get("min").AsDouble(), 3),
                       FormatDouble(h.Get("max").AsDouble(), 3)});
  }
  out << histograms.ToString() << '\n';
}

void RenderFailureMatrix(const Json& failure, std::ostream& out) {
  out << "## Failure matrix\n\n"
      << "Seven workloads x four strategies under a lossy / partitioning / "
         "crashing wire (`failure_sweep`). Invariants: nothing hangs, every "
         "completed migration has intact contents.\n\n";

  MdTable totals({"Trials", "Completed", "Aborted", "Terminal faults", "Hung",
                  "Integrity failures"});
  totals.AddRow({FormatWithCommas(failure.Get("trial_count").AsUint64()),
                 FormatWithCommas(failure.Get("completed").AsUint64()),
                 FormatWithCommas(failure.Get("aborted").AsUint64()),
                 FormatWithCommas(failure.Get("terminal_faults").AsUint64()),
                 FormatWithCommas(failure.Get("hung").AsUint64()),
                 FormatWithCommas(failure.Get("integrity_failures").AsUint64())});
  out << totals.ToString() << '\n';

  struct ScenarioAgg {
    std::uint64_t trials = 0, completed = 0, aborted = 0;
    std::uint64_t retransmits = 0, duplicates = 0, dead_letters = 0;
  };
  std::map<std::string, ScenarioAgg> scenarios;
  for (const Json& trial : failure.Get("trials").AsArray()) {
    ScenarioAgg& agg = scenarios[trial.Get("scenario").AsString()];
    ++agg.trials;
    const std::string outcome = trial.Get("outcome").AsString();
    agg.completed += outcome == "completed" ? 1 : 0;
    agg.aborted += outcome == "aborted" ? 1 : 0;
    agg.retransmits += trial.Get("fragments_retransmitted").AsUint64();
    agg.duplicates += trial.Get("duplicates_suppressed").AsUint64();
    agg.dead_letters += trial.Get("transfers_dead_lettered").AsUint64();
  }
  MdTable table({"Scenario", "Trials", "Completed", "Aborted", "Retransmits",
                 "Dup suppressed", "Dead-lettered"});
  for (const auto& [name, agg] : scenarios) {
    table.AddRow({"`" + name + "`", FormatWithCommas(agg.trials),
                  FormatWithCommas(agg.completed), FormatWithCommas(agg.aborted),
                  FormatWithCommas(agg.retransmits), FormatWithCommas(agg.duplicates),
                  FormatWithCommas(agg.dead_letters)});
  }
  out << table.ToString() << '\n';
}

void RenderPreCopy(const Json& precopy, std::ostream& out) {
  out << "## Pre-copy Pareto frontier: downtime vs bytes\n\n"
      << "`precopy_sweep` measures the fourth strategy family — live "
         "iterative pre-copy with dirty-page tracking — against the paper's "
         "three, per workload. Each pre-copy row is the best-downtime cell "
         "over the round-cap x downtime-SLO grid. Pre-copy buys its short "
         "freeze by re-shipping dirtied pages, so it always pays in page "
         "bytes (section 5's critique, quantified); copy-on-reference still "
         "dominates both axes.\n\n";

  MdTable table({"Process", "Live", "Copy down (s)", "Pre-copy down (s)", "IOU down (s)",
                 "Copy bytes", "Pre-copy bytes", "IOU bytes", "Rounds", "Win"});
  for (const Json& row : precopy.Get("pareto").AsArray()) {
    table.AddRow(
        {row.Get("workload").AsString(), row.Get("live").AsBool() ? "yes" : "staged",
         FormatDouble(row.Get("purecopy_downtime_s").AsDouble(), 2),
         FormatDouble(row.Get("precopy_downtime_s").AsDouble(), 2),
         FormatDouble(row.Get("iou_downtime_s").AsDouble(), 2),
         FormatWithCommas(row.Get("purecopy_page_bytes").AsUint64()),
         FormatWithCommas(row.Get("precopy_page_bytes").AsUint64()),
         FormatWithCommas(row.Get("iou_page_bytes").AsUint64()),
         FormatWithCommas(row.Get("precopy_rounds").AsUint64()),
         row.Get("downtime_win").AsBool() ? "yes" : "no"});
  }
  out << table.ToString() << '\n';

  out << "Grid gates: " << precopy.Get("completed").AsUint64() << "/"
      << precopy.Get("trial_count").AsUint64() << " cells completed, "
      << precopy.Get("hung").AsUint64() << " hung; "
      << precopy.Get("downtime_wins").AsUint64()
      << " compute-bound downtime wins vs pure-copy; byte ordering "
         "pre-copy >= pure-copy >= IOU "
      << (precopy.Get("bytes_ordering_ok").AsBool() ? "held" : "BROKE") << "; SLO predictor "
      << (precopy.Get("slo_ok").AsBool() ? "fired on every compute-bound workload"
                                         : "FAILED to fire")
      << ".\n\n";
}

void RenderDedup(const Json& dedup, std::ostream& out) {
  out << "## Content-addressed dedup: repeated migrations of one image\n\n"
      << "`dedup_sweep` migrates the same " << dedup.Get("workload").AsString() << " image "
      << dedup.Get("repeats").AsUint64() << " times across a calibrated "
      << dedup.Get("hosts").AsUint64()
      << "-host fleet, content cache on vs off. With the cache on, a "
         "destination that already holds a page's bytes installs it on a "
         "small confirm ack instead of pulling the payload from the origin "
         "backer, and misses are served by the nearest holder before the "
         "origin — the per-round table shows the origin falling out of the "
         "fault path as the fleet warms up.\n\n";

  MdTable table({"Round", "Dest", "Faulted", "Confirm acks", "Holder pulls",
                 "Origin payload", "Wire bytes"});
  for (const Json& row : dedup.Get("cached").Get("rounds").AsArray()) {
    table.AddRow({FormatWithCommas(row.Get("round").AsUint64()),
                  "host " + std::to_string(row.Get("dest_host").AsUint64()),
                  FormatWithCommas(row.Get("faulted_pages").AsUint64()),
                  FormatWithCommas(row.Get("confirmed_pages").AsUint64()),
                  FormatWithCommas(row.Get("holder_pages").AsUint64()),
                  FormatWithCommas(row.Get("origin_payload_pages").AsUint64()),
                  FormatWithCommas(row.Get("wire_bytes").AsUint64())});
  }
  out << table.ToString() << '\n';

  out << "Gates: origin offload "
      << FormatDouble(100.0 * dedup.Get("origin_offload_ratio").AsDouble(), 1)
      << "% of faulted pages (>= 50% required); wire bytes "
      << FormatWithCommas(dedup.Get("wire_bytes_cached").AsUint64()) << " cached vs "
      << FormatWithCommas(dedup.Get("wire_bytes_baseline").AsUint64()) << " baseline ("
      << FormatWithCommas(dedup.Get("wire_bytes_saved").AsUint64()) << " saved); cache "
      << FormatWithCommas(dedup.Get("cached").Get("cache_hits").AsUint64()) << " hits / "
      << FormatWithCommas(dedup.Get("cached").Get("cache_misses").AsUint64()) << " misses / "
      << FormatWithCommas(dedup.Get("cached").Get("cache_evictions").AsUint64())
      << " evictions; " << dedup.Get("integrity_failures").AsUint64()
      << " integrity failures. The hash rider costs 16 B per real page up "
         "front, so dedup pays off only when the migrated image's touch "
         "fraction is high enough — docs/STRATEGIES.md quantifies the "
         "crossover.\n\n";
}

void RenderMicroSim(const Json& sim, std::ostream& out) {
  out << "## Event-loop micro bench\n\n"
      << "`micro_sim` drains the simulator queue through the inline-storage "
         "fast path vs the legacy heap-allocating path.\n\n";
  MdTable table({"Events", "Inline ns/event", "Legacy ns/event", "Speedup"});
  table.AddRow({FormatWithCommas(sim.Get("events").AsUint64()),
                FormatDouble(sim.Get("inline_ns_per_event").AsDouble(), 1),
                FormatDouble(sim.Get("legacy_ns_per_event").AsDouble(), 1),
                FormatDouble(sim.Get("speedup").AsDouble(), 2) + "x"});
  out << table.ToString() << '\n';

  // Data-plane section appears with schema_version >= 2; older reports
  // simply omit it.
  if (sim.Find("copy_reduction") == nullptr) {
    return;
  }
  out << "## Page-payload data plane\n\n"
      << "The same binary replays a pure-copy PASMAC trial and the full "
         "77-trial sweep twice: once with every `PageRef` copy forced to a "
         "deep clone (the old `PageData` data plane) and once sharing "
         "payloads. Simulated results are asserted bit-identical; the only "
         "difference is host-side copy traffic and wall clock.\n\n";
  MdTable plane({"Measurement", "Deep-copy baseline", "Zero-copy", "Improvement"});
  plane.AddRow({sim.Get("copy_trial_workload").AsString() + " bytes copied",
                FormatWithCommas(sim.Get("copy_trial_legacy_bytes_copied").AsUint64()),
                FormatWithCommas(sim.Get("copy_trial_zero_copy_bytes_copied").AsUint64()),
                FormatDouble(sim.Get("copy_reduction").AsDouble(), 1) + "x fewer"});
  plane.AddRow({"77-trial sweep bytes copied",
                FormatWithCommas(sim.Get("sweep_legacy_bytes_copied").AsUint64()),
                FormatWithCommas(sim.Get("sweep_zero_copy_bytes_copied").AsUint64()),
                FormatDouble(sim.Get("sweep_legacy_bytes_copied").AsDouble() /
                                 std::max(sim.Get("sweep_zero_copy_bytes_copied").AsDouble(), 1.0),
                             1) +
                    "x fewer"});
  plane.AddRow({"77-trial sweep seconds (serial)",
                FormatDouble(sim.Get("sweep_legacy_seconds").AsDouble(), 3),
                FormatDouble(sim.Get("sweep_zero_copy_seconds").AsDouble(), 3),
                FormatDouble(sim.Get("sweep_speedup").AsDouble(), 2) + "x faster"});
  out << plane.ToString() << '\n';
}

void RenderCluster(const Json& cluster, std::ostream& out) {
  out << "## Fleet-scale cluster sweep\n\n"
      << "`cluster_sweep` runs a switched row of hosts under continuous "
         "Poisson churn with balancer-driven migrations (costs from the "
         "calibrated two-Perq formulas), once per shard count on the sharded "
         "event loop. Results are byte-identical across shard counts; the "
         "speedups are wall-clock only.\n\n";

  const Json& big = cluster.Get("big_trial");
  MdTable headline({"Hosts", "Arrived", "Migrations", "Steady thr (mig/s)",
                    "Queueing p50/p99 (s)", "Downtime p50/p99 (s)",
                    "Speedup 2sh", "Speedup 8sh"});
  auto secs = [](const Json& trial, const char* key) {
    return FormatDouble(trial.Get(key).AsDouble() / 1e6, 2);
  };
  headline.AddRow(
      {FormatWithCommas(big.Get("hosts").AsUint64()),
       FormatWithCommas(big.Get("arrived").AsUint64()),
       FormatWithCommas(big.Get("migrations_completed").AsUint64()),
       FormatDouble(big.Get("steady_migrations_per_sec").AsDouble(), 3),
       secs(big, "queueing_p50_us") + " / " + secs(big, "queueing_p99_us"),
       secs(big, "downtime_p50_us") + " / " + secs(big, "downtime_p99_us"),
       FormatDouble(cluster.Get("speedup_shards_2").AsDouble(), 2) + "x",
       FormatDouble(cluster.Get("speedup_shards_8").AsDouble(), 2) + "x"});
  out << headline.ToString() << '\n';

  out << "Policy grid (imbalance threshold x hysteresis x dispersal weight, "
         "per cluster size):\n\n";
  MdTable grid({"Hosts", "Threshold", "Hysteresis", "Dispersal", "Migrations",
                "Unfilled", "Steady thr (mig/s)", "Queueing p99 (s)",
                "Downtime p99 (s)"});
  for (const Json& row : cluster.Get("policy_sweep").AsArray()) {
    const Json& policy = row.Get("policy");
    grid.AddRow({FormatWithCommas(row.Get("hosts").AsUint64()),
                 FormatWithCommas(policy.Get("imbalance_threshold").AsUint64()),
                 FormatWithCommas(policy.Get("hysteresis").AsUint64()),
                 FormatDouble(policy.Get("dispersal_weight").AsDouble(), 1),
                 FormatWithCommas(row.Get("migrations_completed").AsUint64()),
                 FormatWithCommas(row.Get("directives_unfilled").AsUint64()),
                 FormatDouble(row.Get("steady_migrations_per_sec").AsDouble(), 3),
                 secs(row, "queueing_p99_us"), secs(row, "downtime_p99_us")});
  }
  out << grid.ToString() << '\n';
}

bool LoadJson(const std::string& path, Json* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return Json::TryParse(text.str(), out);
}

int Main(int argc, char** argv) {
  std::string sweep_path = "BENCH_sweep.json";
  std::string sim_path;
  std::string failure_path;
  std::string cluster_path;
  std::string precopy_path;
  std::string dedup_path;
  std::string out_path = "docs/RESULTS.md";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "render_results: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--print-template-version") == 0) {
      std::printf("%d\n", kTemplateVersion);
      return 0;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep_path = next("--sweep");
    } else if (std::strcmp(argv[i], "--sim") == 0) {
      sim_path = next("--sim");
    } else if (std::strcmp(argv[i], "--failure") == 0) {
      failure_path = next("--failure");
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster_path = next("--cluster");
    } else if (std::strcmp(argv[i], "--precopy") == 0) {
      precopy_path = next("--precopy");
    } else if (std::strcmp(argv[i], "--dedup") == 0) {
      dedup_path = next("--dedup");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      std::fprintf(stderr,
                   "usage: render_results [--sweep BENCH_sweep.json] [--sim BENCH_sim.json]\n"
                   "                      [--failure BENCH_failure.json]\n"
                   "                      [--cluster BENCH_cluster.json]\n"
                   "                      [--precopy BENCH_precopy.json]\n"
                   "                      [--dedup BENCH_dedup.json] [--out RESULTS.md]\n"
                   "                      [--print-template-version]\n");
      return 2;
    }
  }

  Json sweep;
  if (!LoadJson(sweep_path, &sweep)) {
    std::fprintf(stderr, "render_results: cannot read sweep summary %s (run run_all first)\n",
                 sweep_path.c_str());
    return 1;
  }
  SweepIndex index(sweep);

  std::ostringstream out;
  out << "<!-- Generated by tools/render_results (template v" << kTemplateVersion
      << "). Do not edit by hand. -->\n"
      << "# Results\n\n"
      << "Simulated reproduction of the measurements in *Attacking the Process "
         "Migration Bottleneck* (Zayas, SOSP 1987), rendered from the machine-"
         "readable bench reports. Paper-published values appear in parentheses "
         "next to ours; `(n/a)` marks cells the paper does not report.\n\n"
      << "Regenerate with:\n\n"
      << "```sh\n"
      << "cmake --build build -j\n"
      << "(cd build && ./bench/run_all && ./bench/micro_sim && ./bench/failure_sweep \\\n"
      << "    && ./bench/cluster_sweep && ./bench/precopy_sweep && ./bench/dedup_sweep)\n"
      << "./build/tools/render_results --sweep build/BENCH_sweep.json \\\n"
      << "    --sim build/BENCH_sim.json --failure build/BENCH_failure.json \\\n"
      << "    --cluster build/BENCH_cluster.json --precopy build/BENCH_precopy.json \\\n"
      << "    --dedup build/BENCH_dedup.json --out docs/RESULTS.md\n"
      << "```\n\n"
      << "Sweep grid: " << sweep.Get("trial_count").AsUint64() << " trials, seed "
      << sweep.Get("seed").AsUint64() << ".\n\n";

  RenderTable41(index, out);
  RenderTable42(index, out);
  RenderTable43(index, out);
  RenderTable44(index, out);
  RenderTable45(index, out);

  Json failure;
  if (!failure_path.empty() && LoadJson(failure_path, &failure)) {
    RenderFailureMatrix(failure, out);
  } else if (!failure_path.empty()) {
    std::fprintf(stderr, "render_results: skipping failure matrix (cannot read %s)\n",
                 failure_path.c_str());
  }

  Json precopy;
  if (!precopy_path.empty() && LoadJson(precopy_path, &precopy)) {
    RenderPreCopy(precopy, out);
  } else if (!precopy_path.empty()) {
    std::fprintf(stderr, "render_results: skipping pre-copy frontier (cannot read %s)\n",
                 precopy_path.c_str());
  }

  Json dedup;
  if (!dedup_path.empty() && LoadJson(dedup_path, &dedup)) {
    RenderDedup(dedup, out);
  } else if (!dedup_path.empty()) {
    std::fprintf(stderr, "render_results: skipping dedup sweep (cannot read %s)\n",
                 dedup_path.c_str());
  }

  Json sim;
  if (!sim_path.empty() && LoadJson(sim_path, &sim)) {
    RenderMicroSim(sim, out);
  } else if (!sim_path.empty()) {
    std::fprintf(stderr, "render_results: skipping micro bench (cannot read %s)\n",
                 sim_path.c_str());
  }

  Json cluster;
  if (!cluster_path.empty() && LoadJson(cluster_path, &cluster)) {
    RenderCluster(cluster, out);
  } else if (!cluster_path.empty()) {
    std::fprintf(stderr, "render_results: skipping cluster sweep (cannot read %s)\n",
                 cluster_path.c_str());
  }

  RenderMetrics(sweep, out);

  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "render_results: cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << out.str();
  std::printf("render_results: wrote %s (template v%d)\n", out_path.c_str(),
              kTemplateVersion);
  return 0;
}

}  // namespace
}  // namespace accent

int main(int argc, char** argv) { return accent::Main(argc, argv); }
