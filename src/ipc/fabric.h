// The IPC fabric: ports, rights, routing, and delivery costs.
//
// Ports are location-transparent kernel objects: senders name a port, never
// a host. The fabric tracks where each port's receive right currently lives;
// a send whose destination is local is delivered through the kernel (with
// copy-on-write mapping above the size threshold, per section 2.1), and one
// whose destination is remote is handed to the local NetMsgServer, which is
// a *user-level* server — exactly the structure that lets Accent extend
// copy-on-reference across machines (section 2.4).
#ifndef SRC_IPC_FABRIC_H_
#define SRC_IPC_FABRIC_H_

#include <deque>
#include <string>
#include <unordered_map>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/host/cpu.h"
#include "src/ipc/message.h"
#include "src/sim/simulator.h"

namespace accent {

// Anything that can hold a port's receive right and consume its messages.
class Receiver {
 public:
  virtual ~Receiver() = default;
  virtual void HandleMessage(Message msg) = 0;
  virtual const char* receiver_name() const { return "receiver"; }
};

// Implemented by the NetMsgServer: moves a message towards a port whose
// receive right lives on another host.
class RemoteTransport {
 public:
  virtual ~RemoteTransport() = default;
  virtual void ForwardToRemote(HostId dest_host, Message msg) = 0;
};

class IpcFabric {
 public:
  IpcFabric(Simulator* sim, const CostTable* costs) : sim_(*sim), costs_(*costs) {
    ACCENT_EXPECTS(sim != nullptr && costs != nullptr);
  }

  IpcFabric(const IpcFabric&) = delete;
  IpcFabric& operator=(const IpcFabric&) = delete;

  // --- host registration ---------------------------------------------------
  void RegisterHost(HostId host, Cpu* cpu);
  void SetTransport(HostId host, RemoteTransport* transport);
  Cpu* CpuOf(HostId host) const;

  // --- port lifecycle --------------------------------------------------------
  // Allocates a port homed on `host`. `receiver` may be null: messages then
  // queue on the port until a receiver claims it (Receive semantics).
  PortId AllocatePort(HostId host, Receiver* receiver, std::string debug_name);

  // Moves the receive right (process migration, IOU caching). Queued
  // messages are re-dispatched at the new home.
  void MovePort(PortId port, HostId new_home, Receiver* receiver);

  // Attaches/detaches a receiver without moving the right.
  void SetReceiver(PortId port, Receiver* receiver);

  void DestroyPort(PortId port);

  bool IsAlive(PortId port) const;
  HostId HomeOf(PortId port) const;
  const std::string& NameOf(PortId port) const;

  // --- messaging ---------------------------------------------------------------
  // Sends `msg` from `from_host`. Charges the kernel send path on the
  // sender's CPU, then routes locally or through the host's transport.
  // Fails if the destination port is dead or unknown.
  Result<void> Send(HostId from_host, Message msg);

  // Injects a message arriving from the network at `host` (used by
  // NetMsgServers after a remote hop). Re-forwards if the port moved again.
  void DeliverAt(HostId host, Message msg);

  // --- accounting -----------------------------------------------------------------
  std::uint64_t local_deliveries() const { return local_deliveries_; }
  std::uint64_t remote_forwards() const { return remote_forwards_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

  MsgId NextMsgId() { return MsgId(sim_.AllocateId()); }

 private:
  struct PortRecord {
    HostId home;
    Receiver* receiver = nullptr;
    bool dead = false;
    std::string name;
    std::deque<Message> queued;
  };
  struct HostRecord {
    Cpu* cpu = nullptr;
    RemoteTransport* transport = nullptr;
  };

  PortRecord& RecordOf(PortId port);
  const PortRecord& RecordOf(PortId port) const;

  // Charges the receive path and hands the message to the receiver.
  void CompleteDelivery(HostId host, Message msg);

  // Kernel CPU cost of moving `msg` across one address-space boundary:
  // physical double-copy below the threshold, copy-on-write remap above.
  SimDuration TransferCost(const Message& msg) const;

  // High lane for fault traffic when the cost table enables it.
  CpuPriority PriorityOf(const Message& msg) const;

  Simulator& sim_;
  const CostTable& costs_;
  std::unordered_map<std::uint64_t, PortRecord> ports_;
  std::unordered_map<std::uint64_t, HostRecord> hosts_;
  std::uint64_t local_deliveries_ = 0;
  std::uint64_t remote_forwards_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace accent

#endif  // SRC_IPC_FABRIC_H_
