#include "src/ipc/fabric.h"

#include <utility>

#include "src/base/logging.h"

namespace accent {

void IpcFabric::RegisterHost(HostId host, Cpu* cpu) {
  ACCENT_EXPECTS(cpu != nullptr);
  ACCENT_EXPECTS(hosts_.count(host.value) == 0) << " host registered twice";
  hosts_[host.value] = HostRecord{cpu, nullptr};
}

void IpcFabric::SetTransport(HostId host, RemoteTransport* transport) {
  auto it = hosts_.find(host.value);
  ACCENT_EXPECTS(it != hosts_.end());
  it->second.transport = transport;
}

Cpu* IpcFabric::CpuOf(HostId host) const {
  auto it = hosts_.find(host.value);
  ACCENT_EXPECTS(it != hosts_.end()) << " unknown " << host;
  return it->second.cpu;
}

PortId IpcFabric::AllocatePort(HostId host, Receiver* receiver, std::string debug_name) {
  ACCENT_EXPECTS(hosts_.count(host.value) != 0) << " port on unregistered " << host;
  const PortId port(sim_.AllocateId());
  ports_[port.value] = PortRecord{host, receiver, false, std::move(debug_name), {}};
  return port;
}

IpcFabric::PortRecord& IpcFabric::RecordOf(PortId port) {
  auto it = ports_.find(port.value);
  ACCENT_EXPECTS(it != ports_.end()) << " unknown " << port;
  return it->second;
}

const IpcFabric::PortRecord& IpcFabric::RecordOf(PortId port) const {
  auto it = ports_.find(port.value);
  ACCENT_EXPECTS(it != ports_.end()) << " unknown " << port;
  return it->second;
}

void IpcFabric::MovePort(PortId port, HostId new_home, Receiver* receiver) {
  PortRecord& record = RecordOf(port);
  ACCENT_EXPECTS(!record.dead) << " moving dead " << port;
  record.home = new_home;
  record.receiver = receiver;
  if (record.receiver != nullptr) {
    // Re-dispatch anything that queued while the right was in motion.
    std::deque<Message> queued = std::move(record.queued);
    record.queued.clear();
    for (Message& msg : queued) {
      DeliverAt(new_home, std::move(msg));
    }
  }
}

void IpcFabric::SetReceiver(PortId port, Receiver* receiver) {
  PortRecord& record = RecordOf(port);
  ACCENT_EXPECTS(!record.dead);
  record.receiver = receiver;
  if (receiver != nullptr && !record.queued.empty()) {
    std::deque<Message> queued = std::move(record.queued);
    record.queued.clear();
    const HostId home = record.home;
    for (Message& msg : queued) {
      DeliverAt(home, std::move(msg));
    }
  }
}

void IpcFabric::DestroyPort(PortId port) {
  PortRecord& record = RecordOf(port);
  record.dead = true;
  record.receiver = nullptr;
  record.queued.clear();
}

bool IpcFabric::IsAlive(PortId port) const {
  auto it = ports_.find(port.value);
  return it != ports_.end() && !it->second.dead;
}

HostId IpcFabric::HomeOf(PortId port) const { return RecordOf(port).home; }

const std::string& IpcFabric::NameOf(PortId port) const { return RecordOf(port).name; }

SimDuration IpcFabric::TransferCost(const Message& msg) const {
  const ByteCount bytes = msg.WireSize(costs_);
  if (bytes <= costs_.ipc_copy_threshold) {
    // Below the threshold the kernel physically copies twice
    // (sender -> kernel -> receiver); ipc_copy_per_byte covers both.
    return costs_.ipc_copy_per_byte * static_cast<std::int64_t>(bytes);
  }
  // Above it, regions are remapped copy-on-write: cost scales with the
  // number of mappings, not bytes (the whole point of section 2.1).
  const auto mappings = static_cast<std::int64_t>(msg.regions.size() + (msg.has_amap ? 1 : 0) + 1);
  return costs_.ipc_map_region * mappings;
}

Result<void> IpcFabric::Send(HostId from_host, Message msg) {
  if (ports_.count(msg.dest.value) == 0) {
    return Err("send to unknown port");
  }
  if (RecordOf(msg.dest).dead) {
    return Err("send to dead port " + NameOf(msg.dest));
  }
  if (!msg.id.valid()) {
    msg.id = NextMsgId();
  }
  ++messages_sent_;

  const SimDuration send_cost = costs_.ipc_send_fixed + TransferCost(msg);
  Cpu* cpu = CpuOf(from_host);
  const CpuPriority priority = PriorityOf(msg);
  // The kernel send path runs on the sender's CPU; routing happens once the
  // trap completes.
  cpu->Submit(CpuWork::kKernel, send_cost, [this, from_host, msg = std::move(msg)]() mutable {
    auto it = ports_.find(msg.dest.value);
    if (it == ports_.end() || it->second.dead) {
      ACCENT_LOG(kDebug) << "message " << msg.id << " dropped: port died in flight";
      return;
    }
    const HostId home = it->second.home;
    if (home == from_host) {
      CompleteDelivery(home, std::move(msg));
      return;
    }
    ++remote_forwards_;
    RemoteTransport* transport = hosts_.at(from_host.value).transport;
    ACCENT_CHECK(transport != nullptr)
        << " remote send from " << from_host << " without a NetMsgServer";
    transport->ForwardToRemote(home, std::move(msg));
  }, priority);
  return OkResult();
}

CpuPriority IpcFabric::PriorityOf(const Message& msg) const {
  const bool fault_related =
      msg.op == MsgOp::kImagReadRequest || msg.op == MsgOp::kImagReadReply;
  return costs_.fault_priority_lane && fault_related ? CpuPriority::kHigh
                                                     : CpuPriority::kNormal;
}

void IpcFabric::DeliverAt(HostId host, Message msg) {
  auto it = ports_.find(msg.dest.value);
  if (it == ports_.end() || it->second.dead) {
    ACCENT_LOG(kDebug) << "arriving message " << msg.id << " dropped: dead port";
    return;
  }
  if (it->second.home != host) {
    // The receive right moved while the message was in flight: chase it.
    ++remote_forwards_;
    RemoteTransport* transport = hosts_.at(host.value).transport;
    ACCENT_CHECK(transport != nullptr);
    transport->ForwardToRemote(it->second.home, std::move(msg));
    return;
  }
  CompleteDelivery(host, std::move(msg));
}

void IpcFabric::CompleteDelivery(HostId host, Message msg) {
  PortRecord& record = RecordOf(msg.dest);
  if (record.receiver == nullptr) {
    record.queued.push_back(std::move(msg));
    return;
  }
  ++local_deliveries_;
  const SimDuration receive_cost = costs_.ipc_receive_fixed + TransferCost(msg);
  Receiver* receiver = record.receiver;
  const CpuPriority priority = PriorityOf(msg);
  CpuOf(host)->Submit(CpuWork::kKernel, receive_cost,
                      [receiver, msg = std::move(msg)]() mutable {
                        receiver->HandleMessage(std::move(msg));
                      },
                      priority);
}

}  // namespace accent
