// Accent IPC messages.
//
// A single Accent message can carry all of the memory addressable by a
// process (section 2.1): besides a small typed body it may carry out-of-line
// memory regions, each either physical page data (RealMem), an IOU promising
// lazy delivery through a backing port (ImagMem), or a zero-fill description
// (RealZeroMem, shape only — zero pages never cross the wire). Messages also
// transfer port rights, which is how ExciseProcess hands a process's entire
// port namespace to the migration agent without disrupting senders.
#ifndef SRC_IPC_MESSAGE_H_
#define SRC_IPC_MESSAGE_H_

#include <any>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/page_data.h"
#include "src/base/page_ref.h"
#include "src/base/types.h"
#include "src/host/costs.h"
#include "src/net/traffic.h"
#include "src/vm/amap.h"

namespace accent {

// Operation selector. Protocol bodies live with their subsystems; the op
// code lets receivers dispatch without inspecting std::any types.
enum class MsgOp : int {
  kUser = 0,
  // Imaginary segment protocol (section 2.2).
  kImagReadRequest,
  kImagReadReply,
  kImagSegmentDeath,
  // Migration protocol (section 3).
  kMigrateRequest,
  kMigrateCore,
  kMigrateRimas,
  kMigrateComplete,
  kAck,
  // Backing-ownership handoff (multi-hop re-migration): an intermediate
  // host evacuates a backed object to the chain origin, then tells the
  // destination to rebind its IouRefs to the collapsed owner.
  kBackingHandoff,
  kBackingHandoffAck,
  kRebindIou,
  kRebindAck,
};

const char* MsgOpName(MsgOp op);

// Reference to lazily-delivered memory: the receiver may fault pages in by
// sending kImagReadRequest to `backing_port` for `segment` at `offset`.
struct IouRef {
  PortId backing_port;
  SegmentId segment;
  ByteCount offset = 0;
  // Set when the backed object is a migration cache (NetMsgServer IOU
  // cache or resident-set owed pages) rather than a long-lived server.
  // Such objects are VA-indexed and follow the process: a re-migrating
  // source uses this to collapse the chain back to the origin owner.
  bool migration_cache = false;

  bool valid() const { return backing_port.valid() && segment.valid(); }
};

// One entry of a region's content-hash rider: the hash of the owed page at
// page offset `slot` from the region base.
struct PageHashEntry {
  PageIndex slot = 0;
  PageHash hash{};
};

// One out-of-line memory range carried by a message.
struct MemoryRegion {
  Addr base = 0;        // position in the described address-space layout
  ByteCount size = 0;   // bytes covered (page multiple)
  MemClass mem_class = MemClass::kBad;
  IouRef iou;                  // valid iff mem_class == kImag
  std::vector<PageRef> pages;  // size/kPageSize entries iff mem_class == kReal

  // Content-hash rider on a kImag region (docs/INTERNALS.md §15): sparse
  // (slot, hash) entries sorted by slot, one per owed page the sender could
  // hash, where slot is the page offset from the region base. Sparse
  // because a consolidated IOU's span may bridge multi-gigabyte zero-fill
  // holes no fault ever walks; slot positions run-length encode into the
  // region descriptor, so each entry weighs page_hash_bytes on the wire.
  // Populated only when the sending host runs a PageService; empty riders
  // add zero wire bytes, keeping the classic protocol byte-identical.
  std::vector<PageHashEntry> page_hashes;

  // Binary search for the rider entry at `slot`; nullptr when unhinted.
  const PageHash* FindPageHash(PageIndex slot) const;

  static MemoryRegion Data(Addr base, std::vector<PageRef> pages);
  // Convenience for call sites that build fresh PageData (each page is
  // moved into a PageRef, no byte copy).
  static MemoryRegion Data(Addr base, std::vector<PageData> pages);
  static MemoryRegion Iou(Addr base, ByteCount size, IouRef ref);
  static MemoryRegion Zero(Addr base, ByteCount size);

  PageIndex page_count() const { return size / kPageSize; }

  // Bytes this region contributes on the wire.
  ByteCount WireSize(const CostTable& costs) const;
};

struct PortRightTransfer {
  PortId port;
  bool receive_right = false;  // else a send right
};

struct Message {
  MsgId id;
  PortId dest;
  PortId reply_port;  // where responses should go (optional)
  MsgOp op = MsgOp::kUser;

  // The NoIOUs header bit (section 2.4): when set, intermediaries must not
  // substitute IOUs for physically-present data.
  bool no_ious = false;

  // How the wire accounts this message's bytes.
  TrafficKind traffic = TrafficKind::kControl;

  // Process whose memory this message carries (set on migration RIMAS
  // messages). Lets an intermediary that caches regions out of the message
  // record which process owns the cache object, so the cache can be handed
  // off when that process departs. Metadata only — zero wire bytes.
  ProcId cache_owner;

  // Declared size of the typed body on the wire.
  ByteCount inline_bytes = 0;
  std::any body;

  // AMap rider describing a whole address space (the Core message).
  AMap amap;
  bool has_amap = false;

  std::vector<MemoryRegion> regions;
  std::vector<PortRightTransfer> rights;

  template <typename T>
  const T& BodyAs() const {
    const T* typed = std::any_cast<T>(&body);
    ACCENT_CHECK(typed != nullptr) << " message body type mismatch, op=" << MsgOpName(op);
    return *typed;
  }

  // Total bytes on the wire (header + body + amap + regions + rights).
  ByteCount WireSize(const CostTable& costs) const;

  // Bytes of real page data carried (used for copy-cost accounting).
  ByteCount DataBytes() const;
};

inline constexpr ByteCount kMessageHeaderBytes = 16;
inline constexpr ByteCount kPortRightBytes = 8;

}  // namespace accent

#endif  // SRC_IPC_MESSAGE_H_
