#include "src/ipc/message.h"

#include <algorithm>

namespace accent {

const char* MsgOpName(MsgOp op) {
  switch (op) {
    case MsgOp::kUser: return "User";
    case MsgOp::kImagReadRequest: return "ImagReadRequest";
    case MsgOp::kImagReadReply: return "ImagReadReply";
    case MsgOp::kImagSegmentDeath: return "ImagSegmentDeath";
    case MsgOp::kMigrateRequest: return "MigrateRequest";
    case MsgOp::kMigrateCore: return "MigrateCore";
    case MsgOp::kMigrateRimas: return "MigrateRimas";
    case MsgOp::kMigrateComplete: return "MigrateComplete";
    case MsgOp::kAck: return "Ack";
    case MsgOp::kBackingHandoff: return "BackingHandoff";
    case MsgOp::kBackingHandoffAck: return "BackingHandoffAck";
    case MsgOp::kRebindIou: return "RebindIou";
    case MsgOp::kRebindAck: return "RebindAck";
  }
  return "?";
}

MemoryRegion MemoryRegion::Data(Addr base, std::vector<PageRef> pages) {
  ACCENT_EXPECTS(!pages.empty());
  MemoryRegion region;
  region.base = base;
  region.size = static_cast<ByteCount>(pages.size()) * kPageSize;
  region.mem_class = MemClass::kReal;
  region.pages = std::move(pages);
  return region;
}

MemoryRegion MemoryRegion::Data(Addr base, std::vector<PageData> pages) {
  std::vector<PageRef> refs;
  refs.reserve(pages.size());
  for (PageData& page : pages) {
    refs.emplace_back(std::move(page));
  }
  return Data(base, std::move(refs));
}

MemoryRegion MemoryRegion::Iou(Addr base, ByteCount size, IouRef ref) {
  ACCENT_EXPECTS(size > 0 && size % kPageSize == 0);
  ACCENT_EXPECTS(ref.valid());
  MemoryRegion region;
  region.base = base;
  region.size = size;
  region.mem_class = MemClass::kImag;
  region.iou = ref;
  return region;
}

MemoryRegion MemoryRegion::Zero(Addr base, ByteCount size) {
  ACCENT_EXPECTS(size > 0);
  MemoryRegion region;
  region.base = base;
  region.size = size;
  region.mem_class = MemClass::kRealZero;
  return region;
}

const PageHash* MemoryRegion::FindPageHash(PageIndex slot) const {
  const auto it = std::lower_bound(
      page_hashes.begin(), page_hashes.end(), slot,
      [](const PageHashEntry& entry, PageIndex s) { return entry.slot < s; });
  if (it == page_hashes.end() || it->slot != slot) {
    return nullptr;
  }
  return &it->hash;
}

ByteCount MemoryRegion::WireSize(const CostTable& costs) const {
  switch (mem_class) {
    case MemClass::kReal:
      // Page payload plus a small range descriptor.
      return size + costs.amap_entry_bytes;
    case MemClass::kImag:
      // The hash rider weighs page_hash_bytes per owed page; an absent
      // rider (the classic protocol) adds exactly nothing.
      return costs.iou_descriptor_bytes +
             costs.page_hash_bytes * static_cast<ByteCount>(page_hashes.size());
    case MemClass::kRealZero:
      // Shape only: zero contents are recreated, never transmitted.
      return costs.amap_entry_bytes;
    case MemClass::kBad:
      break;
  }
  ACCENT_CHECK(false) << " BadMem region in a message";
  return 0;
}

ByteCount Message::WireSize(const CostTable& costs) const {
  ByteCount total = kMessageHeaderBytes + inline_bytes;
  if (has_amap) {
    total += amap.SerializedSize(costs.amap_entry_bytes);
  }
  for (const MemoryRegion& region : regions) {
    total += region.WireSize(costs);
  }
  total += kPortRightBytes * rights.size();
  return total;
}

ByteCount Message::DataBytes() const {
  ByteCount total = 0;
  for (const MemoryRegion& region : regions) {
    if (region.mem_class == MemClass::kReal) {
      total += region.size;
    }
  }
  return total;
}

}  // namespace accent
