// Deterministic network fault injection.
//
// The paper's testbed never exercised an unreliable wire, but every IOU
// fault is a network RPC that can be lost, delayed or orphaned by a crash
// (the residual-dependency risk §5 concedes to Theimer's critique). A
// FaultPlan describes per-packet drop/duplicate/delay/reorder probabilities
// plus timed link partitions and host-crash windows; a FaultInjector draws
// every verdict from an Rng forked off the trial seed, in event order on
// the trial's private Simulator, so a faulty run is exactly as replayable
// as a lossless one. The Network consults the injector per transmission;
// with no injector attached (or a disabled plan) behaviour is bit-identical
// to the seed simulator.
#ifndef SRC_NET_FAULT_H_
#define SRC_NET_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/base/types.h"

namespace accent {

// A host unreachable over [start, end): nothing it sends leaves the wire
// and nothing addressed to it is delivered. The CPU keeps simulating (the
// machine may be alive behind a dead transceiver); "crashed for good" is an
// end beyond the trial horizon.
struct CrashWindow {
  HostId host;
  SimTime start{0};
  SimTime end{0};  // exclusive; kFaultForever for a permanent crash
};

// A symmetric link cut between two hosts over [start, end).
struct LinkPartition {
  HostId a;
  HostId b;
  SimTime start{0};
  SimTime end{0};
};

inline constexpr SimTime kFaultForever = SimTime(INT64_MAX);

struct FaultPlan {
  // Per-packet probabilities, applied independently to every transmission
  // (fragments and acks alike).
  double drop = 0.0;       // packet vanishes after occupying the wire
  double duplicate = 0.0;  // one extra delivery of the same packet
  double delay = 0.0;      // extra receive-side latency drawn from the window
  double reorder = 0.0;    // jitter large enough for later packets to overtake
  SimDuration delay_window = Ms(40);    // max extra latency for `delay`
  SimDuration reorder_window = Ms(120); // max extra latency for `reorder`

  std::vector<CrashWindow> crashes;
  std::vector<LinkPartition> partitions;

  bool enabled() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || reorder > 0.0 ||
           !crashes.empty() || !partitions.empty();
  }
};

// What happens to one transmission: either it is lost (dropped or blocked
// by a partition/crash), or it is delivered `extra_delays.size()` times
// (>= 1; more than 1 means duplication), each copy with its own additional
// latency on top of the wire's serialisation + propagation time.
struct FaultVerdict {
  bool lost = false;
  std::vector<SimDuration> extra_delays;
};

struct FaultStats {
  std::uint64_t packets_judged = 0;
  std::uint64_t packets_dropped = 0;     // random loss
  std::uint64_t packets_blocked = 0;     // partition or crash window
  std::uint64_t packets_duplicated = 0;  // extra copies created
  std::uint64_t packets_delayed = 0;     // nonzero extra latency drawn
};

class FaultInjector {
 public:
  // `seed` should be forked from the trial seed; all randomness is consumed
  // in simulator event order, so verdicts are replayable.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Judges one transmission from `from` to `to` starting at `now`.
  FaultVerdict Judge(HostId from, HostId to, SimTime now);

  // True while `host` sits inside one of its crash windows. Deliveries are
  // re-checked at arrival time so a host that crashes while a packet is in
  // flight still loses it.
  bool HostDown(HostId host, SimTime now) const;

  // True while the a<->b link is partitioned (symmetric).
  bool LinkCut(HostId a, HostId b, SimTime now) const;

  const FaultStats& stats() const { return stats_; }

 private:
  SimDuration DrawDelay(SimDuration window);

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace accent

#endif  // SRC_NET_FAULT_H_
