// The content-addressed cluster page service.
//
// Every owed-page strategy funnels Imaginary Read Requests back to the one
// origin SegmentBacker — the paper's §5 bottleneck. Naming pages by content
// (PAPERS.md: "Process Migration over CCNx") breaks the funnel: a per-host
// ContentCache holds recently-transferred payloads keyed by their strong
// PageHash, and a per-simulation PageDirectory maps hash -> holder hosts, so
// a destination pager can satisfy a fault from its own cache (a small
// confirm ack replaces the payload) or from the nearest holder before ever
// touching the origin.
//
// Identity discipline: cache keys are PageHash (128-bit, avalanche-mixed)
// and every insertion re-verifies that the bytes actually hash to the
// claimed key — the weak PageIntegrityChecksum can never reach a cache (the
// deliberate-collision test in tests/page_service_test.cc proves both).
//
// Directory protocol: holders announce asynchronously; an announcement
// becomes visible to queries only after `propagation` of simulated time
// (one wire latency — the same lookahead the sharded engine uses), so a
// probe can always race a crash or an eviction. Staleness is safe by
// construction: a holder that no longer has the bytes answers "miss" and
// the pager falls back to the origin; a holder that crashed times out and
// the pager drops the host from the directory before falling back. Pages
// can therefore go *stale* but never *wrong* — payload identity is
// re-verified against the shipped hash at every install.
#ifndef SRC_NET_PAGE_SERVICE_H_
#define SRC_NET_PAGE_SERVICE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "src/base/page_ref.h"
#include "src/base/types.h"

namespace accent {

struct ContentCacheStats {
  std::uint64_t hits = 0;            // lookups served from the cache
  std::uint64_t misses = 0;          // lookups that fell through
  std::uint64_t insertions = 0;      // pages accepted
  std::uint64_t evictions = 0;       // pages LRU-evicted under pressure
  std::uint64_t hash_mismatches = 0;  // insertions rejected: bytes != claimed hash
};

// Capacity-bounded LRU cache of page payloads keyed by content hash.
// Single-simulation object, like everything else in a Testbed: parallel
// sweeps give every trial a private instance, so no locking.
class ContentCache {
 public:
  explicit ContentCache(std::int64_t capacity_pages);

  // Accepts `page` under `hash` after re-verifying page.Hash() == hash;
  // a mismatch (forged identity) is rejected and counted. Zero pages are
  // never cached — the pager materialises those locally for free. Returns
  // whether the page is resident afterwards.
  bool InsertVerified(const PageHash& hash, const PageRef& page);

  // Returns the cached payload or nullptr, counting a hit or a miss and
  // refreshing LRU recency on hit. The pointer is invalidated by the next
  // insertion or eviction — copy the PageRef out (a refcount bump).
  const PageRef* Lookup(const PageHash& hash);

  // Counter-free probe (oracles and tests).
  bool Contains(const PageHash& hash) const;

  std::int64_t size_pages() const { return static_cast<std::int64_t>(entries_.size()); }
  std::int64_t capacity_pages() const { return capacity_pages_; }
  const ContentCacheStats& stats() const { return stats_; }

 private:
  void EvictToCapacity();

  struct Entry {
    PageRef page;
    std::list<PageHash>::iterator lru_it;
  };

  std::int64_t capacity_pages_;
  std::list<PageHash> lru_;  // front = most recently used
  std::map<PageHash, Entry> entries_;
  ContentCacheStats stats_;
};

// Cluster-wide hash -> holders map. One instance per simulation, shared by
// every host's PageService. Holder announcements become visible only
// `propagation` after they are recorded (see the file comment), and
// queries rank candidates by the host link-cost rank installed at wiring
// time (HostCalibration wire cost; ties break on the lower host id), so
// NearestHolder is deterministic.
class PageDirectory {
 public:
  explicit PageDirectory(SimDuration propagation) : propagation_(propagation) {}

  // Lower rank = cheaper link = nearer. Unranked hosts default to rank 0.
  void SetHostRank(HostId host, double rank) { ranks_[host] = rank; }

  // Where a host answers kCachePull probes (its pager's port). A holder
  // without a registered port is never probed.
  void SetServicePort(HostId host, PortId port) { service_ports_[host] = port; }
  PortId ServicePortOf(HostId host) const {
    auto it = service_ports_.find(host);
    return it != service_ports_.end() ? it->second : PortId{};
  }

  void RecordHolder(const PageHash& hash, HostId host, SimTime now);

  // Forgets every holding recorded for `host` (crash, retirement). The
  // host may re-announce later; old entries never resurface.
  void DropHost(HostId host);

  // The cheapest holder of `hash` visible at `now`, excluding the querying
  // host and the origin (their tiers are handled separately by the pager).
  std::optional<HostId> NearestHolder(const PageHash& hash, SimTime now,
                                      HostId exclude_a, HostId exclude_b) const;

  std::uint64_t holders_recorded() const { return holders_recorded_; }
  std::uint64_t hosts_dropped() const { return hosts_dropped_; }

 private:
  struct Holding {
    SimTime visible_at{0};
  };

  SimDuration propagation_;
  std::map<PageHash, std::map<HostId, Holding>> holders_;
  std::map<HostId, double> ranks_;
  std::map<HostId, PortId> service_ports_;
  std::uint64_t holders_recorded_ = 0;
  std::uint64_t hosts_dropped_ = 0;
};

// Per-host facade wired into HostEnv: the host's ContentCache plus the
// shared directory. Publish is the single choke point through which pages
// enter the dedup plane — it hashes, caches and announces in one step, so
// a page can never be announced under a hash it does not have.
class PageService {
 public:
  PageService(HostId host, PageDirectory* directory, std::int64_t capacity_pages);

  HostId host() const { return host_; }
  ContentCache& cache() { return cache_; }
  const ContentCache& cache() const { return cache_; }
  PageDirectory& directory() { return *directory_; }
  const PageDirectory& directory() const { return *directory_; }

  // Hashes `page`, inserts it into the local cache and announces this host
  // as a holder (visible after the directory's propagation delay). Zero
  // pages return the interned hash without caching or announcing.
  PageHash Publish(const PageRef& page, SimTime now);

 private:
  HostId host_;
  PageDirectory* directory_;
  ContentCache cache_;
};

}  // namespace accent

#endif  // SRC_NET_PAGE_SERVICE_H_
