#include "src/net/fault.h"

namespace accent {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_(Rng(seed).Fork(0x4641554C54ull)) {  // "FAULT"
  ACCENT_EXPECTS(plan.drop >= 0.0 && plan.drop <= 1.0);
  ACCENT_EXPECTS(plan.duplicate >= 0.0 && plan.duplicate <= 1.0);
  ACCENT_EXPECTS(plan.delay >= 0.0 && plan.delay <= 1.0);
  ACCENT_EXPECTS(plan.reorder >= 0.0 && plan.reorder <= 1.0);
  for (const CrashWindow& window : plan.crashes) {
    ACCENT_EXPECTS(window.end > window.start);
  }
  for (const LinkPartition& cut : plan.partitions) {
    ACCENT_EXPECTS(cut.end > cut.start && cut.a != cut.b);
  }
}

bool FaultInjector::HostDown(HostId host, SimTime now) const {
  for (const CrashWindow& window : plan_.crashes) {
    if (window.host == host && now >= window.start && now < window.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::LinkCut(HostId a, HostId b, SimTime now) const {
  for (const LinkPartition& cut : plan_.partitions) {
    const bool matches = (cut.a == a && cut.b == b) || (cut.a == b && cut.b == a);
    if (matches && now >= cut.start && now < cut.end) {
      return true;
    }
  }
  return false;
}

SimDuration FaultInjector::DrawDelay(SimDuration window) {
  if (window <= SimDuration::zero()) {
    return SimDuration::zero();
  }
  return SimDuration(static_cast<std::int64_t>(
      rng_.NextBelow(static_cast<std::uint64_t>(window.count()) + 1)));
}

FaultVerdict FaultInjector::Judge(HostId from, HostId to, SimTime now) {
  ++stats_.packets_judged;
  FaultVerdict verdict;
  if (HostDown(from, now) || HostDown(to, now) || LinkCut(from, to, now)) {
    verdict.lost = true;
    ++stats_.packets_blocked;
    return verdict;
  }
  if (plan_.drop > 0.0 && rng_.NextBool(plan_.drop)) {
    verdict.lost = true;
    ++stats_.packets_dropped;
    return verdict;
  }

  SimDuration jitter = SimDuration::zero();
  if (plan_.delay > 0.0 && rng_.NextBool(plan_.delay)) {
    jitter += DrawDelay(plan_.delay_window);
  }
  if (plan_.reorder > 0.0 && rng_.NextBool(plan_.reorder)) {
    jitter += DrawDelay(plan_.reorder_window);
  }
  if (jitter > SimDuration::zero()) {
    ++stats_.packets_delayed;
  }
  verdict.extra_delays.push_back(jitter);

  if (plan_.duplicate > 0.0 && rng_.NextBool(plan_.duplicate)) {
    ++stats_.packets_duplicated;
    SimDuration dup_jitter = DrawDelay(plan_.reorder_window);
    verdict.extra_delays.push_back(jitter + dup_jitter);
  }
  return verdict;
}

}  // namespace accent
