// Network byte accounting.
//
// Every byte crossing the wire is attributed to a traffic kind so the
// harness can reproduce Figure 4-3 (bytes per trial), Figure 4-5 (transfer
// rate over time, imaginary-fault bytes vs the rest) and the cost
// distribution discussion in section 4.4.3.
#ifndef SRC_NET_TRAFFIC_H_
#define SRC_NET_TRAFFIC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/types.h"
#include "src/sim/simulator.h"

namespace accent {

enum class TrafficKind : int {
  kControl = 0,      // migration requests, acks, segment death notices
  kCoreContext = 1,  // the Core context message (PCB, microstate, AMap)
  kBulkData = 2,     // RIMAS RealMem payload shipped at migration time
  kFaultData = 3,    // imaginary fault requests + replies (incl. prefetch)
  kKindCount = 4,
};

const char* TrafficKindName(TrafficKind kind);

class TrafficRecorder {
 public:
  TrafficRecorder(Simulator* sim, SimDuration bucket_width)
      : sim_(*sim), bucket_width_(bucket_width) {
    ACCENT_EXPECTS(sim != nullptr);
    ACCENT_EXPECTS(bucket_width > SimDuration::zero());
  }

  void Record(TrafficKind kind, ByteCount bytes);

  ByteCount TotalBytes() const;
  ByteCount BytesOf(TrafficKind kind) const {
    return totals_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t MessagesOf(TrafficKind kind) const {
    return messages_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t TotalMessages() const;

  struct Bucket {
    SimTime start{0};
    std::array<ByteCount, static_cast<std::size_t>(TrafficKind::kKindCount)> bytes{};
  };
  // Time series of byte counts, one bucket per `bucket_width`.
  const std::vector<Bucket>& buckets() const { return buckets_; }
  SimDuration bucket_width() const { return bucket_width_; }

  void Reset();

 private:
  Simulator& sim_;
  SimDuration bucket_width_;
  std::array<ByteCount, static_cast<std::size_t>(TrafficKind::kKindCount)> totals_{};
  std::array<std::uint64_t, static_cast<std::size_t>(TrafficKind::kKindCount)> messages_{};
  std::vector<Bucket> buckets_;
};

}  // namespace accent

#endif  // SRC_NET_TRAFFIC_H_
