#include "src/net/network.h"

#include <algorithm>
#include <utility>

namespace accent {

void Network::Transmit(HostId from, HostId to, ByteCount bytes, TrafficKind kind,
                       std::function<void()> deliver) {
  ACCENT_EXPECTS(from != to) << " loopback transmissions never touch the wire";
  ACCENT_EXPECTS(deliver != nullptr);

  ++transmissions_;
  bytes_carried_ += bytes;
  if (recorder_ != nullptr) {
    recorder_->Record(kind, bytes);
  }

  const auto serialize = SimDuration(static_cast<std::int64_t>(
      static_cast<double>(bytes) / costs_.wire_bytes_per_sec * 1e6));
  const SimTime start = std::max(sim_.Now(), wire_busy_until_);
  wire_busy_until_ = start + serialize;
  sim_.ScheduleAt(wire_busy_until_ + costs_.wire_latency, std::move(deliver));
}

}  // namespace accent
