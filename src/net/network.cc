#include "src/net/network.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace accent {

void Network::ConfigureSwitched(int host_count) {
  ACCENT_EXPECTS(host_count >= 1);
  ACCENT_CHECK(fault_ == nullptr)
      << " the switched fabric models a reliable datacenter row";
  ACCENT_CHECK(transmissions() == 0) << " switch wire models before traffic";
  model_ = WireModel::kSwitched;
  egress_busy_until_.assign(static_cast<std::size_t>(host_count), SimTime{0});
}

void Network::SetHostCalibrations(const std::vector<HostCalibration>& calibrations) {
  ACCENT_CHECK(transmissions() == 0) << " calibrate links before traffic";
  if (!AnyCalibrated(calibrations)) {
    // Identity everywhere: leave calibrated_ false so Transmit keeps the
    // original arithmetic, expression for expression.
    calibrated_ = false;
    egress_bytes_per_sec_.clear();
    egress_latency_.clear();
    return;
  }
  calibrated_ = true;
  egress_bytes_per_sec_.resize(calibrations.size());
  egress_latency_.resize(calibrations.size());
  for (std::size_t i = 0; i < calibrations.size(); ++i) {
    calibrations[i].Validate();
    egress_bytes_per_sec_[i] =
        costs_.wire_bytes_per_sec * calibrations[i].wire_bandwidth_multiplier;
    egress_latency_[i] =
        ScaleLatency(costs_.wire_latency, calibrations[i].wire_latency_multiplier);
  }
}

SimDuration Network::MinWireLatency(const CostTable& costs,
                                    const std::vector<HostCalibration>& calibrations) {
  SimDuration min = costs.wire_latency;
  for (const HostCalibration& cal : calibrations) {
    min = std::min(min, ScaleLatency(costs.wire_latency, cal.wire_latency_multiplier));
  }
  return min;
}

void Network::Transmit(HostId from, HostId to, ByteCount bytes, TrafficKind kind,
                       std::function<void()> deliver) {
  ACCENT_EXPECTS(from != to) << " loopback transmissions never touch the wire";
  ACCENT_EXPECTS(deliver != nullptr);

  transmissions_.fetch_add(1, std::memory_order_relaxed);
  bytes_carried_.fetch_add(bytes, std::memory_order_relaxed);
  if (recorder_ != nullptr) {
    recorder_->Record(kind, bytes);
  }

  // Uncalibrated (the default and every golden-digest path) reads the
  // shared CostTable values; a calibrated sender reads its own link.
  const std::size_t link = static_cast<std::size_t>(from.value - 1);
  const double bytes_per_sec = calibrated_ && link < egress_bytes_per_sec_.size()
                                   ? egress_bytes_per_sec_[link]
                                   : costs_.wire_bytes_per_sec;
  const SimDuration latency = calibrated_ && link < egress_latency_.size()
                                  ? egress_latency_[link]
                                  : costs_.wire_latency;
  const auto serialize = SimDuration(static_cast<std::int64_t>(
      static_cast<double>(bytes) / bytes_per_sec * 1e6));

  if (model_ == WireModel::kSwitched) {
    // Private egress port: only the transmitting host's shard reaches this
    // slot, so the read-modify-write below is single-threaded by design.
    ACCENT_CHECK(from.value >= 1 && from.value <= egress_busy_until_.size())
        << " host " << from << " has no egress port";
    SimTime& busy = egress_busy_until_[static_cast<std::size_t>(from.value - 1)];
    const SimTime start = std::max(sim_.Now(), busy);
    busy = start + serialize;
    const SimTime arrival = busy + latency;
    if (Tracer* tracer = sim_.tracer()) {
      tracer->Complete(from, TraceLane::kWire, "wire:tx", start, arrival - start,
                       {{"to", Json(to.value)},
                        {"bytes", Json(bytes)},
                        {"kind", Json(TrafficKindName(kind))}});
    }
    // The only cross-shard edge in a sharded run; falls back to a plain
    // ScheduleAt under the serial loop.
    sim_.ScheduleCross(from, to, arrival, std::move(deliver));
    return;
  }

  const SimTime start = std::max(sim_.Now(), wire_busy_until_);
  wire_busy_until_ = start + serialize;
  const SimTime arrival = wire_busy_until_ + latency;

  if (Tracer* tracer = sim_.tracer()) {
    tracer->Complete(from, TraceLane::kWire, "wire:tx", start, arrival - start,
                     {{"to", Json(to.value)},
                      {"bytes", Json(bytes)},
                      {"kind", Json(TrafficKindName(kind))}});
  }

  if (fault_ == nullptr) {
    sim_.ScheduleAt(arrival, std::move(deliver));
    return;
  }

  // Lost packets still occupy the wire (collisions, a crashed receiver's
  // frames are transmitted regardless); only delivery is affected.
  FaultVerdict verdict = fault_->Judge(from, to, sim_.Now());
  if (Tracer* tracer = sim_.tracer()) {
    if (verdict.lost) {
      tracer->Instant(from, TraceLane::kWire, "fault:drop", sim_.Now(),
                      {{"to", Json(to.value)}, {"bytes", Json(bytes)}});
    } else if (verdict.extra_delays.size() > 1) {
      tracer->Instant(
          from, TraceLane::kWire, "fault:duplicate", sim_.Now(),
          {{"to", Json(to.value)},
           {"copies",
            Json(static_cast<std::uint64_t>(verdict.extra_delays.size()))}});
    } else if (!verdict.extra_delays.empty() &&
               verdict.extra_delays.front() > SimDuration{0}) {
      tracer->Instant(from, TraceLane::kWire, "fault:delay", sim_.Now(),
                      {{"to", Json(to.value)},
                       {"extra_us", Json(verdict.extra_delays.front().count())}});
    }
  }
  if (verdict.lost) {
    deliveries_lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto shared_deliver =
      verdict.extra_delays.size() > 1
          ? std::make_shared<std::function<void()>>(std::move(deliver))
          : nullptr;
  for (std::size_t copy = 0; copy < verdict.extra_delays.size(); ++copy) {
    const SimTime when = arrival + verdict.extra_delays[copy];
    // Re-check the receiver at arrival: a host that crashes while the
    // packet is in flight still loses it.
    FaultInjector* fault = fault_;
    if (shared_deliver != nullptr) {
      sim_.ScheduleAt(when, [this, fault, to, when, shared_deliver]() {
        if (fault->HostDown(to, when)) {
          deliveries_lost_.fetch_add(1, std::memory_order_relaxed);
          if (Tracer* tracer = sim_.tracer()) {
            tracer->Instant(to, TraceLane::kWire, "fault:dead-receiver", when);
          }
          return;
        }
        (*shared_deliver)();
      });
    } else {
      sim_.ScheduleAt(when, [this, fault, to, when, deliver = std::move(deliver)]() {
        if (fault->HostDown(to, when)) {
          deliveries_lost_.fetch_add(1, std::memory_order_relaxed);
          if (Tracer* tracer = sim_.tracer()) {
            tracer->Instant(to, TraceLane::kWire, "fault:dead-receiver", when);
          }
          return;
        }
        deliver();
      });
    }
  }
}

}  // namespace accent
