#include "src/net/page_service.h"

#include "src/base/check.h"

namespace accent {

ContentCache::ContentCache(std::int64_t capacity_pages)
    : capacity_pages_(capacity_pages) {
  ACCENT_EXPECTS(capacity_pages >= 1);
}

bool ContentCache::InsertVerified(const PageHash& hash, const PageRef& page) {
  if (page.IsZero()) {
    return false;  // the pager fills zero pages locally; never cache them
  }
  if (page.Hash() != hash) {
    // Forged identity: the bytes do not hash to the claimed key. Served
    // blindly this would hand some process the wrong page contents, so the
    // insertion is refused and the counter feeds the bench's
    // zero-integrity-failures gate.
    ++stats_.hash_mismatches;
    return false;
  }
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return true;  // already resident: refresh recency only
  }
  lru_.push_front(hash);
  entries_[hash] = Entry{page, lru_.begin()};
  ++stats_.insertions;
  EvictToCapacity();
  return entries_.count(hash) != 0;
}

const PageRef* ContentCache::Lookup(const PageHash& hash) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.page;
}

bool ContentCache::Contains(const PageHash& hash) const {
  return entries_.count(hash) != 0;
}

void ContentCache::EvictToCapacity() {
  while (static_cast<std::int64_t>(entries_.size()) > capacity_pages_) {
    const PageHash victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

void PageDirectory::RecordHolder(const PageHash& hash, HostId host, SimTime now) {
  holders_[hash][host] = Holding{now + propagation_};
  ++holders_recorded_;
}

void PageDirectory::DropHost(HostId host) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    it->second.erase(host);
    it = it->second.empty() ? holders_.erase(it) : std::next(it);
  }
  ++hosts_dropped_;
}

std::optional<HostId> PageDirectory::NearestHolder(const PageHash& hash, SimTime now,
                                                   HostId exclude_a,
                                                   HostId exclude_b) const {
  auto it = holders_.find(hash);
  if (it == holders_.end()) {
    return std::nullopt;
  }
  std::optional<HostId> best;
  double best_rank = 0.0;
  // Holders iterate in HostId order, so at equal rank the lower id wins
  // and the choice is canonical.
  for (const auto& [host, holding] : it->second) {
    if (host == exclude_a || host == exclude_b || holding.visible_at > now) {
      continue;
    }
    const auto rank_it = ranks_.find(host);
    const double rank = rank_it != ranks_.end() ? rank_it->second : 0.0;
    if (!best.has_value() || rank < best_rank) {
      best = host;
      best_rank = rank;
    }
  }
  return best;
}

PageService::PageService(HostId host, PageDirectory* directory,
                         std::int64_t capacity_pages)
    : host_(host), directory_(directory), cache_(capacity_pages) {
  ACCENT_EXPECTS(directory != nullptr);
}

PageHash PageService::Publish(const PageRef& page, SimTime now) {
  const PageHash hash = page.Hash();
  if (page.IsZero()) {
    return hash;
  }
  if (cache_.InsertVerified(hash, page)) {
    directory_->RecordHolder(hash, host_, now);
  }
  return hash;
}

}  // namespace accent
