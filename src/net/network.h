// Shared-medium network fabric (the testbed's 10 Mbit Ethernet).
//
// The wire serialises transmissions FCFS at `wire_bytes_per_sec` and adds a
// fixed propagation+driver latency. CPU costs of handling messages belong to
// the NetMsgServers (src/netmsg) — the wire itself is fast; the paper's
// bottleneck is software, and the model keeps those costs separate on
// purpose so ablations can vary them independently.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>

#include "src/base/types.h"
#include "src/host/costs.h"
#include "src/net/fault.h"
#include "src/net/traffic.h"
#include "src/sim/simulator.h"

namespace accent {

class Network {
 public:
  Network(Simulator* sim, const CostTable* costs, TrafficRecorder* recorder)
      : sim_(*sim), costs_(*costs), recorder_(recorder) {
    ACCENT_EXPECTS(sim != nullptr && costs != nullptr);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Ships `bytes` from `from` to `to`; `deliver` runs at the receiver once
  // the bytes have fully arrived. Bytes are recorded under `kind` at the
  // time transmission starts (matching how the paper's monitor counted).
  void Transmit(HostId from, HostId to, ByteCount bytes, TrafficKind kind,
                std::function<void()> deliver);

  // Attaches a fault injector consulted once per transmission. Null (the
  // default) keeps the wire perfectly reliable and the event schedule
  // bit-identical to the injector-free build; deliveries to a host inside a
  // crash window are additionally discarded at arrival time.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() const { return fault_; }

  std::uint64_t transmissions() const { return transmissions_; }
  ByteCount bytes_carried() const { return bytes_carried_; }
  std::uint64_t deliveries_lost() const { return deliveries_lost_; }
  TrafficRecorder* recorder() const { return recorder_; }

 private:
  Simulator& sim_;
  const CostTable& costs_;
  TrafficRecorder* recorder_;  // may be null (micro tests)
  FaultInjector* fault_ = nullptr;  // may be null (reliable wire)
  SimTime wire_busy_until_{0};
  std::uint64_t transmissions_ = 0;
  ByteCount bytes_carried_ = 0;
  std::uint64_t deliveries_lost_ = 0;  // dropped, blocked, or dead on arrival
};

}  // namespace accent

#endif  // SRC_NET_NETWORK_H_
