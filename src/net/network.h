// Network fabric, in two wire models.
//
//  * kSharedBus (default): the testbed's 10 Mbit Ethernet. One shared
//    medium serialises transmissions FCFS at `wire_bytes_per_sec` and adds
//    a fixed propagation+driver latency. Exactly the paper's environment;
//    every two-Perq trial and the golden digest run through this path.
//
//  * kSwitched: a datacenter-row switch. Each host owns a private egress
//    port serialising its own transmissions; ports never contend with each
//    other. Because egress state is touched only by the transmitting
//    host's shard and deliveries ride Simulator::ScheduleCross, this model
//    is safe (and deterministic) under the sharded event loop — it is the
//    only cross-shard edge a fleet-scale cluster trial has.
//
// CPU costs of handling messages belong to the NetMsgServers (src/netmsg)
// — the wire itself is fast; the paper's bottleneck is software, and the
// model keeps those costs separate on purpose so ablations can vary them
// independently.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/host/costs.h"
#include "src/net/fault.h"
#include "src/net/traffic.h"
#include "src/sim/simulator.h"

namespace accent {

enum class WireModel : int {
  kSharedBus = 0,  // one medium, FCFS — the paper's Ethernet
  kSwitched = 1,   // per-host egress ports — the datacenter row
};

class Network {
 public:
  Network(Simulator* sim, const CostTable* costs, TrafficRecorder* recorder)
      : sim_(*sim), costs_(*costs), recorder_(recorder) {
    ACCENT_EXPECTS(sim != nullptr && costs != nullptr);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Ships `bytes` from `from` to `to`; `deliver` runs at the receiver once
  // the bytes have fully arrived. Bytes are recorded under `kind` at the
  // time transmission starts (matching how the paper's monitor counted).
  void Transmit(HostId from, HostId to, ByteCount bytes, TrafficKind kind,
                std::function<void()> deliver);

  // Switches to the kSwitched wire model with `host_count` egress ports.
  // Hosts must carry the dense ids 1..host_count (the Testbed/cluster
  // convention). Call before any transmission; incompatible with fault
  // injection (the switched fabric models a reliable datacenter row), and
  // a sharded multi-worker run additionally requires a null recorder —
  // TrafficRecorder is not thread-safe; fleet trials do their own
  // per-host byte accounting instead.
  void ConfigureSwitched(int host_count);
  WireModel wire_model() const { return model_; }

  // Per-host link calibrations, indexed by host id - 1 (the dense-id
  // convention). A transmission's serialization bandwidth and propagation
  // latency come from the *sender's* link — its egress NIC/driver in the
  // switched model, its transceiver on the shared bus. An empty vector (the
  // default) or all-identity entries keep the uncalibrated arithmetic
  // byte-for-byte. Call before any transmission.
  void SetHostCalibrations(const std::vector<HostCalibration>& calibrations);
  bool calibrated() const { return calibrated_; }

  // The smallest calibrated egress latency across `calibrations` (the safe
  // sharded-simulator lookahead for a switched fleet); costs.wire_latency
  // exactly when nothing is calibrated.
  static SimDuration MinWireLatency(const CostTable& costs,
                                    const std::vector<HostCalibration>& calibrations);

  // Attaches a fault injector consulted once per transmission. Null (the
  // default) keeps the wire perfectly reliable and the event schedule
  // bit-identical to the injector-free build; deliveries to a host inside a
  // crash window are additionally discarded at arrival time.
  void set_fault_injector(FaultInjector* injector) {
    ACCENT_EXPECTS(injector == nullptr || model_ == WireModel::kSharedBus);
    fault_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_; }

  std::uint64_t transmissions() const {
    return transmissions_.load(std::memory_order_relaxed);
  }
  ByteCount bytes_carried() const {
    return bytes_carried_.load(std::memory_order_relaxed);
  }
  std::uint64_t deliveries_lost() const {
    return deliveries_lost_.load(std::memory_order_relaxed);
  }
  TrafficRecorder* recorder() const { return recorder_; }

 private:
  Simulator& sim_;
  const CostTable& costs_;
  TrafficRecorder* recorder_;  // may be null (micro tests, fleet trials)
  FaultInjector* fault_ = nullptr;  // may be null (reliable wire)
  WireModel model_ = WireModel::kSharedBus;
  // Heterogeneous links: per-sender serialization bandwidth and latency,
  // precomputed from the calibrations (empty when uncalibrated). Sized once
  // up front and only read afterwards, so shards share them lock-free.
  bool calibrated_ = false;
  std::vector<double> egress_bytes_per_sec_;
  std::vector<SimDuration> egress_latency_;
  SimTime wire_busy_until_{0};
  // kSwitched: per-host egress availability, indexed by host id - 1. Each
  // slot is written only by the owning host's shard, so the vector needs
  // no lock under the sharded loop (it is sized once, up front).
  std::vector<SimTime> egress_busy_until_;
  // Totals are relaxed atomics so switched-mode shards can share them; the
  // sums are order-independent, keeping results deterministic.
  std::atomic<std::uint64_t> transmissions_{0};
  std::atomic<ByteCount> bytes_carried_{0};
  std::atomic<std::uint64_t> deliveries_lost_{0};  // dropped, blocked, dead on arrival
};

}  // namespace accent

#endif  // SRC_NET_NETWORK_H_
