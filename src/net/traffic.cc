#include "src/net/traffic.h"

namespace accent {

const char* TrafficKindName(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kControl: return "control";
    case TrafficKind::kCoreContext: return "core";
    case TrafficKind::kBulkData: return "bulk";
    case TrafficKind::kFaultData: return "fault";
    case TrafficKind::kKindCount: break;
  }
  return "?";
}

void TrafficRecorder::Record(TrafficKind kind, ByteCount bytes) {
  const auto k = static_cast<std::size_t>(kind);
  totals_[k] += bytes;
  messages_[k] += 1;

  const std::uint64_t index =
      static_cast<std::uint64_t>(sim_.Now().count()) /
      static_cast<std::uint64_t>(bucket_width_.count());
  while (buckets_.size() <= index) {
    Bucket bucket;
    bucket.start = bucket_width_ * static_cast<std::int64_t>(buckets_.size());
    buckets_.push_back(bucket);
  }
  buckets_[index].bytes[k] += bytes;
}

ByteCount TrafficRecorder::TotalBytes() const {
  ByteCount total = 0;
  for (ByteCount b : totals_) {
    total += b;
  }
  return total;
}

std::uint64_t TrafficRecorder::TotalMessages() const {
  std::uint64_t total = 0;
  for (std::uint64_t m : messages_) {
    total += m;
  }
  return total;
}

void TrafficRecorder::Reset() {
  totals_.fill(0);
  messages_.fill(0);
  buckets_.clear();
}

}  // namespace accent
