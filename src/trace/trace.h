// Structured tracing for the simulated testbed.
//
// A Tracer records spans, instants and counter samples stamped with
// *simulated* time and exports them as Chrome-trace ("Trace Event Format")
// JSON, loadable in Perfetto / chrome://tracing. The layout is one process
// group per simulated host (pid = host id, pid 0 = the simulation kernel)
// with a named thread lane per subsystem: migration, pager, netmsg, wire,
// sim.
//
// The subsystem is opt-in and zero-overhead when disabled: nothing holds a
// Tracer by default, and every instrumentation site is guarded by a single
// `tracer == nullptr` test. A Tracer only observes — it never schedules,
// never consumes randomness — so enabling it cannot perturb simulated
// behaviour; tests assert that trial results are byte-identical with and
// without it.
//
// The taxonomy of event names and args is documented in
// docs/OBSERVABILITY.md; changes here must be reflected there.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/types.h"

namespace accent {

// One named row inside a host's process group in the trace viewer.
enum class TraceLane : std::uint32_t {
  kMigration = 1,  // phase spans: excise / transfer / insert, aborts
  kPager = 2,      // fault-service spans (zero-fill, disk, CoW, imaginary)
  kNetMsg = 3,     // per-message forwards, fragments, acks, retransmits
  kWire = 4,       // physical transmissions + fault-injector verdicts
  kSim = 5,        // event-loop dispatch (verbose only)
};

const char* TraceLaneName(TraceLane lane);

// A key/value annotation attached to an event ("args" in the Chrome format).
struct TraceArg {
  std::string key;
  Json value;
};
using TraceArgs = std::vector<TraceArg>;

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,  // "X": a span [ts, ts+dur]
    kInstant,   // "i": a point event
    kCounter,   // "C": a sampled value
  };

  Phase phase = Phase::kInstant;
  HostId host;  // default-constructed (value 0) = the simulation kernel
  TraceLane lane = TraceLane::kSim;
  std::string name;
  SimTime ts{0};
  SimDuration dur{0};  // kComplete only
  double value = 0.0;  // kCounter only
  TraceArgs args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Verbose mode additionally records high-volume events: per-fragment
  // sends/acks and simulator event dispatches. Off by default — a full
  // sweep trial dispatches hundreds of thousands of events.
  void set_verbose(bool v) { verbose_ = v; }
  bool verbose() const { return verbose_; }

  void Instant(HostId host, TraceLane lane, std::string name, SimTime ts,
               TraceArgs args = {});
  void Complete(HostId host, TraceLane lane, std::string name, SimTime start,
                SimDuration dur, TraceArgs args = {});
  void Counter(HostId host, std::string name, SimTime ts, double value);

  // Events attributed to the simulation kernel rather than a host.
  void KernelInstant(std::string name, SimTime ts, TraceArgs args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

  // Chrome-trace JSON: {"displayTimeUnit":"ms","traceEvents":[...]} with
  // metadata records naming each process/thread, then all events sorted by
  // timestamp (stable — recording order breaks ties). Timestamps and
  // durations are emitted in microseconds, the Chrome format's native unit
  // and SimTime's resolution, so values pass through exactly.
  Json ToChromeTraceJson() const;
  std::string DumpChromeTrace(int indent = 1) const;
  void WriteChromeTrace(std::ostream& out) const;
  // Returns false (and logs) if the file cannot be written.
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  bool verbose_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace accent

#endif  // SRC_TRACE_TRACE_H_
