#include "src/trace/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "src/base/logging.h"

namespace accent {
namespace {

// pid used for kernel-attributed events in the exported trace. Host ids are
// allocated from 1, so 0 is free.
constexpr std::uint64_t kKernelPid = 0;

std::uint64_t PidOf(const TraceEvent& event) {
  return event.host.valid() ? event.host.value : kKernelPid;
}

Json ArgsToJson(const TraceArgs& args) {
  Json out{Json::Object{}};
  for (const TraceArg& arg : args) {
    out[arg.key] = arg.value;
  }
  return out;
}

Json MetadataEvent(const char* name, std::uint64_t pid, std::uint64_t tid,
                   Json args) {
  Json event{Json::Object{}};
  event["ph"] = "M";
  event["name"] = name;
  event["pid"] = pid;
  event["tid"] = tid;
  event["ts"] = std::int64_t{0};
  event["args"] = std::move(args);
  return event;
}

}  // namespace

const char* TraceLaneName(TraceLane lane) {
  switch (lane) {
    case TraceLane::kMigration:
      return "migration";
    case TraceLane::kPager:
      return "pager";
    case TraceLane::kNetMsg:
      return "netmsg";
    case TraceLane::kWire:
      return "wire";
    case TraceLane::kSim:
      return "sim";
  }
  return "?";
}

void Tracer::Instant(HostId host, TraceLane lane, std::string name, SimTime ts,
                     TraceArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.host = host;
  event.lane = lane;
  event.name = std::move(name);
  event.ts = ts;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::Complete(HostId host, TraceLane lane, std::string name,
                      SimTime start, SimDuration dur, TraceArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.host = host;
  event.lane = lane;
  event.name = std::move(name);
  event.ts = start;
  event.dur = dur;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::Counter(HostId host, std::string name, SimTime ts, double value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.host = host;
  event.lane = TraceLane::kSim;
  event.name = std::move(name);
  event.ts = ts;
  event.value = value;
  events_.push_back(std::move(event));
}

void Tracer::KernelInstant(std::string name, SimTime ts, TraceArgs args) {
  Instant(HostId{}, TraceLane::kSim, std::move(name), ts, std::move(args));
}

Json Tracer::ToChromeTraceJson() const {
  // Stable sort by timestamp: viewers expect monotonically non-decreasing
  // ts, and recording order is the meaningful tie-break (it reflects the
  // simulator's same-instant FIFO execution order).
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    ordered.push_back(&event);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  Json::Array trace_events;
  // Metadata: name every (pid) process and (pid, lane) thread that appears,
  // and sort hosts ascending in the viewer. std::map keeps this canonical.
  std::map<std::uint64_t, bool> pids;
  std::map<std::pair<std::uint64_t, std::uint32_t>, TraceLane> lanes;
  for (const TraceEvent& event : events_) {
    const std::uint64_t pid = PidOf(event);
    pids[pid] = true;
    lanes[{pid, static_cast<std::uint32_t>(event.lane)}] = event.lane;
  }
  for (const auto& [pid, unused] : pids) {
    Json name_args{Json::Object{}};
    name_args["name"] = pid == kKernelPid
                            ? std::string("simulator")
                            : "host-" + std::to_string(pid);
    trace_events.push_back(MetadataEvent("process_name", pid, 0,
                                         std::move(name_args)));
    Json sort_args{Json::Object{}};
    sort_args["sort_index"] = static_cast<std::int64_t>(pid);
    trace_events.push_back(MetadataEvent("process_sort_index", pid, 0,
                                         std::move(sort_args)));
  }
  for (const auto& [key, lane] : lanes) {
    Json name_args{Json::Object{}};
    name_args["name"] = TraceLaneName(lane);
    trace_events.push_back(MetadataEvent("thread_name", key.first, key.second,
                                         std::move(name_args)));
    Json sort_args{Json::Object{}};
    sort_args["sort_index"] = static_cast<std::int64_t>(key.second);
    trace_events.push_back(MetadataEvent("thread_sort_index", key.first,
                                         key.second, std::move(sort_args)));
  }

  for (const TraceEvent* event : ordered) {
    Json record{Json::Object{}};
    record["name"] = event->name;
    record["cat"] = TraceLaneName(event->lane);
    record["pid"] = PidOf(*event);
    record["tid"] = static_cast<std::uint64_t>(event->lane);
    record["ts"] = event->ts.count();
    switch (event->phase) {
      case TraceEvent::Phase::kComplete:
        record["ph"] = "X";
        record["dur"] = event->dur.count();
        break;
      case TraceEvent::Phase::kInstant:
        record["ph"] = "i";
        record["s"] = "t";  // instant scope: thread
        break;
      case TraceEvent::Phase::kCounter:
        record["ph"] = "C";
        break;
    }
    if (event->phase == TraceEvent::Phase::kCounter) {
      Json args{Json::Object{}};
      args["value"] = event->value;
      record["args"] = std::move(args);
    } else if (!event->args.empty()) {
      record["args"] = ArgsToJson(event->args);
    }
    trace_events.push_back(std::move(record));
  }

  Json root{Json::Object{}};
  root["displayTimeUnit"] = "ms";
  root["traceEvents"] = Json{std::move(trace_events)};
  return root;
}

std::string Tracer::DumpChromeTrace(int indent) const {
  return ToChromeTraceJson().Dump(indent) + "\n";
}

void Tracer::WriteChromeTrace(std::ostream& out) const {
  out << DumpChromeTrace();
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    ACCENT_LOG(kError) << "cannot open trace output file " << path;
    return false;
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out) {
    ACCENT_LOG(kError) << "failed writing trace output file " << path;
    return false;
  }
  return true;
}

}  // namespace accent
