#include "src/host/cpu.h"

#include <algorithm>
#include <utility>

namespace accent {

const char* CpuWorkName(CpuWork work) {
  switch (work) {
    case CpuWork::kProcess: return "process";
    case CpuWork::kKernel: return "kernel";
    case CpuWork::kPager: return "pager";
    case CpuWork::kNetMsgServer: return "netmsg";
    case CpuWork::kMigration: return "migration";
    case CpuWork::kCategoryCount: break;
  }
  return "?";
}

void Cpu::Submit(CpuWork category, SimDuration work, std::function<void()> done,
                 CpuPriority priority) {
  ACCENT_EXPECTS(work >= SimDuration::zero());
  work = ScaleCpu(work, speed_multiplier_);
  Item item{category, work, std::move(done)};
  backlog_ += work;
  if (priority == CpuPriority::kHigh) {
    high_.push_back(std::move(item));
  } else {
    normal_.push_back(std::move(item));
  }
  if (!running_) {
    StartNext();
  }
}

void Cpu::StartNext() {
  std::deque<Item>* lane = !high_.empty() ? &high_ : (!normal_.empty() ? &normal_ : nullptr);
  if (lane == nullptr) {
    running_ = false;
    return;
  }
  running_ = true;
  Item item = std::move(lane->front());
  lane->pop_front();

  backlog_ -= item.work;
  busy_[static_cast<std::size_t>(item.category)] += item.work;
  current_ends_ = sim_.Now() + item.work;
  sim_.ScheduleAt(current_ends_, [this, done = std::move(item.done)]() {
    if (done != nullptr) {
      done();
    }
    StartNext();
  });
}

SimDuration Cpu::TotalBusyTime() const {
  SimDuration total{0};
  for (SimDuration d : busy_) {
    total += d;
  }
  return total;
}

SimTime Cpu::available_at() const {
  if (!running_) {
    return sim_.Now();
  }
  return current_ends_ + backlog_;
}

void Cpu::ResetAccounting() { busy_.fill(SimDuration::zero()); }

}  // namespace accent
