// Calibrated cost table for the simulated Accent/Perq testbed.
//
// Every constant is fitted against a measurement the paper publishes
// (provenance in the comment). The evaluation's *shape* — who wins, by what
// factor, where the crossover falls — is what these constants must preserve;
// absolute times are testbed artefacts of 1987 Perq hardware.
//
// Anchor measurements from the paper:
//   - 512-byte pages (section 2.1).
//   - Local disk fault service: 40.8 ms; remote imaginary fault: 115 ms
//     (section 4.3.3).
//   - Core context message transfer: ~1 s in all cases (section 4.3.2).
//   - Pure-IOU RIMAS transfer: 0.15-0.21 s (Table 4-5).
//   - Pure-copy bulk throughput ~15 KB/s end to end (Table 4-5: e.g.
//     Minprog 142 KB in 8.5 s, Lisp-T 2.2 MB in 157 s) — dominated by
//     NetMsgServer per-byte handling on both Perqs, not by the 10 Mbit wire.
//   - Excision/insertion timings (Table 4-4, section 4.3.1).
#ifndef SRC_HOST_COSTS_H_
#define SRC_HOST_COSTS_H_

#include "src/base/types.h"

namespace accent {

struct CostTable {
  // --- Virtual memory / pager -------------------------------------------
  // FillZero fault: reserve a frame, zero it, map it. Never touches disk.
  SimDuration pager_fillzero_fault = Ms(8);
  // CPU part of a disk fault (lookup, mapping); the disk adds its latency.
  // 15 ms + 25.8 ms disk read ≈ the paper's 40.8 ms local fault.
  SimDuration pager_disk_fault_cpu = Ms(15);
  // CPU part of an imaginary fault at the faulting site (request
  // construction, reply mapping). The rest of the paper's 115 ms emerges
  // from IPC + NetMsgServer + wire costs.
  SimDuration pager_imag_fault_cpu = Ms(35);
  // Mapping one additional (e.g. prefetched) page into a process map.
  SimDuration pager_map_extra_page = Us(400);
  // Work a backing process does to interpret an Imaginary Read Request and
  // assemble the reply. Part of the paper's 115 ms remote-fault budget.
  SimDuration backer_service = Ms(8);
  // A resident page access (TLB/map hit); executed by the microengine.
  SimDuration resident_access = Us(2);
  // Copy-on-write fault: copy one 512-byte page and remap.
  SimDuration cow_fault = Ms(6);

  // --- Disk ---------------------------------------------------------------
  SimDuration disk_page_read = Us(25800);
  SimDuration disk_page_write = Us(25800);

  // --- Kernel IPC ---------------------------------------------------------
  // Messages at or below the threshold are physically copied twice
  // (sender->kernel->receiver); larger ones are remapped copy-on-write
  // (section 2.1).
  ByteCount ipc_copy_threshold = 2048;
  SimDuration ipc_send_fixed = Us(700);
  SimDuration ipc_receive_fixed = Us(500);
  SimDuration ipc_copy_per_byte = Us(2);  // covers both copies
  SimDuration ipc_map_region = Us(350);  // per out-of-line region remap

  // --- NetMsgServer (user-level network IPC extension) --------------------
  // Per-message handling on one node. Two nodes handle every message.
  SimDuration netmsg_per_message = Ms(2);
  // Per-byte handling (checksums, fragment copies, protocol) on one node.
  // 2 x 33 us/byte = 66 us/byte end to end => ~15 KB/s pure-copy bulk
  // throughput including fragment overheads: matches Table 4-5 (e.g.
  // Lisp-T 2.2 MB in ~150 s, Minprog 142 KB in ~9 s).
  SimDuration netmsg_per_byte = Us(33);
  // Per-fragment handling on one node, on top of the per-message cost.
  SimDuration netmsg_per_fragment = Ms(1);
  // Fragment payload size used for large message reassembly.
  ByteCount netmsg_fragment_bytes = 16 * 1024;

  // --- NetMsgServer reliable transport (lossy-wire experiments only) ------
  // These knobs are inert unless a NetMsgServer is switched into reliable
  // mode (fault-injection testbeds); the lossless paper runs never consult
  // them. Retransmission backoff doubles from rto_initial, capped at
  // rto_max; after max_retries unacknowledged sends the transfer is
  // declared dead and handed to the dead-letter path.
  SimDuration netmsg_rto_initial = Ms(250);
  SimDuration netmsg_rto_max = Sec(4.0);
  std::uint32_t netmsg_max_retries = 10;
  ByteCount netmsg_ack_bytes = 16;

  // --- Network wire (10 Mbit Ethernet) -------------------------------------
  SimDuration wire_latency = Ms(4);
  double wire_bytes_per_sec = 1.25e6 * 0.8;  // 10 Mbit minus framing.

  // --- Excision / insertion (Table 4-4) ------------------------------------
  // AMap construction: process-map walk + system table searches.
  SimDuration amap_base = Ms(300);
  SimDuration amap_per_map_entry = Us(2000);
  SimDuration amap_per_real_page = Us(65);
  // RIMAS collapse: remapping resident pages + map entries into one chunk.
  SimDuration rimas_base = Ms(200);
  SimDuration rimas_per_map_entry = Us(150);
  SimDuration rimas_per_resident_page = Us(933);
  // Excision work outside those two (port-right extraction, PCB, microstate).
  SimDuration excise_other = Ms(90);
  // Resident-set packaging: partitioning the RIMAS walks the whole
  // validated map, including untouched zero-fill expanses (Lisp validates
  // its entire 4 GB heap at birth) — per megabyte of RealZero memory.
  // Zero by default so the headline sweep is untouched; the calibrated
  // Table 4-5 resident-set column sets it (~3 ms/MB lands Lisp at the
  // paper's 25.8 s).
  SimDuration rs_zero_scan_per_mb = SimDuration{0};
  // Insertion: address-space reconstruction dominates. Fitted to §4.3.1:
  // 263 ms (Minprog) .. 853 ms (Lisp-Del), a 3.3x spread.
  SimDuration insert_base = Ms(200);
  SimDuration insert_per_map_entry = Us(135);
  SimDuration insert_per_resident_page = Us(135);

  // --- Pre-copy migration (strategy 4; docs/INTERNALS.md section 13) --------
  // Extra trap taken when a write hits a clean, resident page while dirty
  // tracking is armed (write-protect fault to set the bitmap bit, like a
  // lightweight COW break). Only charged between pre-copy rounds; legacy
  // strategies never arm tracking, so their timings are untouched.
  SimDuration precopy_write_fault = Us(300);
  // Manager handling per pre-copy round (dirty-bitmap harvest, run
  // construction, ack bookkeeping) on top of the per-byte wire costs.
  SimDuration precopy_round_control = Ms(40);

  // --- Migration control ----------------------------------------------------
  // MigrationManager handling + kernel traps around the Core message; the
  // paper reports ~1 s for Core transfer in all cases.
  SimDuration migration_control = Ms(550);
  // Manager handling of the RIMAS message itself (descriptor preparation,
  // strategy bookkeeping): the floor of Table 4-5's ~0.16 s IOU transfers.
  SimDuration migration_rimas_handling = Ms(110);

  // --- Failure handling (lossy-wire experiments only) -----------------------
  // Like the reliable-transport knobs these are consulted only when a
  // testbed enables fault injection. A source manager that has not seen
  // kMigrateComplete after migration_abort_timeout rolls the process back;
  // a destination holding half a context (core XOR rimas) for
  // migration_pending_timeout tears the pending insert down; a pager
  // fetch unanswered after pager_fetch_timeout fails the access (terminal
  // IOU fault — the owed memory is unrecoverable).
  SimDuration migration_abort_timeout = Sec(600.0);
  SimDuration migration_pending_timeout = Sec(300.0);
  SimDuration pager_fetch_timeout = Sec(120.0);

  // --- Scheduling policy ------------------------------------------------------
  // Service imaginary-fault traffic (requests, replies, their kernel and
  // backer stages) on the CPU's high-priority lane so it overtakes queued
  // bulk-transfer work between items. The measured 1987 system had no such
  // lane; bench/ablation_priority quantifies what it would have bought.
  bool fault_priority_lane = false;

  // --- Context sizes ---------------------------------------------------------
  // Microstate + kernel stack + PCB + port rights: "roughly 1 Kbyte".
  ByteCount core_context_bytes = 1024;
  // Serialized AMap entry and imaginary-IOU descriptor sizes in messages.
  ByteCount amap_entry_bytes = 16;
  ByteCount iou_descriptor_bytes = 32;
  // Page fetch protocol overheads.
  ByteCount fault_request_bytes = 24;
  ByteCount fault_reply_header_bytes = 16;

  // --- Content-addressed page service (docs/INTERNALS.md section 15) -------
  // Inert unless a testbed enables the content cache; the classic fault
  // path never consults them, so legacy byte counts are untouched.
  // One 128-bit content hash riding a RIMAS IOU region or a hash-probe
  // request, per page.
  ByteCount page_hash_bytes = 16;
  // A confirm ack: the origin's liveness + hash-match answer that replaces
  // a payload page on a local cache hit (request_id echo + verdict).
  ByteCount cache_confirm_bytes = 24;
  // CPU to look a hash up in a host's ContentCache (hash compare + LRU
  // touch); charged on the probing pager and on a holder serving a pull.
  SimDuration cache_lookup_cpu = Us(250);
};

// The default table models the paper's Perq testbed.
inline const CostTable& PerqCosts() {
  static const CostTable table{};
  return table;
}

}  // namespace accent

#endif  // SRC_HOST_COSTS_H_
