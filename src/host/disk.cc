#include "src/host/disk.h"

#include <algorithm>
#include <utility>

namespace accent {

void Disk::Submit(SimDuration duration, std::function<void()> done) {
  ACCENT_EXPECTS(duration >= SimDuration::zero());
  const SimTime start = std::max(sim_.Now(), busy_until_);
  busy_until_ = start + duration;
  busy_ += duration;
  if (done != nullptr) {
    sim_.ScheduleAt(busy_until_, std::move(done));
  }
}

}  // namespace accent
