// Physical page-frame pool of one host.
//
// Tracks which (address space, page) pairs are resident, in LRU order, with
// dirty bits. Under Accent physical memory doubles as a disk cache — a fact
// the paper leans on to explain why resident-set shipment drags along stale
// file pages (section 4.2.3) — so residency here is exactly what the
// resident-set migration strategy samples at migration time.
#ifndef SRC_HOST_PHYSICAL_MEMORY_H_
#define SRC_HOST_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t frame_count) : frame_count_(frame_count) {
    ACCENT_EXPECTS(frame_count > 0);
  }

  struct Eviction {
    SpaceId space;
    PageIndex page = 0;
    bool dirty = false;
  };

  // Makes (space, page) resident, most-recently-used. If the pool is full,
  // the least-recently-used frame is reclaimed and returned so the caller
  // can account a page-out for dirty victims. Inserting an already-resident
  // page just refreshes recency/dirtiness.
  std::optional<Eviction> Insert(SpaceId space, PageIndex page, bool dirty);

  bool Contains(SpaceId space, PageIndex page) const {
    return frames_.count(Key{space, page}) != 0;
  }

  // Moves the page to most-recently-used. Precondition: resident.
  void Touch(SpaceId space, PageIndex page);

  // Marks a resident page dirty. Precondition: resident.
  void MarkDirty(SpaceId space, PageIndex page);

  bool IsDirty(SpaceId space, PageIndex page) const;

  // Drops one page (no writeback accounting; caller decides).
  void Remove(SpaceId space, PageIndex page);

  // Drops every page of `space` (process excision or death). Returns the
  // pages dropped, in ascending page order.
  std::vector<PageIndex> RemoveSpace(SpaceId space);

  // Resident pages of `space` in ascending page order (the resident set).
  std::vector<PageIndex> PagesOf(SpaceId space) const;

  std::size_t ResidentCount(SpaceId space) const;
  std::size_t used_frames() const { return frames_.size(); }
  std::size_t frame_count() const { return frame_count_; }

 private:
  struct Key {
    SpaceId space;
    PageIndex page;
    bool operator==(const Key& o) const { return space == o.space && page == o.page; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(k.space.value * 0x9e3779b97f4a7c15ull ^ k.page);
    }
  };
  struct Frame {
    std::list<Key>::iterator lru_pos;
    bool dirty = false;
  };

  std::size_t frame_count_;
  std::list<Key> lru_;  // front = most recent, back = victim
  std::unordered_map<Key, Frame, KeyHash> frames_;
};

}  // namespace accent

#endif  // SRC_HOST_PHYSICAL_MEMORY_H_
