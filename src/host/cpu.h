// Single-core CPU model with two non-preemptive priority lanes.
//
// Every CPU-consuming activity on a host — a user process executing, the
// pager servicing a fault, the NetMsgServer fragmenting a message — submits
// work items here. Items run to completion (a Perq has one processor and no
// preemption in this model); between items, the high lane drains before the
// normal lane, and each lane is FCFS. With everything submitted at normal
// priority (the default, matching the measured 1987 system) the schedule is
// plain FCFS.
//
// Busy time is attributed to cost categories; the paper's "message-handling
// cost" metric (Figure 4-4) is exactly the NetMsgServer category's busy
// time summed over both nodes.
#ifndef SRC_HOST_CPU_H_
#define SRC_HOST_CPU_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/sim/simulator.h"

namespace accent {

enum class CpuWork : int {
  kProcess = 0,        // user process instruction execution
  kKernel = 1,         // kernel traps, IPC, fault short paths
  kPager = 2,          // Pager/Scheduler fault service
  kNetMsgServer = 3,   // network message server handling
  kMigration = 4,      // MigrationManager + excise/insert
  kCategoryCount = 5,
};

const char* CpuWorkName(CpuWork work);

enum class CpuPriority : int {
  kNormal = 0,
  kHigh = 1,  // drains before kNormal between items (never preempts)
};

class Cpu {
 public:
  Cpu(Simulator* sim, HostId host) : sim_(*sim), host_(host) { ACCENT_EXPECTS(sim != nullptr); }

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Charges `work` of CPU time under `category`, then invokes `done`. On a
  // calibrated host the charge is work / speed_multiplier (a 2x CPU clears
  // the same work in half the simulated time); 1.0 — the default — charges
  // `work` exactly.
  void Submit(CpuWork category, SimDuration work, std::function<void()> done,
              CpuPriority priority = CpuPriority::kNormal);

  // Per-host CPU calibration (HostCalibration::cpu_multiplier). Set once at
  // testbed assembly, before any work is submitted.
  void set_speed_multiplier(double multiplier) {
    ACCENT_EXPECTS(multiplier > 0.0);
    speed_multiplier_ = multiplier;
  }
  double speed_multiplier() const { return speed_multiplier_; }

  // Cumulative busy time attributed to `category`.
  SimDuration BusyTime(CpuWork category) const {
    return busy_[static_cast<std::size_t>(category)];
  }
  SimDuration TotalBusyTime() const;

  // Earliest simulated time new normal-priority work could start if
  // submitted now (the queueing backlog).
  SimTime available_at() const;
  HostId host() const { return host_; }

  std::size_t queued_items() const { return high_.size() + normal_.size(); }

  void ResetAccounting();

 private:
  struct Item {
    CpuWork category;
    SimDuration work;
    std::function<void()> done;
  };

  void StartNext();

  Simulator& sim_;
  HostId host_;
  double speed_multiplier_ = 1.0;
  std::deque<Item> high_;
  std::deque<Item> normal_;
  bool running_ = false;
  SimTime current_ends_{0};
  SimDuration backlog_{0};  // queued work not yet started
  std::array<SimDuration, static_cast<std::size_t>(CpuWork::kCategoryCount)> busy_{};
};

}  // namespace accent

#endif  // SRC_HOST_CPU_H_
