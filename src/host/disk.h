// Local disk timing model.
//
// Accent pages its 512-byte pages to a local Micropolis winchester; the
// paper's anchor is a 40.8 ms end-to-end local fault, of which the disk
// contributes the transfer+seek portion. Requests queue FCFS on the single
// spindle. The Disk models *timing only*: page contents live in segment
// stores (src/vm) — a deliberate split so that data integrity and timing can
// be tested independently.
#ifndef SRC_HOST_DISK_H_
#define SRC_HOST_DISK_H_

#include <cstdint>
#include <functional>

#include "src/base/types.h"
#include "src/host/costs.h"
#include "src/sim/simulator.h"

namespace accent {

class Disk {
 public:
  Disk(Simulator* sim, const CostTable* costs) : sim_(*sim), costs_(*costs) {
    ACCENT_EXPECTS(sim != nullptr && costs != nullptr);
  }

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Reads `pages` consecutive pages; `done` runs when the transfer finishes.
  void Read(std::uint64_t pages, std::function<void()> done) {
    reads_ += pages;
    Submit(costs_.disk_page_read * static_cast<std::int64_t>(pages), std::move(done));
  }

  // Writes `pages` pages (used for page-out of dirty imaginary data).
  void Write(std::uint64_t pages, std::function<void()> done) {
    writes_ += pages;
    Submit(costs_.disk_page_write * static_cast<std::int64_t>(pages), std::move(done));
  }

  std::uint64_t reads_completed() const { return reads_; }
  std::uint64_t writes_completed() const { return writes_; }
  SimDuration busy_time() const { return busy_; }

 private:
  void Submit(SimDuration duration, std::function<void()> done);

  Simulator& sim_;
  const CostTable& costs_;
  SimTime busy_until_{0};
  SimDuration busy_{0};
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace accent

#endif  // SRC_HOST_DISK_H_
