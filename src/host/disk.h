// Local disk timing model.
//
// Accent pages its 512-byte pages to a local Micropolis winchester; the
// paper's anchor is a 40.8 ms end-to-end local fault, of which the disk
// contributes the transfer+seek portion. Requests queue FCFS on the single
// spindle. The Disk models *timing only*: page contents live in segment
// stores (src/vm) — a deliberate split so that data integrity and timing can
// be tested independently.
#ifndef SRC_HOST_DISK_H_
#define SRC_HOST_DISK_H_

#include <cstdint>
#include <functional>

#include "src/base/types.h"
#include "src/host/costs.h"
#include "src/sim/simulator.h"

namespace accent {

class Disk {
 public:
  Disk(Simulator* sim, const CostTable* costs) : sim_(*sim), costs_(*costs) {
    ACCENT_EXPECTS(sim != nullptr && costs != nullptr);
  }

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Reads `pages` consecutive pages; `done` runs when the transfer finishes.
  void Read(std::uint64_t pages, std::function<void()> done) {
    reads_ += pages;
    Submit(RemotePenalty(pages) + costs_.disk_page_read * static_cast<std::int64_t>(pages),
           std::move(done));
  }

  // Writes `pages` pages (used for page-out of dirty imaginary data).
  void Write(std::uint64_t pages, std::function<void()> done) {
    writes_ += pages;
    Submit(RemotePenalty(pages) + costs_.disk_page_write * static_cast<std::int64_t>(pages),
           std::move(done));
  }

  // Diskless-host mode (HostCalibration::diskless): the "spindle" is a file
  // server across the wire, so every request additionally pays a network
  // round trip (`per_op`) plus `per_page` of page serialization. The queue
  // discipline is unchanged — a diskless Perq still issued one paging
  // request at a time. Never called on the homogeneous path.
  void ConfigureRemote(SimDuration per_op, SimDuration per_page) {
    ACCENT_EXPECTS(per_op >= SimDuration::zero() && per_page >= SimDuration::zero());
    remote_per_op_ = per_op;
    remote_per_page_ = per_page;
    remote_ = true;
  }
  bool remote() const { return remote_; }
  std::uint64_t remote_ops() const { return remote_ops_; }

  std::uint64_t reads_completed() const { return reads_; }
  std::uint64_t writes_completed() const { return writes_; }
  SimDuration busy_time() const { return busy_; }

 private:
  void Submit(SimDuration duration, std::function<void()> done);

  SimDuration RemotePenalty(std::uint64_t pages) {
    if (!remote_) {
      return SimDuration::zero();
    }
    ++remote_ops_;
    return remote_per_op_ + remote_per_page_ * static_cast<std::int64_t>(pages);
  }

  Simulator& sim_;
  const CostTable& costs_;
  SimTime busy_until_{0};
  SimDuration busy_{0};
  bool remote_ = false;
  SimDuration remote_per_op_{0};
  SimDuration remote_per_page_{0};
  std::uint64_t remote_ops_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace accent

#endif  // SRC_HOST_DISK_H_
