// Per-host cost calibration — heterogeneous fleets.
//
// The paper's testbed was itself heterogeneous: the CMU Perq pool mixed
// machine generations, link speeds and partly *diskless* workstations, yet
// §4's cost model is calibrated to one machine class. A HostCalibration
// expresses one host's deviation from the shared CostTable as a set of
// multipliers, so the homogeneous default (all 1.0, disk present) is
// *exactly* the calibrated two-Perq model — the golden sweep digest and
// every cached sweep stay byte-identical unless a trial opts in.
//
//   cpu_multiplier            > 1 = faster CPU: every CPU work item on the
//                             host (process slices, pager service, netmsg
//                             handling, excise/insert) finishes in
//                             work / multiplier of simulated time.
//   wire_latency_multiplier   scales the host's egress link propagation
//                             latency (per-link heterogeneity).
//   wire_bandwidth_multiplier scales the host's egress serialization
//                             bandwidth.
//   diskless                  the paper's diskless Perq: no local spindle.
//                             Local FileServer backing is forbidden
//                             (FileServer::Start CHECKs) and every paging
//                             operation pays a remote round trip to a file
//                             server host (Disk::ConfigureRemote).
#ifndef SRC_HOST_CALIBRATION_H_
#define SRC_HOST_CALIBRATION_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

struct HostCalibration {
  double cpu_multiplier = 1.0;
  double wire_latency_multiplier = 1.0;
  double wire_bandwidth_multiplier = 1.0;
  bool diskless = false;

  bool identity() const {
    return cpu_multiplier == 1.0 && wire_latency_multiplier == 1.0 &&
           wire_bandwidth_multiplier == 1.0 && !diskless;
  }

  void Validate() const {
    ACCENT_EXPECTS(cpu_multiplier > 0.0);
    ACCENT_EXPECTS(wire_latency_multiplier > 0.0);
    ACCENT_EXPECTS(wire_bandwidth_multiplier > 0.0);
  }
};

// Scales a CPU work duration by a speed multiplier. The 1.0 fast path is an
// exact identity (no float round trip), which is what keeps every
// homogeneous schedule bit-identical to the uncalibrated build.
inline SimDuration ScaleCpu(SimDuration work, double cpu_multiplier) {
  if (cpu_multiplier == 1.0) {
    return work;
  }
  return SimDuration(static_cast<std::int64_t>(
      std::llround(static_cast<double>(work.count()) / cpu_multiplier)));
}

// Scales a wire propagation latency; same exact-identity contract.
inline SimDuration ScaleLatency(SimDuration latency, double latency_multiplier) {
  if (latency_multiplier == 1.0) {
    return latency;
  }
  return SimDuration(static_cast<std::int64_t>(
      std::llround(static_cast<double>(latency.count()) * latency_multiplier)));
}

// The calibration of host `index` in a per-host vector; an empty (or short)
// vector means "homogeneous" and yields the identity calibration.
inline HostCalibration CalibrationOf(const std::vector<HostCalibration>& calibrations,
                                     std::size_t index) {
  return index < calibrations.size() ? calibrations[index] : HostCalibration{};
}

// True when any entry deviates from the identity — the gate every layer
// uses to keep the homogeneous code path (and its results) untouched.
inline bool AnyCalibrated(const std::vector<HostCalibration>& calibrations) {
  for (const HostCalibration& calibration : calibrations) {
    if (!calibration.identity()) {
      return true;
    }
  }
  return false;
}

}  // namespace accent

#endif  // SRC_HOST_CALIBRATION_H_
