#include "src/host/physical_memory.h"

#include <algorithm>

namespace accent {

std::optional<PhysicalMemory::Eviction> PhysicalMemory::Insert(SpaceId space, PageIndex page,
                                                               bool dirty) {
  const Key key{space, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.dirty = it->second.dirty || dirty;
    return std::nullopt;
  }

  std::optional<Eviction> eviction;
  if (frames_.size() >= frame_count_) {
    const Key victim = lru_.back();
    auto victim_it = frames_.find(victim);
    ACCENT_CHECK(victim_it != frames_.end());
    eviction = Eviction{victim.space, victim.page, victim_it->second.dirty};
    lru_.pop_back();
    frames_.erase(victim_it);
  }

  lru_.push_front(key);
  frames_.emplace(key, Frame{lru_.begin(), dirty});
  return eviction;
}

void PhysicalMemory::Touch(SpaceId space, PageIndex page) {
  auto it = frames_.find(Key{space, page});
  ACCENT_EXPECTS(it != frames_.end()) << " touch of non-resident page " << page;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

void PhysicalMemory::MarkDirty(SpaceId space, PageIndex page) {
  auto it = frames_.find(Key{space, page});
  ACCENT_EXPECTS(it != frames_.end()) << " dirtying non-resident page " << page;
  it->second.dirty = true;
}

bool PhysicalMemory::IsDirty(SpaceId space, PageIndex page) const {
  auto it = frames_.find(Key{space, page});
  return it != frames_.end() && it->second.dirty;
}

void PhysicalMemory::Remove(SpaceId space, PageIndex page) {
  auto it = frames_.find(Key{space, page});
  if (it == frames_.end()) {
    return;
  }
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
}

std::vector<PageIndex> PhysicalMemory::RemoveSpace(SpaceId space) {
  std::vector<PageIndex> removed = PagesOf(space);
  for (PageIndex page : removed) {
    Remove(space, page);
  }
  return removed;
}

std::vector<PageIndex> PhysicalMemory::PagesOf(SpaceId space) const {
  std::vector<PageIndex> pages;
  for (const auto& [key, frame] : frames_) {
    if (key.space == space) {
      pages.push_back(key.page);
    }
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::size_t PhysicalMemory::ResidentCount(SpaceId space) const {
  std::size_t n = 0;
  for (const auto& [key, frame] : frames_) {
    if (key.space == space) {
      ++n;
    }
  }
  return n;
}

}  // namespace accent
