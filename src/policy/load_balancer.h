// Automatic migration policy — the future work of section 6.
//
// "The creation and evaluation of automatic migration strategies ... have
// not been addressed here. Good strategies are necessary to capitalize on
// the inherent advantages of lazy transfers. Part of this activity will
// involve the development of good load metrics which specifically take
// into account the fact that a process virtual address space may be
// physically dispersed among several computational hosts."
//
// LoadBalancerPolicy samples per-host load on a fixed period and, when the
// imbalance between the busiest and idlest host exceeds a threshold, moves
// a process from the former to the latter. Candidate selection uses the
// dispersal-aware metric the paper asks for: among the busiest host's
// runnable processes it prefers the one with the least *locally anchored*
// memory (resident frames plus locally-materialised RealMem) — the process
// that is cheapest to relocate under copy-on-reference, because most of
// its address space is either elsewhere already or will follow lazily.
#ifndef SRC_POLICY_LOAD_BALANCER_H_
#define SRC_POLICY_LOAD_BALANCER_H_

#include <cstdint>
#include <vector>

#include "src/host/calibration.h"
#include "src/migration/migration_manager.h"
#include "src/proc/host_env.h"
#include "src/sim/simulator.h"

namespace accent {

struct HostLoad {
  HostId host;
  int runnable = 0;              // processes able to consume CPU here
  SimDuration cpu_backlog{0};    // committed CPU work not yet executed
};

struct PolicyConfig {
  SimDuration sample_period = Sec(5.0);
  // Trigger when (busiest.runnable - idlest.runnable) >= this.
  int imbalance_threshold = 2;
  // Consecutive over-threshold samples to sit out before acting: 0 reacts
  // to the first imbalanced sample, 2 waits out imbalances shorter than
  // two periods. The streak resets whenever a sample is balanced (or a
  // migration fires), so sustained pressure is required each time.
  int hysteresis = 0;
  // Weight of resident frames in the dispersal-aware anchor metric
  // (LocalAnchorBytes = RealBytes + weight x resident bytes). 0 ranks
  // candidates purely by locally-materialised memory; larger values
  // increasingly avoid relocating processes with a hot working set.
  double dispersal_weight = 1.0;
  TransferStrategy strategy = TransferStrategy::kPureIou;
  // At most one migration per sample (avoids thrashing herds).
  bool one_migration_per_sample = true;
};

// Threshold + hysteresis trigger, factored out so the two-host testbed
// policy and the fleet-scale cluster coordinator share one set of firing
// semantics (and one set of tests). Feed each sample's spread; fire when
// pressure exceeds the threshold for more than `hysteresis` consecutive
// samples. The streak re-arms when a sample is balanced or when a
// migration actually fires — a fire-able verdict that finds no eligible
// candidate keeps the streak, because the pressure persists.
class ImbalanceGovernor {
 public:
  ImbalanceGovernor(int threshold, int hysteresis)
      : threshold_(threshold), hysteresis_(hysteresis) {
    ACCENT_EXPECTS(threshold >= 1);
    ACCENT_EXPECTS(hysteresis >= 0);
  }

  // Observes one sample's spread (busiest minus idlest load). Returns true
  // when a migration should fire now.
  bool Observe(int spread) {
    if (spread < threshold_) {
      streak_ = 0;  // pressure relieved: re-arm the hysteresis
      return false;
    }
    return ++streak_ > hysteresis_;
  }

  // Each migration must re-earn its hysteresis.
  void OnMigrationFired() { streak_ = 0; }

  int threshold() const { return threshold_; }
  int hysteresis() const { return hysteresis_; }
  int streak() const { return streak_; }

 private:
  int threshold_;
  int hysteresis_;
  int streak_ = 0;
};

// The dispersal-aware anchor metric on raw byte counts: locally-served
// RealMem plus the resident hot set scaled by `dispersal_weight`. Smaller
// means cheaper to relocate under copy-on-reference.
ByteCount AnchorBytes(ByteCount real_bytes, ByteCount resident_bytes,
                      double dispersal_weight);

class LoadBalancerPolicy {
 public:
  LoadBalancerPolicy(Simulator* sim, const PolicyConfig& config);

  // Registers a host (its env + manager). All hosts join before Start().
  // The calibrated overload teaches the policy this host's hardware: at
  // equal runnable load the faster-CPU host wins the destination tie, and a
  // diskless source is never left anchoring copy-on-reference backing (the
  // migration is degraded to pure-copy instead). Identity calibrations —
  // and the two-argument overload — reproduce the homogeneous decisions
  // exactly.
  void AddHost(HostEnv* env, MigrationManager* manager);
  void AddHost(HostEnv* env, MigrationManager* manager, const HostCalibration& calibration);

  // Begins periodic sampling; stops itself once every tracked process has
  // finished (or when Stop() is called).
  void Start();
  void Stop() { running_ = false; }

  // --- introspection -----------------------------------------------------
  std::vector<HostLoad> SampleLoads() const;
  std::uint64_t migrations_triggered() const { return migrations_triggered_; }
  std::uint64_t samples_taken() const { return samples_; }
  // Migrations whose strategy was degraded to pure-copy because the source
  // is diskless and must not anchor backing.
  std::uint64_t diskless_copy_forced() const { return diskless_copy_forced_; }

  // Dispersal-aware relocation cost of a process on its current host:
  // bytes of memory anchored locally (smaller = cheaper to move), with the
  // resident-frame term scaled by `dispersal_weight`.
  static ByteCount LocalAnchorBytes(const Process& process, double dispersal_weight = 1.0);

  // Picks the cheapest-to-move runnable process of `manager`'s host, or
  // null when none is eligible.
  static Process* PickCandidate(const MigrationManager& manager,
                                double dispersal_weight = 1.0);

 private:
  struct Node {
    HostEnv* env = nullptr;
    MigrationManager* manager = nullptr;
    HostCalibration calibration{};
  };

  void ScheduleNextSample();
  void Sample();
  bool AnyRunnable() const;

  Simulator& sim_;
  PolicyConfig config_;
  std::vector<Node> nodes_;
  bool running_ = false;
  bool migration_in_flight_ = false;
  ImbalanceGovernor governor_;
  std::uint64_t migrations_triggered_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t diskless_copy_forced_ = 0;
};

}  // namespace accent

#endif  // SRC_POLICY_LOAD_BALANCER_H_
