#include "src/policy/load_balancer.h"

#include <algorithm>

#include "src/base/logging.h"

namespace accent {

ByteCount AnchorBytes(ByteCount real_bytes, ByteCount resident_bytes,
                      double dispersal_weight) {
  return real_bytes +
         static_cast<ByteCount>(dispersal_weight * static_cast<double>(resident_bytes));
}

LoadBalancerPolicy::LoadBalancerPolicy(Simulator* sim, const PolicyConfig& config)
    : sim_(*sim),
      config_(config),
      governor_(config.imbalance_threshold, config.hysteresis) {
  ACCENT_EXPECTS(sim != nullptr);
  ACCENT_EXPECTS(config.sample_period > SimDuration::zero());
  ACCENT_EXPECTS(config.dispersal_weight >= 0.0);
}

void LoadBalancerPolicy::AddHost(HostEnv* env, MigrationManager* manager) {
  AddHost(env, manager, HostCalibration{});
}

void LoadBalancerPolicy::AddHost(HostEnv* env, MigrationManager* manager,
                                 const HostCalibration& calibration) {
  ACCENT_EXPECTS(env != nullptr && manager != nullptr);
  ACCENT_EXPECTS(!running_) << " hosts must join before Start()";
  calibration.Validate();
  nodes_.push_back(Node{env, manager, calibration});
}

void LoadBalancerPolicy::Start() {
  ACCENT_EXPECTS(nodes_.size() >= 2) << " balancing needs at least two hosts";
  running_ = true;
  ScheduleNextSample();
}

void LoadBalancerPolicy::ScheduleNextSample() {
  sim_.ScheduleAfter(config_.sample_period, [this]() {
    if (!running_) {
      return;
    }
    Sample();
    if (AnyRunnable()) {
      ScheduleNextSample();
    } else {
      running_ = false;  // all work drained: stop so the simulation can end
    }
  });
}

bool LoadBalancerPolicy::AnyRunnable() const {
  for (const Node& node : nodes_) {
    if (!node.manager->RunnableLocalProcesses().empty()) {
      return true;
    }
  }
  return migration_in_flight_;
}

std::vector<HostLoad> LoadBalancerPolicy::SampleLoads() const {
  std::vector<HostLoad> loads;
  loads.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    HostLoad load;
    load.host = node.env->id;
    load.runnable = static_cast<int>(node.manager->RunnableLocalProcesses().size());
    const SimTime available = node.env->cpu->available_at();
    load.cpu_backlog = available > sim_.Now() ? available - sim_.Now() : SimDuration::zero();
    loads.push_back(load);
  }
  return loads;
}

ByteCount LoadBalancerPolicy::LocalAnchorBytes(const Process& process,
                                               double dispersal_weight) {
  const AddressSpace& space = *process.space();
  // RealMem is served locally (memory or disk); ImagMem is owed elsewhere
  // and moves for free. Resident frames are the hot set that pure-IOU would
  // re-fault remotely; dispersal_weight sets how heavily they count on top
  // of their RealMem contribution (1.0 = double, the historical default).
  const ByteCount resident =
      process.env()->memory->ResidentCount(space.id()) * kPageSize;
  return AnchorBytes(space.RealBytes(), resident, dispersal_weight);
}

Process* LoadBalancerPolicy::PickCandidate(const MigrationManager& manager,
                                           double dispersal_weight) {
  Process* best = nullptr;
  ByteCount best_anchor = 0;
  for (Process* proc : manager.RunnableLocalProcesses()) {
    const ByteCount anchor = LocalAnchorBytes(*proc, dispersal_weight);
    if (best == nullptr || anchor < best_anchor) {
      best = proc;
      best_anchor = anchor;
    }
  }
  return best;
}

void LoadBalancerPolicy::Sample() {
  ++samples_;
  if (migration_in_flight_ && config_.one_migration_per_sample) {
    return;
  }
  // loads[i] describes nodes_[i] (SampleLoads walks nodes_ in order).
  // First index wins ties on runnable — matching the historical
  // max_element/min_element behaviour exactly — except that at equal
  // runnable load a strictly faster-CPU host takes the destination slot
  // (a no-op when every calibration is identity).
  std::vector<HostLoad> loads = SampleLoads();
  std::size_t busiest = 0;
  std::size_t idlest = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (loads[i].runnable > loads[busiest].runnable) {
      busiest = i;
    }
    if (loads[i].runnable < loads[idlest].runnable ||
        (loads[i].runnable == loads[idlest].runnable &&
         nodes_[i].calibration.cpu_multiplier >
             nodes_[idlest].calibration.cpu_multiplier)) {
      idlest = i;
    }
  }
  if (!governor_.Observe(loads[busiest].runnable - loads[idlest].runnable)) {
    return;  // balanced, or a transient imbalance still inside hysteresis
  }

  Node* source = &nodes_[busiest];
  Node* target = &nodes_[idlest];

  Process* candidate = PickCandidate(*source->manager, config_.dispersal_weight);
  if (candidate == nullptr) {
    return;
  }
  // A diskless source cannot anchor copy-on-reference backing: pages owed
  // by an IOU would have no local store to be served from. Ship everything.
  // Pre-copy already ships everything physically (rounds + final flash) and
  // leaves no debt, so it runs unchanged from a diskless source.
  TransferStrategy strategy = config_.strategy;
  if (source->calibration.diskless && (strategy == TransferStrategy::kPureIou ||
                                       strategy == TransferStrategy::kResidentSet)) {
    strategy = TransferStrategy::kPureCopy;
    ++diskless_copy_forced_;
  }
  ACCENT_LOG(kInfo) << "policy: moving " << candidate->name() << " from " << source->env->id
                    << " to " << target->env->id;
  ++migrations_triggered_;
  migration_in_flight_ = true;
  governor_.OnMigrationFired();
  source->manager->Migrate(candidate, target->manager->port(), strategy,
                           [this](const MigrationRecord&) { migration_in_flight_ = false; });
}

}  // namespace accent
