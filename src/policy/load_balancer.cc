#include "src/policy/load_balancer.h"

#include <algorithm>

#include "src/base/logging.h"

namespace accent {

ByteCount AnchorBytes(ByteCount real_bytes, ByteCount resident_bytes,
                      double dispersal_weight) {
  return real_bytes +
         static_cast<ByteCount>(dispersal_weight * static_cast<double>(resident_bytes));
}

LoadBalancerPolicy::LoadBalancerPolicy(Simulator* sim, const PolicyConfig& config)
    : sim_(*sim),
      config_(config),
      governor_(config.imbalance_threshold, config.hysteresis) {
  ACCENT_EXPECTS(sim != nullptr);
  ACCENT_EXPECTS(config.sample_period > SimDuration::zero());
  ACCENT_EXPECTS(config.dispersal_weight >= 0.0);
}

void LoadBalancerPolicy::AddHost(HostEnv* env, MigrationManager* manager) {
  ACCENT_EXPECTS(env != nullptr && manager != nullptr);
  ACCENT_EXPECTS(!running_) << " hosts must join before Start()";
  nodes_.push_back(Node{env, manager});
}

void LoadBalancerPolicy::Start() {
  ACCENT_EXPECTS(nodes_.size() >= 2) << " balancing needs at least two hosts";
  running_ = true;
  ScheduleNextSample();
}

void LoadBalancerPolicy::ScheduleNextSample() {
  sim_.ScheduleAfter(config_.sample_period, [this]() {
    if (!running_) {
      return;
    }
    Sample();
    if (AnyRunnable()) {
      ScheduleNextSample();
    } else {
      running_ = false;  // all work drained: stop so the simulation can end
    }
  });
}

bool LoadBalancerPolicy::AnyRunnable() const {
  for (const Node& node : nodes_) {
    if (!node.manager->RunnableLocalProcesses().empty()) {
      return true;
    }
  }
  return migration_in_flight_;
}

std::vector<HostLoad> LoadBalancerPolicy::SampleLoads() const {
  std::vector<HostLoad> loads;
  loads.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    HostLoad load;
    load.host = node.env->id;
    load.runnable = static_cast<int>(node.manager->RunnableLocalProcesses().size());
    const SimTime available = node.env->cpu->available_at();
    load.cpu_backlog = available > sim_.Now() ? available - sim_.Now() : SimDuration::zero();
    loads.push_back(load);
  }
  return loads;
}

ByteCount LoadBalancerPolicy::LocalAnchorBytes(const Process& process,
                                               double dispersal_weight) {
  const AddressSpace& space = *process.space();
  // RealMem is served locally (memory or disk); ImagMem is owed elsewhere
  // and moves for free. Resident frames are the hot set that pure-IOU would
  // re-fault remotely; dispersal_weight sets how heavily they count on top
  // of their RealMem contribution (1.0 = double, the historical default).
  const ByteCount resident =
      process.env()->memory->ResidentCount(space.id()) * kPageSize;
  return AnchorBytes(space.RealBytes(), resident, dispersal_weight);
}

Process* LoadBalancerPolicy::PickCandidate(const MigrationManager& manager,
                                           double dispersal_weight) {
  Process* best = nullptr;
  ByteCount best_anchor = 0;
  for (Process* proc : manager.RunnableLocalProcesses()) {
    const ByteCount anchor = LocalAnchorBytes(*proc, dispersal_weight);
    if (best == nullptr || anchor < best_anchor) {
      best = proc;
      best_anchor = anchor;
    }
  }
  return best;
}

void LoadBalancerPolicy::Sample() {
  ++samples_;
  if (migration_in_flight_ && config_.one_migration_per_sample) {
    return;
  }
  std::vector<HostLoad> loads = SampleLoads();
  auto busiest = std::max_element(loads.begin(), loads.end(),
                                  [](const HostLoad& a, const HostLoad& b) {
                                    return a.runnable < b.runnable;
                                  });
  auto idlest = std::min_element(loads.begin(), loads.end(),
                                 [](const HostLoad& a, const HostLoad& b) {
                                   return a.runnable < b.runnable;
                                 });
  if (!governor_.Observe(busiest->runnable - idlest->runnable)) {
    return;  // balanced, or a transient imbalance still inside hysteresis
  }

  Node* source = nullptr;
  Node* target = nullptr;
  for (Node& node : nodes_) {
    if (node.env->id == busiest->host) {
      source = &node;
    }
    if (node.env->id == idlest->host) {
      target = &node;
    }
  }
  ACCENT_CHECK(source != nullptr && target != nullptr);

  Process* candidate = PickCandidate(*source->manager, config_.dispersal_weight);
  if (candidate == nullptr) {
    return;
  }
  ACCENT_LOG(kInfo) << "policy: moving " << candidate->name() << " from " << source->env->id
                    << " to " << target->env->id;
  ++migrations_triggered_;
  migration_in_flight_ = true;
  governor_.OnMigrationFired();
  source->manager->Migrate(candidate, target->manager->port(), config_.strategy,
                           [this](const MigrationRecord&) { migration_in_flight_ = false; });
}

}  // namespace accent
