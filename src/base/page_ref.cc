#include "src/base/page_ref.h"

#include <atomic>
#include <utility>

#include "src/base/check.h"

namespace accent {
namespace {

std::atomic<std::uint64_t> g_payload_allocs{0};
std::atomic<std::uint64_t> g_payload_frees{0};
std::atomic<std::uint64_t> g_page_bytes_copied{0};
std::atomic<std::uint64_t> g_payload_shares{0};
std::atomic<std::uint64_t> g_cow_breaks{0};
std::atomic<bool> g_legacy_deep_copy{false};

const PageData& EmptyPage() {
  static const PageData empty;
  return empty;
}

}  // namespace

// Every payload allocation routes through here so the matching release is
// counted by the deleter — allocs minus frees is the live-payload gauge the
// leak oracles read. A fresh payload always starts with a cold hash memo,
// including clones of an already-hashed payload (COW breaks change bytes).
std::shared_ptr<PageRef::Payload> PageRef::MakePayload(PageData bytes) {
  g_payload_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Payload>(new Payload(std::move(bytes)), [](Payload* payload) {
    g_payload_frees.fetch_add(1, std::memory_order_relaxed);
    delete payload;
  });
}

PageCounterSnapshot ReadPageCounters() {
  PageCounterSnapshot snap;
  snap.payload_allocs = g_payload_allocs.load(std::memory_order_relaxed);
  snap.payload_frees = g_payload_frees.load(std::memory_order_relaxed);
  snap.page_bytes_copied = g_page_bytes_copied.load(std::memory_order_relaxed);
  snap.payload_shares = g_payload_shares.load(std::memory_order_relaxed);
  snap.cow_breaks = g_cow_breaks.load(std::memory_order_relaxed);
  return snap;
}

void ResetPageCounters() {
  g_payload_allocs.store(0, std::memory_order_relaxed);
  g_payload_frees.store(0, std::memory_order_relaxed);
  g_page_bytes_copied.store(0, std::memory_order_relaxed);
  g_payload_shares.store(0, std::memory_order_relaxed);
  g_cow_breaks.store(0, std::memory_order_relaxed);
}

void SetLegacyDeepCopyMode(bool enabled) {
  g_legacy_deep_copy.store(enabled, std::memory_order_relaxed);
}

bool LegacyDeepCopyMode() {
  return g_legacy_deep_copy.load(std::memory_order_relaxed);
}

PageRef::PageRef(PageData bytes) {
  ACCENT_EXPECTS(bytes.empty() || bytes.size() == kPageSize);
  if (!bytes.empty()) {
    data_ = MakePayload(std::move(bytes));
  }
}

PageRef::PageRef(const PageRef& other) {
  if (other.data_ == nullptr) {
    return;  // zero page: nothing to share or copy
  }
  if (LegacyDeepCopyMode()) {
    data_ = MakePayload(other.data_->bytes);
    g_page_bytes_copied.fetch_add(kPageSize, std::memory_order_relaxed);
  } else {
    data_ = other.data_;
    g_payload_shares.fetch_add(1, std::memory_order_relaxed);
  }
}

PageRef& PageRef::operator=(const PageRef& other) {
  if (this != &other) {
    *this = PageRef(other);  // route through the counting copy constructor
  }
  return *this;
}

const PageData& PageRef::Bytes() const { return data_ ? data_->bytes : EmptyPage(); }

std::uint8_t PageRef::ByteAt(ByteCount offset) const {
  ACCENT_EXPECTS(offset < kPageSize);
  return data_ ? data_->bytes[offset] : 0;
}

void PageRef::WriteByte(ByteCount offset, std::uint8_t value) {
  ACCENT_EXPECTS(offset < kPageSize);
  if (data_ == nullptr) {
    if (value == 0) {
      return;  // zero write into the zero page: stay interned
    }
    data_ = MakePayload(PageData(kPageSize, std::uint8_t{0}));
  } else if (data_.use_count() > 1) {
    // Copy-on-write: another holder shares this payload, clone before the
    // first diverging write (the old data plane copied eagerly instead).
    data_ = MakePayload(data_->bytes);
    g_page_bytes_copied.fetch_add(kPageSize, std::memory_order_relaxed);
    g_cow_breaks.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Sole holder mutating in place: any memoized content hash is stale.
    data_->hash_ready.store(false, std::memory_order_relaxed);
  }
  data_->bytes[offset] = value;
}

PageHash PageRef::Hash() const {
  if (data_ == nullptr) {
    return ZeroPageHash();
  }
  PageHash hash;
  if (data_->hash_ready.load(std::memory_order_acquire)) {
    hash.lo = data_->hash_lo.load(std::memory_order_relaxed);
    hash.hi = data_->hash_hi.load(std::memory_order_relaxed);
    return hash;
  }
  hash = ComputePageHash(data_->bytes);
  data_->hash_lo.store(hash.lo, std::memory_order_relaxed);
  data_->hash_hi.store(hash.hi, std::memory_order_relaxed);
  data_->hash_ready.store(true, std::memory_order_release);
  return hash;
}

PageData PageRef::Clone() const {
  if (data_ == nullptr) {
    return PageData{};
  }
  g_page_bytes_copied.fetch_add(kPageSize, std::memory_order_relaxed);
  return data_->bytes;
}

}  // namespace accent
