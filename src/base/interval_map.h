// IntervalMap<V>: a sparse map from half-open address ranges [begin, end) to
// values, with automatic splitting and coalescing.
//
// This is the backbone of Accent's sparse 4 GB address spaces and of
// Accessibility Maps: validating gigabytes of zero-fill memory costs one map
// node, and accessibility queries over ranges walk only the mapped intervals.
//
// Invariants (checked in debug paths, relied upon everywhere):
//   - intervals are non-empty, pairwise disjoint, sorted by begin;
//   - no two adjacent intervals with equal values (they are coalesced).
#ifndef SRC_BASE_INTERVAL_MAP_H_
#define SRC_BASE_INTERVAL_MAP_H_

#include <map>
#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

template <typename V>
class IntervalMap {
 public:
  struct Interval {
    Addr begin = 0;
    Addr end = 0;
    V value{};

    ByteCount size() const { return end - begin; }
  };

  // Sets [begin, end) to `value`, overwriting any previous mappings there.
  void Assign(Addr begin, Addr end, V value) {
    ACCENT_EXPECTS(begin < end);
    SplitAt(begin);
    SplitAt(end);
    // Remove fully-covered intervals.
    auto it = map_.lower_bound(begin);
    while (it != map_.end() && it->first < end) {
      it = map_.erase(it);
    }
    map_.emplace(begin, Node{end, std::move(value)});
    CoalesceAround(begin);
    CoalesceAround(end);
  }

  // Removes all mappings intersecting [begin, end).
  void Erase(Addr begin, Addr end) {
    ACCENT_EXPECTS(begin < end);
    SplitAt(begin);
    SplitAt(end);
    auto it = map_.lower_bound(begin);
    while (it != map_.end() && it->first < end) {
      it = map_.erase(it);
    }
  }

  void Clear() { map_.clear(); }

  // Returns the value covering `addr`, or nullptr if unmapped.
  const V* Find(Addr addr) const {
    auto it = FindNode(addr);
    return it == map_.end() ? nullptr : &it->second.value;
  }

  V* FindMutable(Addr addr) {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return nullptr;
    }
    --it;
    return addr < it->second.end ? &it->second.value : nullptr;
  }

  // Returns the full interval covering `addr`, if any.
  std::optional<Interval> FindInterval(Addr addr) const {
    auto it = FindNode(addr);
    if (it == map_.end()) {
      return std::nullopt;
    }
    return Interval{it->first, it->second.end, it->second.value};
  }

  // Invokes fn(Interval) for every mapped interval intersecting
  // [begin, end), clipped to that window, in address order.
  template <typename Fn>
  void ForEachIn(Addr begin, Addr end, Fn fn) const {
    ACCENT_EXPECTS(begin <= end);
    auto it = map_.upper_bound(begin);
    if (it != map_.begin()) {
      --it;
      if (it->second.end <= begin) {
        ++it;
      }
    }
    for (; it != map_.end() && it->first < end; ++it) {
      Interval clipped{std::max(it->first, begin), std::min(it->second.end, end),
                       it->second.value};
      if (clipped.begin < clipped.end) {
        fn(clipped);
      }
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [begin, node] : map_) {
      fn(Interval{begin, node.end, node.value});
    }
  }

  // True if every byte of [begin, end) is mapped.
  bool Covers(Addr begin, Addr end) const {
    ACCENT_EXPECTS(begin <= end);
    Addr cursor = begin;
    bool gap = false;
    ForEachIn(begin, end, [&](const Interval& iv) {
      if (iv.begin != cursor) {
        gap = true;
      }
      cursor = iv.end;
    });
    return !gap && cursor == end;
  }

  bool empty() const { return map_.empty(); }
  std::size_t interval_count() const { return map_.size(); }

  // Sum of mapped interval lengths.
  ByteCount TotalBytes() const {
    ByteCount total = 0;
    for (const auto& [begin, node] : map_) {
      total += node.end - begin;
    }
    return total;
  }

 private:
  struct Node {
    Addr end;
    V value;
  };

  using MapType = std::map<Addr, Node>;

  typename MapType::const_iterator FindNode(Addr addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return map_.end();
    }
    --it;
    return addr < it->second.end ? it : map_.end();
  }

  // Ensures no interval spans `addr`: a crossing interval is split in two.
  void SplitAt(Addr addr) {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return;
    }
    --it;
    if (it->first < addr && addr < it->second.end) {
      Node right{it->second.end, it->second.value};
      it->second.end = addr;
      map_.emplace(addr, std::move(right));
    }
  }

  // Merges the interval ending/starting at `boundary` with its left
  // neighbour when values compare equal.
  void CoalesceAround(Addr boundary) {
    auto right = map_.lower_bound(boundary);
    if (right == map_.end() || right == map_.begin()) {
      return;
    }
    auto left = std::prev(right);
    if (left->second.end == right->first && left->second.value == right->second.value) {
      left->second.end = right->second.end;
      map_.erase(right);
    }
  }

  MapType map_;
};

}  // namespace accent

#endif  // SRC_BASE_INTERVAL_MAP_H_
