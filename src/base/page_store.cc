#include "src/base/page_store.h"

#include <algorithm>

#include "src/base/check.h"

namespace accent {

std::size_t PageStore::RunIndexFor(PageIndex page) const {
  auto it = std::upper_bound(runs_.begin(), runs_.end(), page,
                             [](PageIndex p, const Run& run) { return p < run.end(); });
  return static_cast<std::size_t>(it - runs_.begin());
}

const PageRef* PageStore::Find(PageIndex page) const {
  const std::size_t i = RunIndexFor(page);
  if (i == runs_.size() || runs_[i].first > page) {
    return nullptr;
  }
  return &runs_[i].pages[page - runs_[i].first];
}

PageRef* PageStore::FindMutable(PageIndex page) {
  return const_cast<PageRef*>(static_cast<const PageStore*>(this)->Find(page));
}

void PageStore::Store(PageIndex page, PageRef ref) {
  const std::size_t i = RunIndexFor(page);
  if (i < runs_.size() && runs_[i].first <= page) {
    runs_[i].pages[page - runs_[i].first] = std::move(ref);  // replace in place
    return;
  }
  ++size_;
  const bool extends_prev = i > 0 && runs_[i - 1].end() == page;
  const bool extends_next = i < runs_.size() && runs_[i].first == page + 1;
  if (extends_prev) {
    runs_[i - 1].pages.push_back(std::move(ref));
    if (extends_next) {  // the append bridged two runs: merge the next in
      Run& prev = runs_[i - 1];
      Run& next = runs_[i];
      prev.pages.insert(prev.pages.end(), std::make_move_iterator(next.pages.begin()),
                        std::make_move_iterator(next.pages.end()));
      runs_.erase(runs_.begin() + i);
    }
    return;
  }
  if (extends_next) {  // prepend
    Run& next = runs_[i];
    next.pages.insert(next.pages.begin(), std::move(ref));
    next.first = page;
    return;
  }
  runs_.insert(runs_.begin() + i, Run{page, {std::move(ref)}});
}

void PageStore::Erase(PageIndex page) {
  const std::size_t i = RunIndexFor(page);
  if (i == runs_.size() || runs_[i].first > page) {
    return;
  }
  Run& run = runs_[i];
  --size_;
  if (run.pages.size() == 1) {
    runs_.erase(runs_.begin() + i);
    return;
  }
  const std::size_t offset = page - run.first;
  if (offset == 0) {
    run.pages.erase(run.pages.begin());
    ++run.first;
    return;
  }
  if (offset == run.pages.size() - 1) {
    run.pages.pop_back();
    return;
  }
  // Interior erase: split into [first, page) and (page, end).
  Run tail;
  tail.first = page + 1;
  tail.pages.assign(std::make_move_iterator(run.pages.begin() + offset + 1),
                    std::make_move_iterator(run.pages.end()));
  run.pages.resize(offset);
  runs_.insert(runs_.begin() + i + 1, std::move(tail));
}

void PageStore::EraseRange(PageIndex first, PageIndex end) {
  if (first >= end) {
    return;
  }
  std::size_t i = RunIndexFor(first);
  while (i < runs_.size() && runs_[i].first < end) {
    Run& run = runs_[i];
    const PageIndex lo = std::max(first, run.first);
    const PageIndex hi = std::min<PageIndex>(end, run.end());
    ACCENT_CHECK(lo < hi);
    size_ -= hi - lo;
    if (lo == run.first && hi == run.end()) {
      runs_.erase(runs_.begin() + i);
      continue;  // same index now names the next run
    }
    if (lo == run.first) {  // trim the front
      run.pages.erase(run.pages.begin(), run.pages.begin() + (hi - run.first));
      run.first = hi;
      return;  // hi == end: nothing further can overlap
    }
    if (hi == run.end()) {  // trim the back
      run.pages.resize(lo - run.first);
      ++i;
      continue;
    }
    // Carve a hole in the middle: keep [first_, lo) and [hi, end_).
    Run tail;
    tail.first = hi;
    tail.pages.assign(std::make_move_iterator(run.pages.begin() + (hi - run.first)),
                      std::make_move_iterator(run.pages.end()));
    run.pages.resize(lo - run.first);
    runs_.insert(runs_.begin() + i + 1, std::move(tail));
    return;
  }
}

}  // namespace accent
