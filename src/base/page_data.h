// Page contents.
//
// The simulator moves *real* bytes so that tests can prove end-to-end data
// integrity under every migration strategy (a migrated process must read
// exactly what it wrote at the source). An empty PageData means "all
// zeros" — the common case for RealZeroMem — so validating gigabytes of
// zero-fill memory allocates nothing.
#ifndef SRC_BASE_PAGE_DATA_H_
#define SRC_BASE_PAGE_DATA_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

using PageData = std::vector<std::uint8_t>;  // empty == zero page, else kPageSize bytes

// Deterministic non-zero page contents derived from `seed`.
PageData MakePatternPage(std::uint64_t seed);

// Weak 64-bit FNV-1a over the page (zero pages hash as kPageSize zero
// bytes). This is an *integrity tripwire* — cheap corruption detection in
// tests and oracles — and must never be used as content identity: at 64
// bits of linear mixing it is trivially forgeable. Content identity is
// PageHash below; the distinct names keep the two apart at call sites.
std::uint64_t PageIntegrityChecksum(const PageData& page);

// Strong 128-bit content identity for the cluster page service. Two pages
// with equal hashes are treated as byte-identical across hosts, so the
// hash must be collision-resistant against the simulator's page universe
// (MakePatternPage streams + mutations); a murmur3-style mix per 64-bit
// lane gives full avalanche, unlike the integrity checksum above.
struct PageHash {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const PageHash& a, const PageHash& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const PageHash& a, const PageHash& b) { return !(a == b); }
  friend bool operator<(const PageHash& a, const PageHash& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// Hashes the page contents (zero pages hash as kPageSize zero bytes, so
// an empty PageData and a materialised all-zero page agree).
PageHash ComputePageHash(const PageData& page);

// The interned hash of the all-zero page: ComputePageHash({}) computed
// once per process.
const PageHash& ZeroPageHash();

// Byte at `offset` (zero pages read as 0). Precondition: offset < kPageSize.
std::uint8_t PageByteAt(const PageData& page, ByteCount offset);

// Writes `value` at `offset`, materialising a zero page if needed.
void PageWriteByte(PageData& page, ByteCount offset, std::uint8_t value);

inline bool IsZeroPage(const PageData& page) { return page.empty(); }

}  // namespace accent

#endif  // SRC_BASE_PAGE_DATA_H_
