// Page contents.
//
// The simulator moves *real* bytes so that tests can prove end-to-end data
// integrity under every migration strategy (a migrated process must read
// exactly what it wrote at the source). An empty PageData means "all
// zeros" — the common case for RealZeroMem — so validating gigabytes of
// zero-fill memory allocates nothing.
#ifndef SRC_BASE_PAGE_DATA_H_
#define SRC_BASE_PAGE_DATA_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/types.h"

namespace accent {

using PageData = std::vector<std::uint8_t>;  // empty == zero page, else kPageSize bytes

// Deterministic non-zero page contents derived from `seed`.
PageData MakePatternPage(std::uint64_t seed);

// FNV-1a over the page (zero pages hash as kPageSize zero bytes).
std::uint64_t PageChecksum(const PageData& page);

// Byte at `offset` (zero pages read as 0). Precondition: offset < kPageSize.
std::uint8_t PageByteAt(const PageData& page, ByteCount offset);

// Writes `value` at `offset`, materialising a zero page if needed.
void PageWriteByte(PageData& page, ByteCount offset, std::uint8_t value);

inline bool IsZeroPage(const PageData& page) { return page.empty(); }

}  // namespace accent

#endif  // SRC_BASE_PAGE_DATA_H_
