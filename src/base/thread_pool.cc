#include "src/base/thread_pool.h"

#include <atomic>
#include <utility>

#include "src/base/check.h"

namespace accent {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  ACCENT_EXPECTS(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ACCENT_CHECK(!shutting_down_) << " Submit() after shutdown began";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(int threads, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  ACCENT_EXPECTS(fn != nullptr);
  if (count == 0) {
    return;
  }
  if (threads > static_cast<int>(count)) {
    threads = static_cast<int>(count);
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  // Workers pull indices from a shared atomic cursor, so an expensive item
  // never serialises the cheap ones behind it (the trial grid mixes ~ms
  // Minprog runs with ~100x costlier Lisp pure-copy runs).
  std::atomic<std::size_t> next{0};
  ThreadPool pool(threads);
  for (int t = 0; t < threads; ++t) {
    pool.Submit([&next, count, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace accent
