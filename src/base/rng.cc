#include "src/base/rng.h"

namespace accent {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  ACCENT_EXPECTS(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v;
  do {
    v = Next();
  } while (v > limit);
  return v % bound;
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  ACCENT_EXPECTS(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork(std::uint64_t label) const {
  return Rng(seed_ ^ (label * 0x9e3779b97f4a7c15ull + 0x853c49e6748fea9bull));
}

}  // namespace accent
