// Refcounted immutable page payloads: the zero-copy data plane's currency.
//
// The paper's thesis is that copying bytes is the migration bottleneck; the
// simulator should not spend its own wall-clock proving the point. A PageRef
// is a shared, immutable page payload: moving one between a segment, an
// excise region, a Message, a NetMsgServer fragment and a retransmit queue
// bumps a refcount instead of duplicating 512 bytes. The zero page is
// interned process-wide (a null payload), so validating gigabytes of
// RealZeroMem allocates nothing — same contract as the old empty-PageData
// convention.
//
// Mutation is copy-on-write: WriteByte clones the payload only when it is
// actually shared, so a writer can never be observed by other holders. The
// use_count-based COW check is only race-free because payloads never cross
// trial boundaries (each trial owns a private Simulator and all its pages);
// the copy/alloc counters below are process-global relaxed atomics so
// parallel sweeps still aggregate correctly.
//
// Results invariant: every simulated cost in the system derives from sizes
// and counts, never from payload identity, so sharing versus copying cannot
// change a single simulated timing, byte count or checksum. The golden
// sweep digest (tests/golden_sweep_test.cc) enforces this.
#ifndef SRC_BASE_PAGE_REF_H_
#define SRC_BASE_PAGE_REF_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/page_data.h"
#include "src/base/types.h"

namespace accent {

// Process-global tallies of physical payload work (simulation-invisible;
// surfaced in BENCH_sim.json and docs/OBSERVABILITY.md). All relaxed
// atomics: exact per-thread attribution is not needed, totals are.
struct PageCounterSnapshot {
  std::uint64_t payload_allocs = 0;      // fresh kPageSize payload allocations
  std::uint64_t payload_frees = 0;       // payloads whose last holder released them
  std::uint64_t page_bytes_copied = 0;   // bytes duplicated payload-to-payload
  std::uint64_t payload_shares = 0;      // copies served by refcount bumps
  std::uint64_t cow_breaks = 0;          // writes that had to clone a shared page

  // Payloads still alive (held by some PageRef). With every simulation
  // object destroyed this must return to its pre-trial value — the fuzzer's
  // leak oracle.
  std::uint64_t live_payloads() const { return payload_allocs - payload_frees; }
};

// Snapshot of the counters accumulated since process start / last Reset.
PageCounterSnapshot ReadPageCounters();
void ResetPageCounters();

// Measurement aid: when enabled, copying a PageRef deep-clones the payload
// exactly where the pre-refactor data plane would have copied a PageData.
// This gives bench/micro_sim an in-binary baseline (same pattern as the
// LegacySim event loop): run a trial in legacy mode, reset counters, run it
// again sharing, and the counter delta is the copy traffic the refactor
// removed. Never enabled during normal runs or tests.
void SetLegacyDeepCopyMode(bool enabled);
bool LegacyDeepCopyMode();

class PageRef {
 public:
  // The zero page: no payload, reads as kPageSize zero bytes.
  PageRef() = default;

  // Takes ownership of `bytes` (implicit on purpose: existing call sites
  // hand prvalue PageData straight into the data plane without churn).
  // Empty bytes intern to the zero page.
  PageRef(PageData bytes);  // NOLINT(google-explicit-constructor)

  PageRef(const PageRef& other);
  PageRef& operator=(const PageRef& other);
  PageRef(PageRef&&) noexcept = default;
  PageRef& operator=(PageRef&&) noexcept = default;

  bool IsZero() const { return data_ == nullptr; }

  // Payload bytes; the zero page yields a shared empty vector, matching the
  // old "empty == all zeros" PageData convention byte-for-byte.
  const PageData& Bytes() const;

  std::uint8_t ByteAt(ByteCount offset) const;

  // Copy-on-write: clones the payload first if any other holder shares it.
  void WriteByte(ByteCount offset, std::uint8_t value);

  std::uint64_t IntegrityChecksum() const { return PageIntegrityChecksum(Bytes()); }

  // Strong 128-bit content identity (src/base/page_data.h), computed
  // lazily on first request and memoized on the payload — sharing a page
  // shares its memo, and code that never asks for a hash pays nothing, so
  // legacy timings are untouched. The zero page returns the interned
  // ZeroPageHash without ever materialising bytes. A sole-holder WriteByte
  // invalidates the memo; a COW break starts the clone's memo cold.
  PageHash Hash() const;

  // Materialises an owned deep copy (counted as copied bytes).
  PageData Clone() const;

  // Holders of this exact payload (0 for the zero page). Test/bench hook.
  long use_count() const { return data_ ? data_.use_count() : 0; }

  friend bool operator==(const PageRef& a, const PageRef& b) {
    // Same payload (or both the interned zero page) short-circuits; the
    // fallback is exact vector equality, identical to the old PageData
    // semantics (an empty page is not equal to a materialised all-zero one).
    return a.data_ == b.data_ || a.Bytes() == b.Bytes();
  }
  friend bool operator==(const PageRef& a, const PageData& b) {
    return a.Bytes() == b;
  }

 private:
  // A payload is the bytes plus the content-hash memo. The memo fields are
  // relaxed/acquire-release atomics so concurrent sweep threads hashing a
  // shared payload race benignly (both compute the same digest); hash_ready
  // publishes lo/hi with release ordering.
  struct Payload {
    explicit Payload(PageData b) : bytes(std::move(b)) {}
    PageData bytes;
    std::atomic<std::uint64_t> hash_lo{0};
    std::atomic<std::uint64_t> hash_hi{0};
    std::atomic<bool> hash_ready{false};
  };

  static std::shared_ptr<Payload> MakePayload(PageData bytes);

  std::shared_ptr<Payload> data_;  // null == interned zero page
};

// Drop-in overloads so page helpers accept either representation.
inline std::uint64_t PageIntegrityChecksum(const PageRef& page) {
  return page.IntegrityChecksum();
}
inline std::uint8_t PageByteAt(const PageRef& page, ByteCount offset) {
  return page.ByteAt(offset);
}
inline void PageWriteByte(PageRef& page, ByteCount offset, std::uint8_t value) {
  page.WriteByte(offset, value);
}
inline bool IsZeroPage(const PageRef& page) { return page.IsZero(); }

}  // namespace accent

#endif  // SRC_BASE_PAGE_REF_H_
