// Fundamental value types shared by every accent module.
//
// All identifiers are small integer handles scoped to one Simulation. Strong
// enum-class wrappers are deliberately avoided for ids that are used as map
// keys and printed constantly; instead each id gets its own named struct with
// explicit construction so ids of different kinds cannot be mixed silently.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>

namespace accent {

// A virtual address within a process address space. Accent gives every
// process a full 32-bit (4 GB) space; we use 64-bit arithmetic so that
// end-of-range computations (e.g. 4 GB exactly) never overflow.
using Addr = std::uint64_t;

// Sizes and offsets in bytes.
using ByteCount = std::uint64_t;

// Accent's virtual memory page: 512 bytes (see paper, section 2.1).
inline constexpr ByteCount kPageSize = 512;
inline constexpr Addr kAddressSpaceLimit = 4ull * 1024 * 1024 * 1024;  // 4 GB.

// Index of a page within an address space (addr / kPageSize).
using PageIndex = std::uint64_t;

constexpr PageIndex PageOf(Addr addr) { return addr / kPageSize; }
constexpr Addr PageBase(PageIndex page) { return page * kPageSize; }
constexpr Addr RoundDownToPage(Addr addr) { return addr & ~(kPageSize - 1); }
constexpr Addr RoundUpToPage(Addr addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

// Simulated time. A SimTime is a duration since simulation start.
using SimDuration = std::chrono::microseconds;
using SimTime = std::chrono::microseconds;

constexpr SimDuration Us(std::int64_t v) { return SimDuration(v); }
constexpr SimDuration Ms(std::int64_t v) { return SimDuration(v * 1000); }
constexpr SimDuration Sec(double v) {
  return SimDuration(static_cast<std::int64_t>(v * 1e6));
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d.count()) / 1e6;
}

// Generic strongly-typed id. Tag types below make each id kind distinct.
template <typename Tag>
struct Id {
  std::uint64_t value = 0;

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }
  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << Tag::kName << '#' << id.value;
  }
};

struct HostTag { static constexpr const char* kName = "host"; };
struct PortTag { static constexpr const char* kName = "port"; };
struct ProcTag { static constexpr const char* kName = "proc"; };
struct SegmentTag { static constexpr const char* kName = "seg"; };
struct MsgTag { static constexpr const char* kName = "msg"; };
struct SpaceTag { static constexpr const char* kName = "space"; };

using HostId = Id<HostTag>;
using PortId = Id<PortTag>;
using ProcId = Id<ProcTag>;
using SegmentId = Id<SegmentTag>;
using MsgId = Id<MsgTag>;
using SpaceId = Id<SpaceTag>;

}  // namespace accent

namespace std {
template <typename Tag>
struct hash<accent::Id<Tag>> {
  size_t operator()(accent::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>()(id.value);
  }
};
}  // namespace std

#endif  // SRC_BASE_TYPES_H_
