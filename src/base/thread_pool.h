// Fixed-size worker pool for fanning out independent jobs.
//
// Deliberately minimal: one shared FIFO guarded by a mutex, no work
// stealing. Sweep jobs (whole migration trials) run for milliseconds, so
// queue contention is irrelevant and a simple pool keeps the determinism
// story auditable: the pool never reorders results — callers index output
// slots by job id, so the same inputs produce the same outputs regardless
// of thread count or scheduling.
#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace accent {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  // Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

  // std::thread::hardware_concurrency() clamped to >= 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(i) for i in [0, count) across up to `threads` workers and returns
// once all iterations finished. Iterations must be independent. `threads`
// <= 1 (or count <= 1) degrades to a plain serial loop on the caller's
// thread, which keeps single-threaded runs free of any pool machinery.
void ParallelFor(int threads, std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace accent

#endif  // SRC_BASE_THREAD_POOL_H_
