// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (trace generation, page contents)
// flows through an Rng seeded from the trial configuration, so trials are
// reproducible bit-for-bit. The generator is xoshiro256** seeded via
// SplitMix64 — fast, high quality, and trivially portable.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"

namespace accent {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t Next();

  // Uniform over [0, bound). Precondition: bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform over [lo, hi]. Precondition: lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Derives an independent child generator; stable given the same label.
  Rng Fork(std::uint64_t label) const;

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

}  // namespace accent

#endif  // SRC_BASE_RNG_H_
