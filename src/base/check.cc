#include "src/base/check.h"

namespace accent {

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message) {
  std::fprintf(stderr, "ACCENT_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace accent
