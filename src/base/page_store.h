// Run-aware sparse page table.
//
// Segments and address spaces hold pages at mostly-contiguous indices
// (program images, validated Lisp heaps, migrated-in runs), yet the old
// std::map<PageIndex, PageData> paid a tree node, a pointer chase and an
// allocation per page. PageStore keeps sorted runs of contiguous pages —
// each run one header plus one dense vector of PageRefs — so lookup is a
// binary search over runs (few, typically one per mapped region) and
// storing the next contiguous page is an amortised O(1) append.
//
// Semantics match the maps it replaces: a stored zero PageRef is a present
// entry (AddressSpace keeps materialised-but-zero private pages), and the
// caller decides whether zero means erase (Segment stays sparse).
#ifndef SRC_BASE_PAGE_STORE_H_
#define SRC_BASE_PAGE_STORE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/base/page_ref.h"
#include "src/base/types.h"

namespace accent {

class PageStore {
 public:
  // Inserts or replaces the entry for `page`.
  void Store(PageIndex page, PageRef ref);

  // Removes the entry for `page` (no-op if absent), splitting its run.
  void Erase(PageIndex page);

  // Removes every entry in [first, end).
  void EraseRange(PageIndex first, PageIndex end);

  // Pointer to the stored entry, or nullptr if absent. Stable only until
  // the next mutation.
  const PageRef* Find(PageIndex page) const;
  PageRef* FindMutable(PageIndex page);

  bool Contains(PageIndex page) const { return Find(page) != nullptr; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t run_count() const { return runs_.size(); }
  void clear() {
    runs_.clear();
    size_ = 0;
  }

  // Visits entries in ascending page order: fn(PageIndex, const PageRef&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Run& run : runs_) {
      for (std::size_t i = 0; i < run.pages.size(); ++i) {
        fn(run.first + i, run.pages[i]);
      }
    }
  }

 private:
  struct Run {
    PageIndex first = 0;
    std::vector<PageRef> pages;  // pages [first, first + pages.size())

    PageIndex end() const { return first + pages.size(); }
  };

  // Index of the first run with run.end() > page (the only run that could
  // contain it); runs_.size() if none.
  std::size_t RunIndexFor(PageIndex page) const;

  std::vector<Run> runs_;  // sorted by first; disjoint; never empty or adjacent
  std::size_t size_ = 0;
};

}  // namespace accent

#endif  // SRC_BASE_PAGE_STORE_H_
