#include "src/base/logging.h"

#include <cstdio>

namespace accent {

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kTrace: tag = "T"; break;
    case LogLevel::kNone: return;
  }
  if (clock_) {
    std::fprintf(stderr, "[%s %10.6fs] %s\n", tag, ToSeconds(clock_()), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
  }
}

}  // namespace accent
