// Minimal leveled logging for the simulator.
//
// Logging is off by default (benchmarks must stay quiet); tests and examples
// can raise the level. Messages are prefixed with the simulated time when a
// clock source has been registered, which makes event traces readable.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/base/types.h"

namespace accent {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Registers a source for simulated-time prefixes (nullptr to clear).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  bool Enabled(LogLevel level) const { return level <= level_; }
  void Write(LogLevel level, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kNone;
  std::function<SimTime()> clock_;
};

namespace log_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Get().Write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace accent

#define ACCENT_LOG(level)                                  \
  if (!::accent::Logger::Get().Enabled(::accent::LogLevel::level)) { \
  } else                                                   \
    ::accent::log_internal::LogLine(::accent::LogLevel::level)

#endif  // SRC_BASE_LOGGING_H_
