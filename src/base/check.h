// Contract-checking macros (CppCoreGuidelines I.6/I.8 style Expects/Ensures).
//
// ACCENT_CHECK is always on: invariant violations in a simulator silently
// corrupt every downstream measurement, so we prefer a loud abort.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace accent {

[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

namespace check_internal {

// Collects an optional streamed message for a failing check.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessage() { CheckFailure(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace check_internal
}  // namespace accent

#define ACCENT_CHECK(cond)                                               \
  if (cond) {                                                            \
  } else /* NOLINT */                                                    \
    ::accent::check_internal::CheckMessage(__FILE__, __LINE__, #cond)

#define ACCENT_CHECK_LE(a, b) ACCENT_CHECK((a) <= (b)) << " lhs=" << (a) << " rhs=" << (b)
#define ACCENT_CHECK_LT(a, b) ACCENT_CHECK((a) < (b)) << " lhs=" << (a) << " rhs=" << (b)
#define ACCENT_CHECK_GE(a, b) ACCENT_CHECK((a) >= (b)) << " lhs=" << (a) << " rhs=" << (b)
#define ACCENT_CHECK_GT(a, b) ACCENT_CHECK((a) > (b)) << " lhs=" << (a) << " rhs=" << (b)
#define ACCENT_CHECK_EQ(a, b) ACCENT_CHECK((a) == (b)) << " lhs=" << (a) << " rhs=" << (b)
#define ACCENT_CHECK_NE(a, b) ACCENT_CHECK((a) != (b)) << " lhs=" << (a) << " rhs=" << (b)

// Expects/Ensures aliases to make contract intent explicit at call sites.
#define ACCENT_EXPECTS(cond) ACCENT_CHECK(cond) << " (precondition)"
#define ACCENT_ENSURES(cond) ACCENT_CHECK(cond) << " (postcondition)"

#endif  // SRC_BASE_CHECK_H_
