// Minimal JSON value, writer and parser.
//
// Exists so the experiment harness can persist TrialResults to disk without
// an external dependency. Scope is deliberately narrow: UTF-8 passthrough,
// no comments, objects keep sorted key order (std::map) so serialisation is
// canonical — equal values always produce byte-identical text, which lets
// cache files be compared and hashed.
//
// Numbers preserve integer exactness: unsigned and signed 64-bit integers
// round-trip bit-for-bit (they are not squeezed through a double), and
// doubles are emitted with max_digits10 precision.
#ifndef SRC_BASE_JSON_H_
#define SRC_BASE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace accent {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT
  Json(bool b) : value_(b) {}                // NOLINT
  Json(std::int64_t v) : value_(v) {}        // NOLINT
  Json(std::uint64_t v) : value_(v) {}       // NOLINT
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned v) : value_(static_cast<std::uint64_t>(v)) {}  // NOLINT
  Json(double v) : value_(v) {}              // NOLINT
  Json(std::string s) : value_(std::move(s)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(Array a) : value_(std::move(a)) {}    // NOLINT
  Json(Object o) : value_(std::move(o)) {}   // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_integer() const {
    return std::holds_alternative<std::int64_t>(value_) ||
           std::holds_alternative<std::uint64_t>(value_);
  }
  bool is_number() const { return is_integer() || std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Typed accessors; each ACCENT_CHECKs the stored kind (integers convert
  // between signedness when the value is representable).
  bool AsBool() const;
  std::int64_t AsInt64() const;
  std::uint64_t AsUint64() const;
  double AsDouble() const;  // accepts integers too
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Object field access. Get() aborts on a missing key; Find() returns
  // nullptr so callers can distinguish absence.
  const Json& Get(const std::string& key) const;
  const Json* Find(const std::string& key) const;

  // Mutable object/array builders.
  Json& operator[](const std::string& key);
  void Append(Json v);

  // Canonical serialisation. `indent` < 0 emits compact one-line output.
  std::string Dump(int indent = -1) const;

  // Parses `text`; aborts (ACCENT_CHECK) on malformed input. ParseOrNull
  // returns std::nullopt-like null Json + false instead, for cache loads
  // that must survive a corrupt or truncated file.
  static Json Parse(const std::string& text);
  static bool TryParse(const std::string& text, Json* out);

  friend bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double, std::string,
               Array, Object>
      value_;
};

}  // namespace accent

#endif  // SRC_BASE_JSON_H_
