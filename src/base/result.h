// Result<T>: a tiny expected-like type (std::expected is C++23).
//
// Used on fallible API boundaries (IPC sends, VM operations) where aborting
// via ACCENT_CHECK would be wrong: callers are entitled to observe and
// handle the failure (e.g. sending to a dead port).
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <string>
#include <utility>
#include <variant>

#include "src/base/check.h"

namespace accent {

struct Error {
  std::string message;
};

inline Error Err(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT: implicit by design
  Result(Error error) : value_(std::move(error)) {}    // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    ACCENT_EXPECTS(ok()) << " error: " << error().message;
    return std::get<T>(value_);
  }
  T& value() & {
    ACCENT_EXPECTS(ok()) << " error: " << error().message;
    return std::get<T>(value_);
  }
  T&& take() && {
    ACCENT_EXPECTS(ok()) << " error: " << error().message;
    return std::get<T>(std::move(value_));
  }

  const Error& error() const {
    ACCENT_EXPECTS(!ok());
    return std::get<Error>(value_);
  }

 private:
  std::variant<T, Error> value_;
};

template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const Error& error() const {
    ACCENT_EXPECTS(!ok_);
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

inline Result<void> OkResult() { return Result<void>(); }

}  // namespace accent

#endif  // SRC_BASE_RESULT_H_
