#include "src/base/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "src/base/check.h"

namespace accent {

bool Json::AsBool() const {
  ACCENT_CHECK(is_bool()) << " JSON value is not a bool";
  return std::get<bool>(value_);
}

std::int64_t Json::AsInt64() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return *i;
  }
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    ACCENT_CHECK(*u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()))
        << " JSON integer " << *u << " overflows int64";
    return static_cast<std::int64_t>(*u);
  }
  ACCENT_CHECK(false) << " JSON value is not an integer";
  return 0;
}

std::uint64_t Json::AsUint64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return *u;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    ACCENT_CHECK(*i >= 0) << " JSON integer " << *i << " is negative";
    return static_cast<std::uint64_t>(*i);
  }
  ACCENT_CHECK(false) << " JSON value is not an integer";
  return 0;
}

double Json::AsDouble() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*u);
  }
  ACCENT_CHECK(false) << " JSON value is not a number";
  return 0;
}

const std::string& Json::AsString() const {
  ACCENT_CHECK(is_string()) << " JSON value is not a string";
  return std::get<std::string>(value_);
}

const Json::Array& Json::AsArray() const {
  ACCENT_CHECK(is_array()) << " JSON value is not an array";
  return std::get<Array>(value_);
}

const Json::Object& Json::AsObject() const {
  ACCENT_CHECK(is_object()) << " JSON value is not an object";
  return std::get<Object>(value_);
}

const Json& Json::Get(const std::string& key) const {
  const Json* found = Find(key);
  ACCENT_CHECK(found != nullptr) << " missing JSON key \"" << key << '"';
  return *found;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const Object& obj = std::get<Object>(value_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) {
    ACCENT_CHECK(is_null()) << " indexing a non-object JSON value";
    value_ = Object{};
  }
  return std::get<Object>(value_)[key];
}

void Json::Append(Json v) {
  if (!is_array()) {
    ACCENT_CHECK(is_null()) << " appending to a non-array JSON value";
    value_ = Array{};
  }
  std::get<Array>(value_).push_back(std::move(v));
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Newline(std::string* out, int indent, int depth) {
  if (indent >= 0) {
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  if (is_null()) {
    *out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    *out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    *out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    *out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    *out += buf;
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    EscapeString(*s, out);
  } else if (const auto* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      *out += "[]";
      return;
    }
    out->push_back('[');
    bool first = true;
    for (const Json& item : *a) {
      if (!first) {
        out->push_back(',');
      }
      first = false;
      Newline(out, indent, depth + 1);
      item.DumpTo(out, indent, depth + 1);
    }
    Newline(out, indent, depth);
    out->push_back(']');
  } else {
    const Object& obj = std::get<Object>(value_);
    if (obj.empty()) {
      *out += "{}";
      return;
    }
    out->push_back('{');
    bool first = true;
    for (const auto& [key, item] : obj) {
      if (!first) {
        out->push_back(',');
      }
      first = false;
      Newline(out, indent, depth + 1);
      EscapeString(key, out);
      out->push_back(':');
      if (indent >= 0) {
        out->push_back(' ');
      }
      item.DumpTo(out, indent, depth + 1);
    }
    Newline(out, indent, depth);
    out->push_back('}');
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser. On error, fails by returning false with a
// position-carrying message the callers surface through ACCENT_CHECK.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Json* out) {
    SkipWhitespace();
    if (!ParseValue(out, /*depth=*/0)) {
      return false;
    }
    SkipWhitespace();
    return pos_ == text_.size();  // trailing garbage is an error
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = std::move(s);
        return true;
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = true;
          return true;
        }
        return false;
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = false;
          return true;
        }
        return false;
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = nullptr;
          return true;
        }
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    Json::Object obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      *out = std::move(obj);
      return true;
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWhitespace();
      Json value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      obj.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        *out = std::move(obj);
        return true;
      }
      return false;
    }
  }

  bool ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    Json::Array arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      *out = std::move(arr);
      return true;
    }
    for (;;) {
      SkipWhitespace();
      Json value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      arr.push_back(std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        *out = std::move(arr);
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only emits \u for control characters; decode the
          // basic-multilingual-plane scalar as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(Json* out) {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_integer = pos_ > start && (text_[start] != '-' || pos_ > start + 1);
    if (Peek() == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_integer = false;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) {
      return false;
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_integer) {
      if (text_[start] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(first, last, v);
        if (ec == std::errc() && p == last) {
          *out = v;
          return true;
        }
      } else {
        std::uint64_t v = 0;
        const auto [p, ec] = std::from_chars(first, last, v);
        if (ec == std::errc() && p == last) {
          *out = v;
          return true;
        }
      }
      // Overflowing integers fall through to double.
    }
    char* end = nullptr;
    const std::string slice(first, last);
    const double d = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      return false;
    }
    *out = d;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::Parse(const std::string& text) {
  Json out;
  ACCENT_CHECK(TryParse(text, &out)) << " malformed JSON (" << text.size() << " bytes)";
  return out;
}

bool Json::TryParse(const std::string& text, Json* out) {
  Parser parser(text);
  return parser.Parse(out);
}

}  // namespace accent
