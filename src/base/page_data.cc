#include "src/base/page_data.h"

#include "src/base/rng.h"

namespace accent {

PageData MakePatternPage(std::uint64_t seed) {
  Rng rng(seed);
  PageData page(kPageSize);
  for (ByteCount i = 0; i < kPageSize; i += 8) {
    const std::uint64_t word = rng.Next() | 1;  // never all-zero
    for (int b = 0; b < 8; ++b) {
      page[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return page;
}

std::uint64_t PageIntegrityChecksum(const PageData& page) {
  ACCENT_EXPECTS(page.empty() || page.size() == kPageSize);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (ByteCount i = 0; i < kPageSize; ++i) {
    const std::uint8_t byte = page.empty() ? 0 : page[i];
    hash = (hash ^ byte) * 0x100000001b3ull;
  }
  return hash;
}

namespace {

// fmix64 from murmur3: full avalanche over one 64-bit lane.
inline std::uint64_t Mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

}  // namespace

PageHash ComputePageHash(const PageData& page) {
  ACCENT_EXPECTS(page.empty() || page.size() == kPageSize);
  // Two independently-seeded murmur-style lanes over the 64-bit words of
  // the page. Each lane mixes the word with its position before folding,
  // so permuted contents (common under MakePatternPage mutations) never
  // alias; the final cross-mix couples the lanes into a 128-bit digest.
  std::uint64_t h1 = 0x9e3779b97f4a7c15ull;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4full;
  for (ByteCount i = 0; i < kPageSize; i += 8) {
    std::uint64_t word = 0;
    if (!page.empty()) {
      for (int b = 0; b < 8; ++b) {
        word |= static_cast<std::uint64_t>(page[i + b]) << (8 * b);
      }
    }
    h1 = Mix64(h1 ^ Mix64(word + i));
    h2 = Mix64(h2 + word) ^ (i * 0x100000001b3ull);
  }
  PageHash hash;
  hash.lo = Mix64(h1 ^ (h2 << 1));
  hash.hi = Mix64(h2 ^ (h1 >> 1));
  return hash;
}

const PageHash& ZeroPageHash() {
  static const PageHash zero = ComputePageHash(PageData{});
  return zero;
}

std::uint8_t PageByteAt(const PageData& page, ByteCount offset) {
  ACCENT_EXPECTS(offset < kPageSize);
  if (page.empty()) {
    return 0;
  }
  return page[offset];
}

void PageWriteByte(PageData& page, ByteCount offset, std::uint8_t value) {
  ACCENT_EXPECTS(offset < kPageSize);
  if (page.empty()) {
    if (value == 0) {
      return;
    }
    page.assign(kPageSize, 0);
  }
  page[offset] = value;
}

}  // namespace accent
