#include "src/base/page_data.h"

#include "src/base/rng.h"

namespace accent {

PageData MakePatternPage(std::uint64_t seed) {
  Rng rng(seed);
  PageData page(kPageSize);
  for (ByteCount i = 0; i < kPageSize; i += 8) {
    const std::uint64_t word = rng.Next() | 1;  // never all-zero
    for (int b = 0; b < 8; ++b) {
      page[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return page;
}

std::uint64_t PageChecksum(const PageData& page) {
  ACCENT_EXPECTS(page.empty() || page.size() == kPageSize);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (ByteCount i = 0; i < kPageSize; ++i) {
    const std::uint8_t byte = page.empty() ? 0 : page[i];
    hash = (hash ^ byte) * 0x100000001b3ull;
  }
  return hash;
}

std::uint8_t PageByteAt(const PageData& page, ByteCount offset) {
  ACCENT_EXPECTS(offset < kPageSize);
  if (page.empty()) {
    return 0;
  }
  return page[offset];
}

void PageWriteByte(PageData& page, ByteCount offset, std::uint8_t value) {
  ACCENT_EXPECTS(offset < kPageSize);
  if (page.empty()) {
    if (value == 0) {
      return;
    }
    page.assign(kPageSize, 0);
  }
  page[offset] = value;
}

}  // namespace accent
