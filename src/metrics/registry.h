// Typed counter/histogram metrics registry.
//
// Bench binaries accumulate per-trial measurements (messages, bytes,
// retransmissions, faults served, IOU pulls) into a MetricsRegistry and fold
// the result into their BENCH_*.json output, so every headline number has a
// machine-readable form. The registry serialises through src/base/json's
// canonical writer: equal registries always dump byte-identical text.
//
// Not thread-safe: parallel sweeps aggregate per-thread results after the
// barrier, they do not share a registry across workers.
#ifndef SRC_METRICS_REGISTRY_H_
#define SRC_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace accent {

// Monotonic event count (messages forwarded, pages fetched, ...).
struct MetricCounter {
  std::uint64_t value = 0;

  void Add(std::uint64_t delta) { value += delta; }
  void Increment() { ++value; }
};

// Fixed-bucket histogram over doubles. `bounds` are inclusive upper bounds,
// strictly ascending; a sample greater than the last bound lands in the
// overflow bucket, so counts.size() == bounds.size() + 1. Min/max/sum/count
// travel alongside so averages and ranges survive aggregation.
struct MetricHistogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // sized bounds.size() + 1 once observed
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  void Observe(double sample);
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

class MetricsRegistry {
 public:
  // Returns the named counter, creating it at zero on first use.
  MetricCounter& Counter(const std::string& name);

  // Returns the named histogram; `bounds` fixes the buckets on first use
  // and must match (ACCENT_CHECK) on later calls.
  MetricHistogram& Histogram(const std::string& name, std::vector<double> bounds);

  const MetricCounter* FindCounter(const std::string& name) const;
  const MetricHistogram* FindHistogram(const std::string& name) const;

  const std::map<std::string, MetricCounter>& counters() const { return counters_; }
  const std::map<std::string, MetricHistogram>& histograms() const { return histograms_; }
  bool empty() const { return counters_.empty() && histograms_.empty(); }

  // Adds every metric of `other` into this registry: counters sum,
  // histograms merge bucket-wise (bounds must agree). Used to aggregate
  // per-trial registries into a sweep-wide one.
  void Merge(const MetricsRegistry& other);

  // {"counters": {name: value}, "histograms": {name: {...}}} — canonical,
  // round-trips exactly through FromJson.
  Json ToJson() const;
  static MetricsRegistry FromJson(const Json& json);

 private:
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricHistogram> histograms_;
};

}  // namespace accent

#endif  // SRC_METRICS_REGISTRY_H_
