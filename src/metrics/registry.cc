#include "src/metrics/registry.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace accent {

void MetricHistogram::Observe(double sample) {
  if (counts.empty()) {
    counts.assign(bounds.size() + 1, 0);
  }
  std::size_t bucket = bounds.size();  // overflow unless a bound admits it
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (sample <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  if (count == 0) {
    min = sample;
    max = sample;
  } else {
    min = std::min(min, sample);
    max = std::max(max, sample);
  }
  ++count;
  sum += sample;
}

MetricCounter& MetricsRegistry::Counter(const std::string& name) {
  return counters_[name];
}

MetricHistogram& MetricsRegistry::Histogram(const std::string& name,
                                            std::vector<double> bounds) {
  ACCENT_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()));
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second.bounds = std::move(bounds);
  } else {
    ACCENT_CHECK(it->second.bounds == bounds)
        << " histogram '" << name << "' re-declared with different buckets";
  }
  return it->second;
}

const MetricCounter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const MetricHistogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].value += counter.value;
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name);
    MetricHistogram& mine = it->second;
    if (inserted) {
      mine = histogram;
      continue;
    }
    ACCENT_CHECK(mine.bounds == histogram.bounds)
        << " merging histogram '" << name << "' with different buckets";
    if (histogram.count == 0) {
      continue;
    }
    if (mine.counts.empty()) {
      mine.counts.assign(mine.bounds.size() + 1, 0);
    }
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      mine.counts[i] += histogram.counts[i];
    }
    mine.min = mine.count == 0 ? histogram.min : std::min(mine.min, histogram.min);
    mine.max = mine.count == 0 ? histogram.max : std::max(mine.max, histogram.max);
    mine.count += histogram.count;
    mine.sum += histogram.sum;
  }
}

Json MetricsRegistry::ToJson() const {
  Json counters{Json::Object{}};
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json(counter.value);
  }
  Json histograms{Json::Object{}};
  for (const auto& [name, histogram] : histograms_) {
    Json entry{Json::Object{}};
    Json bounds{Json::Array{}};
    for (double bound : histogram.bounds) {
      bounds.Append(Json(bound));
    }
    entry["bounds"] = std::move(bounds);
    Json counts{Json::Array{}};
    for (std::uint64_t c : histogram.counts) {
      counts.Append(Json(c));
    }
    entry["counts"] = std::move(counts);
    entry["count"] = Json(histogram.count);
    entry["sum"] = Json(histogram.sum);
    entry["min"] = Json(histogram.min);
    entry["max"] = Json(histogram.max);
    histograms[name] = std::move(entry);
  }
  Json out{Json::Object{}};
  out["counters"] = std::move(counters);
  out["histograms"] = std::move(histograms);
  return out;
}

MetricsRegistry MetricsRegistry::FromJson(const Json& json) {
  MetricsRegistry registry;
  for (const auto& [name, value] : json.Get("counters").AsObject()) {
    registry.counters_[name].value = value.AsUint64();
  }
  for (const auto& [name, entry] : json.Get("histograms").AsObject()) {
    MetricHistogram histogram;
    for (const Json& bound : entry.Get("bounds").AsArray()) {
      histogram.bounds.push_back(bound.AsDouble());
    }
    for (const Json& c : entry.Get("counts").AsArray()) {
      histogram.counts.push_back(c.AsUint64());
    }
    ACCENT_CHECK(histogram.counts.empty() ||
                 histogram.counts.size() == histogram.bounds.size() + 1)
        << " malformed histogram '" << name << "'";
    histogram.count = entry.Get("count").AsUint64();
    histogram.sum = entry.Get("sum").AsDouble();
    histogram.min = entry.Get("min").AsDouble();
    histogram.max = entry.Get("max").AsDouble();
    registry.histograms_[name] = std::move(histogram);
  }
  return registry;
}

}  // namespace accent
