#include "src/metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/base/check.h"

namespace accent {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ACCENT_EXPECTS(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  ACCENT_EXPECTS(cells.size() == headers_.size())
      << " row has " << cells.size() << " cells, table has " << headers_.size() << " columns";
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells, bool left_first) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      if (c == 0 && left_first) {
        out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      } else {
        out << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
      }
    }
    out << '\n';
  };

  emit_row(headers_, true);
  std::size_t total = headers_.size() * 2 - 2;
  for (std::size_t w : widths) {
    total += w;
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row, true);
  }
  return out.str();
}

std::string FormatWithCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      result.push_back(',');
    }
    result.push_back(*it);
    ++count;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::string FormatSeconds(double seconds, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << seconds;
  return out.str();
}

std::string FormatSeconds(SimDuration d, int precision) {
  return FormatSeconds(ToSeconds(d), precision);
}

std::string FormatPercent(double fraction, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace accent
