// Plain-text table formatting for the benchmark harness.
//
// The benches print the same rows and columns as the paper's tables, with
// the paper's published value alongside ours where the paper gives one.
#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <string>
#include <vector>

#include "src/base/types.h"

namespace accent {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// 1234567 -> "1,234,567".
std::string FormatWithCommas(std::uint64_t value);

// Seconds with fixed precision, e.g. "2.79".
std::string FormatSeconds(double seconds, int precision = 2);
std::string FormatSeconds(SimDuration d, int precision = 2);

// "58.2%".
std::string FormatPercent(double fraction, int precision = 1);

std::string FormatDouble(double value, int precision = 2);

}  // namespace accent

#endif  // SRC_METRICS_TABLE_H_
