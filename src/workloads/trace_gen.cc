#include "src/workloads/trace_gen.h"

#include <algorithm>

namespace accent {
namespace {

// Picks which real pages a trace touches, in touch order.
std::vector<PageIndex> PlanTouches(const WorkloadSpec& spec,
                                   const std::vector<PageIndex>& real_pages, Rng* rng) {
  const std::uint64_t want = spec.touched_real_pages;
  ACCENT_EXPECTS(want <= real_pages.size())
      << " workload " << spec.name << " touches more pages than exist";
  std::vector<PageIndex> order;
  order.reserve(want);

  switch (spec.pattern) {
    case AccessPattern::kMinimal: {
      // The working set sits at the front of the image.
      order.assign(real_pages.begin(), real_pages.begin() + want);
      return order;
    }
    case AccessPattern::kComputeBound: {
      // Scattered uniform sample, touched in ascending order.
      std::vector<PageIndex> pool = real_pages;
      rng->Shuffle(pool);
      order.assign(pool.begin(), pool.begin() + want);
      std::sort(order.begin(), order.end());
      return order;
    }
    case AccessPattern::kRandomClustered: {
      // Clusters of 1-3 consecutive list positions, visited in shuffled
      // order: adjacency without temporal locality. Cluster size averages
      // ~1.7 pages, which yields the paper's ~40% single-page prefetch hit
      // rate for the Lisp family.
      std::set<std::size_t> used;
      std::vector<std::vector<PageIndex>> clusters;
      std::uint64_t picked = 0;
      while (picked < want) {
        const std::size_t start = rng->NextBelow(real_pages.size());
        if (used.count(start) != 0) {
          continue;
        }
        const std::uint64_t len = std::min<std::uint64_t>(1 + rng->NextBelow(3), want - picked);
        std::vector<PageIndex> cluster;
        for (std::uint64_t i = 0; i < len && start + i < real_pages.size(); ++i) {
          if (used.count(start + i) != 0) {
            break;
          }
          used.insert(start + i);
          cluster.push_back(real_pages[start + i]);
          ++picked;
        }
        if (!cluster.empty()) {
          clusters.push_back(std::move(cluster));
        }
      }
      rng->Shuffle(clusters);
      for (const auto& cluster : clusters) {
        order.insert(order.end(), cluster.begin(), cluster.end());
      }
      return order;
    }
    case AccessPattern::kSequentialScan: {
      // The unprocessed tail of the mapped files is scanned in ascending
      // order; within it, `scan_density` of the pages are touched (macro
      // references skip around a little). The prefix before the active
      // range is the already-processed portion — never touched again, but
      // still resident (physical memory as disk cache, section 4.2.3).
      const auto candidates =
          std::min<std::uint64_t>(real_pages.size(),
                                  static_cast<std::uint64_t>(
                                      static_cast<double>(want) / spec.scan_density + 0.5));
      ACCENT_CHECK(candidates >= want);
      const std::size_t first = real_pages.size() - candidates;
      // Choose which candidates are skipped.
      std::vector<std::size_t> idx(candidates);
      for (std::size_t i = 0; i < candidates; ++i) {
        idx[i] = first + i;
      }
      rng->Shuffle(idx);
      std::set<std::size_t> chosen(idx.begin(), idx.begin() + want);
      for (std::size_t i = first; i < real_pages.size(); ++i) {
        if (chosen.count(i) != 0) {
          order.push_back(real_pages[i]);
        }
      }
      return order;
    }
  }
  ACCENT_CHECK(false);
  return order;
}

}  // namespace

Addr TouchAddrFor(PageIndex page) { return PageBase(page) + (page * 7) % kPageSize; }

std::uint8_t WriteValueFor(std::uint64_t pattern_seed, PageIndex page) {
  return static_cast<std::uint8_t>(
      0x5a ^ ((pattern_seed >> 8) & 0xff) ^ ((page * 0x9e3779b97f4a7c15ull) >> 56));
}

bool TouchIsWrite(std::size_t touch_index) { return touch_index % 4 == 3; }

TracePlan GenerateTrace(const WorkloadSpec& spec, const std::vector<PageIndex>& real_pages,
                        const std::vector<PageIndex>& zero_pages_sample,
                        std::uint64_t pattern_seed, Rng* rng) {
  ACCENT_EXPECTS(rng != nullptr);
  ACCENT_EXPECTS(zero_pages_sample.size() >= spec.zero_touches)
      << " not enough RealZero pages for " << spec.name;

  TracePlan plan;
  plan.touch_order = PlanTouches(spec, real_pages, rng);
  plan.touched_real.insert(plan.touch_order.begin(), plan.touch_order.end());
  ACCENT_ENSURES(plan.touched_real.size() == spec.touched_real_pages);
  plan.zero_writes.assign(zero_pages_sample.begin(),
                          zero_pages_sample.begin() + spec.zero_touches);

  // Interleave: compute is split evenly across touch gaps. Compute-bound
  // programs place their touches in the first 30% of execution.
  const std::uint64_t total_touches = plan.touch_order.size() + plan.zero_writes.size();
  const std::uint64_t slices = total_touches + 1;
  SimDuration touch_phase_compute = spec.compute;
  SimDuration tail_compute{0};
  if (spec.pattern == AccessPattern::kComputeBound) {
    touch_phase_compute = spec.compute * 3 / 10;
    tail_compute = spec.compute - touch_phase_compute;
  }
  const SimDuration slice = touch_phase_compute / static_cast<std::int64_t>(slices);

  TraceBuilder builder;
  std::size_t zero_cursor = 0;
  // Spread zero writes through the touch stream proportionally.
  const double zero_every = plan.zero_writes.empty()
                                ? 0.0
                                : static_cast<double>(plan.touch_order.size() + 1) /
                                      static_cast<double>(plan.zero_writes.size());
  double zero_next = zero_every;

  builder.Compute(slice);
  for (std::size_t i = 0; i < plan.touch_order.size(); ++i) {
    const PageIndex page = plan.touch_order[i];
    if (TouchIsWrite(i)) {
      builder.Write(TouchAddrFor(page), WriteValueFor(pattern_seed, page));
    } else {
      builder.Read(TouchAddrFor(page));
    }
    builder.Compute(slice);
    while (zero_cursor < plan.zero_writes.size() &&
           static_cast<double>(i + 1) >= zero_next) {
      const PageIndex zero_page = plan.zero_writes[zero_cursor];
      builder.Write(TouchAddrFor(zero_page), WriteValueFor(pattern_seed, zero_page));
      builder.Compute(slice);
      ++zero_cursor;
      zero_next += zero_every;
    }
  }
  while (zero_cursor < plan.zero_writes.size()) {
    const PageIndex zero_page = plan.zero_writes[zero_cursor++];
    builder.Write(TouchAddrFor(zero_page), WriteValueFor(pattern_seed, zero_page));
    builder.Compute(slice);
  }

  if (tail_compute > SimDuration::zero()) {
    // Long compute tail in bounded slices so host servers are never starved
    // behind one monolithic CPU reservation.
    const SimDuration chunk = Sec(2.0);
    SimDuration remaining = tail_compute;
    while (remaining > SimDuration::zero()) {
      const SimDuration step = std::min(chunk, remaining);
      builder.Compute(step);
      remaining -= step;
    }
  }
  builder.Terminate();
  plan.trace = builder.Build();
  return plan;
}

}  // namespace accent
