#include "src/workloads/workload.h"

#include <algorithm>

#include "src/base/rng.h"
#include "src/workloads/trace_gen.h"

namespace accent {
namespace {

// Layout starts above a small unmapped guard region.
constexpr Addr kLayoutBase = 16 * kPageSize;

// Splits `total` pages into `parts` region sizes, each >= 1 page.
std::vector<PageIndex> SplitPages(PageIndex total, std::uint32_t parts) {
  ACCENT_EXPECTS(parts >= 1 && total >= parts);
  std::vector<PageIndex> sizes(parts, total / parts);
  for (std::uint32_t i = 0; i < total % parts; ++i) {
    ++sizes[i];
  }
  return sizes;
}

}  // namespace

std::uint64_t WorkloadPageSeed(std::uint64_t pattern_seed, PageIndex page) {
  return pattern_seed * 0x9e3779b97f4a7c15ull + page * 0xda942042e4dd58b5ull + 1;
}

const std::vector<WorkloadSpec>& RepresentativeWorkloads() {
  static const std::vector<WorkloadSpec> specs = [] {
    std::vector<WorkloadSpec> list;

    // Sizes are byte-exact against Tables 4-1 and 4-2. Region counts are
    // fitted so that AMap construction reproduces Table 4-4 (they model
    // process-map complexity: Lisp's sparse allocation, Pasmac's mapped
    // files). Touch counts reproduce Table 4-3's pure-IOU column; the
    // touched/resident overlaps reproduce its resident-set column.
    WorkloadSpec minprog;
    minprog.name = "Minprog";
    minprog.real_bytes = 142336;
    minprog.zero_bytes = 187904;
    minprog.resident_bytes = 71680;
    minprog.real_regions = 10;
    minprog.zero_regions = 10;
    minprog.pattern = AccessPattern::kMinimal;
    minprog.touched_real_pages = 24;   // 8.6% of RealMem
    minprog.resident_touched_overlap = 24;
    minprog.zero_touches = 3;
    minprog.compute = Ms(40);
    list.push_back(minprog);

    WorkloadSpec lisp_t;
    lisp_t.name = "Lisp-T";
    lisp_t.real_bytes = 2203136;
    lisp_t.zero_bytes = 4225926144;  // 4 GB validated at birth
    lisp_t.resident_bytes = 190464;
    lisp_t.real_regions = 385;
    lisp_t.zero_regions = 385;
    lisp_t.pattern = AccessPattern::kRandomClustered;
    lisp_t.touched_real_pages = 129;  // 3.0% of RealMem
    lisp_t.resident_touched_overlap = 129;
    lisp_t.zero_touches = 8;
    lisp_t.compute = Ms(500);
    list.push_back(lisp_t);

    WorkloadSpec lisp_del;
    lisp_del.name = "Lisp-Del";
    lisp_del.real_bytes = 2200064;
    lisp_del.zero_bytes = 4225929216;
    lisp_del.resident_bytes = 190464;
    lisp_del.real_regions = 462;
    lisp_del.zero_regions = 463;
    lisp_del.pattern = AccessPattern::kRandomClustered;
    lisp_del.touched_real_pages = 709;  // 16.5% of RealMem
    lisp_del.resident_touched_overlap = 335;
    lisp_del.zero_touches = 200;
    lisp_del.compute = Sec(40.0);
    list.push_back(lisp_del);

    WorkloadSpec pm_start;
    pm_start.name = "PM-Start";
    pm_start.real_bytes = 449024;
    pm_start.zero_bytes = 501760;
    pm_start.resident_bytes = 132096;
    pm_start.real_regions = 156;
    pm_start.zero_regions = 156;
    pm_start.pattern = AccessPattern::kSequentialScan;
    pm_start.touched_real_pages = 509;  // 58.0% of RealMem
    pm_start.resident_touched_overlap = 100;
    pm_start.zero_touches = 220;
    pm_start.compute = Sec(8.0);
    list.push_back(pm_start);

    WorkloadSpec pm_mid;
    pm_mid.name = "PM-Mid";
    pm_mid.real_bytes = 446464;
    pm_mid.zero_bytes = 466432;
    pm_mid.resident_bytes = 190976;
    pm_mid.real_regions = 163;
    pm_mid.zero_regions = 164;
    pm_mid.pattern = AccessPattern::kSequentialScan;
    pm_mid.touched_real_pages = 449;  // 51.5% of RealMem
    pm_mid.resident_touched_overlap = 168;
    pm_mid.zero_touches = 200;
    pm_mid.compute = Sec(7.0);
    list.push_back(pm_mid);

    WorkloadSpec pm_end;
    pm_end.name = "PM-End";
    pm_end.real_bytes = 492032;
    pm_end.zero_bytes = 398848;
    pm_end.resident_bytes = 302080;
    pm_end.real_regions = 259;
    pm_end.zero_regions = 260;
    pm_end.pattern = AccessPattern::kSequentialScan;
    pm_end.touched_real_pages = 258;  // 26.9% of RealMem
    pm_end.resident_touched_overlap = 152;
    pm_end.zero_touches = 80;
    pm_end.compute = Sec(3.0);
    list.push_back(pm_end);

    WorkloadSpec chess;
    chess.name = "Chess";
    chess.real_bytes = 195584;
    chess.zero_bytes = 305152;
    chess.resident_bytes = 110080;
    chess.real_regions = 10;
    chess.zero_regions = 10;
    chess.pattern = AccessPattern::kComputeBound;
    chess.touched_real_pages = 136;  // 35.6% of RealMem
    chess.resident_touched_overlap = 99;
    chess.zero_touches = 60;
    chess.compute = Sec(480.0);
    list.push_back(chess);

    return list;
  }();
  return specs;
}

const WorkloadSpec& WorkloadByName(const std::string& name) {
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    if (spec.name == name) {
      return spec;
    }
  }
  ACCENT_CHECK(false) << " unknown workload " << name;
  static WorkloadSpec unreachable;
  return unreachable;
}

WorkloadInstance BuildWorkload(const WorkloadSpec& spec, HostEnv* env, std::uint64_t seed) {
  ACCENT_EXPECTS(env != nullptr && env->complete());
  ACCENT_EXPECTS(spec.real_pages() >= spec.touched_real_pages);
  ACCENT_EXPECTS(spec.resident_pages() >= spec.resident_touched_overlap);
  ACCENT_EXPECTS(spec.touched_real_pages >= spec.resident_touched_overlap);

  Rng rng(seed ^ 0xacce27f0acce27f0ull);
  WorkloadInstance instance;
  instance.spec = spec;
  instance.pattern_seed = seed;

  // --- lay out the address space: alternating Real / RealZero regions ----
  auto space = std::make_unique<AddressSpace>(SpaceId(env->sim->AllocateId()), env->id);
  Segment* image = env->segments->CreateReal(spec.real_bytes, "image:" + spec.name);

  const std::vector<PageIndex> real_sizes = SplitPages(spec.real_pages(), spec.real_regions);
  const std::vector<PageIndex> zero_sizes = SplitPages(spec.zero_pages(), spec.zero_regions);
  std::vector<PageIndex> zero_front_pages;  // sample of zero pages for traces

  Addr cursor = kLayoutBase;
  ByteCount image_offset = 0;
  const std::size_t rounds = std::max(real_sizes.size(), zero_sizes.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i < real_sizes.size()) {
      const ByteCount bytes = real_sizes[i] * kPageSize;
      space->MapReal(cursor, cursor + bytes, image, image_offset, /*copy_on_write=*/false);
      for (PageIndex p = 0; p < real_sizes[i]; ++p) {
        const PageIndex va_page = PageOf(cursor) + p;
        instance.real_page_list.push_back(va_page);
        image->StorePage(PageOf(image_offset) + p,
                         MakePatternPage(WorkloadPageSeed(seed, va_page)));
      }
      cursor += bytes;
      image_offset += bytes;
    }
    if (i < zero_sizes.size()) {
      if (i >= real_sizes.size()) {
        // No real region this round: leave a one-page BadMem hole so this
        // zero region does not coalesce with the previous one (the region
        // counts model process-map complexity and must be exact).
        cursor += kPageSize;
      }
      const ByteCount bytes = zero_sizes[i] * kPageSize;
      space->Validate(cursor, cursor + bytes);
      if (zero_front_pages.size() < spec.zero_touches + 64) {
        for (PageIndex p = 0; p < zero_sizes[i] &&
                              zero_front_pages.size() < spec.zero_touches + 64; ++p) {
          zero_front_pages.push_back(PageOf(cursor) + p);
        }
      }
      cursor += bytes;
    }
  }
  ACCENT_ENSURES(space->RealBytes() == spec.real_bytes);
  ACCENT_ENSURES(space->RealZeroBytes() == spec.zero_bytes);
  ACCENT_ENSURES(space->TotalValidatedBytes() == spec.total_bytes());

  // --- synthesise the post-migration trace --------------------------------
  Rng trace_rng = rng.Fork(1);
  TracePlan plan =
      GenerateTrace(spec, instance.real_page_list, zero_front_pages, seed, &trace_rng);
  instance.planned_touches = plan.touched_real;

  // --- stage the resident set (Table 4-2) ---------------------------------
  // Overlap pages come from the touched plan; for sequential scans the
  // *earliest* touched pages are the ones still resident (the scan resumes
  // where it stopped). The remainder are untouched pages — for Pasmac, the
  // already-processed prefix (the disk-cache pollution the paper blames).
  std::vector<PageIndex> overlap;
  if (spec.pattern == AccessPattern::kSequentialScan ||
      spec.pattern == AccessPattern::kMinimal) {
    overlap.assign(plan.touch_order.begin(),
                   plan.touch_order.begin() + spec.resident_touched_overlap);
  } else {
    std::vector<PageIndex> pool(plan.touch_order.begin(), plan.touch_order.end());
    Rng pick = rng.Fork(2);
    pick.Shuffle(pool);
    overlap.assign(pool.begin(), pool.begin() + spec.resident_touched_overlap);
  }

  std::vector<PageIndex> untouched;
  for (PageIndex page : instance.real_page_list) {
    if (plan.touched_real.count(page) == 0) {
      untouched.push_back(page);
    }
  }
  const std::uint64_t filler_count = spec.resident_pages() - spec.resident_touched_overlap;
  ACCENT_CHECK(untouched.size() >= filler_count)
      << " workload " << spec.name << " cannot build its resident set";
  std::vector<PageIndex> filler;
  if (spec.pattern == AccessPattern::kSequentialScan) {
    filler.assign(untouched.begin(), untouched.begin() + filler_count);  // processed prefix
  } else {
    Rng pick = rng.Fork(3);
    pick.Shuffle(untouched);
    filler.assign(untouched.begin(), untouched.begin() + filler_count);
  }

  instance.resident_pages = overlap;
  instance.resident_pages.insert(instance.resident_pages.end(), filler.begin(), filler.end());
  std::sort(instance.resident_pages.begin(), instance.resident_pages.end());
  for (PageIndex page : instance.resident_pages) {
    env->memory->Insert(space->id(), page, /*dirty=*/false);
  }

  // --- the process itself ---------------------------------------------------
  auto process = std::make_unique<Process>(ProcId(env->sim->AllocateId()), spec.name, env,
                                           std::move(space), /*microstate_token=*/seed);
  process->SetTrace(plan.trace, 0);
  instance.process = std::move(process);
  return instance;
}

}  // namespace accent
