// Reference-trace synthesis for the representative workloads.
//
// Generators are deterministic given (spec, seed) and are the sole source
// of each program class's access behaviour: Pasmac's prefetch-friendly
// sequential scans, Lisp's low-locality clustered probes, Chess's
// compute-dominated profile and Minprog's sprint to termination.
#ifndef SRC_WORKLOADS_TRACE_GEN_H_
#define SRC_WORKLOADS_TRACE_GEN_H_

#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/proc/trace.h"
#include "src/workloads/workload.h"

namespace accent {

struct TracePlan {
  std::set<PageIndex> touched_real;    // exactly spec.touched_real_pages entries
  std::vector<PageIndex> touch_order;  // real pages in the order touched
  std::vector<PageIndex> zero_writes;  // RealZero pages written remotely
  TracePtr trace;
};

// Byte within a page that traces touch (deterministic per page).
Addr TouchAddrFor(PageIndex page);

// Value written when a trace op writes to a real page.
std::uint8_t WriteValueFor(std::uint64_t pattern_seed, PageIndex page);

// True if the generator makes the i-th touched real page a write
// (every fourth touch writes).
bool TouchIsWrite(std::size_t touch_index);

// Synthesises the post-migration trace for `spec`.
//   real_pages — ascending VA pages of RealMem;
//   zero_pages_sample — ascending VA pages available in RealZero regions
//                       (at least spec.zero_touches of them).
TracePlan GenerateTrace(const WorkloadSpec& spec, const std::vector<PageIndex>& real_pages,
                        const std::vector<PageIndex>& zero_pages_sample,
                        std::uint64_t pattern_seed, Rng* rng);

}  // namespace accent

#endif  // SRC_WORKLOADS_TRACE_GEN_H_
