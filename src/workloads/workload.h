// The seven representative processes of section 4.1.
//
// Each spec reproduces its program's published address-space composition
// (Table 4-1), resident set (Table 4-2) and remote access behaviour
// (Table 4-3 and the access-pattern prose):
//   Minprog  — "null trap": prints, waits, exits; touches almost nothing.
//   Lisp-T   — SPICE Lisp evaluating T: 4 GB validated at birth, 99.9%
//              RealZeroMem, tiny touched set, no locality.
//   Lisp-Del — Lisp running Dwyer's Delaunay triangulation: real compute and
//              I/O, still touches only 16.5% of RealMem, low locality.
//   PM-Start/Mid/End — the Pasmac macro processor migrated early / after
//              reading its definition files / near completion: sequential
//              scans over mapped files; the resident set is polluted by
//              already-processed file pages (physical memory as disk cache).
//   Chess    — compute-bound; long-lived; modest memory.
//
// A spec is *built* into a suspended-at-migration-point process: layout and
// resident set are constructed directly (the paper measures from the
// migration request onward), and the post-migration reference trace is
// synthesised by the pattern generators in trace_gen.h.
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/proc/host_env.h"
#include "src/proc/process.h"

namespace accent {

enum class AccessPattern {
  kMinimal,          // touch the working set quickly, terminate
  kRandomClustered,  // Lisp: scattered 1-3 page clusters, no time locality
  kSequentialScan,   // Pasmac: ascending scan, ~80% density within the range
  kComputeBound,     // Chess: touches early, long compute tail
};

struct WorkloadSpec {
  std::string name;

  // Table 4-1 (bytes; all page multiples).
  ByteCount real_bytes = 0;
  ByteCount zero_bytes = 0;

  // Table 4-2 (bytes).
  ByteCount resident_bytes = 0;

  // Process-map complexity: the number of Real / RealZero intervals the
  // layout alternates between (drives AMap construction cost, Table 4-4).
  std::uint32_t real_regions = 1;
  std::uint32_t zero_regions = 1;

  // Remote-execution behaviour.
  AccessPattern pattern = AccessPattern::kMinimal;
  std::uint64_t touched_real_pages = 0;  // Table 4-3 (pure-IOU column)
  std::uint64_t resident_touched_overlap = 0;  // |touched ∩ resident|
  std::uint64_t zero_touches = 0;        // RealZeroMem pages touched remotely
  SimDuration compute{0};                // total post-migration compute
  double scan_density = 0.8;             // kSequentialScan: fraction touched
                                         // within the active range

  // --- derived -----------------------------------------------------------
  ByteCount total_bytes() const { return real_bytes + zero_bytes; }
  PageIndex real_pages() const { return real_bytes / kPageSize; }
  PageIndex zero_pages() const { return zero_bytes / kPageSize; }
  PageIndex resident_pages() const { return resident_bytes / kPageSize; }
};

// The paper's seven representatives, calibrated to Tables 4-1/4-2/4-3.
const std::vector<WorkloadSpec>& RepresentativeWorkloads();
const WorkloadSpec& WorkloadByName(const std::string& name);

// A spec materialised on a host: a quiescent process at its migration
// point, with the resident set staged in physical memory.
struct WorkloadInstance {
  WorkloadSpec spec;
  std::unique_ptr<Process> process;
  std::vector<PageIndex> real_page_list;   // ascending VA pages of RealMem
  std::vector<PageIndex> resident_pages;   // staged resident set
  std::set<PageIndex> planned_touches;     // real pages the trace will touch
  std::uint64_t pattern_seed = 0;          // page-content seed base
};

// Builds `spec` on `env`. `seed` controls every random choice; the same
// (spec, seed) yields a bit-identical instance.
WorkloadInstance BuildWorkload(const WorkloadSpec& spec, HostEnv* env, std::uint64_t seed);

// Deterministic content seed for a workload's real page (integrity checks).
std::uint64_t WorkloadPageSeed(std::uint64_t pattern_seed, PageIndex page);

}  // namespace accent

#endif  // SRC_WORKLOADS_WORKLOAD_H_
