#include "src/experiments/dedup.h"

#include <memory>
#include <utility>

#include "src/base/check.h"
#include "src/experiments/chain.h"
#include "src/experiments/testbed.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// Generous per-round horizon; a single migration finishes in simulated
// minutes, so a round that approaches this is wedged, not slow.
constexpr SimDuration kRoundHorizon = Sec(3600.0);

}  // namespace

std::vector<HostCalibration> DedupFleetCalibrations(int host_count) {
  // Identity origin, then a cycle of mild asymmetries: a faster CPU, a
  // lower-bandwidth link, a higher-latency link. All disk-ful — backing
  // anchoring is not under test here — and all distinct enough that the
  // directory's WireCost ranks genuinely differ.
  std::vector<HostCalibration> cals(static_cast<std::size_t>(host_count));
  for (int i = 1; i < host_count; ++i) {
    HostCalibration& cal = cals[static_cast<std::size_t>(i)];
    switch (i % 3) {
      case 1:
        cal.cpu_multiplier = 1.25;
        break;
      case 2:
        cal.wire_bandwidth_multiplier = 0.75;
        break;
      default:
        cal.wire_latency_multiplier = 1.5;
        break;
    }
  }
  return cals;
}

DedupResult RunDedupExperiment(const DedupConfig& config) {
  ACCENT_EXPECTS(config.host_count >= 2);
  ACCENT_EXPECTS(config.repeats >= 1);

  // Page contents never depend on the cache plane or calibration, so the
  // homogeneous pure-copy run pins what every incarnation must observe.
  const std::uint64_t reference = ChainReferenceChecksum(config.workload, config.seed);

  TestbedConfig testbed_config;
  testbed_config.host_count = config.host_count;
  testbed_config.content_cache = config.content_cache;
  testbed_config.content_cache_pages = config.content_cache_pages;
  testbed_config.calibrations = config.calibrations;
  Testbed bed(testbed_config);
  bed.SetPrefetch(config.prefetch);

  DedupResult result;
  result.config = config;
  result.drained = true;

  // Every incarnation stays alive for the whole experiment: an excised
  // source process still owns its staging structures, and owed pages keep
  // referencing the simulation-global segment table.
  std::vector<WorkloadInstance> instances;
  instances.reserve(static_cast<std::size_t>(config.repeats));

  const SegmentBacker& origin = bed.netmsg(0)->backer();
  std::uint64_t origin_payload_prev = origin.pages_served();
  ByteCount wire_prev = bed.traffic().TotalBytes();

  for (int round = 0; round < config.repeats; ++round) {
    const int dest = 1 + round % (config.host_count - 1);
    const PagerStats dest_prev = bed.pager(dest)->stats();

    // Same (spec, seed) every round: bit-identical page contents, which is
    // exactly what makes the content addresses collide across incarnations.
    instances.push_back(
        BuildWorkload(WorkloadByName(config.workload), bed.host(0), config.seed));
    WorkloadInstance& instance = instances.back();
    Process* proc = instance.process.get();
    bed.manager(0)->RegisterLocal(proc);

    Process* landed = nullptr;
    bed.manager(dest)->set_on_insert([&landed](Process* inserted) { landed = inserted; });

    bool migrated = false;
    bed.manager(0)->Migrate(proc, bed.manager(dest)->port(), config.strategy,
                            [&migrated](const MigrationRecord&) { migrated = true; });
    if (!bed.RunGuarded(kRoundHorizon)) {
      result.drained = false;
      break;
    }
    ACCENT_CHECK(migrated && landed != nullptr)
        << " dedup round " << round << " never landed on host " << dest;
    ACCENT_CHECK(landed->done())
        << " dedup round " << round << " did not finish at host " << dest;

    const PagerStats dest_now = bed.pager(dest)->stats();
    DedupRound row;
    row.round = round;
    row.dest_host = dest;
    row.payload_pages = dest_now.imag_pages_fetched - dest_prev.imag_pages_fetched;
    row.confirmed_pages = dest_now.cache_pages_confirmed - dest_prev.cache_pages_confirmed;
    row.holder_pages =
        dest_now.cache_pages_from_holders - dest_prev.cache_pages_from_holders;
    row.faulted_pages = row.payload_pages + row.confirmed_pages;
    row.origin_payload_pages = origin.pages_served() - origin_payload_prev;
    origin_payload_prev = origin.pages_served();
    row.wire_bytes = bed.traffic().TotalBytes() - wire_prev;
    wire_prev = bed.traffic().TotalBytes();
    row.integrity_ok =
        ObservableChecksum(*landed->space(), bed.segments(), instance.planned_touches) ==
        reference;
    if (!row.integrity_ok) {
      ++result.integrity_failures;
    }

    result.faulted_pages += row.faulted_pages;
    result.origin_payload_pages += row.origin_payload_pages;
    result.wire_bytes += row.wire_bytes;
    result.rounds.push_back(row);
  }
  result.offloaded_pages = result.faulted_pages - result.origin_payload_pages;

  for (int i = 0; i < bed.host_count(); ++i) {
    result.integrity_failures += bed.pager(i)->stats().cache_hash_rejects;
    if (PageService* service = bed.page_service(i)) {
      const ContentCacheStats& stats = service->cache().stats();
      result.cache_hits += stats.hits;
      result.cache_misses += stats.misses;
      result.cache_insertions += stats.insertions;
      result.cache_evictions += stats.evictions;
      result.integrity_failures += stats.hash_mismatches;
    }
    result.integrity_failures += bed.netmsg(i)->backer().confirm_mismatches();
  }
  return result;
}

Json DedupResultToJson(const DedupResult& result) {
  const DedupConfig& config = result.config;
  Json json = Json::Object{};
  json["workload"] = Json(config.workload);
  json["strategy"] = Json(StrategyName(config.strategy));
  json["prefetch"] = Json(static_cast<std::int64_t>(config.prefetch));
  json["seed"] = Json(config.seed);
  json["hosts"] = Json(config.host_count);
  json["repeats"] = Json(config.repeats);
  json["content_cache"] = Json(config.content_cache);
  json["content_cache_pages"] = Json(config.content_cache_pages);
  json["calibrated"] = Json(AnyCalibrated(config.calibrations));

  json["drained"] = Json(result.drained);
  json["faulted_pages"] = Json(result.faulted_pages);
  json["origin_payload_pages"] = Json(result.origin_payload_pages);
  json["offloaded_pages"] = Json(result.offloaded_pages);
  json["origin_offload_ratio"] = Json(result.OriginOffloadRatio());
  json["wire_bytes"] = Json(result.wire_bytes);
  json["cache_hits"] = Json(result.cache_hits);
  json["cache_misses"] = Json(result.cache_misses);
  json["cache_insertions"] = Json(result.cache_insertions);
  json["cache_evictions"] = Json(result.cache_evictions);
  json["integrity_failures"] = Json(result.integrity_failures);

  Json::Array rounds;
  for (const DedupRound& row : result.rounds) {
    Json entry = Json::Object{};
    entry["round"] = Json(row.round);
    entry["dest_host"] = Json(row.dest_host);
    entry["faulted_pages"] = Json(row.faulted_pages);
    entry["payload_pages"] = Json(row.payload_pages);
    entry["origin_payload_pages"] = Json(row.origin_payload_pages);
    entry["confirmed_pages"] = Json(row.confirmed_pages);
    entry["holder_pages"] = Json(row.holder_pages);
    entry["wire_bytes"] = Json(row.wire_bytes);
    entry["integrity_ok"] = Json(row.integrity_ok);
    rounds.push_back(std::move(entry));
  }
  json["rounds"] = Json(std::move(rounds));
  return json;
}

}  // namespace accent
