#include "src/experiments/scenario_fuzz.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/base/page_ref.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/experiments/chain.h"
#include "src/experiments/cluster.h"
#include "src/experiments/sweep.h"
#include "src/experiments/testbed.h"
#include "src/net/page_service.h"
#include "src/vm/pager.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// The longest workload (Chess, 480 s of compute) on the slowest calibrated
// CPU (0.5x) with the 600 s abort backstop still fits with margin.
constexpr SimDuration kFuzzHorizon = Sec(7200.0);

std::uint64_t SplitMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The calibration menus. Identity is always on the menu so homogeneous
// corners stay in the fuzzed space.
constexpr double kCpuMenu[] = {0.5, 1.0, 2.0, 4.0};
constexpr double kLatencyMenu[] = {0.5, 1.0, 2.0};
constexpr double kBandwidthMenu[] = {0.5, 1.0, 2.0};

// One mechanistic run of a scenario's migration(s) on a private testbed.
// Mirrors the failure sweep's MigrationRun, extended with the optional
// re-migration hop and the backer-balance snapshot.
struct MechRun {
  bool drained = false;
  bool hop1_done = false;
  MigrationRecord hop1;
  bool remigrate_fired = false;
  bool hop2_done = false;
  MigrationRecord hop2;

  // The incarnation that finished (searched redest, dest, source — in that
  // order of likelihood), snapshotted before the testbed dies. The checksum
  // is captured at the instant of its kTerminate, not post-drain: at that
  // point the space-death notices are posted but not yet delivered (even a
  // local delivery costs a scheduled kernel hop), so every backing object
  // the process could still read remains intact. A post-mortem read races
  // those deaths against the chain collapse — a client terminating while
  // its rebind is still in flight legitimately retires both the origin and
  // the intermediate backing object, and the books balance even though
  // nothing is left to read.
  bool finished = false;
  SimTime finish{0};
  std::uint64_t checksum = 0;
  bool any_faulted = false;
  bool local_rolled_back_done = false;

  // Backer balance at drain time.
  bool nonorigin_objects_clear = true;
  std::uint64_t duplicate_deaths = 0;
  std::string backer_detail;

  // Dedup oracle at drain time: pages the cache plane served, and every
  // hash mismatch any layer of the walk counted (pager rejects of holder
  // payloads, cache insertions whose bytes belie their claimed hash, origin
  // confirm probes whose bytes disagree with the rider).
  std::uint64_t cache_activity = 0;
  std::uint64_t dedup_mismatches = 0;
};

MechRun RunMech(const FuzzScenario& sc, const FaultPlan& plan, std::uint64_t fault_seed,
                bool reliable) {
  TestbedConfig config;
  config.host_count = sc.host_count;
  config.calibrations = sc.calibrations;
  config.fault_plan = plan;
  config.fault_seed = fault_seed;
  config.reliable_transport = reliable;
  config.content_cache = sc.content_cache;
  config.content_cache_pages = sc.content_cache_pages;
  Testbed bed(config);
  bed.SetPrefetch(sc.prefetch);

  MechRun run;
  WorkloadInstance instance = BuildWorkload(WorkloadByName(sc.workload), bed.host(0), sc.seed);
  Process* proc = instance.process.get();
  const PortId owned_port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "proc-owned");
  proc->AttachReceiveRight(owned_port);
  bed.manager(0)->RegisterLocal(proc);

  // Observable content at the finishing incarnation's last breath (see the
  // MechRun comment for why this cannot wait until the testbed drains).
  bool observed = false;
  auto observe = [&run, &bed, &instance, &observed](Process* p) {
    if (observed || !p->done()) {
      return;
    }
    observed = true;
    run.checksum = ObservableChecksum(*p->space(), bed.segments(), instance.planned_touches);
  };
  proc->set_on_terminate(observe);

  // Latest incarnation inserted at each host (rollbacks re-insert at the
  // hop's source, so "latest" is the one that matters).
  std::vector<Process*> latest(static_cast<std::size_t>(sc.host_count), nullptr);
  latest[0] = proc;
  for (int i = 0; i < sc.host_count; ++i) {
    if (i == sc.dest) {
      continue;  // dest gets the re-migration arming handler below
    }
    bed.manager(i)->set_on_insert([&latest, i, &observe](Process* inserted) {
      latest[static_cast<std::size_t>(i)] = inserted;
      inserted->set_on_terminate(observe);
    });
  }

  // Re-migration arms exactly once, on the first landing at dest: execute
  // remigrate_at of the trace remaining there, then move on under the same
  // strategy. A rollback re-inserting at dest must not re-arm (the guard),
  // but is still tracked as the latest incarnation there.
  bool armed = false;
  bed.manager(sc.dest)->set_on_insert([&](Process* at_dest) {
    latest[static_cast<std::size_t>(sc.dest)] = at_dest;
    at_dest->set_on_terminate(observe);
    if (!sc.remigrate || armed) {
      return;
    }
    armed = true;
    const std::size_t pc = at_dest->trace_pc();
    const std::size_t size = at_dest->trace()->size();
    const std::size_t span = size > pc ? size - pc : 0;
    std::size_t target =
        pc + static_cast<std::size_t>(static_cast<double>(span) * sc.remigrate_at);
    if (target <= pc) {
      target = pc + 1;
    }
    if (target >= size && size > 0) {
      target = size - 1;  // at worst, just before the terminate op
    }
    at_dest->SuspendAt(target, [&, at_dest]() {
      run.remigrate_fired = true;
      bed.manager(sc.dest)->Migrate(at_dest, bed.manager(sc.redest)->port(), sc.strategy,
                                    [&run](const MigrationRecord& record) {
                                      run.hop2 = record;
                                      run.hop2_done = true;
                                    });
    });
  });

  bed.manager(0)->Migrate(proc, bed.manager(sc.dest)->port(), sc.strategy,
                          [&run](const MigrationRecord& record) {
                            run.hop1 = record;
                            run.hop1_done = true;
                          });

  run.drained = bed.RunGuarded(kFuzzHorizon);

  // Snapshot whichever incarnation finished (and whether any faulted)
  // before the testbed and its processes die.
  const std::vector<int> order = [&] {
    std::vector<int> o;
    if (sc.remigrate) {
      o.push_back(sc.redest);
    }
    o.push_back(sc.dest);
    o.push_back(0);
    return o;
  }();
  for (int host : order) {
    Process* p = latest[static_cast<std::size_t>(host)];
    if (p == nullptr) {
      continue;
    }
    if (p->faulted()) {
      run.any_faulted = true;
    }
    if (!run.finished && p->done()) {
      run.finished = true;
      run.finish = p->finish_time();
      if (host == 0 && p != proc) {
        run.local_rolled_back_done = true;
      }
    }
  }
  // The original incarnation can also finish at home after a rollback that
  // re-used it rather than re-inserting.
  if (!run.finished && proc->done()) {
    run.finished = true;
    run.finish = proc->finish_time();
  }
  ACCENT_CHECK(!run.finished || observed)
      << " a finished incarnation must have been observed at kTerminate";

  std::ostringstream backer_detail;
  for (int i = 0; i < sc.host_count; ++i) {
    const SegmentBacker& backer = bed.netmsg(i)->backer();
    run.duplicate_deaths += backer.duplicate_deaths();
    if (i != 0 && backer.object_count() != 0) {
      run.nonorigin_objects_clear = false;
      backer_detail << " host" << i << ":objects=" << backer.object_count();
    }
    const PagerStats& ps = bed.pager(i)->stats();
    run.cache_activity += ps.cache_local_hits + ps.cache_pages_confirmed +
                          ps.cache_pages_from_holders + ps.cache_pull_pages_served;
    run.dedup_mismatches += ps.cache_hash_rejects;
    run.dedup_mismatches += backer.confirm_mismatches();
    if (PageService* service = bed.page_service(i)) {
      run.dedup_mismatches += service->cache().stats().hash_mismatches;
    }
  }
  run.backer_detail = backer_detail.str();
  return run;
}

// The fleet-scale half of a scenario: same topology, calibrations and
// strategy, sized to finish quickly. Deliberately identical at both shard
// counts; the caller compares the canonical JSON byte for byte.
ClusterConfig MakeFleetConfig(const FuzzScenario& sc, int shards, int threads) {
  ClusterConfig config;
  config.host_count = sc.host_count;
  config.seed = sc.seed;
  config.duration = Sec(15.0);
  config.shards = shards;
  config.shard_threads = threads;
  config.initial_processes_per_host = 3;
  config.arrivals_per_host_per_sec = 0.25;
  config.mean_service_sec = 5.0;
  config.calibrations = sc.calibrations;
  config.policy.strategy = sc.strategy;
  config.policy.sample_period = Sec(1.0);
  config.policy.imbalance_threshold = 2;
  config.content_cache = sc.content_cache;
  config.content_cache_pages = sc.content_cache_pages;
  return config;
}

}  // namespace

std::string FuzzScenario::Describe() const {
  std::ostringstream out;
  out << "seed=" << seed << " hosts=" << host_count << " workload=" << workload
      << " strategy=" << StrategyName(strategy) << " prefetch=" << prefetch << " dest="
      << dest;
  if (remigrate) {
    out << " remigrate@" << remigrate_at << "->" << redest;
  }
  int calibrated = 0;
  int diskless = 0;
  for (const HostCalibration& cal : calibrations) {
    calibrated += cal.identity() ? 0 : 1;
    diskless += cal.diskless ? 1 : 0;
  }
  out << " calibrated=" << calibrated << "/" << host_count << " diskless=" << diskless;
  if (content_cache) {
    out << " cache=" << content_cache_pages;
  }
  if (drop > 0.0 || duplicate > 0.0 || delay > 0.0 || reorder > 0.0) {
    out << " lossy(drop=" << drop << ",dup=" << duplicate << ",delay=" << delay
        << ",reorder=" << reorder << ")";
  }
  if (partition_transfer) {
    out << " partition";
  }
  if (crash_dest) {
    out << " crash=dest";
  }
  if (crash_source) {
    out << " crash=source";
  }
  return out.str();
}

FuzzScenario MakeScenario(std::uint64_t seed) {
  FuzzScenario sc;
  sc.seed = seed;
  Rng root(SplitMix(seed ^ 0x5cea4a10f0220000ull));
  Rng topo = root.Fork(1);
  Rng work = root.Fork(2);
  Rng fault = root.Fork(3);

  sc.host_count = static_cast<int>(2 + topo.NextBelow(7));  // 2..8
  sc.calibrations.resize(static_cast<std::size_t>(sc.host_count));
  for (HostCalibration& cal : sc.calibrations) {
    if (topo.NextBool(0.5)) {
      cal.cpu_multiplier = kCpuMenu[topo.NextBelow(4)];
      cal.wire_latency_multiplier = kLatencyMenu[topo.NextBelow(3)];
      cal.wire_bandwidth_multiplier = kBandwidthMenu[topo.NextBelow(3)];
      cal.diskless = topo.NextBool(0.15);
    }
  }

  const std::vector<WorkloadSpec>& workloads = RepresentativeWorkloads();
  sc.workload = workloads[work.NextBelow(workloads.size())].name;
  sc.strategy = static_cast<TransferStrategy>(work.NextBelow(4));
  sc.prefetch = static_cast<std::uint32_t>(work.NextBelow(5));
  sc.dest = static_cast<int>(1 + work.NextBelow(static_cast<std::uint64_t>(sc.host_count - 1)));
  if (sc.host_count >= 3 && work.NextBool(0.4)) {
    sc.remigrate = true;
    sc.remigrate_at = 0.25 + 0.5 * work.NextDouble();
    // Third host: neither the origin nor the first-hop destination.
    std::vector<int> candidates;
    for (int i = 1; i < sc.host_count; ++i) {
      if (i != sc.dest) {
        candidates.push_back(i);
      }
    }
    sc.redest = candidates[work.NextBelow(candidates.size())];
  }

  if (fault.NextBool(0.7)) {
    sc.drop = 0.05 * fault.NextDouble();
    sc.duplicate = 0.05 * fault.NextDouble();
    sc.delay = 0.10 * fault.NextDouble();
    sc.reorder = fault.NextBool(0.5) ? 0.25 * fault.NextDouble() : 0.0;
  }
  sc.partition_transfer = fault.NextBool(0.2);
  const double crash_draw = fault.NextDouble();
  if (crash_draw < 0.15) {
    sc.crash_dest = true;
  } else if (crash_draw < 0.30) {
    sc.crash_source = true;
  }

  // Content cache, from its own fork so the topology/workload/fault streams
  // stay byte-identical to the cache-oblivious generator. The capacity menu
  // reaches down to 64 pages so eviction pressure is in the fuzzed space.
  Rng cache = root.Fork(4);
  if (cache.NextBool(0.5)) {
    constexpr std::int64_t kCacheMenu[] = {64, 512, 4096};
    sc.content_cache = true;
    sc.content_cache_pages = kCacheMenu[cache.NextBelow(3)];
  }
  return sc;
}

FuzzScenarioResult RunScenario(std::uint64_t seed) { return RunScenario(MakeScenario(seed)); }

FuzzScenarioResult RunScenario(const FuzzScenario& scenario) {
  FuzzScenarioResult result;
  result.scenario = scenario;
  std::ostringstream failure;

  // Homogeneous content reference: page contents never depend on topology,
  // calibration or faults, so one lossless pure-copy hop pins them.
  const std::uint64_t reference = ChainReferenceChecksum(scenario.workload, scenario.seed);

  // Lossless baseline on the scenario's own topology + calibrations:
  // supplies the phase boundaries crash/partition windows anchor to, and
  // proves the scenario completes when the wire behaves.
  MechRun baseline = RunMech(scenario, FaultPlan{}, scenario.seed, /*reliable=*/false);
  if (!baseline.drained || !baseline.hop1_done || baseline.hop1.aborted ||
      !baseline.finished) {
    result.outcome = FailureOutcome::kHung;
    result.hang = !baseline.drained;
    failure << "baseline did not complete;";
    result.failure = failure.str();
    return result;
  }
  if (baseline.checksum != reference) {
    failure << "baseline integrity mismatch;";
  }

  MechRun run = baseline;
  if (scenario.faulty()) {
    FaultPlan plan;
    plan.drop = scenario.drop;
    plan.duplicate = scenario.duplicate;
    plan.delay = scenario.delay;
    plan.reorder = scenario.reorder;
    const SimTime mid_transfer =
        baseline.hop1.excise_done + (baseline.hop1.resumed - baseline.hop1.excise_done) / 2;
    if (scenario.partition_transfer) {
      // A transient source<->dest cut mid-transfer; the reliable transport
      // must ride it out.
      plan.partitions.push_back(LinkPartition{
          HostId(1), HostId(static_cast<std::uint64_t>(scenario.dest + 1)), mid_transfer,
          mid_transfer + Sec(1.0)});
    }
    if (scenario.crash_dest) {
      plan.crashes.push_back(CrashWindow{
          HostId(static_cast<std::uint64_t>(scenario.dest + 1)), mid_transfer, kFaultForever});
    }
    if (scenario.crash_source) {
      // 30% into the baseline's remote execution: copy-on-reference debts
      // are typically still outstanding.
      const SimDuration remote_exec = baseline.finish - baseline.hop1.resumed;
      plan.crashes.push_back(CrashWindow{
          HostId(1), baseline.hop1.resumed + (remote_exec * 3) / 10, kFaultForever});
    }
    run = RunMech(scenario, plan, SplitMix(scenario.seed ^ 0xfa071ull), /*reliable=*/true);
  }

  result.remigrated = run.remigrate_fired;

  // ---- classify (failure-sweep taxonomy) ---------------------------------
  if (!run.drained) {
    result.outcome = FailureOutcome::kHung;
    result.hang = true;
    failure << "hung;";
  } else if (!run.hop1_done) {
    result.outcome = FailureOutcome::kHung;
    failure << "no migration verdict;";
  } else if (run.hop1.aborted && !run.finished) {
    result.outcome = FailureOutcome::kAborted;
    result.rolled_back = run.hop1.rolled_back;
  } else if (run.finished) {
    result.outcome = run.hop1.aborted ? FailureOutcome::kAborted : FailureOutcome::kCompleted;
    result.rolled_back = run.hop1.aborted && run.hop1.rolled_back;
    result.integrity_ok = run.checksum == reference;
    if (!result.integrity_ok) {
      failure << "integrity mismatch;";
    }
  } else if (run.any_faulted) {
    result.outcome = FailureOutcome::kTerminalFault;
  } else {
    result.outcome = FailureOutcome::kHung;
    failure << "drained without completion or fault;";
  }

  // ---- backer balance (crash-free scenarios only: a crashed host cannot
  // be expected to have settled its books) --------------------------------
  const bool crash_free = !scenario.crash_dest && !scenario.crash_source;
  if (crash_free && run.drained) {
    if (result.outcome == FailureOutcome::kCompleted && !run.nonorigin_objects_clear) {
      result.backer_balanced = false;
      failure << "backer objects stranded:" << run.backer_detail << ";";
    }
    if (run.duplicate_deaths != 0) {
      result.backer_balanced = false;
      failure << "duplicate deaths=" << run.duplicate_deaths << ";";
    }
  }

  // ---- dedup identity ----------------------------------------------------
  // Any page the cache plane served must have been byte-identical to what
  // the origin would have served: every layer of the walk hash-verifies and
  // counts mismatches, and a single count fails the scenario. (Stale serves
  // — a hit resurrecting a retired backer stub's page — additionally trip
  // the integrity/backer oracles above, because the destination would read
  // bytes the reference run never produced.) With the cache off, the walk
  // must never engage.
  std::uint64_t dedup_mismatches = run.dedup_mismatches;
  std::uint64_t cache_activity = run.cache_activity;
  if (scenario.faulty()) {
    // The lossless baseline ran separately; its counters are not in `run`.
    dedup_mismatches += baseline.dedup_mismatches;
    cache_activity += baseline.cache_activity;
  }
  if (dedup_mismatches != 0) {
    result.dedup_ok = false;
    failure << "dedup identity violation (hash mismatches=" << dedup_mismatches << ");";
  }

  // ---- fleet shard identity ----------------------------------------------
  const ClusterResult fleet1 = RunClusterTrial(MakeFleetConfig(scenario, 1, 1));
  const ClusterResult fleet2 = RunClusterTrial(MakeFleetConfig(scenario, 2, 2));
  // A lone migrating chain has no third-party holders, so mechanistic runs
  // only engage the dedup plane on a re-migration; the fleet half (many
  // processes, shared pages) is where cache serves actually accrue.
  result.cache_activity = cache_activity + fleet1.pages_deduped + fleet2.pages_deduped;
  if (!scenario.content_cache && result.cache_activity != 0) {
    result.dedup_ok = false;
    failure << "cache-off scenario touched the dedup plane (served="
            << result.cache_activity << ");";
  }
  const std::string json1 = ClusterResultToJson(fleet1).Dump();
  const std::string json2 = ClusterResultToJson(fleet2).Dump();
  result.shard_match = json1 == json2;
  result.cluster_census_ok = fleet1.census_ok && fleet2.census_ok;
  result.cluster_hung = fleet1.hung || fleet2.hung;
  result.diskless_backing_anchors =
      fleet1.diskless_backing_anchors + fleet2.diskless_backing_anchors;
  if (!result.shard_match) {
    failure << "shard divergence (1-shard vs 2-shard JSON differ);";
  }
  if (!result.cluster_census_ok) {
    failure << "fleet census imbalance;";
  }
  if (result.cluster_hung) {
    failure << "fleet hung;";
  }
  if (result.diskless_backing_anchors != 0) {
    failure << "diskless host anchored backing;";
  }

  result.failure = failure.str();
  return result;
}

FuzzCorpusResult RunFuzzCorpus(std::uint64_t first_seed, std::uint64_t count, int threads) {
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  const PageCounterSnapshot before = ReadPageCounters();

  // One slot per seed; every scenario owns private simulations, so thread
  // count and scheduling cannot reach any result.
  std::vector<std::optional<FuzzScenarioResult>> slots(static_cast<std::size_t>(count));
  ParallelFor(threads, static_cast<std::size_t>(count), [&](std::size_t i) {
    slots[i] = RunScenario(first_seed + i);
  });

  FuzzCorpusResult corpus;
  corpus.scenarios = count;
  corpus.results.reserve(slots.size());
  for (std::optional<FuzzScenarioResult>& slot : slots) {
    ACCENT_CHECK(slot.has_value()) << " fuzz scenario slot never filled";
    const FuzzScenarioResult& r = *slot;
    switch (r.outcome) {
      case FailureOutcome::kCompleted:
        ++corpus.completed;
        if (!r.integrity_ok) {
          ++corpus.integrity_failures;
        }
        break;
      case FailureOutcome::kAborted:
        ++corpus.aborted;
        break;
      case FailureOutcome::kTerminalFault:
        ++corpus.terminal_faults;
        break;
      case FailureOutcome::kHung:
        ++corpus.hung;
        break;
    }
    corpus.backer_imbalances += r.backer_balanced ? 0 : 1;
    corpus.shard_divergences += r.shard_match ? 0 : 1;
    corpus.cluster_census_failures += r.cluster_census_ok ? 0 : 1;
    corpus.cluster_hangs += r.cluster_hung ? 1 : 0;
    corpus.diskless_backing_anchors += r.diskless_backing_anchors;
    corpus.remigrations += r.remigrated ? 1 : 0;
    corpus.crash_scenarios +=
        (r.scenario.crash_dest || r.scenario.crash_source) ? 1 : 0;
    corpus.cached_scenarios += r.scenario.content_cache ? 1 : 0;
    corpus.dedup_failures += r.dedup_ok ? 0 : 1;
    if (!r.ok()) {
      ++corpus.failures;
      ACCENT_LOG(kError) << "fuzz: seed " << r.scenario.seed << " FAILED [" << r.failure
                         << "] scenario: " << r.scenario.Describe();
      ACCENT_LOG(kError) << "fuzz: replay with: tools/migrate_sim --replay-seed="
                         << r.scenario.seed;
    }
    corpus.results.push_back(std::move(*slot));
  }

  const PageCounterSnapshot after = ReadPageCounters();
  corpus.payload_leak = static_cast<std::int64_t>(after.live_payloads()) -
                        static_cast<std::int64_t>(before.live_payloads());
  if (corpus.payload_leak != 0) {
    ++corpus.failures;
    ACCENT_LOG(kError) << "fuzz: corpus leaked " << corpus.payload_leak
                       << " page payloads (allocs minus frees did not settle)";
  }
  return corpus;
}

Json FuzzCorpusToJson(const FuzzCorpusResult& corpus) {
  Json scenarios{Json::Array{}};
  for (const FuzzScenarioResult& r : corpus.results) {
    Json entry;
    entry["seed"] = Json(r.scenario.seed);
    entry["scenario"] = Json(r.scenario.Describe());
    entry["outcome"] = Json(FailureOutcomeName(r.outcome));
    entry["integrity_ok"] = Json(r.integrity_ok);
    entry["rolled_back"] = Json(r.rolled_back);
    entry["remigrated"] = Json(r.remigrated);
    entry["backer_balanced"] = Json(r.backer_balanced);
    entry["shard_match"] = Json(r.shard_match);
    entry["cluster_census_ok"] = Json(r.cluster_census_ok);
    entry["cluster_hung"] = Json(r.cluster_hung);
    entry["content_cache"] = Json(r.scenario.content_cache);
    entry["dedup_ok"] = Json(r.dedup_ok);
    entry["cache_activity"] = Json(r.cache_activity);
    entry["failure"] = Json(r.failure);
    scenarios.Append(std::move(entry));
  }

  Json report;
  report["bench"] = Json("fuzz_corpus");
  report["schema_version"] = Json(1);
  report["first_seed"] =
      Json(corpus.results.empty() ? std::uint64_t{0} : corpus.results.front().scenario.seed);
  report["scenario_count"] = Json(corpus.scenarios);
  report["completed"] = Json(corpus.completed);
  report["aborted"] = Json(corpus.aborted);
  report["terminal_faults"] = Json(corpus.terminal_faults);
  report["hung"] = Json(corpus.hung);
  report["integrity_failures"] = Json(corpus.integrity_failures);
  report["backer_imbalances"] = Json(corpus.backer_imbalances);
  report["shard_divergences"] = Json(corpus.shard_divergences);
  report["cluster_census_failures"] = Json(corpus.cluster_census_failures);
  report["cluster_hangs"] = Json(corpus.cluster_hangs);
  report["diskless_backing_anchors"] = Json(corpus.diskless_backing_anchors);
  report["payload_leak"] = Json(static_cast<std::int64_t>(corpus.payload_leak));
  report["remigrations"] = Json(corpus.remigrations);
  report["crash_scenarios"] = Json(corpus.crash_scenarios);
  report["cached_scenarios"] = Json(corpus.cached_scenarios);
  report["dedup_failures"] = Json(corpus.dedup_failures);
  report["failures"] = Json(corpus.failures);
  report["scenarios"] = std::move(scenarios);
  return report;
}

}  // namespace accent
