#include "src/experiments/chain.h"

#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/base/page_data.h"
#include "src/base/thread_pool.h"
#include "src/experiments/sweep.h"
#include "src/experiments/testbed.h"
#include "src/workloads/workload.h"

namespace accent {

namespace {

// Two migrations plus remote execution; the 600 s abort backstop and the
// longest workload both fit with room to spare.
constexpr SimDuration kChainHorizon = Sec(3600.0);

// Far enough out that the baseline's planted crash never fires, yet the
// FaultInjector still attaches — so the baseline and the crashed rerun share
// an identical pre-crash event schedule.
constexpr SimTime kNeverCrash = SimTime{3'000'000'000'000};  // ~35 days

}  // namespace

// Same fold as the failure sweep's TouchedChecksum. A chain's final
// incarnation does not hold every planned page privately: pages touched only
// at an intermediate hop stay owed to the backing chain, so they are
// resolved through their backer object via the (simulation-global) segment
// table — which also checks that a collapse actually moved the bytes, not
// just the references.
std::uint64_t ObservableChecksum(const AddressSpace& space, const SegmentTable& segments,
                                 const std::set<PageIndex>& touches) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
  };
  for (PageIndex page : touches) {
    mix(page);
    if (space.HasPrivatePage(page)) {
      mix(PageIntegrityChecksum(space.ReadPage(page)));
    } else if (space.ClassOf(PageBase(page)) == MemClass::kImag) {
      const AddressSpace::ImagTarget target = space.ImagTargetOf(PageBase(page));
      Segment* backer = segments.Find(target.iou.segment);
      mix(backer != nullptr ? PageIntegrityChecksum(backer->ReadPage(PageOf(target.backer_offset)))
                            : 0);
    } else {
      mix(PageIntegrityChecksum(space.ReadPage(page)));
    }
  }
  return h;
}

// One lossless single-hop pure-copy migration of the same workload
// instance, run to completion at the destination (the failure sweep's
// baseline methodology). BuildWorkload is bit-deterministic per
// (spec, seed), so any later run must reproduce these page contents
// whatever the strategy, topology or calibration.
std::uint64_t ChainReferenceChecksum(const std::string& workload, std::uint64_t seed) {
  Testbed bed;
  WorkloadInstance instance = BuildWorkload(WorkloadByName(workload), bed.host(0), seed);
  Process* proc = instance.process.get();
  bed.manager(0)->RegisterLocal(proc);

  Process* remote = nullptr;
  bed.manager(1)->set_on_insert([&remote](Process* inserted) { remote = inserted; });
  bool done = false;
  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), TransferStrategy::kPureCopy,
                          [&done](const MigrationRecord&) { done = true; });
  bed.sim().Run();
  ACCENT_CHECK(done && remote != nullptr && remote->done())
      << " reference migration of " << workload << " did not finish";
  return ObservableChecksum(*remote->space(), bed.segments(), instance.planned_touches);
}

ChainTrialResult RunChainTrial(const ChainTrialConfig& config) {
  const std::uint64_t reference = ChainReferenceChecksum(config.workload, config.seed);

  TestbedConfig testbed_config;
  testbed_config.host_count = 3;
  testbed_config.calibrations = config.calibrations;
  if (config.crash_intermediate) {
    // Host index 1 (the intermediary B) carries HostId 2; the crash is
    // permanent. Reliable transport comes with the non-trivial plan.
    testbed_config.fault_plan.crashes.push_back(
        CrashWindow{HostId(2), config.crash_at, kFaultForever});
    testbed_config.fault_seed = config.seed;
  }
  Testbed bed(testbed_config);
  bed.SetPrefetch(config.prefetch);

  ChainTrialResult result;
  result.config = config;

  WorkloadInstance instance = BuildWorkload(WorkloadByName(config.workload), bed.host(0),
                                            config.seed);
  Process* proc = instance.process.get();
  const PortId owned_port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "proc-owned");
  proc->AttachReceiveRight(owned_port);
  bed.manager(0)->RegisterLocal(proc);

  Process* at_c = nullptr;
  bed.manager(2)->set_on_insert([&at_c](Process* inserted) { at_c = inserted; });

  // Post-collapse counters are deltas against a snapshot taken the moment
  // the collapse completes at B. Trials whose chain never forms (pure-copy
  // carries no IOUs, so there is nothing to collapse) snapshot at hop-2
  // completion instead: "after collapse" then simply means "after the
  // re-migration handshake".
  bool have_snapshot = false;
  std::uint64_t b_requests_snap = 0;
  std::uint64_t b_forwards_snap = 0;
  std::uint64_t origin_requests_snap = 0;
  auto snapshot = [&]() {
    b_requests_snap = bed.netmsg(1)->backer().requests_served();
    b_forwards_snap = bed.netmsg(1)->backer().requests_forwarded();
    origin_requests_snap = bed.netmsg(0)->backer().requests_served();
    have_snapshot = true;
  };

  bed.manager(1)->set_on_collapse([&](const ChainCollapseStats& stats) {
    result.collapse_done = true;
    result.collapse = stats;
    snapshot();
  });

  // Hop 2 arms itself when the process lands at B: execute remigrate_at of
  // the trace remaining there, then move on to C under the same strategy.
  bed.manager(1)->set_on_insert([&](Process* at_b) {
    const std::size_t pc = at_b->trace_pc();
    const std::size_t size = at_b->trace()->size();
    const std::size_t span = size > pc ? size - pc : 0;
    std::size_t target =
        pc + static_cast<std::size_t>(static_cast<double>(span) * config.remigrate_at);
    if (target <= pc) {
      target = pc + 1;
    }
    if (target >= size && size > 0) {
      target = size - 1;  // at worst, just before the terminate op
    }
    at_b->SuspendAt(target, [&, at_b]() {
      bed.manager(1)->Migrate(at_b, bed.manager(2)->port(), config.strategy,
                              [&](const MigrationRecord& record) {
                                result.hop2 = record;
                                result.hop2_done = true;
                                if (!have_snapshot) {
                                  snapshot();
                                }
                              });
    });
  });

  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), config.strategy,
                          [&](const MigrationRecord& record) {
                            result.hop1 = record;
                            result.hop1_done = true;
                          });

  result.drained = bed.RunGuarded(kChainHorizon);

  result.finished_at_c = at_c != nullptr && at_c->done();
  if (result.finished_at_c) {
    result.finished = at_c->finish_time();
    result.integrity_ok =
        ObservableChecksum(*at_c->space(), bed.segments(), instance.planned_touches) ==
        reference;
  }

  SegmentBacker& b = bed.netmsg(1)->backer();
  if (have_snapshot) {
    result.b_requests_after_collapse = b.requests_served() - b_requests_snap;
    result.b_forwards_after_collapse = b.requests_forwarded() - b_forwards_snap;
    result.origin_requests_after_collapse =
        bed.netmsg(0)->backer().requests_served() - origin_requests_snap;
  }
  result.b_objects_after_collapse = b.object_count();
  result.b_stubs = b.stub_count();
  result.handoff_pages = b.handoff_pages_sent();
  result.c_imag_faults = bed.pager(2)->stats().imag_faults;
  return result;
}

std::vector<ChainTrialConfig> ChainSweepConfigs(const std::string& workload,
                                                std::uint64_t seed) {
  std::vector<ChainTrialConfig> configs;
  ChainTrialConfig base;
  base.workload = workload;
  base.seed = seed;

  ChainTrialConfig pure_copy = base;
  pure_copy.strategy = TransferStrategy::kPureCopy;
  configs.push_back(pure_copy);

  for (TransferStrategy strategy :
       {TransferStrategy::kPureIou, TransferStrategy::kResidentSet}) {
    for (std::uint32_t prefetch : kPaperPrefetchValues) {
      ChainTrialConfig config = base;
      config.strategy = strategy;
      config.prefetch = prefetch;
      configs.push_back(config);
    }
  }

  // Pre-copy, like pure-copy, leaves no IOUs behind (everything arrives
  // physically by resumption), so one cell per workload suffices and the
  // collapse machinery must find nothing to hand off.
  ChainTrialConfig precopy = base;
  precopy.strategy = TransferStrategy::kPreCopy;
  configs.push_back(precopy);
  return configs;
}

std::vector<ChainTrialResult> RunChainTrials(const std::vector<ChainTrialConfig>& configs,
                                             int threads) {
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  // One slot per trial; every trial owns a private Testbed, so thread count
  // and scheduling cannot reach any result.
  std::vector<std::optional<ChainTrialResult>> slots(configs.size());
  ParallelFor(threads, configs.size(),
              [&](std::size_t i) { slots[i] = RunChainTrial(configs[i]); });

  std::vector<ChainTrialResult> results;
  results.reserve(slots.size());
  for (std::optional<ChainTrialResult>& slot : slots) {
    ACCENT_CHECK(slot.has_value()) << " chain trial slot never filled";
    results.push_back(std::move(*slot));
  }
  return results;
}

ChainCrashResult RunChainCrashTrial(ChainTrialConfig config) {
  ChainCrashResult result;

  // Baseline: same fault plan shape (injector attached, reliable transport
  // on) with the crash parked beyond the horizon, so the rerun's schedule is
  // identical right up to the planted crash. The baseline fixes when the
  // collapse completes.
  config.crash_intermediate = true;
  config.crash_at = kNeverCrash;
  result.baseline = RunChainTrial(config);
  ACCENT_CHECK(result.baseline.drained && result.baseline.finished_at_c)
      << " chain crash baseline failed for " << config.workload;
  ACCENT_CHECK(result.baseline.collapse_done)
      << " chain crash baseline never collapsed for " << config.workload
      << " (" << StrategyName(config.strategy) << ")";

  // Kill B for good just after its chain collapsed. The process at C must
  // finish with intact contents: its residual dependency moved to A.
  config.crash_at = result.baseline.collapse.collapsed_at + Ms(1);
  result.crashed = RunChainTrial(config);
  result.survived = result.crashed.drained && result.crashed.finished_at_c &&
                    result.crashed.integrity_ok;
  return result;
}

Json ChainSweepToJson(const std::vector<ChainTrialResult>& trials,
                      const std::vector<ChainCrashResult>& crash_trials) {
  std::uint64_t collapses = 0;
  std::uint64_t b_requests_total = 0;
  std::uint64_t b_forwards_total = 0;
  std::uint64_t b_objects_total = 0;
  std::uint64_t integrity_failures = 0;
  std::uint64_t hung = 0;

  Json trial_array{Json::Array{}};
  for (const ChainTrialResult& trial : trials) {
    if (trial.collapse_done) {
      ++collapses;
    }
    b_requests_total += trial.b_requests_after_collapse;
    b_forwards_total += trial.b_forwards_after_collapse;
    b_objects_total += trial.b_objects_after_collapse;
    if (!trial.drained || !trial.finished_at_c) {
      ++hung;
    } else if (!trial.integrity_ok) {
      ++integrity_failures;
    }

    Json entry;
    entry["workload"] = Json(trial.config.workload);
    entry["strategy"] = Json(StrategyName(trial.config.strategy));
    entry["prefetch"] = Json(trial.config.prefetch);
    entry["hop1_downtime_us"] = Json(static_cast<std::int64_t>(trial.Hop1Downtime().count()));
    entry["hop2_downtime_us"] = Json(static_cast<std::int64_t>(trial.Hop2Downtime().count()));
    entry["collapse_done"] = Json(trial.collapse_done);
    entry["objects_handed_off"] = Json(trial.collapse.objects_handed_off);
    entry["rebinds_acked"] = Json(trial.collapse.rebinds_acked);
    entry["segments_rebound"] = Json(trial.collapse.segments_rebound);
    entry["collapsed_at_us"] =
        Json(static_cast<std::int64_t>(trial.collapse.collapsed_at.count()));
    entry["handoff_pages"] = Json(trial.handoff_pages);
    entry["b_requests_after_collapse"] = Json(trial.b_requests_after_collapse);
    entry["b_forwards_after_collapse"] = Json(trial.b_forwards_after_collapse);
    entry["b_objects_after_collapse"] = Json(trial.b_objects_after_collapse);
    entry["b_stubs"] = Json(static_cast<std::uint64_t>(trial.b_stubs));
    entry["origin_requests_after_collapse"] = Json(trial.origin_requests_after_collapse);
    entry["c_imag_faults"] = Json(trial.c_imag_faults);
    entry["integrity_ok"] = Json(trial.integrity_ok);
    entry["finished_us"] = Json(static_cast<std::int64_t>(trial.finished.count()));
    trial_array.Append(std::move(entry));
  }

  bool all_crashes_survived = true;
  Json crash_array{Json::Array{}};
  for (const ChainCrashResult& crash : crash_trials) {
    all_crashes_survived = all_crashes_survived && crash.survived;
    Json entry;
    entry["workload"] = Json(crash.crashed.config.workload);
    entry["strategy"] = Json(StrategyName(crash.crashed.config.strategy));
    entry["crash_at_us"] =
        Json(static_cast<std::int64_t>(crash.crashed.config.crash_at.count()));
    entry["survived"] = Json(crash.survived);
    entry["finished_us"] = Json(static_cast<std::int64_t>(crash.crashed.finished.count()));
    crash_array.Append(std::move(entry));
  }

  Json report;
  report["bench"] = Json("chain_sweep");
  report["schema_version"] = Json(1);
  report["trial_count"] = Json(static_cast<std::uint64_t>(trials.size()));
  report["collapses"] = Json(collapses);
  report["b_requests_after_collapse_total"] = Json(b_requests_total);
  report["b_forwards_after_collapse_total"] = Json(b_forwards_total);
  report["b_objects_after_collapse_total"] = Json(b_objects_total);
  report["integrity_failures"] = Json(integrity_failures);
  report["hung"] = Json(hung);
  report["crash_trial_count"] = Json(static_cast<std::uint64_t>(crash_trials.size()));
  report["b_crash_survived"] = Json(all_crashes_survived);
  report["trials"] = std::move(trial_array);
  report["crash_trials"] = std::move(crash_array);
  return report;
}

}  // namespace accent
