// Repeated-image dedup trials: the content-addressed page service's
// headline experiment.
//
// The same Table 4-1 program migrates N times from one origin host across a
// calibrated fleet (destinations round-robin over the other hosts). Every
// incarnation carries byte-identical pages, so after the first migration has
// paid full freight the cluster already holds the content: later faults are
// answered by the destination's own ContentCache (a confirm ack instead of
// payload) or by the nearest holder — and the origin SegmentBacker, the
// paper's §5 bottleneck, drops out of the fault path. The experiment
// measures exactly that: the origin-offload ratio, the bytes-on-wire saving
// against a cache-off run of the identical schedule, per-host cache hit
// rates, and end-to-end integrity of every migrated incarnation.
#ifndef SRC_EXPERIMENTS_DEDUP_H_
#define SRC_EXPERIMENTS_DEDUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/migration/strategy.h"

namespace accent {

struct DedupConfig {
  std::string workload = "Minprog";
  TransferStrategy strategy = TransferStrategy::kPureIou;
  std::uint32_t prefetch = 0;
  std::uint64_t seed = 42;

  // Fleet shape: host 0 is the origin; migration i lands on host
  // 1 + (i % (host_count - 1)).
  int host_count = 4;
  int repeats = 8;

  // Content cache plane. Off reproduces the classic protocol exactly — the
  // bench uses that as its bytes-on-wire baseline.
  bool content_cache = true;
  std::int64_t content_cache_pages = 4096;

  // Per-host calibrations (empty = homogeneous). The bench runs the mildly
  // heterogeneous fleet from DedupFleetCalibrations so NearestHolder's
  // link-cost ranking is exercised, not just defaulted.
  std::vector<HostCalibration> calibrations{};
};

// One migration of the repeated sequence, all counters as deltas against
// the previous round.
struct DedupRound {
  int round = 0;      // 0-based
  int dest_host = 0;  // host index the process landed on
  std::uint64_t faulted_pages = 0;        // payload + confirmed at the dest
  std::uint64_t payload_pages = 0;        // crossed the wire as page data
  std::uint64_t origin_payload_pages = 0; // of those, served by the origin
  std::uint64_t confirmed_pages = 0;      // local cache hits (ack, no payload)
  std::uint64_t holder_pages = 0;         // payload served by a nearer holder
  ByteCount wire_bytes = 0;               // all traffic this round
  bool integrity_ok = false;              // touched checksum == reference
};

struct DedupResult {
  DedupConfig config;
  bool drained = false;  // every round's event queue emptied

  std::vector<DedupRound> rounds;

  // Totals over all rounds.
  std::uint64_t faulted_pages = 0;
  std::uint64_t origin_payload_pages = 0;
  std::uint64_t offloaded_pages = 0;  // faulted - origin payload
  ByteCount wire_bytes = 0;

  // Cache plane health, summed over every host's ContentCache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;

  // Identity discipline: forged-insert rejections + holder payloads whose
  // bytes did not hash to the shipped identity + origin confirm mismatches +
  // any round whose touched checksum diverged from the reference. The bench
  // gates on this staying 0.
  std::uint64_t integrity_failures = 0;

  // Fraction of faulted pages the origin did NOT serve as payload.
  double OriginOffloadRatio() const {
    return faulted_pages == 0
               ? 0.0
               : static_cast<double>(offloaded_pages) / static_cast<double>(faulted_pages);
  }
};

// The bench's mildly heterogeneous 4-host fleet: identity origin, a faster
// CPU, a slower link and a higher-latency link, so holder ranking has real
// distances to compare.
std::vector<HostCalibration> DedupFleetCalibrations(int host_count);

// Runs the repeated-migration sequence on one testbed. Deterministic per
// config.
DedupResult RunDedupExperiment(const DedupConfig& config);

// Canonical JSON for one run (sorted keys, exact integers).
Json DedupResultToJson(const DedupResult& result);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_DEDUP_H_
