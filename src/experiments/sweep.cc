#include "src/experiments/sweep.h"

#include <cstdlib>
#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/base/thread_pool.h"

namespace accent {

int SweepThreadCount() {
  if (const char* env = std::getenv("ACCENT_SWEEP_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
    // Malformed or non-positive values fall through to the hardware default
    // rather than aborting: CI scripts set this blindly.
  }
  return ThreadPool::HardwareThreads();
}

std::vector<TrialConfig> StrategySweepConfigs(const std::string& workload,
                                              std::uint64_t seed) {
  std::vector<TrialConfig> configs;
  TrialConfig config;
  config.workload = workload;
  config.seed = seed;

  config.strategy = TransferStrategy::kPureCopy;
  config.prefetch = 0;
  configs.push_back(config);

  for (TransferStrategy strategy :
       {TransferStrategy::kPureIou, TransferStrategy::kResidentSet}) {
    for (std::uint32_t prefetch : kPaperPrefetchValues) {
      config.strategy = strategy;
      config.prefetch = prefetch;
      configs.push_back(config);
    }
  }
  return configs;
}

std::vector<TrialResult> RunTrials(const std::vector<TrialConfig>& configs, int threads) {
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  // Results land in per-index slots, so completion order (which depends on
  // scheduling) never affects output order.
  std::vector<std::optional<TrialResult>> slots(configs.size());
  ParallelFor(threads, configs.size(),
              [&configs, &slots](std::size_t i) { slots[i] = RunTrial(configs[i]); });

  std::vector<TrialResult> results;
  results.reserve(configs.size());
  for (std::optional<TrialResult>& slot : slots) {
    ACCENT_CHECK(slot.has_value()) << " trial slot never filled";
    results.push_back(std::move(*slot));
  }
  return results;
}

std::vector<TrialResult> RunStrategySweepParallel(const std::string& workload,
                                                  std::uint64_t seed, int threads) {
  return RunTrials(StrategySweepConfigs(workload, seed), threads);
}

}  // namespace accent
