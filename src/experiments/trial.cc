#include "src/experiments/trial.h"

#include <utility>

#include "src/base/logging.h"
#include "src/experiments/sweep.h"
#include "src/experiments/testbed.h"

namespace accent {

TrialResult RunTrial(const TrialConfig& config) {
  TestbedConfig testbed_config;
  testbed_config.host_count = 2;
  testbed_config.iou_caching = config.iou_caching;
  testbed_config.frames_per_host = config.frames_per_host;
  testbed_config.traffic_bucket = config.traffic_bucket;
  testbed_config.costs.rs_zero_scan_per_mb = config.rs_zero_scan_per_mb;
  testbed_config.content_cache = config.content_cache;
  testbed_config.content_cache_pages = config.content_cache_pages;
  testbed_config.tracer = config.tracer;
  Testbed bed(testbed_config);

  TrialResult result;
  result.config = config;

  bed.SetPrefetch(config.prefetch);

  WorkloadInstance instance = BuildWorkload(WorkloadByName(config.workload), bed.host(0),
                                            config.seed);
  result.spec = instance.spec;
  Process* proc = instance.process.get();

  // Give the process a port so right-transfer is exercised on every trial.
  const PortId owned_port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "proc-owned");
  proc->AttachReceiveRight(owned_port);
  bed.manager(0)->RegisterLocal(proc);

  Process* remote_proc = nullptr;
  bed.manager(1)->set_on_insert([&](Process* inserted) { remote_proc = inserted; });

  if (config.strategy == TransferStrategy::kPreCopy) {
    PreCopyConfig precopy;
    precopy.max_rounds = config.precopy_max_rounds;
    precopy.stop_threshold = config.precopy_stop_threshold;
    precopy.target_downtime = config.precopy_target_downtime;
    bed.manager(0)->set_precopy_config(precopy);
  }

  bool completed = false;
  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), config.strategy,
                          [&](const MigrationRecord& record) {
                            result.migration = record;
                            completed = true;
                          });

  bed.sim().Run();
  ACCENT_CHECK(completed) << " migration of " << config.workload << " never completed";
  ACCENT_CHECK(remote_proc != nullptr);
  ACCENT_CHECK(remote_proc->done())
      << " " << config.workload << " did not finish remote execution";

  result.finished = remote_proc->finish_time();
  result.remote_exec = result.finished - result.migration.resumed;

  const TrafficRecorder& traffic = bed.traffic();
  result.bytes_total = traffic.TotalBytes();
  result.bytes_control = traffic.BytesOf(TrafficKind::kControl);
  result.bytes_core = traffic.BytesOf(TrafficKind::kCoreContext);
  result.bytes_bulk = traffic.BytesOf(TrafficKind::kBulkData);
  result.bytes_fault = traffic.BytesOf(TrafficKind::kFaultData);
  result.messages_total = traffic.TotalMessages();
  result.series = traffic.buckets();
  result.series_bucket = traffic.bucket_width();
  result.netmsg_busy = bed.TotalNetMsgBusy();
  result.dest_pager = bed.pager(1)->stats();

  // RealMem bytes that crossed as page data: shipped at migration time plus
  // pages fetched by imaginary faults (incl. prefetch).
  ByteCount shipped = 0;
  switch (config.strategy) {
    case TransferStrategy::kPureCopy:
      shipped = result.spec.real_bytes;
      break;
    case TransferStrategy::kPureIou:
      shipped = 0;
      break;
    case TransferStrategy::kResidentSet:
      shipped = result.migration.resident_bytes_shipped;
      break;
    case TransferStrategy::kPreCopy:
      // Rounds shipped while running plus the freeze-and-flash remainder;
      // re-shipped dirty pages count every time they cross.
      shipped = result.migration.precopy_bytes + result.migration.precopy_flash_bytes;
      break;
  }
  result.real_bytes_transferred =
      shipped + result.dest_pager.imag_pages_fetched * kPageSize;
  return result;
}

std::vector<TrialResult> RunStrategySweep(const std::string& workload, std::uint64_t seed) {
  // Serial reference path: same grid as the parallel engine (sweep.h), one
  // trial at a time on the calling thread.
  std::vector<TrialResult> results;
  for (const TrialConfig& config : StrategySweepConfigs(workload, seed)) {
    results.push_back(RunTrial(config));
  }
  return results;
}

}  // namespace accent
