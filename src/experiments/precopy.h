// The live pre-copy sweep: strategy family four measured against the
// paper's three.
//
// Each cell migrates one representative workload under either a paper
// strategy (pure-copy, pure-IOU, resident-set) or pre-copy at a point in
// the round-cap x downtime-SLO grid. Workloads with enough compute runway
// migrate *live*: the process starts executing at the source and the
// migration fires mid-run, so pre-copy's rounds race a real writer and
// re-ship genuinely dirtied pages. Short workloads migrate at their staged
// migration point (the paper's model) — pre-copy then degenerates to one
// snapshot round, which is itself part of the story.
//
// The sweep asserts the trade the paper's §5 predicts and Theimer's V
// system measured: pre-copy beats pure-copy on downtime (freeze-to-resume)
// for the compute-bound workloads, and loses on page bytes — every page
// dirtied during a round crosses the wire again. BENCH_precopy.json carries
// the full grid plus a per-workload Pareto summary (downtime vs bytes);
// tools/check_bench.sh --precopy re-asserts the headline gates.
#ifndef SRC_EXPERIMENTS_PRECOPY_H_
#define SRC_EXPERIMENTS_PRECOPY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/types.h"
#include "src/migration/strategy.h"

namespace accent {

// One point of the grid. For the three paper strategies the pre-copy knobs
// are ignored; `live` is a property of the workload (enough compute runway
// to migrate mid-execution) and is identical across a workload's cells so
// every comparison is at the same migration point.
struct PreCopySweepCell {
  std::string workload;
  TransferStrategy strategy = TransferStrategy::kPureCopy;
  int max_rounds = 0;               // pre-copy cells only
  SimDuration target_downtime{0};   // pre-copy cells only; 0 = SLO off
  bool live = false;
  SimDuration migrate_at{0};        // live cells: source execution before Migrate
};

struct PreCopySweepCellResult {
  PreCopySweepCell cell;
  bool completed = false;  // migration done, remote ran to completion
  bool hung = false;       // watchdog fired (always a bug)
  int rounds = 0;          // pre-copy rounds (0 for paper strategies)
  SimDuration downtime{0};            // process runnable nowhere
  SimDuration total{0};               // request -> remote completion
  ByteCount page_bytes = 0;           // bulk + fault wire traffic
  ByteCount wire_bytes = 0;           // all wire traffic
  double wws_pages = 0.0;             // final writable-working-set estimate
  SimDuration predicted_downtime{0};  // last SLO-loop prediction (0 = SLO off)
  bool slo_met = false;
};

struct PreCopySweepSummary {
  std::vector<PreCopySweepCellResult> cells;  // fixed grid order
  std::uint64_t completed = 0;
  std::uint64_t hung = 0;

  // Headline gates (see RunPreCopySweep).
  int downtime_wins = 0;          // compute-bound workloads beating pure-copy
  bool downtime_win_ok = false;   // >= 2 such workloads
  bool bytes_ordering_ok = false; // per workload: precopy >= pure-copy >= IOU
  bool slo_ok = false;            // SLO met on every compute-bound workload
};

// The fixed grid: 7 workloads x (3 paper strategies + round caps {1,4,8} x
// SLOs {off, 1 s, 5 s}) = 84 cells, in deterministic order.
std::vector<PreCopySweepCell> PreCopySweepCells();

// One cell on a private testbed. Deterministic for (cell, seed).
PreCopySweepCellResult RunPreCopyCell(const PreCopySweepCell& cell, std::uint64_t seed);

// The full grid, fanned out over up to `threads` workers (0 =
// SweepThreadCount()); results return in grid order, byte-identical at any
// thread count. Gates:
//   - nothing hangs, every migration completes;
//   - pre-copy's best cell beats pure-copy on downtime for the
//     compute-bound workloads (Chess, Lisp-Del);
//   - page bytes order pre-copy >= pure-copy >= pure-IOU per workload
//     (dirty re-shipping is pre-copy's bill; §5's critique);
//   - the SLO predictor fires on the compute-bound workloads.
PreCopySweepSummary RunPreCopySweep(std::uint64_t seed = 42, int threads = 0);

// Canonical JSON (sorted keys): gates, the per-workload Pareto summary
// (downtime vs page bytes) and every cell.
Json PreCopySweepToJson(const PreCopySweepSummary& summary);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_PRECOPY_H_
