// The failure matrix: migration under a lossy, partitioning wire.
//
// The paper's evaluation assumes the testbed Ethernet never fails; §5's
// residual-dependency discussion is exactly the admission that it can. This
// sweep reruns the seven representative workloads under every transfer
// strategy while a FaultPlan mistreats the wire, and classifies each trial:
//
//   completed      — the migration finished and the destination's touched
//                    pages are byte-identical to the lossless run;
//   aborted        — the transfer could not complete (peer unreachable);
//                    the source rolled the process back and it stayed
//                    runnable at home;
//   terminal_fault — the migration completed but a residual dependency
//                    (copy-on-reference page owed by a crashed source)
//                    could never be satisfied; the process stopped with a
//                    fault instead of hanging;
//   hung           — the simulated-time watchdog fired: events still
//                    pending past the horizon. Always a bug; the suite
//                    asserts this count is zero.
//
// Every (workload, strategy) group first runs a lossless baseline to learn
// the migration's natural phase boundaries — crash windows are planted
// mid-transfer and mid-remote-execution relative to those — and to record
// the integrity checksum faulty runs must reproduce. Groups are independent
// (each trial owns a private Testbed), so the matrix fans out across
// threads with byte-identical results at any thread count.
#ifndef SRC_EXPERIMENTS_FAILURE_SWEEP_H_
#define SRC_EXPERIMENTS_FAILURE_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/migration/migration_record.h"
#include "src/migration/strategy.h"
#include "src/net/fault.h"

namespace accent {

enum class FailureOutcome : int {
  kCompleted = 0,
  kAborted = 1,
  kTerminalFault = 2,
  kHung = 3,
};

const char* FailureOutcomeName(FailureOutcome outcome);

// One column of the matrix: a wire mistreatment recipe. Crash flags plant a
// permanent CrashWindow at a phase boundary taken from the group's lossless
// baseline (the plan cannot carry absolute times until that run exists).
struct FailureScenario {
  std::string name;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double reorder = 0.0;
  bool crash_dest = false;    // destination dies mid-transfer, for good
  bool crash_source = false;  // source dies mid-remote-execution, for good
};

// The fixed scenario set (grid order): drop2, lossy5 (the acceptance
// recipe: 5% drop + 5% duplicate + reorder), dest_crash, source_crash.
const std::vector<FailureScenario>& FailureScenarios();

// Lossless reference for one (workload, strategy): phase boundaries for
// crash placement, completion time for slowdown, touched-page checksum for
// integrity.
struct FailureBaseline {
  MigrationRecord migration;
  SimTime finished{0};
  SimDuration remote_exec{0};
  std::uint64_t touched_checksum = 0;
};

struct FailureTrialResult {
  std::string workload;
  TransferStrategy strategy = TransferStrategy::kPureCopy;
  std::string scenario;
  FailureOutcome outcome = FailureOutcome::kHung;
  bool integrity_ok = false;  // completed AND checksum matches baseline
  bool rolled_back = false;   // aborted AND process runnable at source again
  std::string abort_reason;

  // Retry/fault traffic accounting (summed over both hosts).
  std::uint64_t fragments_retransmitted = 0;
  ByteCount retransmit_bytes = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t transfers_dead_lettered = 0;
  std::uint64_t deliveries_lost = 0;  // Network-level drops/blocks

  SimTime finished{0};    // remote (or rolled-back local) completion
  double slowdown = 0.0;  // finished / lossless finished; completed only
};

FailureBaseline RunFailureBaseline(const std::string& workload, TransferStrategy strategy,
                                   std::uint64_t seed);

FailureTrialResult RunFailureTrial(const std::string& workload, TransferStrategy strategy,
                                   const FailureScenario& scenario,
                                   const FailureBaseline& baseline, std::uint64_t seed);

struct FailureMatrix {
  std::vector<FailureTrialResult> trials;  // fixed grid order
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t terminal_faults = 0;
  std::uint64_t hung = 0;
  std::uint64_t integrity_failures = 0;  // completed with a checksum mismatch
};

// Runs the full grid: 7 workloads x 4 strategies x FailureScenarios().
// Parallelises over the 28 (workload, strategy) groups; each group runs its
// baseline and scenarios serially on one thread. threads = 0 uses
// SweepThreadCount(). Byte-identical output at any thread count.
FailureMatrix RunFailureMatrix(std::uint64_t seed = 42, int threads = 0);

// Canonical JSON (sorted keys, exact integers): counts plus one record per
// trial. Equal matrices dump byte-identically.
Json FailureMatrixToJson(const FailureMatrix& matrix);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_FAILURE_SWEEP_H_
