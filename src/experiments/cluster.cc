#include "src/experiments/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/host/costs.h"
#include "src/migration/cost_model.h"
#include "src/net/network.h"
#include "src/netmsg/netmsgserver.h"
#include "src/sim/simulator.h"

namespace accent {
namespace {

int EnvInt(const char* name, int fallback, int lo, int hi) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const long parsed = std::strtol(value, nullptr, 10);
  return static_cast<int>(std::clamp<long>(parsed, lo, hi));
}

// One fleet-granularity process: a CPU demand plus the footprint the
// migration cost formulas consume. Owned (touched) exclusively by the
// shard of whichever host it currently resides on; ownership moves with
// the Core/RIMAS handoff, which orders the two shards through the
// cross-shard inbox.
struct ClusterProc {
  std::uint64_t pid = 0;
  SimTime arrive{0};
  SimDuration demand{0};
  SimDuration consumed{0};
  SimDuration slice_len{0};  // length of the currently pending slice
  MigrationCostModel::Footprint fp;
  // Copy-on-reference debt. `backing` is the host index serving the owed
  // pages; re-migration collapses onto the original backer (the chain
  // semantics of the mechanistic testbed) so one backer always suffices.
  std::int64_t owed_pages = 0;
  int backing = -1;
  bool pull_outstanding = false;
  bool done = false;
  // Content-cache fleet model. binary_class identifies the program image
  // this process runs (drawn once at spawn); shared_owed is the portion of
  // the current debt that is image-shared content, dedup_remaining the part
  // of it the destination's cache already held when the process landed —
  // those pages ride confirm acks instead of payload. All three are touched
  // only on the shard of the process's current host.
  int binary_class = -1;
  std::int64_t shared_owed = 0;
  std::int64_t dedup_remaining = 0;
  // Bumped when the process freezes for a migration; a pending slice
  // event whose epoch no longer matches is stale and must not fire.
  std::uint64_t epoch = 0;
};

struct ActiveEntry {
  ClusterProc* proc = nullptr;
  std::uint64_t epoch = 0;
};

struct Host {
  int index = 0;
  HostId id;
  Rng rng{0};
  std::deque<ClusterProc> arena;  // every proc born here; stable addresses
  // Resident, unfrozen processes keyed by pid. std::map so victim scans
  // iterate in a platform-independent, shard-count-independent order.
  std::map<std::uint64_t, ActiveEntry> active;
  int runnable = 0;
  std::uint64_t next_local_pid = 0;

  // Census + data-plane counters (merged in index order after the run).
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t outbound_started = 0;
  std::uint64_t inbound_landed = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t directives_unfilled = 0;
  std::uint64_t pull_batches = 0;
  std::uint64_t pages_pulled = 0;
  // Incremented on this host's shard when it is the migration source.
  std::uint64_t diskless_copy_forced = 0;
  std::uint64_t diskless_backing_anchors = 0;
  // Per-host content cache, fleet granularity: page counts per binary
  // class under a class-LRU (front = most recent). Touched only by this
  // host's shard — inserts and dedup lookups both run on destination-side
  // events — so the model stays byte-identical across shard counts.
  std::map<int, std::int64_t> cache_pages_by_class;
  std::list<int> cache_recency;
  std::int64_t cache_total = 0;
  std::uint64_t pages_deduped = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  std::vector<SimDuration> queueing;   // per completion
  std::vector<SimDuration> downtimes;  // per landed migration
};

// Balancer state, owned by host 0's shard. Every mutation happens inside
// an event executing on that shard (load-report deliveries, sample ticks,
// completion notices), so no locking is needed and the decision sequence
// is identical at any shard count.
struct Coordinator {
  ImbalanceGovernor governor{1, 0};
  std::vector<int> last_runnable;  // freshest report per host
  std::vector<bool> busy;          // host currently tasked with a migration
  std::uint64_t samples = 0;
  std::uint64_t completions_seen = 0;

  // Steady-state detection over total-runnable window means.
  std::vector<double> window_means;
  bool steady = false;
  SimTime steady_at{0};
  std::uint64_t completions_at_steady = 0;

  bool hung = false;
};

struct Trial {
  const ClusterConfig& config;
  const CostTable& costs;
  Simulator& sim;
  Network& net;
  std::vector<std::unique_ptr<Host>>& hosts;
  Coordinator& coord;
  std::uint64_t event_budget = 0;
  // Per-host calibrations, identity-filled when the config carried none;
  // `calibrated` gates every heterogeneity-aware branch so the homogeneous
  // row keeps the legacy arithmetic expression for expression.
  std::vector<HostCalibration> cals;
  bool calibrated = false;

  Host& coord_host() const { return *hosts[0]; }
  const HostCalibration& CalOf(int index) const {
    return cals[static_cast<std::size_t>(index)];
  }

  // ---- processor-sharing slices -----------------------------------------

  void ScheduleSlice(Host& host, ClusterProc* p, bool at_setup) {
    const SimDuration remaining = p->demand - p->consumed;
    p->slice_len = std::min(config.quantum, remaining);
    // PS approximation: a slice of CPU `slice_len` finishes after
    // slice_len x (runnable at schedule time) of wall-clock. Later load
    // changes do not reshuffle the pending event; the stretch re-evaluates
    // every quantum, which is plenty at fleet granularity.
    // A calibrated CPU clears the same demanded work in work/multiplier of
    // wall-clock (ScaleCpu is the identity at multiplier 1.0).
    const SimDuration stretch = ScaleCpu(p->slice_len * std::max(1, host.runnable),
                                         CalOf(host.index).cpu_multiplier);
    Host* h = &host;
    ClusterProc* proc = p;
    const std::uint64_t epoch = p->epoch;
    auto fire = [this, h, proc, epoch]() { OnSlice(*h, proc, epoch); };
    if (at_setup) {
      sim.ScheduleAtHost(host.id, sim.Now() + stretch, std::move(fire));
    } else {
      sim.ScheduleAfter(stretch, std::move(fire));
    }
  }

  void OnSlice(Host& host, ClusterProc* p, std::uint64_t epoch) {
    auto it = host.active.find(p->pid);
    if (it == host.active.end() || it->second.epoch != epoch) {
      return;  // frozen or completed since this slice was scheduled
    }
    p->consumed += p->slice_len;
    if (p->consumed >= p->demand) {
      host.active.erase(it);
      --host.runnable;
      ++host.completed;
      p->done = true;
      const SimDuration sojourn = sim.Now() - p->arrive;
      host.queueing.push_back(sojourn > p->demand ? sojourn - p->demand
                                                  : SimDuration{0});
      return;
    }
    MaybePull(host, p);
    ScheduleSlice(host, p, /*at_setup=*/false);
  }

  // ---- content cache (fleet model) ---------------------------------------

  // How many image pages of `binary_class` the destination already caches;
  // a hit touches the class to the LRU front. Runs on the dest's shard.
  std::int64_t CacheHeld(Host& host, int binary_class) {
    auto it = host.cache_pages_by_class.find(binary_class);
    if (it == host.cache_pages_by_class.end() || it->second <= 0) {
      return 0;
    }
    host.cache_recency.remove(binary_class);
    host.cache_recency.push_front(binary_class);
    return it->second;
  }

  // Inserts freshly pulled image pages, partially evicting the coldest
  // classes once the capacity overflows. Runs on the dest's shard.
  void CacheInsert(Host& host, int binary_class, std::int64_t pages) {
    if (pages <= 0 || binary_class < 0) {
      return;
    }
    auto [it, fresh] = host.cache_pages_by_class.try_emplace(binary_class, 0);
    if (!fresh) {
      host.cache_recency.remove(binary_class);
    }
    it->second += pages;
    host.cache_total += pages;
    host.cache_recency.push_front(binary_class);
    host.cache_insertions += static_cast<std::uint64_t>(pages);
    while (host.cache_total > config.content_cache_pages &&
           !host.cache_recency.empty()) {
      const int victim = host.cache_recency.back();
      auto vit = host.cache_pages_by_class.find(victim);
      ACCENT_CHECK(vit != host.cache_pages_by_class.end());
      const std::int64_t take =
          std::min(vit->second, host.cache_total - config.content_cache_pages);
      vit->second -= take;
      host.cache_total -= take;
      host.cache_evictions += static_cast<std::uint64_t>(take);
      if (vit->second <= 0) {
        host.cache_pages_by_class.erase(vit);
        host.cache_recency.pop_back();
      }
    }
  }

  // ---- copy-on-reference page pulls --------------------------------------

  void MaybePull(Host& host, ClusterProc* p) {
    if (p->owed_pages <= 0 || p->pull_outstanding || p->backing < 0) {
      return;
    }
    if (p->backing == host.index) {
      // Re-migrated back onto its own backer: the debt is local again.
      p->owed_pages = 0;
      p->backing = -1;
      p->shared_owed = 0;
      p->dedup_remaining = 0;
      return;
    }
    const std::int64_t batch = std::min(config.pull_batch_pages, p->owed_pages);
    // The cached slice of this batch rides a hash-probe request (hashes for
    // every page in the batch) and returns as a confirm ack, not payload.
    const std::int64_t confirmed =
        config.content_cache ? std::min(batch, p->dedup_remaining) : 0;
    p->pull_outstanding = true;
    Host* dest = &host;
    Host* backer = hosts[static_cast<std::size_t>(p->backing)].get();
    ClusterProc* proc = p;
    const ByteCount req_bytes =
        confirmed > 0 ? MigrationCostModel::HashProbeRequestBytes(costs, batch)
                      : MigrationCostModel::PullRequestBytes(costs);
    net.Transmit(host.id, backer->id, req_bytes, TrafficKind::kFaultData,
                 [this, dest, backer, proc, batch, confirmed, req_bytes]() {
                   ServePull(*backer, *dest, proc, batch, confirmed, req_bytes);
                 });
  }

  // Runs on the backer's shard: charge request handling + backer service,
  // then ship the batch back. Confirmed pages shrink the reply to an ack —
  // the origin offload the content cache buys.
  void ServePull(Host& backer, Host& dest, ClusterProc* p, std::int64_t batch,
                 std::int64_t confirmed, ByteCount req_bytes) {
    const std::int64_t payload = batch - confirmed;
    const ByteCount reply_bytes =
        payload > 0 ? MigrationCostModel::PullReplyBytes(costs, payload)
                    : MigrationCostModel::HashConfirmBytes(costs);
    SimDuration serve_work =
        NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, req_bytes), req_bytes) +
        costs.backer_service;
    if (confirmed > 0) {
      serve_work += costs.cache_lookup_cpu;  // hash comparison at the origin
    }
    const SimDuration serve = ScaleCpu(serve_work, CalOf(backer.index).cpu_multiplier);
    Host* d = &dest;
    Host* b = &backer;
    sim.ScheduleAfter(serve, [this, b, d, p, batch, confirmed, reply_bytes]() {
      net.Transmit(b->id, d->id, reply_bytes, TrafficKind::kFaultData,
                   [this, d, p, batch, confirmed, reply_bytes]() {
                     const SimDuration handle = ScaleCpu(
                         NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, reply_bytes),
                                            reply_bytes),
                         CalOf(d->index).cpu_multiplier);
                     sim.ScheduleAfter(handle, [this, d, p, batch, confirmed]() {
                       p->pull_outstanding = false;
                       p->owed_pages -= batch;
                       ++d->pull_batches;
                       d->pages_pulled += static_cast<std::uint64_t>(batch);
                       if (config.content_cache) {
                         p->dedup_remaining -= confirmed;
                         const std::int64_t shared_in_batch =
                             std::min(batch, p->shared_owed);
                         p->shared_owed -= shared_in_batch;
                         d->pages_deduped += static_cast<std::uint64_t>(confirmed);
                         // Shared pages that had to travel as payload are now
                         // cached for the next process of this image.
                         CacheInsert(*d, p->binary_class, shared_in_batch - confirmed);
                       }
                       if (p->owed_pages <= 0) {
                         p->owed_pages = 0;
                         p->backing = -1;
                         p->shared_owed = 0;
                         p->dedup_remaining = 0;
                       }
                     });
                   });
    });
  }

  // ---- arrivals -----------------------------------------------------------

  ClusterProc* SpawnProc(Host& host) {
    ClusterProc proc;
    proc.pid = static_cast<std::uint64_t>(host.index) * 10'000'000ull +
               ++host.next_local_pid;
    proc.arrive = sim.Now();
    const double u = host.rng.NextDouble();
    proc.demand = std::max<SimDuration>(
        config.quantum,
        SimDuration(static_cast<std::int64_t>(
            -std::log(1.0 - u) * config.mean_service_sec * 1e6)));
    proc.fp.map_entries = static_cast<std::int64_t>(host.rng.NextInRange(
        static_cast<std::uint64_t>(config.min_map_entries),
        static_cast<std::uint64_t>(config.max_map_entries)));
    proc.fp.real_pages = static_cast<std::int64_t>(host.rng.NextInRange(
        static_cast<std::uint64_t>(config.min_real_pages),
        static_cast<std::uint64_t>(config.max_real_pages)));
    // Resident working set: 25% .. 75% of RealMem.
    proc.fp.resident_pages = static_cast<std::int64_t>(host.rng.NextInRange(
        static_cast<std::uint64_t>(proc.fp.real_pages / 4),
        static_cast<std::uint64_t>(proc.fp.real_pages * 3 / 4)));
    if (config.content_cache) {
      // Which program image this process runs. The extra draw happens only
      // with the cache on, so cache-off streams stay byte-identical.
      proc.binary_class = static_cast<int>(host.rng.NextInRange(
          0, static_cast<std::uint64_t>(config.binary_classes - 1)));
    }
    host.arena.push_back(proc);
    ClusterProc* p = &host.arena.back();
    host.active[p->pid] = ActiveEntry{p, p->epoch};
    ++host.runnable;
    ++host.arrived;
    return p;
  }

  void OnArrival(Host& host) {
    ClusterProc* p = SpawnProc(host);
    ScheduleSlice(host, p, /*at_setup=*/false);
  }

  // ---- load reports + balancing ------------------------------------------

  void ApplyReport(int host_index, int runnable) {
    coord.last_runnable[static_cast<std::size_t>(host_index)] = runnable;
  }

  void OnReportTick(Host& host) {
    const int runnable = host.runnable;
    if (host.index == 0) {
      ApplyReport(0, runnable);
      return;
    }
    const int index = host.index;
    net.Transmit(host.id, coord_host().id, 32, TrafficKind::kControl,
                 [this, index, runnable]() { ApplyReport(index, runnable); });
  }

  void OnSampleTick() {
    ++coord.samples;
    if (coord.hung) {
      return;
    }
    if (event_budget != 0 && sim.events_executed() > event_budget) {
      coord.hung = true;
      sim.Stop();
      return;
    }
    const auto [min_it, max_it] =
        std::minmax_element(coord.last_runnable.begin(), coord.last_runnable.end());
    if (!coord.governor.Observe(*max_it - *min_it)) {
      return;
    }
    // Pick the busiest source and idlest target not already tasked; first
    // index wins ties so the choice is canonical.
    int src = -1;
    int dst = -1;
    for (std::size_t i = 0; i < coord.last_runnable.size(); ++i) {
      if (coord.busy[i]) {
        continue;
      }
      if (src < 0 || coord.last_runnable[i] > coord.last_runnable[static_cast<std::size_t>(src)]) {
        src = static_cast<int>(i);
      }
      // First index wins runnable ties — except that on a calibrated row a
      // strictly faster CPU takes the destination slot at equal load
      // (identity multipliers compare equal, so the homogeneous choice is
      // untouched).
      if (dst < 0 || coord.last_runnable[i] < coord.last_runnable[static_cast<std::size_t>(dst)] ||
          (coord.last_runnable[i] == coord.last_runnable[static_cast<std::size_t>(dst)] &&
           CalOf(static_cast<int>(i)).cpu_multiplier > CalOf(dst).cpu_multiplier)) {
        dst = static_cast<int>(i);
      }
    }
    if (src < 0 || dst < 0 || src == dst ||
        coord.last_runnable[static_cast<std::size_t>(src)] -
                coord.last_runnable[static_cast<std::size_t>(dst)] <
            coord.governor.threshold()) {
      return;  // pressure sits on already-tasked hosts; keep the streak
    }
    coord.busy[static_cast<std::size_t>(src)] = true;
    coord.busy[static_cast<std::size_t>(dst)] = true;
    coord.governor.OnMigrationFired();
    Host* source = hosts[static_cast<std::size_t>(src)].get();
    Host* target = hosts[static_cast<std::size_t>(dst)].get();
    if (src == 0) {
      OnDirective(*source, *target);
      return;
    }
    net.Transmit(coord_host().id, source->id, 48, TrafficKind::kControl,
                 [this, source, target]() { OnDirective(*source, *target); });
  }

  void NotifyMigrationDone(int src_index, int dst_index, bool migrated,
                           Host& reporter) {
    auto apply = [this, src_index, dst_index, migrated]() {
      coord.busy[static_cast<std::size_t>(src_index)] = false;
      coord.busy[static_cast<std::size_t>(dst_index)] = false;
      if (migrated) {
        ++coord.completions_seen;
      }
    };
    if (reporter.index == 0) {
      apply();
      return;
    }
    net.Transmit(reporter.id, coord_host().id, 32, TrafficKind::kControl,
                 std::move(apply));
  }

  // ---- migration data plane ----------------------------------------------

  // The strategy one migration out of `source` actually uses: the policy's,
  // unless the source is diskless and the policy would leave owed pages
  // anchored there — a store it cannot serve — in which case the transfer
  // degrades to pure-copy. Pre-copy, like pure-copy, ships every page
  // physically and owes nothing, so a diskless source runs it unchanged.
  TransferStrategy EffectiveStrategy(const Host& source) const {
    const TransferStrategy strategy = config.policy.strategy;
    if (CalOf(source.index).diskless && (strategy == TransferStrategy::kPureIou ||
                                         strategy == TransferStrategy::kResidentSet)) {
      return TransferStrategy::kPureCopy;
    }
    return strategy;
  }

  // Runs on the source's shard: pick the cheapest victim and start the
  // transfer. Homogeneous rows rank by the dispersal-aware anchor metric
  // (bytes anchored locally); calibrated rows rank by the full
  // MigrationCostModel::RelocationCost — excise at the source's speed, wire
  // at the source's link, insert at the *destination's* speed — so a slow
  // destination inflates every candidate's estimate.
  void OnDirective(Host& source, Host& target) {
    const TransferStrategy strategy = EffectiveStrategy(source);
    ClusterProc* victim = nullptr;
    ByteCount best_anchor = 0;
    SimDuration best_cost{0};
    for (const auto& [pid, entry] : source.active) {
      ClusterProc* p = entry.proc;
      if (p->pull_outstanding) {
        continue;  // a pull reply is already in flight to this host
      }
      if (calibrated) {
        const SimDuration cost = MigrationCostModel::RelocationCost(
            costs, strategy, p->fp, CalOf(source.index), CalOf(target.index));
        if (victim == nullptr || cost < best_cost) {
          victim = p;
          best_cost = cost;
        }
        continue;
      }
      const ByteCount anchor =
          AnchorBytes(static_cast<ByteCount>(p->fp.real_pages) * kPageSize,
                      static_cast<ByteCount>(p->fp.resident_pages) * kPageSize,
                      config.policy.dispersal_weight);
      if (victim == nullptr || anchor < best_anchor) {
        victim = p;
        best_anchor = anchor;
      }
    }
    if (victim == nullptr) {
      ++source.directives_unfilled;
      NotifyMigrationDone(source.index, target.index, /*migrated=*/false, source);
      return;
    }
    StartMigration(source, target, victim);
  }

  void StartMigration(Host& source, Host& target, ClusterProc* p) {
    const SimTime freeze_at = sim.Now();
    source.active.erase(p->pid);
    --source.runnable;
    ++p->epoch;
    ++source.outbound_started;

    const TransferStrategy strategy = EffectiveStrategy(source);
    if (strategy != config.policy.strategy) {
      ++source.diskless_copy_forced;
    }
    const ByteCount core_bytes =
        MigrationCostModel::CorePayloadBytes(costs, p->fp.map_entries);
    const ByteCount rimas_bytes =
        MigrationCostModel::RimasPayloadBytes(costs, strategy, p->fp);
    const std::int64_t shipped = MigrationCostModel::ShippedPages(strategy, p->fp);
    // Chain collapse: debt left from an earlier hop stays owed to the
    // original backer; a fresh hop owes the new source. One backer always
    // serves, and the debt never exceeds the address space.
    const std::int64_t new_owed = MigrationCostModel::OwedPages(strategy, p->fp);
    const int backing = p->owed_pages > 0 ? p->backing : source.index;
    const std::int64_t owed = std::max(p->owed_pages, new_owed);
    if (owed > 0 && backing >= 0 && CalOf(backing).diskless) {
      // EffectiveStrategy prevents fresh anchors and chain collapse keeps
      // old ones, so this never fires; the counter is the run's proof.
      ++source.diskless_backing_anchors;
    }

    // Excise + message handling are source CPU work; both scale with the
    // source's speed (exactly themselves at multiplier 1.0).
    const double src_cpu = CalOf(source.index).cpu_multiplier;
    const SimDuration excise = ScaleCpu(
        MigrationCostModel::ExciseCost(costs, p->fp) + costs.migration_control, src_cpu);
    const SimDuration send_handle = ScaleCpu(
        NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, core_bytes), core_bytes) +
            NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, rimas_bytes), rimas_bytes),
        src_cpu);

    Host* src = &source;
    Host* dst = &target;
    sim.ScheduleAfter(excise + send_handle, [this, src, dst, p, core_bytes,
                                             rimas_bytes, shipped, owed, backing,
                                             freeze_at]() {
      // Core then RIMAS; the per-source egress port serialises them, so the
      // RIMAS arrival (which triggers insertion) is always the later one.
      net.Transmit(src->id, dst->id, core_bytes, TrafficKind::kCoreContext, []() {});
      net.Transmit(src->id, dst->id, rimas_bytes, TrafficKind::kBulkData,
                   [this, src, dst, p, core_bytes, rimas_bytes, shipped, owed,
                    backing, freeze_at]() {
                     FinishMigration(*src, *dst, p, core_bytes, rimas_bytes,
                                     shipped, owed, backing, freeze_at);
                   });
    });
  }

  // Runs on the destination's shard once the RIMAS has fully arrived.
  void FinishMigration(Host& source, Host& target, ClusterProc* p,
                       ByteCount core_bytes, ByteCount rimas_bytes,
                       std::int64_t shipped, std::int64_t owed, int backing,
                       SimTime freeze_at) {
    const double dst_cpu = CalOf(target.index).cpu_multiplier;
    const SimDuration recv_handle = ScaleCpu(
        NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, core_bytes), core_bytes) +
            NetMsgDeliveryCost(costs, NetMsgFragmentCount(costs, rimas_bytes), rimas_bytes) +
            costs.migration_rimas_handling,
        dst_cpu);
    const SimDuration insert = ScaleCpu(
        MigrationCostModel::InsertCost(costs, p->fp.map_entries, shipped), dst_cpu);
    Host* src = &source;
    Host* dst = &target;
    sim.ScheduleAfter(recv_handle + insert, [this, src, dst, p, owed, backing,
                                             freeze_at]() {
      p->owed_pages = owed;
      p->backing = owed > 0 ? backing : -1;
      if (config.content_cache && owed > 0) {
        // shared_fraction of the debt is image content; the slice of it the
        // destination's cache already holds will ride confirm acks.
        p->shared_owed = std::min(
            owed, static_cast<std::int64_t>(
                      std::llround(static_cast<double>(owed) * config.shared_fraction)));
        p->dedup_remaining = std::min(p->shared_owed, CacheHeld(*dst, p->binary_class));
      } else {
        p->shared_owed = 0;
        p->dedup_remaining = 0;
      }
      dst->active[p->pid] = ActiveEntry{p, p->epoch};
      ++dst->runnable;
      ++dst->inbound_landed;
      ++dst->migrations_completed;
      dst->downtimes.push_back(sim.Now() - freeze_at);
      NotifyMigrationDone(src->index, dst->index, /*migrated=*/true, *dst);
      MaybePull(*dst, p);
      ScheduleSlice(*dst, p, /*at_setup=*/false);
    });
  }

  // ---- steady-state detection --------------------------------------------

  void OnSteadyTick() {
    double total = 0.0;
    for (int runnable : coord.last_runnable) {
      total += runnable;
    }
    coord.window_means.push_back(total);
    if (coord.steady ||
        coord.window_means.size() < static_cast<std::size_t>(config.steady_windows)) {
      return;
    }
    const std::size_t n = coord.window_means.size();
    for (std::size_t i = n - static_cast<std::size_t>(config.steady_windows) + 1;
         i < n; ++i) {
      const double prev = coord.window_means[i - 1];
      const double cur = coord.window_means[i];
      if (std::abs(cur - prev) > config.steady_tolerance * std::max(1.0, prev)) {
        return;
      }
    }
    coord.steady = true;
    coord.steady_at = sim.Now();
    coord.completions_at_steady = coord.completions_seen;
  }
};

SimDuration Percentile(std::vector<SimDuration>& values, double q) {
  if (values.empty()) {
    return SimDuration{0};
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t index = static_cast<std::size_t>(pos + 0.5);
  return values[std::min(index, values.size() - 1)];
}

std::uint64_t AutoEventBudget(const ClusterConfig& config) {
  // Generous ceiling: slices (one per quantum of demanded CPU), arrivals,
  // reports, samples, pulls and migration control traffic all together stay
  // well under (expected slice count) x safety factor.
  const double procs = static_cast<double>(config.host_count) *
                       (static_cast<double>(config.initial_processes_per_host) +
                        config.arrivals_per_host_per_sec * ToSeconds(config.duration));
  const double slices = static_cast<double>(config.host_count) *
                        ToSeconds(config.duration) / ToSeconds(config.quantum);
  const double ticks = static_cast<double>(config.host_count) *
                       ToSeconds(config.duration) / ToSeconds(config.report_period);
  const double budget = 64.0 * (procs + slices + ticks) + 1e6;
  return static_cast<std::uint64_t>(budget);
}

}  // namespace

int SimShardCount() { return EnvInt("ACCENT_SIM_SHARDS", 1, 1, 64); }

int SimShardThreadCount() { return EnvInt("ACCENT_SIM_SHARD_THREADS", 1, 0, 64); }

ClusterResult RunClusterTrial(const ClusterConfig& config) {
  ACCENT_EXPECTS(config.host_count >= 2);
  ACCENT_EXPECTS(config.duration > SimDuration::zero());
  ACCENT_EXPECTS(config.quantum > SimDuration::zero());
  ACCENT_EXPECTS(config.pull_batch_pages >= 1);
  if (config.content_cache) {
    ACCENT_EXPECTS(config.content_cache_pages >= 1);
    ACCENT_EXPECTS(config.binary_classes >= 1);
    ACCENT_EXPECTS(config.shared_fraction >= 0.0 && config.shared_fraction <= 1.0);
  }
  ACCENT_EXPECTS(config.calibrations.empty() ||
                 config.calibrations.size() == static_cast<std::size_t>(config.host_count))
      << " calibrations must cover every host";
  for (const HostCalibration& cal : config.calibrations) {
    cal.Validate();
  }

  ClusterResult result;
  result.config = config;
  const int shards = config.shards > 0 ? config.shards : SimShardCount();

  const CostTable& costs = PerqCosts();
  Simulator sim;
  // Every cluster trial runs the windowed engine — shards == 1 included —
  // so cross-host arrivals always merge in the canonical inbox order and
  // results never depend on the shard count. The lookahead must not exceed
  // the smallest cross-host link latency; MinWireLatency returns exactly
  // costs.wire_latency on an uncalibrated row.
  sim.ConfigureShards(shards, Network::MinWireLatency(costs, config.calibrations));
  sim.set_shard_threads(config.shard_threads);
  Network net(&sim, &costs, /*recorder=*/nullptr);
  net.ConfigureSwitched(config.host_count);
  if (!config.calibrations.empty()) {
    net.SetHostCalibrations(config.calibrations);
  }

  std::vector<std::unique_ptr<Host>> hosts;
  hosts.reserve(static_cast<std::size_t>(config.host_count));
  Rng root(config.seed);
  for (int i = 0; i < config.host_count; ++i) {
    auto host = std::make_unique<Host>();
    host->index = i;
    host->id = HostId(static_cast<std::uint64_t>(i + 1));
    host->rng = root.Fork(static_cast<std::uint64_t>(i + 1));
    sim.AssignHostShard(host->id, i % shards);
    hosts.push_back(std::move(host));
  }

  Coordinator coord;
  coord.governor = ImbalanceGovernor(config.policy.imbalance_threshold,
                                     config.policy.hysteresis);
  coord.last_runnable.assign(static_cast<std::size_t>(config.host_count), 0);
  coord.busy.assign(static_cast<std::size_t>(config.host_count), false);

  Trial trial{config, costs, sim, net, hosts, coord};
  trial.event_budget = config.max_events != 0 ? config.max_events : AutoEventBudget(config);
  trial.cals.assign(static_cast<std::size_t>(config.host_count), HostCalibration{});
  for (std::size_t i = 0; i < config.calibrations.size(); ++i) {
    trial.cals[i] = config.calibrations[i];
  }
  trial.calibrated = AnyCalibrated(config.calibrations);

  // --- setup (serial; every schedule goes through ScheduleAtHost) ---------
  for (auto& host_ptr : hosts) {
    Host& host = *host_ptr;
    // Poisson arrival times for the whole run, pre-scheduled. Besides being
    // simple, this keeps thousands of future events resident in the heaps,
    // which is exactly the load the sharded engine is built to split.
    std::vector<SimTime> arrivals;
    SimTime t{0};
    while (true) {
      const double u = host.rng.NextDouble();
      t += SimDuration(static_cast<std::int64_t>(
          -std::log(1.0 - u) / config.arrivals_per_host_per_sec * 1e6));
      if (t >= config.duration) {
        break;
      }
      arrivals.push_back(t);
    }
    Host* h = &host;
    for (SimTime when : arrivals) {
      sim.ScheduleAtHost(host.id, when, [&trial, h]() { trial.OnArrival(*h); });
    }
    for (SimTime when = config.report_period; when < config.duration;
         when += config.report_period) {
      sim.ScheduleAtHost(host.id, when, [&trial, h]() { trial.OnReportTick(*h); });
    }
    for (int i = 0; i < config.initial_processes_per_host; ++i) {
      trial.SpawnProc(host);
    }
  }
  // Initial slices are scheduled only once every initial process is
  // resident, so the first PS stretch sees the true initial load.
  for (auto& host_ptr : hosts) {
    Host& host = *host_ptr;
    for (auto& [pid, entry] : host.active) {
      trial.ScheduleSlice(host, entry.proc, /*at_setup=*/true);
    }
  }
  for (SimTime when = config.policy.sample_period; when < config.duration;
       when += config.policy.sample_period) {
    sim.ScheduleAtHost(hosts[0]->id, when, [&trial]() { trial.OnSampleTick(); });
  }
  for (SimTime when = config.steady_window; when < config.duration;
       when += config.steady_window) {
    sim.ScheduleAtHost(hosts[0]->id, when, [&trial]() { trial.OnSteadyTick(); });
  }

  // --- run -----------------------------------------------------------------
  sim.RunUntil(config.duration);
  result.hung = coord.hung;
  if (result.hung) {
    ACCENT_LOG(kError) << "cluster: watchdog tripped after " << sim.events_executed()
                      << " events (budget " << trial.event_budget << ")";
    const std::vector<std::size_t> by_shard = sim.PendingEventsByShard();
    for (std::size_t i = 0; i < by_shard.size(); ++i) {
      ACCENT_LOG(kError) << "cluster:   shard " << i << " pending " << by_shard[i];
    }
    for (SimTime when : sim.PendingEventTimes(8)) {
      ACCENT_LOG(kError) << "cluster:   next pending event at " << when.count() << "us";
    }
  }

  // --- aggregate (hosts in index order: canonical) -------------------------
  std::vector<SimDuration> queueing;
  std::vector<SimDuration> downtimes;
  for (const auto& host_ptr : hosts) {
    const Host& host = *host_ptr;
    result.arrived += host.arrived;
    result.completed += host.completed;
    result.resident_end += host.active.size();
    result.outbound_started += host.outbound_started;
    result.inbound_landed += host.inbound_landed;
    result.migrations_started += host.outbound_started;
    result.migrations_completed += host.migrations_completed;
    result.directives_unfilled += host.directives_unfilled;
    result.pull_batches += host.pull_batches;
    result.pages_pulled += host.pages_pulled;
    result.pages_deduped += host.pages_deduped;
    result.cache_insertions += host.cache_insertions;
    result.cache_evictions += host.cache_evictions;
    result.diskless_copy_forced += host.diskless_copy_forced;
    result.diskless_backing_anchors += host.diskless_backing_anchors;
    queueing.insert(queueing.end(), host.queueing.begin(), host.queueing.end());
    downtimes.insert(downtimes.end(), host.downtimes.begin(), host.downtimes.end());
  }
  result.census_ok =
      result.arrived == result.completed + result.resident_end +
                            (result.outbound_started - result.inbound_landed);
  result.queueing_p50 = Percentile(queueing, 0.50);
  result.queueing_p99 = Percentile(queueing, 0.99);
  result.downtime_p50 = Percentile(downtimes, 0.50);
  result.downtime_p99 = Percentile(downtimes, 0.99);

  result.steady_detected = coord.steady;
  // Fallback measurement window when steadiness was never declared: the
  // back half of the run.
  const SimTime steady_from =
      coord.steady ? coord.steady_at : SimTime(config.duration.count() / 2);
  result.steady_at = steady_from;
  const std::uint64_t completions_from =
      coord.steady ? coord.completions_at_steady
                   : coord.completions_seen - std::min(coord.completions_seen,
                                                       coord.completions_seen / 2);
  const double window_sec = ToSeconds(config.duration - steady_from);
  result.steady_migrations_per_sec =
      window_sec > 0.0
          ? static_cast<double>(coord.completions_seen - completions_from) / window_sec
          : 0.0;

  result.events_executed = sim.events_executed();
  result.transmissions = net.transmissions();
  result.wire_bytes = net.bytes_carried();
  result.samples_taken = coord.samples;
  return result;
}

Json ClusterResultToJson(const ClusterResult& result) {
  const ClusterConfig& config = result.config;
  Json policy = Json::Object{};
  policy["sample_period_us"] = Json(static_cast<std::int64_t>(config.policy.sample_period.count()));
  policy["imbalance_threshold"] = Json(config.policy.imbalance_threshold);
  policy["hysteresis"] = Json(config.policy.hysteresis);
  policy["dispersal_weight"] = Json(config.policy.dispersal_weight);
  policy["strategy"] = Json(StrategyName(config.policy.strategy));

  Json json = Json::Object{};
  json["hosts"] = Json(config.host_count);
  json["seed"] = Json(config.seed);
  json["duration_us"] = Json(static_cast<std::int64_t>(config.duration.count()));
  json["initial_processes_per_host"] = Json(config.initial_processes_per_host);
  json["arrivals_per_host_per_sec"] = Json(config.arrivals_per_host_per_sec);
  json["mean_service_sec"] = Json(config.mean_service_sec);
  json["policy"] = std::move(policy);

  json["arrived"] = Json(result.arrived);
  json["completed"] = Json(result.completed);
  json["resident_end"] = Json(result.resident_end);
  json["outbound_started"] = Json(result.outbound_started);
  json["inbound_landed"] = Json(result.inbound_landed);
  json["census_ok"] = Json(result.census_ok);

  json["migrations_started"] = Json(result.migrations_started);
  json["migrations_completed"] = Json(result.migrations_completed);
  json["directives_unfilled"] = Json(result.directives_unfilled);
  json["pull_batches"] = Json(result.pull_batches);
  json["pages_pulled"] = Json(result.pages_pulled);

  json["content_cache"] = Json(config.content_cache);
  json["binary_classes"] = Json(config.binary_classes);
  json["shared_fraction"] = Json(config.shared_fraction);
  json["pages_deduped"] = Json(result.pages_deduped);
  json["cache_insertions"] = Json(result.cache_insertions);
  json["cache_evictions"] = Json(result.cache_evictions);

  int diskless_hosts = 0;
  for (const HostCalibration& cal : config.calibrations) {
    diskless_hosts += cal.diskless ? 1 : 0;
  }
  json["calibrated"] = Json(AnyCalibrated(config.calibrations));
  json["diskless_hosts"] = Json(diskless_hosts);
  json["diskless_copy_forced"] = Json(result.diskless_copy_forced);
  json["diskless_backing_anchors"] = Json(result.diskless_backing_anchors);

  json["queueing_p50_us"] = Json(static_cast<std::int64_t>(result.queueing_p50.count()));
  json["queueing_p99_us"] = Json(static_cast<std::int64_t>(result.queueing_p99.count()));
  json["downtime_p50_us"] = Json(static_cast<std::int64_t>(result.downtime_p50.count()));
  json["downtime_p99_us"] = Json(static_cast<std::int64_t>(result.downtime_p99.count()));

  json["steady_detected"] = Json(result.steady_detected);
  json["steady_at_us"] = Json(static_cast<std::int64_t>(result.steady_at.count()));
  json["steady_migrations_per_sec"] = Json(result.steady_migrations_per_sec);

  json["events_executed"] = Json(result.events_executed);
  json["transmissions"] = Json(result.transmissions);
  json["wire_bytes"] = Json(result.wire_bytes);
  json["samples_taken"] = Json(result.samples_taken);
  json["hung"] = Json(result.hung);
  return json;
}

}  // namespace accent
