// Lifecycle trials: migrate a program at a chosen point in its life.
//
// The staged trials (trial.h) construct the migration-time state directly
// from the published tables. Lifecycle trials instead *execute* the whole
// program: the pre-migration phase runs on the source host, faulting pages
// in naturally — so the resident set at migration time is emergent (LRU
// state of physical memory, including the "old file pages" pollution the
// paper blames for resident-set shipment's poor showing) rather than
// staged. This reproduces the PM-Start / PM-Mid / PM-End methodology: the
// same program migrated early, midway and late in life.
#ifndef SRC_EXPERIMENTS_LIFECYCLE_H_
#define SRC_EXPERIMENTS_LIFECYCLE_H_

#include <string>

#include "src/migration/migration_record.h"
#include "src/migration/strategy.h"
#include "src/vm/pager.h"

namespace accent {

struct LifecycleConfig {
  // A Pasmac-shaped program: scan `image_pages` of mapped file sequentially
  // (read mostly, every 4th touch writes), emitting `output_pages` into
  // zero-fill memory along the way.
  PageIndex image_pages = 877;   // PM's ~449 KB of RealMem
  PageIndex zero_pages = 980;    // validated output space
  PageIndex output_pages = 220;
  SimDuration compute = Sec(8.0);

  // Migrate after this fraction of the scan has executed.
  double migrate_at = 0.1;

  TransferStrategy strategy = TransferStrategy::kPureIou;
  std::uint32_t prefetch = 0;
  std::uint64_t seed = 42;
  std::size_t frames_per_host = 4096;
};

struct LifecycleResult {
  LifecycleConfig config;

  // Emergent state at migration time.
  ByteCount resident_bytes = 0;    // sampled from PhysicalMemory (Table 4-2)
  ByteCount real_bytes_at_migration = 0;  // image + materialised output pages
  std::uint64_t pre_touched_pages = 0;

  // Remote behaviour.
  std::uint64_t remote_touched_pages = 0;
  PagerStats dest_pager;
  MigrationRecord migration;
  SimTime finished{0};
  SimDuration remote_exec{0};
  ByteCount bytes_total = 0;

  double FractionOfImageTouchedRemotely() const {
    return static_cast<double>(dest_pager.imag_faults + dest_pager.prefetch_hits) /
           static_cast<double>(config.image_pages);
  }
};

// Runs one lifecycle trial end to end. Deterministic per config.
LifecycleResult RunLifecycle(const LifecycleConfig& config);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_LIFECYCLE_H_
