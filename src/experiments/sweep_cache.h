// On-disk sweep cache shared by every bench binary.
//
// ~20 table/figure/ablation binaries each need the same 7x11 trial grid.
// Before this cache each binary re-simulated the grid in-process; now the
// first run (or bench/run_all) computes it once — in parallel — and
// serialises every TrialResult to JSON, keyed by a hash of the exact trial
// configurations plus a format version. Later binaries deserialise instead
// of simulating.
//
// Keying: the cache key hashes the canonical JSON of the config list, so
// any change to the grid shape, a config field or its default invalidates
// old files by construction (they are simply never looked up again). A
// format-version bump invalidates files whose *semantics* changed while the
// configs did not. Loads additionally verify that the stored configs match
// the requested ones and fall back to recomputation on any mismatch or
// parse failure — a corrupt cache can cost time, never correctness.
#ifndef SRC_EXPERIMENTS_SWEEP_CACHE_H_
#define SRC_EXPERIMENTS_SWEEP_CACHE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/experiments/trial.h"

namespace accent {

// Bump when TrialResult serialisation or trial semantics change in a way
// the config hash cannot see.
inline constexpr int kSweepCacheFormatVersion = 1;

// --- serialisation (exposed for tests) ------------------------------------
Json TrialConfigToJson(const TrialConfig& config);
TrialConfig TrialConfigFromJson(const Json& json);
Json TrialResultToJson(const TrialResult& result);
TrialResult TrialResultFromJson(const Json& json);

// Stable hex key for a config list (FNV-1a over canonical JSON + version).
std::string SweepCacheKey(const std::vector<TrialConfig>& configs);

// --- file layer -----------------------------------------------------------
// Writes `results` to `path` atomically (temp file + rename).
void WriteSweepFile(const std::string& path, const std::vector<TrialResult>& results);

// Loads `path` and verifies it carries exactly `expected_configs` (same
// order). Returns false — without aborting — on missing/corrupt/mismatched
// files.
bool LoadSweepFile(const std::string& path, const std::vector<TrialConfig>& expected_configs,
                   std::vector<TrialResult>* results);

// --- cache ----------------------------------------------------------------
class DiskSweepCache {
 public:
  // `dir` empty: $ACCENT_SWEEP_CACHE_DIR, else ".accent_sweep_cache".
  explicit DiskSweepCache(std::string dir = "");

  // The full strategy sweep for `workload`: memoised in-process, then the
  // disk file, then computed in parallel (`threads` as in RunTrials) and
  // persisted. Thread-safe.
  const std::vector<TrialResult>& For(const std::string& workload, std::uint64_t seed = 42,
                                      int threads = 0);

  // Recomputes and rewrites the file even if present (run_all --force).
  const std::vector<TrialResult>& Refresh(const std::string& workload,
                                          std::uint64_t seed = 42, int threads = 0);

  const std::string& dir() const { return dir_; }
  int disk_hits() const { return disk_hits_; }
  int computes() const { return computes_; }

  // Process-wide instance used by the bench binaries.
  static DiskSweepCache& Global();

 private:
  const std::vector<TrialResult>& ForLocked(const std::string& workload, std::uint64_t seed,
                                            int threads, bool force);
  std::string FilePath(const std::string& workload,
                       const std::vector<TrialConfig>& configs) const;

  std::string dir_;
  std::mutex mu_;
  std::map<std::string, std::vector<TrialResult>> memo_;  // key: workload|seed
  int disk_hits_ = 0;
  int computes_ = 0;
};

}  // namespace accent

#endif  // SRC_EXPERIMENTS_SWEEP_CACHE_H_
