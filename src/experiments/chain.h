// Multi-hop re-migration trials: the A -> B -> C chain.
//
// A representative process migrates from host A to host B, executes part of
// its remaining trace there, then re-migrates to host C under the same
// strategy. The intermediary B accumulates backed objects (the IOU cache or
// the resident-set owed object) exactly as A did on the first hop; once the
// process resumes at C, B's MigrationManager collapses the chain — exporting
// its cache objects back to the chain origin A, rebinding C's IouRefs there
// and retiring into forwarding stubs — so B drops off the fault path
// entirely. Each trial verifies:
//
//   - end-to-end integrity: the touched-page checksum at C matches a
//     no-migration local run of the same workload;
//   - evacuation: after the collapse completes, zero page-fault requests
//     are serviced by (or routed through) B, and B's backer owns no
//     objects — only inert stubs remain;
//   - residual routing: post-collapse imaginary faults at C are served by
//     the origin A.
//
// The crash variant additionally kills B for good shortly after the
// collapse and requires the process to finish at C regardless — the
// residual-dependency surface shrank from {A, B} to {A}.
#ifndef SRC_EXPERIMENTS_CHAIN_H_
#define SRC_EXPERIMENTS_CHAIN_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/host/calibration.h"
#include "src/migration/migration_manager.h"
#include "src/migration/migration_record.h"
#include "src/migration/strategy.h"
#include "src/vm/address_space.h"
#include "src/vm/segment.h"

namespace accent {

struct ChainTrialConfig {
  std::string workload = "Minprog";
  TransferStrategy strategy = TransferStrategy::kPureIou;
  std::uint32_t prefetch = 0;
  std::uint64_t seed = 42;
  // Re-migrate after this fraction of the trace remaining at B has executed.
  double remigrate_at = 0.5;

  // Crash variant: plant a permanent B crash at `crash_at` (taken from a
  // prior baseline's collapse time) and run over the reliable transport.
  bool crash_intermediate = false;
  SimTime crash_at{0};

  // Per-host calibrations for the three-host chain testbed (empty = the
  // homogeneous seed testbed, byte-identical). Timing-only: the integrity
  // reference is always computed on a homogeneous bed because page contents
  // never depend on hardware speed.
  std::vector<HostCalibration> calibrations{};
};

struct ChainTrialResult {
  ChainTrialConfig config;

  bool drained = false;        // event queue emptied before the horizon
  bool hop1_done = false;
  bool hop2_done = false;
  bool finished_at_c = false;  // the process ran to completion at C
  bool integrity_ok = false;   // touched checksum matches the local run
  SimTime finished{0};

  MigrationRecord hop1;  // A -> B
  MigrationRecord hop2;  // B -> C

  // Collapse protocol outcome at the intermediary.
  bool collapse_done = false;
  ChainCollapseStats collapse;
  std::uint64_t handoff_pages = 0;  // pages B exported to the origin

  // B after the collapse. The invariant the bench gates on: nothing is
  // serviced by or routed through an evacuated intermediary.
  std::uint64_t b_requests_after_collapse = 0;
  std::uint64_t b_forwards_after_collapse = 0;
  std::uint64_t b_objects_after_collapse = 0;
  std::uint64_t b_stubs = 0;

  // Residual-fault routing: requests the origin served after the collapse.
  std::uint64_t origin_requests_after_collapse = 0;
  std::uint64_t c_imag_faults = 0;  // destination-side fault count

  SimDuration Hop1Downtime() const { return hop1.Downtime(); }
  SimDuration Hop2Downtime() const { return hop2.Downtime(); }
};

// FNV fold over the contents a fault would observe for each planned page,
// visited in ascending order. Pages owed to a backing chain are resolved
// through their backer object via the segment table, so the fold verifies
// that collapses moved bytes, not just references. Shared by the chain
// trials and the scenario fuzzer's integrity oracle.
std::uint64_t ObservableChecksum(const AddressSpace& space, const SegmentTable& segments,
                                 const std::set<PageIndex>& touches);

// The integrity reference for `workload`: one lossless single-hop pure-copy
// migration on a homogeneous bed, run to completion at the destination.
std::uint64_t ChainReferenceChecksum(const std::string& workload, std::uint64_t seed);

// Runs one chain trial end to end. Deterministic per config.
ChainTrialResult RunChainTrial(const ChainTrialConfig& config);

// The chain grid for one workload, mirroring StrategySweepConfigs: pure-copy
// once (it ignores prefetch), then {pure-IOU, resident-set} x
// kPaperPrefetchValues. Single source of truth for grid order.
std::vector<ChainTrialConfig> ChainSweepConfigs(const std::string& workload,
                                                std::uint64_t seed = 42);

// Runs `configs` across up to `threads` workers (0 = SweepThreadCount()),
// results in input order — byte-identical at any thread count.
std::vector<ChainTrialResult> RunChainTrials(const std::vector<ChainTrialConfig>& configs,
                                             int threads = 0);

// Crash variant outcome: a lossless (but reliable-transport) baseline fixes
// the collapse time, then the trial reruns with B crashed for good just
// after it.
struct ChainCrashResult {
  ChainTrialResult baseline;  // reliable transport, no crash
  ChainTrialResult crashed;   // B dead from baseline collapse + margin
  bool survived = false;      // crashed run finished at C with intact pages
};

ChainCrashResult RunChainCrashTrial(ChainTrialConfig config);

// Canonical JSON (sorted keys, exact integers): totals the bench gates on
// plus one record per trial. Equal sweeps dump byte-identically.
Json ChainSweepToJson(const std::vector<ChainTrialResult>& trials,
                      const std::vector<ChainCrashResult>& crash_trials);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_CHAIN_H_
