// Parallel trial-sweep engine.
//
// The paper's evaluation is a grid of fully independent migration trials:
// each RunTrial builds its own Testbed (private Simulator, hosts, fabric),
// so trials share no mutable state and can fan out across cores. The engine
// preserves the serial contract bit-for-bit: results come back in input
// order, and every trial's RNG is seeded from its own config, so thread
// count and OS scheduling cannot leak into any metric. A parallel sweep is
// therefore byte-identical to the serial one (tests/parallel_sweep_test.cc
// asserts this for 1, 2 and 8 threads).
#ifndef SRC_EXPERIMENTS_SWEEP_H_
#define SRC_EXPERIMENTS_SWEEP_H_

#include <string>
#include <vector>

#include "src/experiments/trial.h"

namespace accent {

// Thread count for sweeps: the ACCENT_SWEEP_THREADS environment variable if
// set to a positive integer, otherwise hardware_concurrency; always >= 1.
int SweepThreadCount();

// The paper's full grid for one workload: pure-copy once (it ignores
// prefetch), then {pure-IOU, resident-set} x kPaperPrefetchValues.
// This is the single source of truth for grid order; the serial
// RunStrategySweep iterates the same list.
std::vector<TrialConfig> StrategySweepConfigs(const std::string& workload,
                                              std::uint64_t seed = 42);

// Runs `configs` across up to `threads` worker threads (0 = SweepThreadCount)
// and returns results in input order. threads <= 1 degrades to the plain
// serial loop.
std::vector<TrialResult> RunTrials(const std::vector<TrialConfig>& configs,
                                   int threads = 0);

// Parallel equivalent of RunStrategySweep(workload, seed).
std::vector<TrialResult> RunStrategySweepParallel(const std::string& workload,
                                                  std::uint64_t seed = 42,
                                                  int threads = 0);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_SWEEP_H_
