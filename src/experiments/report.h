// Trial reporting: human-readable records and CSV export.
//
// The bench harness prints paper-shaped tables; downstream users plotting
// their own figures want raw rows. ReportCsv renders any set of trials as
// a flat CSV with one row per trial, and TrialReport formats the full
// record of a single trial (shared by tools/migrate_sim).
#ifndef SRC_EXPERIMENTS_REPORT_H_
#define SRC_EXPERIMENTS_REPORT_H_

#include <string>
#include <vector>

#include "src/experiments/trial.h"

namespace accent {

// Multi-line human-readable report of one trial (phases, traffic, faults).
std::string TrialReport(const TrialResult& result);

// Header line for TrialCsvRow.
std::string TrialCsvHeader();

// One CSV row: workload,strategy,prefetch,... (matches TrialCsvHeader).
std::string TrialCsvRow(const TrialResult& result);

// Full CSV document for a set of trials.
std::string TrialsToCsv(const std::vector<TrialResult>& results);

// Figure 4-5-style series as CSV: time_s,fault_bytes,other_bytes.
std::string SeriesToCsv(const TrialResult& result);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_REPORT_H_
