// One migration trial: the unit of the paper's evaluation.
//
// Builds a fresh two-host testbed, stages a representative process at its
// migration point on host A, migrates it to host B under a given strategy
// and prefetch value, runs it to completion there and collects every metric
// the evaluation section reports.
#ifndef SRC_EXPERIMENTS_TRIAL_H_
#define SRC_EXPERIMENTS_TRIAL_H_

#include <string>
#include <vector>

#include "src/migration/migration_record.h"
#include "src/migration/strategy.h"
#include "src/net/traffic.h"
#include "src/vm/pager.h"
#include "src/workloads/workload.h"

namespace accent {

struct TrialConfig {
  std::string workload = "Minprog";
  TransferStrategy strategy = TransferStrategy::kPureCopy;
  std::uint32_t prefetch = 0;
  std::uint64_t seed = 42;
  bool iou_caching = true;  // ablation: NetMsgServer substitution on/off
  std::size_t frames_per_host = 4096;
  SimDuration traffic_bucket = Ms(500);  // Figure 4-5 series resolution

  // Resident-set calibration knob (costs.rs_zero_scan_per_mb): extra RIMAS
  // packaging charge per megabyte of zero-fill footprint. Zero by default
  // and deliberately NOT part of the serialised trial configuration
  // (sweep_cache.cc) — the headline sweep's cache keys must not change.
  SimDuration rs_zero_scan_per_mb{0};

  // Pre-copy knobs, consulted only when strategy == kPreCopy (the manager's
  // default PreCopyConfig is overridden with these). Serialised into the
  // cache key only for pre-copy trials (sweep_cache.cc), so every legacy
  // config hashes exactly as before.
  int precopy_max_rounds = 3;
  PageIndex precopy_stop_threshold = 4;
  SimDuration precopy_target_downtime{0};  // 0 = round-cap termination only

  // Content-addressed page service (the dedup plane). A two-host trial has
  // no third-party holders, so this mostly exposes the rider/probe overhead
  // for ablation; the fleet-scale dedup effect lives in bench/dedup_sweep.
  // Serialised into the cache key only when enabled (sweep_cache.cc), so
  // every legacy config hashes exactly as before.
  bool content_cache = false;
  std::int64_t content_cache_pages = 4096;

  // Optional observability hook (not owned, may be null). Deliberately NOT
  // part of the serialised trial configuration (sweep_cache.cc) — tracing
  // never changes results, so a traced run must hash to the same cache key.
  Tracer* tracer = nullptr;
};

struct TrialResult {
  TrialConfig config;
  WorkloadSpec spec;
  MigrationRecord migration;

  SimTime finished{0};        // remote completion
  SimDuration remote_exec{0}; // finished - resumed

  // Byte traffic between the machines (Figure 4-3 / 4-5).
  ByteCount bytes_total = 0;
  ByteCount bytes_control = 0;
  ByteCount bytes_core = 0;
  ByteCount bytes_bulk = 0;
  ByteCount bytes_fault = 0;
  std::uint64_t messages_total = 0;
  std::vector<TrafficRecorder::Bucket> series;
  SimDuration series_bucket{0};

  // Message-handling cost (Figure 4-4): NetMsgServer busy time, both nodes.
  SimDuration netmsg_busy{0};

  // Destination-side fault behaviour.
  PagerStats dest_pager;

  // RealMem bytes that crossed the wire as page data (Table 4-3).
  ByteCount real_bytes_transferred = 0;

  // --- derived -------------------------------------------------------------
  // Figure 4-2's summed metric: address-space transfer + remote execution.
  SimDuration TransferPlusExec() const {
    return migration.RimasTransferTime() + remote_exec;
  }
  double FractionOfRealTransferred() const {
    return spec.real_bytes == 0
               ? 0.0
               : static_cast<double>(real_bytes_transferred) / static_cast<double>(spec.real_bytes);
  }
  double FractionOfTotalTransferred() const {
    return spec.total_bytes() == 0 ? 0.0
                                   : static_cast<double>(real_bytes_transferred) /
                                         static_cast<double>(spec.total_bytes());
  }
};

// Runs a complete trial. Deterministic for a given config.
TrialResult RunTrial(const TrialConfig& config);

// Sweeps the paper's full grid for one workload: strategies x prefetch.
// Pure-copy ignores prefetch, so it runs once.
std::vector<TrialResult> RunStrategySweep(const std::string& workload, std::uint64_t seed = 42);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_TRIAL_H_
