// Adversarial scenario fuzzer: randomised topology x workload x faults x
// strategy, checked against the repo's standing oracles.
//
// Each seed deterministically derives one scenario: a 2-8 host testbed with
// mixed per-host calibrations (CPU speed, link latency/bandwidth, diskless
// hosts), one Table 4-1 workload migrating under a random strategy and
// prefetch depth, an optional mid-trial re-migration to a third host, and a
// FaultPlan mistreating the wire (drop/duplicate/delay/reorder, a transient
// source-destination partition, or a permanent crash planted at a phase
// boundary learned from the scenario's own lossless baseline — the failure
// sweep's methodology). The same seed also drives a small fleet trial over
// the same topology and calibrations, run twice — at one shard and at two —
// whose canonical JSON must match byte for byte.
//
// Oracles (every scenario, every seed):
//   - census/content integrity: a completed process's touched pages match
//     the homogeneous lossless reference (ObservableChecksum); a rolled-back
//     process must match it too once it re-finishes at home;
//   - zero hangs: the simulated-time watchdog (RunGuarded) always drains;
//   - balanced backer references: after a crash-free completed run, no host
//     but the chain origin owns backer objects, and no duplicate death
//     notices were processed anywhere;
//   - shard-count identity: the fleet trial's JSON at shards=1/threads=1
//     equals shards=2/threads=2 exactly, and its census balances;
//   - dedup identity (content-cache scenarios): every page served from a
//     ContentCache or a holder pull is byte-identical to what the origin
//     would have served — any hash mismatch counted by a pager, cache or
//     backer fails the scenario — and a cache hit can never resurrect a page
//     owned by a retired backer stub (a cached serve still runs the standing
//     integrity + backer-balance oracles, so a stale serve shows up as a
//     checksum or census violation). Cache-off scenarios must never touch
//     the dedup plane at all;
//   - payload balance (corpus level): live PageRef payloads return to the
//     pre-corpus value once every trial's testbed is destroyed.
//
// Every failure logs its seed plus a ready-to-paste
// `tools/migrate_sim --replay-seed=N` line that reruns the exact scenario
// with tracing available.
#ifndef SRC_EXPERIMENTS_SCENARIO_FUZZ_H_
#define SRC_EXPERIMENTS_SCENARIO_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/experiments/failure_sweep.h"
#include "src/host/calibration.h"
#include "src/migration/strategy.h"
#include "src/net/fault.h"

namespace accent {

struct FuzzScenario {
  std::uint64_t seed = 0;

  // Topology: hosts carry ids 1..host_count; the workload starts on index 0.
  int host_count = 2;
  std::vector<HostCalibration> calibrations;

  // Workload + transfer.
  std::string workload = "Minprog";
  TransferStrategy strategy = TransferStrategy::kPureCopy;
  std::uint32_t prefetch = 0;
  int dest = 1;  // first-hop destination host index

  // Content-addressed page cache (drawn independently of the other menus so
  // cache-on and cache-off runs of the same seed share everything else).
  bool content_cache = false;
  std::int64_t content_cache_pages = 512;

  // Optional mid-trial re-migration to a third host.
  bool remigrate = false;
  int redest = -1;
  double remigrate_at = 0.5;  // fraction of the trace remaining at `dest`

  // Wire mistreatment. Crash/partition windows are planted at phase
  // boundaries from the scenario's lossless baseline at run time.
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double reorder = 0.0;
  bool partition_transfer = false;  // transient source<->dest cut mid-transfer
  bool crash_dest = false;          // first-hop destination dies for good
  bool crash_source = false;        // source dies mid-remote-execution

  bool faulty() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || reorder > 0.0 ||
           partition_transfer || crash_dest || crash_source;
  }
  // One-line human summary (for logs and JSON).
  std::string Describe() const;
};

// Deterministically derives seed -> scenario. Same seed, same scenario.
FuzzScenario MakeScenario(std::uint64_t seed);

struct FuzzScenarioResult {
  FuzzScenario scenario;

  // Mechanistic trial classification (failure-sweep taxonomy).
  FailureOutcome outcome = FailureOutcome::kHung;
  bool rolled_back = false;
  bool remigrated = false;  // the armed re-migration actually fired

  // Oracle verdicts.
  bool integrity_ok = false;      // touched contents match the reference
  bool hang = false;              // RunGuarded failed to drain
  bool backer_balanced = true;    // no stray objects / duplicate deaths
  bool shard_match = true;        // fleet JSON identical at 1 vs 2 shards
  bool cluster_census_ok = true;  // fleet books balance (both runs)
  bool cluster_hung = false;      // fleet watchdog tripped
  bool dedup_ok = true;           // no hash mismatch anywhere in the walk
  std::uint64_t cache_activity = 0;  // cache-served pages (hits+confirms+pulls)

  // Diskless bookkeeping carried up from the fleet trial.
  std::uint64_t diskless_backing_anchors = 0;

  // Empty when the scenario passed; otherwise a short reason list.
  std::string failure;

  bool ok() const { return failure.empty(); }
};

// Runs one scenario end to end: lossless baseline, faulty mechanistic
// trial, and the 1-vs-2-shard fleet identity check.
FuzzScenarioResult RunScenario(const FuzzScenario& scenario);
FuzzScenarioResult RunScenario(std::uint64_t seed);

struct FuzzCorpusResult {
  std::vector<FuzzScenarioResult> results;  // seed order

  std::uint64_t scenarios = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t terminal_faults = 0;
  std::uint64_t hung = 0;
  std::uint64_t integrity_failures = 0;
  std::uint64_t backer_imbalances = 0;
  std::uint64_t shard_divergences = 0;
  std::uint64_t cluster_census_failures = 0;
  std::uint64_t cluster_hangs = 0;
  std::uint64_t diskless_backing_anchors = 0;
  std::uint64_t remigrations = 0;
  std::uint64_t crash_scenarios = 0;
  std::uint64_t cached_scenarios = 0;  // scenarios with the content cache on
  std::uint64_t dedup_failures = 0;    // scenarios with any hash mismatch
  std::uint64_t failures = 0;  // scenarios with any non-empty failure

  // Live PageRef payloads after minus before the corpus; must be 0 once
  // every trial's simulation objects are destroyed.
  std::int64_t payload_leak = 0;
};

// Runs seeds [first_seed, first_seed + count) across up to `threads`
// workers (<= 0 picks a conservative default). Results in seed order,
// byte-identical at any thread count. Each failing scenario is logged with
// its --replay-seed line.
FuzzCorpusResult RunFuzzCorpus(std::uint64_t first_seed, std::uint64_t count,
                               int threads = 0);

// Canonical JSON (sorted keys, exact integers): the gate counters plus one
// record per scenario. Equal corpora dump byte-identically.
Json FuzzCorpusToJson(const FuzzCorpusResult& corpus);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_SCENARIO_FUZZ_H_
