#include "src/experiments/testbed.h"

#include "src/base/logging.h"
#include "src/migration/cost_model.h"

namespace accent {

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      segments_(&sim_),
      traffic_(&sim_, config_.traffic_bucket),
      network_(&sim_, &config_.costs, &traffic_),
      fabric_(&sim_, &config_.costs) {
  ACCENT_EXPECTS(config_.host_count >= 1);
  ACCENT_EXPECTS(config_.calibrations.empty() ||
                 config_.calibrations.size() == static_cast<std::size_t>(config_.host_count))
      << " calibrations must cover every host";
  sim_.set_tracer(config_.tracer);
  if (!config_.calibrations.empty()) {
    network_.SetHostCalibrations(config_.calibrations);
  }
  if (config_.content_cache) {
    ACCENT_EXPECTS(config_.content_cache_pages >= 1);
    page_directory_ = std::make_unique<PageDirectory>(config_.costs.wire_latency);
  }
  const bool faulty = config_.fault_plan.enabled();
  const bool reliable = faulty || config_.reliable_transport;
  if (faulty) {
    fault_ = std::make_unique<FaultInjector>(config_.fault_plan, config_.fault_seed);
    network_.set_fault_injector(fault_.get());
  }
  hosts_.reserve(static_cast<std::size_t>(config_.host_count));
  for (int i = 0; i < config_.host_count; ++i) {
    const HostId id(static_cast<std::uint64_t>(i) + 1);
    const HostCalibration cal = CalibrationOf(config_.calibrations, static_cast<std::size_t>(i));
    cal.Validate();
    HostParts parts;
    parts.cpu = std::make_unique<Cpu>(&sim_, id);
    if (cal.cpu_multiplier != 1.0) {
      parts.cpu->set_speed_multiplier(cal.cpu_multiplier);
    }
    parts.disk = std::make_unique<Disk>(&sim_, &config_.costs);
    if (cal.diskless) {
      // Every paging request crosses the wire to a file server: a request+
      // reply of link latency plus serializing each page at link bandwidth.
      const SimDuration round_trip =
          ScaleLatency(config_.costs.wire_latency, cal.wire_latency_multiplier) * 2;
      const double bps = config_.costs.wire_bytes_per_sec * cal.wire_bandwidth_multiplier;
      const auto per_page = SimDuration(
          static_cast<std::int64_t>(static_cast<double>(kPageSize) / bps * 1e6));
      parts.disk->ConfigureRemote(round_trip, per_page);
    }
    parts.memory = std::make_unique<PhysicalMemory>(config_.frames_per_host);
    fabric_.RegisterHost(id, parts.cpu.get());

    parts.pager = std::make_unique<Pager>(id, &sim_, &config_.costs, &fabric_, parts.disk.get(),
                                          parts.memory.get());
    parts.pager->Start();

    parts.netmsg = std::make_unique<NetMsgServer>(id, &sim_, &config_.costs, &fabric_, &network_,
                                                  &segments_, &directory_);
    parts.netmsg->Start();
    if (page_directory_ != nullptr) {
      parts.page_service = std::make_unique<PageService>(id, page_directory_.get(),
                                                         config_.content_cache_pages);
      parts.pager->set_page_service(parts.page_service.get());
      parts.netmsg->set_page_service(parts.page_service.get());
      page_directory_->SetServicePort(id, parts.pager->port());
      // Rank holders by this host's calibrated egress cost for one page, so
      // NearestHolder prefers the cheapest link into the cluster.
      page_directory_->SetHostRank(
          id, static_cast<double>(
                  MigrationCostModel::WireCost(config_.costs, kPageSize, cal).count()));
    }
    parts.netmsg->set_iou_caching(config_.iou_caching);
    if (reliable) {
      parts.netmsg->set_reliable(true);
      parts.pager->set_fetch_timeout_enabled(true);
    }

    parts.env = std::make_unique<HostEnv>();
    parts.env->id = id;
    parts.env->sim = &sim_;
    parts.env->costs = &config_.costs;
    parts.env->fabric = &fabric_;
    parts.env->cpu = parts.cpu.get();
    parts.env->disk = parts.disk.get();
    parts.env->memory = parts.memory.get();
    parts.env->pager = parts.pager.get();
    parts.env->netmsg = parts.netmsg.get();
    parts.env->segments = &segments_;
    parts.env->diskless = cal.diskless;
    parts.env->calibration = cal;

    parts.manager = std::make_unique<MigrationManager>(parts.env.get());
    parts.manager->Start();

    hosts_.push_back(std::move(parts));
  }
}

Testbed::~Testbed() = default;

HostCalibration Testbed::calibration(int index) const {
  ACCENT_EXPECTS(index >= 0 && index < static_cast<int>(hosts_.size()));
  return CalibrationOf(config_.calibrations, static_cast<std::size_t>(index));
}

HostEnv* Testbed::host(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].env.get();
}

MigrationManager* Testbed::manager(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].manager.get();
}

NetMsgServer* Testbed::netmsg(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].netmsg.get();
}

Pager* Testbed::pager(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].pager.get();
}

Cpu* Testbed::cpu(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].cpu.get();
}

PageService* Testbed::page_service(int index) {
  ACCENT_EXPECTS(index >= 0 && index < host_count());
  return hosts_[static_cast<std::size_t>(index)].page_service.get();
}

void Testbed::SetPrefetch(std::uint32_t pages) {
  for (HostParts& parts : hosts_) {
    parts.pager->set_prefetch_pages(pages);
  }
}

SimDuration Testbed::TotalNetMsgBusy() const {
  SimDuration total{0};
  for (const HostParts& parts : hosts_) {
    total += parts.cpu->BusyTime(CpuWork::kNetMsgServer);
  }
  return total;
}

bool Testbed::RunGuarded(SimDuration limit) {
  if (sim_.RunUntil(sim_.Now() + limit)) {
    return true;
  }
  ACCENT_LOG(kError) << "testbed: event queue not drained after " << limit.count()
                     << "us of simulated time; " << sim_.pending_events() << " events pending";
  if (sim_.sharded()) {
    const std::vector<std::size_t> per_shard = sim_.PendingEventsByShard();
    for (std::size_t shard = 0; shard < per_shard.size(); ++shard) {
      ACCENT_LOG(kError) << "testbed:   shard " << shard << ": " << per_shard[shard]
                         << " events pending";
    }
  }
  for (SimTime when : sim_.PendingEventTimes(8)) {
    ACCENT_LOG(kError) << "testbed:   pending event at t=" << when.count() << "us";
  }
  return false;
}

SimDuration Testbed::TotalPagerBusy() const {
  SimDuration total{0};
  for (const HostParts& parts : hosts_) {
    total += parts.cpu->BusyTime(CpuWork::kPager);
  }
  return total;
}

}  // namespace accent
