#include "src/experiments/lifecycle.h"

#include "src/base/rng.h"
#include "src/experiments/testbed.h"

namespace accent {

LifecycleResult RunLifecycle(const LifecycleConfig& config) {
  ACCENT_EXPECTS(config.migrate_at >= 0.0 && config.migrate_at < 1.0);
  TestbedConfig testbed_config;
  testbed_config.frames_per_host = config.frames_per_host;
  Testbed bed(testbed_config);

  LifecycleResult result;
  result.config = config;

  // --- the program -----------------------------------------------------------
  auto space = std::make_unique<AddressSpace>(SpaceId(bed.sim().AllocateId()),
                                              bed.host(0)->id);
  Segment* image = bed.segments().CreateReal(config.image_pages * kPageSize, "pasmac-image");
  for (PageIndex p = 0; p < config.image_pages; ++p) {
    image->StorePage(p, MakePatternPage(config.seed * 1000 + p));
  }
  const Addr image_base = 0;
  const Addr zero_base = config.image_pages * kPageSize;
  space->MapReal(image_base, zero_base, image, 0, /*copy_on_write=*/false);
  space->Validate(zero_base, zero_base + config.zero_pages * kPageSize);

  // Sequential whole-file scan; output writes interleave evenly.
  TraceBuilder trace;
  const SimDuration slice =
      config.compute / static_cast<std::int64_t>(config.image_pages + config.output_pages);
  const double out_every = config.output_pages == 0
                               ? 0.0
                               : static_cast<double>(config.image_pages) /
                                     static_cast<double>(config.output_pages);
  double out_next = out_every;
  PageIndex outputs = 0;
  for (PageIndex p = 0; p < config.image_pages; ++p) {
    if (p % 4 == 3) {
      trace.Write(PageBase(p) + 9, static_cast<std::uint8_t>(p));
    } else {
      trace.Read(PageBase(p));
    }
    trace.Compute(slice);
    while (outputs < config.output_pages && static_cast<double>(p + 1) >= out_next) {
      trace.Write(zero_base + PageBase(outputs) + 3, static_cast<std::uint8_t>(outputs));
      trace.Compute(slice);
      ++outputs;
      out_next += out_every;
    }
  }
  trace.Terminate();
  TracePtr program = trace.Build();

  // The migration point: the trace index whose image touch is the
  // migrate_at fraction of the scan.
  std::size_t migrate_pc = 0;
  {
    const auto target =
        static_cast<PageIndex>(config.migrate_at * static_cast<double>(config.image_pages));
    PageIndex seen = 0;
    for (std::size_t i = 0; i < program->size(); ++i) {
      const TraceOp& op = (*program)[i];
      if (op.kind == TraceOp::Kind::kTouch && PageOf(op.addr) < config.image_pages &&
          op.addr < zero_base) {
        if (seen++ == target) {
          migrate_pc = i;
          break;
        }
      }
    }
  }

  auto proc = std::make_unique<Process>(ProcId(bed.sim().AllocateId()), "pasmac-life",
                                        bed.host(0), std::move(space), config.seed);
  proc->SetTrace(program, 0);
  bed.manager(0)->RegisterLocal(proc.get());
  bed.SetPrefetch(config.prefetch);

  // --- run to the migration point, then move it -------------------------------
  bool migrated = false;
  proc->SuspendAt(migrate_pc, [&]() {
    const AddressSpace& live = *proc->space();
    result.resident_bytes = bed.host(0)->memory->ResidentCount(live.id()) * kPageSize;
    result.real_bytes_at_migration = live.RealBytes();
    result.pre_touched_pages = live.touched_pages().size();

    bed.manager(0)->Migrate(proc.get(), bed.manager(1)->port(), config.strategy,
                            [&](const MigrationRecord& record) {
                              result.migration = record;
                              migrated = true;
                            });
  });
  proc->Start();
  bed.sim().Run();
  ACCENT_CHECK(migrated) << " lifecycle migration never completed";

  ACCENT_CHECK(bed.manager(1)->adopted().size() == 1);
  Process* remote = bed.manager(1)->adopted()[0].get();
  ACCENT_CHECK(remote->done());
  result.finished = remote->finish_time();
  result.remote_exec = result.finished - result.migration.resumed;
  result.remote_touched_pages = remote->space()->touched_pages().size();
  result.dest_pager = bed.pager(1)->stats();
  result.bytes_total = bed.traffic().TotalBytes();

  // Spot-check data integrity across the whole image at the destination.
  for (PageIndex p = 0; p < config.image_pages; p += 97) {
    if (remote->space()->ClassOf(PageBase(p)) == MemClass::kImag) {
      continue;  // untouched owed page
    }
    const PageRef page = remote->space()->ReadPage(p);  // shared lookup, no copy
    const PageData want = MakePatternPage(config.seed * 1000 + p);
    if (p % 4 == 3) {
      ACCENT_CHECK(PageByteAt(page, 9) == static_cast<std::uint8_t>(p));
      ACCENT_CHECK(PageByteAt(page, 10) == PageByteAt(want, 10));
    } else {
      ACCENT_CHECK(page == want) << " image corruption at page " << p;
    }
  }
  return result;
}

}  // namespace accent
