// Fleet-scale cluster trials: the ROADMAP's datacenter-row north star.
//
// The paper migrates one process between two Perqs; this layer simulates
// N hosts (a switched row, Network::ConfigureSwitched) under continuous
// churn — Poisson process arrivals with exponential service demands — and
// lets a balancer drive migrations for the whole run instead of firing one
// and stopping. Hosts are modelled at fleet granularity: a process is a
// CPU demand plus a MigrationCostModel::Footprint, scheduled by a
// processor-sharing approximation (each resident process holds one pending
// quantum-slice event whose length stretches with the host's runnable
// count). Migration costs, payload sizes and the copy-on-reference debt
// all come from the same calibrated formulas the two-Perq testbed charges
// (src/migration/cost_model.h), so the fleet inherits the paper's numbers.
//
// Control plane: host index 0 doubles as the balancer coordinator. Every
// host ships periodic load reports over the wire (kControl); the
// coordinator applies the shared ImbalanceGovernor (threshold +
// hysteresis) to the freshest spread, picks the busiest source and idlest
// target it has not already tasked, and sends the source a migration
// directive. The source picks its cheapest victim by the dispersal-aware
// AnchorBytes metric, freezes it, excises, ships Core + RIMAS, and the
// destination inserts and reports completion. IOU strategies leave owed
// pages behind, repaid lazily in fixed page-pull batches (kFaultData
// request/reply) while the process runs at its new home.
//
// Determinism: every stochastic draw flows through per-host Rng streams,
// all cross-host interaction rides Network::Transmit (and therefore the
// canonical cross-shard merge order), per-host state is touched only by
// the owning shard, and end-of-run aggregation walks hosts in index
// order. A trial's ClusterResult — and its canonical JSON — is therefore
// byte-identical for any shard count and any worker-thread count; the
// shard knobs are deliberately excluded from the JSON so the equality can
// be asserted literally (tests/parallel_sweep_test.cc does).
#ifndef SRC_EXPERIMENTS_CLUSTER_H_
#define SRC_EXPERIMENTS_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/types.h"
#include "src/host/calibration.h"
#include "src/migration/strategy.h"
#include "src/policy/load_balancer.h"

namespace accent {

struct ClusterConfig {
  int host_count = 24;
  std::uint64_t seed = 42;
  SimDuration duration = Sec(120.0);

  // Sharding knobs. They select the execution engine, never the result:
  // trial output is byte-identical across both. shards <= 0 reads
  // ACCENT_SIM_SHARDS (default 1); shard_threads 0 = auto.
  int shards = 0;
  int shard_threads = 1;

  // Workload churn. Each host starts with `initial_processes_per_host`
  // and receives a Poisson stream of arrivals; demands are exponential.
  int initial_processes_per_host = 4;
  double arrivals_per_host_per_sec = 0.25;
  double mean_service_sec = 20.0;
  SimDuration quantum = Ms(40);

  // Footprint distribution (uniform draws per process).
  std::int64_t min_real_pages = 64;
  std::int64_t max_real_pages = 1024;
  std::int64_t min_map_entries = 8;
  std::int64_t max_map_entries = 40;

  // Control plane.
  SimDuration report_period = Sec(1.0);
  PolicyConfig policy;
  std::int64_t pull_batch_pages = 16;

  // Content-addressed page service, fleet model (docs/INTERNALS.md §15).
  // Off by default — byte-identical to the classic engine. When on, every
  // process belongs to one of `binary_classes` program images and
  // `shared_fraction` of its pages are content-identical across its class;
  // a destination whose per-host cache (content_cache_pages, class-LRU)
  // already holds image pages answers that portion of a pull batch with a
  // small confirm ack instead of payload. All cache state lives on the
  // destination host and is touched only by its owning shard, so results
  // stay byte-identical across shard counts.
  bool content_cache = false;
  std::int64_t content_cache_pages = 8192;
  int binary_classes = 6;
  double shared_fraction = 0.5;

  // Per-host calibrations (entry i calibrates host index i). Empty — the
  // default — is the homogeneous row, byte-identical to the uncalibrated
  // engine; otherwise the vector must cover every host. Calibrations bend
  // the same formulas everywhere: slices stretch by the host's CPU speed,
  // excise/insert run at the source's/destination's speed, wire legs ride
  // the sender's link, victim scoring switches to the end-to-end
  // RelocationCost (so a slow destination inflates every candidate), and a
  // diskless source degrades owed-page strategies to pure-copy rather than
  // anchor backing it cannot serve.
  std::vector<HostCalibration> calibrations{};

  // Steady-state detection: consecutive `steady_windows` windows of
  // `steady_window` whose mean total-runnable drifts by <= steady_tolerance
  // (relative) mark the fleet steady; throughput is measured from there.
  SimDuration steady_window = Sec(10.0);
  int steady_windows = 3;
  double steady_tolerance = 0.15;

  // Hang watchdog: the trial aborts (hung = true) once this many events
  // execute. 0 derives a generous budget from the configuration.
  std::uint64_t max_events = 0;
};

struct ClusterResult {
  ClusterConfig config;

  // Census. arrived = initial + churn arrivals; the books balance when
  // arrived == completed + resident_end + migrations still in flight
  // (outbound_started - inbound_landed).
  std::uint64_t arrived = 0;
  std::uint64_t completed = 0;
  std::uint64_t resident_end = 0;
  std::uint64_t outbound_started = 0;
  std::uint64_t inbound_landed = 0;
  bool census_ok = false;

  // Migration data plane.
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t directives_unfilled = 0;  // source had no eligible victim
  std::uint64_t pull_batches = 0;
  std::uint64_t pages_pulled = 0;
  // Content-cache counters (all zero with content_cache off).
  // pages_deduped: owed pages answered by confirm acks instead of payload;
  // the dedup bench derives its bytes-on-wire saving from these.
  std::uint64_t pages_deduped = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  // Heterogeneous-row counters. diskless_backing_anchors counts owed-page
  // debts anchored on a diskless host — the invariant is that it stays 0;
  // diskless_copy_forced counts the strategy degradations that keep it so.
  std::uint64_t diskless_copy_forced = 0;
  std::uint64_t diskless_backing_anchors = 0;

  // Latency tails (microseconds of simulated time).
  SimDuration queueing_p50{0};  // completion sojourn minus CPU demand
  SimDuration queueing_p99{0};
  SimDuration downtime_p50{0};  // migration freeze -> resume window
  SimDuration downtime_p99{0};

  // Steady state + throughput.
  bool steady_detected = false;
  SimTime steady_at{0};
  double steady_migrations_per_sec = 0.0;

  // Engine counters — identical across shard counts by construction, so
  // they double as determinism checks.
  std::uint64_t events_executed = 0;
  std::uint64_t transmissions = 0;
  ByteCount wire_bytes = 0;
  std::uint64_t samples_taken = 0;

  bool hung = false;
};

// Shard count for cluster trials: ACCENT_SIM_SHARDS if set (clamped to
// [1, 64]), else 1.
int SimShardCount();

// Worker threads for shard windows: ACCENT_SIM_SHARD_THREADS if set,
// else 1 (single-core boxes win via smaller per-shard heaps, not threads).
int SimShardThreadCount();

// Runs one fleet trial to completion (or its watchdog budget).
ClusterResult RunClusterTrial(const ClusterConfig& config);

// Canonical JSON for one trial. Excludes the shard/thread knobs and any
// wall-clock quantity on purpose: two runs of the same config at different
// shard counts must serialise byte-identically.
Json ClusterResultToJson(const ClusterResult& result);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_CLUSTER_H_
