#include "src/experiments/metrics_fold.h"

#include <vector>

#include "src/base/check.h"

namespace accent {
namespace {

// Second-resolution buckets spanning the paper's range: pure-IOU transfers
// sit near 0.15–0.3 s, pure-copy Lisp runs past 100 s.
const std::vector<double> kSecondsBounds = {0.05, 0.1,  0.25, 0.5, 1.0,
                                            2.5,  5.0,  10.0, 25.0, 50.0,
                                            100.0, 250.0};

}  // namespace

void FoldTrialMetrics(const TrialResult& result, MetricsRegistry* registry) {
  ACCENT_EXPECTS(registry != nullptr);
  registry->Counter("trials").Increment();
  registry->Counter("messages.total").Add(result.messages_total);
  registry->Counter("bytes.total").Add(result.bytes_total);
  registry->Counter("bytes.control").Add(result.bytes_control);
  registry->Counter("bytes.core").Add(result.bytes_core);
  registry->Counter("bytes.bulk").Add(result.bytes_bulk);
  registry->Counter("bytes.fault").Add(result.bytes_fault);
  registry->Counter("bytes.real_transferred").Add(result.real_bytes_transferred);

  const PagerStats& pager = result.dest_pager;
  registry->Counter("faults.fillzero").Add(pager.fillzero_faults);
  registry->Counter("faults.disk").Add(pager.disk_faults);
  registry->Counter("faults.cow").Add(pager.cow_faults);
  registry->Counter("faults.imaginary").Add(pager.imag_faults);
  registry->Counter("faults.iou_pulls").Add(pager.imag_pages_fetched);
  registry->Counter("faults.prefetched").Add(pager.prefetched_pages);
  registry->Counter("faults.prefetch_hits").Add(pager.prefetch_hits);

  registry->Histogram("downtime_seconds", kSecondsBounds)
      .Observe(ToSeconds(result.migration.Downtime()));
  registry->Histogram("rimas_transfer_seconds", kSecondsBounds)
      .Observe(ToSeconds(result.migration.RimasTransferTime()));
  registry->Histogram("netmsg_busy_seconds", kSecondsBounds)
      .Observe(ToSeconds(result.netmsg_busy));
}

void FoldDedupMetrics(const DedupResult& result, MetricsRegistry* registry) {
  ACCENT_EXPECTS(registry != nullptr);
  registry->Counter("cache.hits").Add(result.cache_hits);
  registry->Counter("cache.misses").Add(result.cache_misses);
  registry->Counter("cache.insertions").Add(result.cache_insertions);
  registry->Counter("cache.evictions").Add(result.cache_evictions);
  registry->Counter("cache.offloaded_pages").Add(result.offloaded_pages);
  registry->Counter("cache.origin_payload_pages").Add(result.origin_payload_pages);
  registry->Counter("cache.wire_bytes").Add(result.wire_bytes);
}

Json TrialSummaryToJson(const TrialResult& result) {
  Json json{Json::Object{}};
  json["workload"] = Json(result.config.workload);
  json["strategy"] = Json(StrategyName(result.config.strategy));
  json["prefetch"] = Json(result.config.prefetch);
  json["iou_caching"] = Json(result.config.iou_caching);

  json["spec_real_bytes"] = Json(result.spec.real_bytes);
  json["spec_zero_bytes"] = Json(result.spec.zero_bytes);
  json["spec_total_bytes"] = Json(result.spec.total_bytes());
  json["spec_resident_bytes"] = Json(result.spec.resident_bytes);

  const MigrationRecord& m = result.migration;
  json["excise_amap_us"] = Json(m.excise_amap.count());
  json["excise_rimas_us"] = Json(m.excise_rimas.count());
  json["excise_overall_us"] = Json(m.excise_overall.count());
  json["insert_time_us"] = Json(m.insert_time.count());
  json["rimas_transfer_us"] = Json(m.RimasTransferTime().count());
  json["core_transfer_us"] = Json(m.CoreTransferTime().count());
  json["downtime_us"] = Json(m.Downtime().count());

  json["bytes_total"] = Json(result.bytes_total);
  json["bytes_control"] = Json(result.bytes_control);
  json["bytes_core"] = Json(result.bytes_core);
  json["bytes_bulk"] = Json(result.bytes_bulk);
  json["bytes_fault"] = Json(result.bytes_fault);
  json["messages_total"] = Json(result.messages_total);
  json["real_bytes_transferred"] = Json(result.real_bytes_transferred);
  json["frac_real_transferred"] = Json(result.FractionOfRealTransferred());
  json["frac_total_transferred"] = Json(result.FractionOfTotalTransferred());

  json["netmsg_busy_us"] = Json(result.netmsg_busy.count());
  json["remote_exec_us"] = Json(result.remote_exec.count());
  json["dest_imag_faults"] = Json(result.dest_pager.imag_faults);
  json["dest_imag_pages_fetched"] = Json(result.dest_pager.imag_pages_fetched);
  json["dest_prefetch_hits"] = Json(result.dest_pager.prefetch_hits);
  return json;
}

}  // namespace accent
