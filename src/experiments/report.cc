#include "src/experiments/report.h"

#include <sstream>

#include "src/metrics/table.h"

namespace accent {

std::string TrialReport(const TrialResult& r) {
  std::ostringstream out;
  out << "Migration trial: " << r.spec.name << ", " << StrategyName(r.config.strategy)
      << ", prefetch " << r.config.prefetch << ", seed " << r.config.seed << "\n\n";

  out << "Address space: Real " << FormatWithCommas(r.spec.real_bytes) << " B, RealZero "
      << FormatWithCommas(r.spec.zero_bytes) << " B ("
      << (r.spec.real_regions + r.spec.zero_regions) << " map entries)\n";
  out << "Resident set:  " << FormatWithCommas(r.spec.resident_bytes) << " B\n\n";

  out << "Phases (simulated seconds):\n";
  out << "  excision          " << FormatSeconds(r.migration.excise_overall) << "   (AMap "
      << FormatSeconds(r.migration.excise_amap) << ", RIMAS collapse "
      << FormatSeconds(r.migration.excise_rimas) << ")\n";
  out << "  RIMAS transfer    " << FormatSeconds(r.migration.RimasTransferTime()) << "\n";
  out << "  Core transfer     " << FormatSeconds(r.migration.CoreTransferTime()) << "\n";
  out << "  insertion         " << FormatSeconds(r.migration.insert_time) << "\n";
  out << "  remote execution  " << FormatSeconds(r.remote_exec) << "\n";
  out << "  transfer + exec   " << FormatSeconds(r.TransferPlusExec()) << "\n";
  out << "  downtime          " << FormatSeconds(r.migration.Downtime()) << "\n\n";

  if (r.config.strategy == TransferStrategy::kPreCopy) {
    out << "Pre-copy: " << r.migration.precopy_rounds << " live round"
        << (r.migration.precopy_rounds == 1 ? "" : "s") << ", "
        << FormatWithCommas(r.migration.precopy_bytes) << " B shipped while running, "
        << FormatWithCommas(r.migration.precopy_flash_bytes) << " B in the final flash\n";
    out << "  WWS estimate    " << FormatWithCommas(static_cast<ByteCount>(
                                       r.migration.precopy_wws_pages * kPageSize))
        << " B";
    if (r.config.precopy_target_downtime > SimDuration::zero()) {
      out << "; predicted final round " << FormatSeconds(r.migration.precopy_predicted_downtime)
          << " vs SLO " << FormatSeconds(r.config.precopy_target_downtime) << " ("
          << (r.migration.precopy_slo_met ? "met" : "missed") << ")";
    }
    out << "\n\n";
  }

  out << "Traffic: total " << FormatWithCommas(r.bytes_total) << " B (core "
      << FormatWithCommas(r.bytes_core) << ", bulk " << FormatWithCommas(r.bytes_bulk)
      << ", fault " << FormatWithCommas(r.bytes_fault) << ", control "
      << FormatWithCommas(r.bytes_control) << ") in " << r.messages_total << " messages\n";
  out << "RealMem shipped: " << FormatWithCommas(r.real_bytes_transferred) << " B ("
      << FormatPercent(r.FractionOfRealTransferred(), 1) << " of RealMem)\n\n";

  out << "Destination faults: imaginary " << r.dest_pager.imag_faults << " (fetched "
      << r.dest_pager.imag_pages_fetched << ", prefetched " << r.dest_pager.prefetched_pages
      << ", hits " << r.dest_pager.prefetch_hits << "), zero-fill "
      << r.dest_pager.fillzero_faults << ", disk " << r.dest_pager.disk_faults << ", cow "
      << r.dest_pager.cow_faults << ", page-outs " << r.dest_pager.pageouts << "\n";
  out << "Message handling (both NetMsgServers): " << FormatSeconds(r.netmsg_busy) << " s\n";
  return out.str();
}

std::string TrialCsvHeader() {
  return "workload,strategy,prefetch,seed,"
         "real_bytes,zero_bytes,resident_bytes,"
         "excise_s,amap_s,rimas_collapse_s,rimas_transfer_s,core_transfer_s,insert_s,"
         "remote_exec_s,transfer_plus_exec_s,downtime_s,"
         "bytes_total,bytes_core,bytes_bulk,bytes_fault,bytes_control,messages,"
         "real_bytes_transferred,imag_faults,pages_fetched,prefetched,prefetch_hits,"
         "fillzero_faults,disk_faults,netmsg_busy_s";
}

std::string TrialCsvRow(const TrialResult& r) {
  std::ostringstream out;
  out << r.spec.name << ',' << StrategyName(r.config.strategy) << ',' << r.config.prefetch
      << ',' << r.config.seed << ',' << r.spec.real_bytes << ',' << r.spec.zero_bytes << ','
      << r.spec.resident_bytes << ',' << ToSeconds(r.migration.excise_overall) << ','
      << ToSeconds(r.migration.excise_amap) << ',' << ToSeconds(r.migration.excise_rimas)
      << ',' << ToSeconds(r.migration.RimasTransferTime()) << ','
      << ToSeconds(r.migration.CoreTransferTime()) << ','
      << ToSeconds(r.migration.insert_time) << ',' << ToSeconds(r.remote_exec) << ','
      << ToSeconds(r.TransferPlusExec()) << ',' << ToSeconds(r.migration.Downtime()) << ','
      << r.bytes_total << ',' << r.bytes_core << ',' << r.bytes_bulk << ',' << r.bytes_fault
      << ',' << r.bytes_control << ',' << r.messages_total << ','
      << r.real_bytes_transferred << ',' << r.dest_pager.imag_faults << ','
      << r.dest_pager.imag_pages_fetched << ',' << r.dest_pager.prefetched_pages << ','
      << r.dest_pager.prefetch_hits << ',' << r.dest_pager.fillzero_faults << ','
      << r.dest_pager.disk_faults << ',' << ToSeconds(r.netmsg_busy);
  return out.str();
}

std::string TrialsToCsv(const std::vector<TrialResult>& results) {
  std::ostringstream out;
  out << TrialCsvHeader() << '\n';
  for (const TrialResult& result : results) {
    out << TrialCsvRow(result) << '\n';
  }
  return out.str();
}

std::string SeriesToCsv(const TrialResult& result) {
  std::ostringstream out;
  out << "time_s,fault_bytes,other_bytes\n";
  for (const auto& bucket : result.series) {
    const ByteCount fault = bucket.bytes[static_cast<int>(TrafficKind::kFaultData)];
    ByteCount other = 0;
    for (std::size_t k = 0; k < bucket.bytes.size(); ++k) {
      if (k != static_cast<std::size_t>(TrafficKind::kFaultData)) {
        other += bucket.bytes[k];
      }
    }
    out << ToSeconds(bucket.start) << ',' << fault << ',' << other << '\n';
  }
  return out.str();
}

}  // namespace accent
