#include "src/experiments/precopy.h"

#include <algorithm>
#include <optional>

#include "src/base/check.h"
#include "src/base/thread_pool.h"
#include "src/experiments/sweep.h"
#include "src/experiments/testbed.h"
#include "src/workloads/workload.h"

namespace accent {
namespace {

// Only a compute-bound workload migrates live. Bulk transfer costs
// ~66 us/byte of NetMsgServer handling end to end (~15 KB/s, Table 4-5),
// so pre-copy's full-footprint snapshot round takes minutes of wall clock
// for a megabyte-scale image — even Lisp-Del's 40 s of compute runs dry
// mid-round, terminating at the source before the freeze. Chess (480 s of
// compute over a modest footprint) is the one workload that executes
// through its own migration; the rest use the paper's staged
// migration-point model, where the process has not started and pre-copy
// converges right after its snapshot round.
bool MigratesLive(const WorkloadSpec& spec) {
  return spec.pattern == AccessPattern::kComputeBound;
}

// Live migrations fire after this fraction of the workload's compute, far
// enough in that the source has a warm, actively-written working set.
constexpr int kMigrateAtDivisor = 20;  // 5%

// The compute-bound workloads the headline gates are scored on: the ones
// whose execution, not their footprint, dominates the trial — exactly
// where hiding transfer behind execution pays.
bool IsComputeBoundGate(const std::string& workload) {
  return workload == "Chess" || workload == "Lisp-Del";
}

const int kRoundCaps[] = {1, 4, 8};
const SimDuration kDowntimeSlos[] = {SimDuration{0}, Sec(1.0), Sec(5.0)};

}  // namespace

std::vector<PreCopySweepCell> PreCopySweepCells() {
  std::vector<PreCopySweepCell> cells;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    const bool live = MigratesLive(spec);
    const SimDuration migrate_at = live ? spec.compute / kMigrateAtDivisor : SimDuration{0};
    for (TransferStrategy strategy :
         {TransferStrategy::kPureCopy, TransferStrategy::kPureIou,
          TransferStrategy::kResidentSet}) {
      PreCopySweepCell cell;
      cell.workload = spec.name;
      cell.strategy = strategy;
      cell.live = live;
      cell.migrate_at = migrate_at;
      cells.push_back(cell);
    }
    for (int max_rounds : kRoundCaps) {
      for (SimDuration slo : kDowntimeSlos) {
        PreCopySweepCell cell;
        cell.workload = spec.name;
        cell.strategy = TransferStrategy::kPreCopy;
        cell.max_rounds = max_rounds;
        cell.target_downtime = slo;
        cell.live = live;
        cell.migrate_at = migrate_at;
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

PreCopySweepCellResult RunPreCopyCell(const PreCopySweepCell& cell, std::uint64_t seed) {
  PreCopySweepCellResult result;
  result.cell = cell;

  Testbed bed;
  WorkloadInstance instance =
      BuildWorkload(WorkloadByName(cell.workload), bed.host(0), seed);
  Process* proc = instance.process.get();
  const PortId owned_port =
      bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "proc-owned");
  proc->AttachReceiveRight(owned_port);
  bed.manager(0)->RegisterLocal(proc);

  Process* remote = nullptr;
  bed.manager(1)->set_on_insert([&remote](Process* inserted) { remote = inserted; });

  if (cell.live) {
    proc->Start();
    bed.sim().RunUntil(cell.migrate_at);
  }

  if (cell.strategy == TransferStrategy::kPreCopy) {
    PreCopyConfig config;
    config.max_rounds = cell.max_rounds;
    config.target_downtime = cell.target_downtime;
    bed.manager(0)->set_precopy_config(config);
  }

  bool done = false;
  MigrationRecord record;
  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), cell.strategy,
                          [&](const MigrationRecord& r) {
                            record = r;
                            done = true;
                          });

  const bool drained = bed.RunGuarded();
  result.hung = !drained;
  result.completed = drained && done && !record.aborted && remote != nullptr &&
                     remote->done() && !remote->faulted();
  if (!result.completed) {
    return result;
  }

  result.rounds = record.precopy_rounds;
  result.downtime = record.Downtime();
  result.total = remote->finish_time() - record.requested;
  result.page_bytes = bed.traffic().BytesOf(TrafficKind::kBulkData) +
                      bed.traffic().BytesOf(TrafficKind::kFaultData);
  result.wire_bytes = bed.traffic().TotalBytes();
  result.wws_pages = record.precopy_wws_pages;
  result.predicted_downtime = record.precopy_predicted_downtime;
  result.slo_met = record.precopy_slo_met;
  return result;
}

PreCopySweepSummary RunPreCopySweep(std::uint64_t seed, int threads) {
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  const std::vector<PreCopySweepCell> cells = PreCopySweepCells();

  // One slot per cell; cells share nothing (private testbeds), so thread
  // count and scheduling cannot reach any result.
  std::vector<std::optional<PreCopySweepCellResult>> slots(cells.size());
  ParallelFor(threads, cells.size(),
              [&](std::size_t i) { slots[i] = RunPreCopyCell(cells[i], seed); });

  PreCopySweepSummary summary;
  summary.cells.reserve(slots.size());
  for (std::optional<PreCopySweepCellResult>& slot : slots) {
    ACCENT_CHECK(slot.has_value()) << " pre-copy sweep slot never filled";
    summary.completed += slot->completed ? 1 : 0;
    summary.hung += slot->hung ? 1 : 0;
    summary.cells.push_back(std::move(*slot));
  }

  // Gate evaluation: per-workload extremes over the grid.
  summary.bytes_ordering_ok = true;
  summary.slo_ok = true;
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    const PreCopySweepCellResult* purecopy = nullptr;
    const PreCopySweepCellResult* pureiou = nullptr;
    const PreCopySweepCellResult* best_precopy = nullptr;  // min downtime
    ByteCount min_precopy_page_bytes = 0;
    bool workload_slo_met = false;
    for (const PreCopySweepCellResult& r : summary.cells) {
      if (r.cell.workload != spec.name || !r.completed) {
        continue;
      }
      switch (r.cell.strategy) {
        case TransferStrategy::kPureCopy:
          purecopy = &r;
          break;
        case TransferStrategy::kPureIou:
          pureiou = &r;
          break;
        case TransferStrategy::kResidentSet:
          break;
        case TransferStrategy::kPreCopy:
          if (best_precopy == nullptr || r.downtime < best_precopy->downtime) {
            best_precopy = &r;
          }
          min_precopy_page_bytes = min_precopy_page_bytes == 0
                                       ? r.page_bytes
                                       : std::min(min_precopy_page_bytes, r.page_bytes);
          workload_slo_met = workload_slo_met || r.slo_met;
          break;
      }
    }
    if (purecopy == nullptr || pureiou == nullptr || best_precopy == nullptr) {
      summary.bytes_ordering_ok = false;
      continue;
    }
    // Dirty re-shipping must cost: even pre-copy's cheapest cell moves at
    // least one full copy, and pure-copy moves more than copy-on-reference.
    if (min_precopy_page_bytes < purecopy->page_bytes ||
        purecopy->page_bytes < pureiou->page_bytes) {
      summary.bytes_ordering_ok = false;
    }
    if (IsComputeBoundGate(spec.name)) {
      if (best_precopy->downtime < purecopy->downtime) {
        ++summary.downtime_wins;
      }
      summary.slo_ok = summary.slo_ok && workload_slo_met;
    }
  }
  summary.downtime_win_ok = summary.downtime_wins >= 2;
  return summary;
}

Json PreCopySweepToJson(const PreCopySweepSummary& summary) {
  Json cells{Json::Array{}};
  for (const PreCopySweepCellResult& r : summary.cells) {
    Json entry;
    entry["workload"] = Json(r.cell.workload);
    entry["strategy"] = Json(StrategyName(r.cell.strategy));
    entry["live"] = Json(r.cell.live);
    entry["max_rounds"] = Json(r.cell.max_rounds);
    entry["target_downtime_ms"] = Json(r.cell.target_downtime.count() / 1000);
    entry["completed"] = Json(r.completed);
    entry["hung"] = Json(r.hung);
    entry["rounds"] = Json(r.rounds);
    entry["downtime_s"] = Json(ToSeconds(r.downtime));
    entry["total_s"] = Json(ToSeconds(r.total));
    entry["page_bytes"] = Json(r.page_bytes);
    entry["wire_bytes"] = Json(r.wire_bytes);
    entry["wws_pages"] = Json(r.wws_pages);
    entry["predicted_downtime_s"] = Json(ToSeconds(r.predicted_downtime));
    entry["slo_met"] = Json(r.slo_met);
    cells.Append(std::move(entry));
  }

  // Per-workload Pareto summary: the two axes (downtime, page bytes) for
  // pure-copy, pure-IOU and pre-copy's best-downtime cell. The frontier
  // RESULTS.md renders falls straight out of these rows.
  Json pareto{Json::Array{}};
  for (const WorkloadSpec& spec : RepresentativeWorkloads()) {
    const PreCopySweepCellResult* purecopy = nullptr;
    const PreCopySweepCellResult* pureiou = nullptr;
    const PreCopySweepCellResult* best_precopy = nullptr;
    for (const PreCopySweepCellResult& r : summary.cells) {
      if (r.cell.workload != spec.name || !r.completed) {
        continue;
      }
      if (r.cell.strategy == TransferStrategy::kPureCopy) {
        purecopy = &r;
      } else if (r.cell.strategy == TransferStrategy::kPureIou) {
        pureiou = &r;
      } else if (r.cell.strategy == TransferStrategy::kPreCopy &&
                 (best_precopy == nullptr || r.downtime < best_precopy->downtime)) {
        best_precopy = &r;
      }
    }
    if (purecopy == nullptr || pureiou == nullptr || best_precopy == nullptr) {
      continue;
    }
    Json row;
    row["workload"] = Json(spec.name);
    row["live"] = Json(best_precopy->cell.live);
    row["purecopy_downtime_s"] = Json(ToSeconds(purecopy->downtime));
    row["purecopy_page_bytes"] = Json(purecopy->page_bytes);
    row["iou_downtime_s"] = Json(ToSeconds(pureiou->downtime));
    row["iou_page_bytes"] = Json(pureiou->page_bytes);
    row["precopy_downtime_s"] = Json(ToSeconds(best_precopy->downtime));
    row["precopy_page_bytes"] = Json(best_precopy->page_bytes);
    row["precopy_rounds"] = Json(best_precopy->rounds);
    row["precopy_max_rounds"] = Json(best_precopy->cell.max_rounds);
    row["precopy_target_downtime_ms"] =
        Json(best_precopy->cell.target_downtime.count() / 1000);
    row["downtime_win"] = Json(best_precopy->downtime < purecopy->downtime);
    pareto.Append(std::move(row));
  }

  Json report;
  report["bench"] = Json("precopy");
  report["schema_version"] = Json(1);
  report["trial_count"] = Json(static_cast<std::uint64_t>(summary.cells.size()));
  report["completed"] = Json(summary.completed);
  report["hung"] = Json(summary.hung);
  report["downtime_wins"] = Json(summary.downtime_wins);
  report["downtime_win_ok"] = Json(summary.downtime_win_ok);
  report["bytes_ordering_ok"] = Json(summary.bytes_ordering_ok);
  report["slo_ok"] = Json(summary.slo_ok);
  report["pareto"] = std::move(pareto);
  report["cells"] = std::move(cells);
  return report;
}

}  // namespace accent
