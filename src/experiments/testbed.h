// The simulated two-Perq Accent testbed.
//
// Assembles N hosts — CPU, disk, physical memory, pager, NetMsgServer,
// MigrationManager — over one shared Ethernet, one IPC fabric and one
// segment table, exactly the environment the paper's measurements were
// taken on (section 4). Every experiment and example builds on this.
#ifndef SRC_EXPERIMENTS_TESTBED_H_
#define SRC_EXPERIMENTS_TESTBED_H_

#include <memory>
#include <vector>

#include "src/host/calibration.h"
#include "src/host/costs.h"
#include "src/host/cpu.h"
#include "src/host/disk.h"
#include "src/host/physical_memory.h"
#include "src/ipc/fabric.h"
#include "src/migration/migration_manager.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/page_service.h"
#include "src/net/traffic.h"
#include "src/netmsg/netmsgserver.h"
#include "src/proc/host_env.h"
#include "src/sim/simulator.h"
#include "src/vm/pager.h"
#include "src/vm/segment.h"

namespace accent {

struct TestbedConfig {
  int host_count = 2;
  // A Perq carried ~2 MB of memory: 4096 frames of 512 bytes.
  std::size_t frames_per_host = 4096;
  CostTable costs{};
  SimDuration traffic_bucket = Ms(500);
  // NetMsgServer IOU substitution (the paper's system has it on).
  bool iou_caching = true;

  // Fault injection. A non-trivial plan attaches a FaultInjector to the
  // wire and switches every host to the reliable NetMsgServer transport
  // (lossy delivery without retransmission would simply wedge). The
  // default — empty plan, reliable off — leaves the lossless event
  // schedule bit-identical to the seed.
  FaultPlan fault_plan{};
  std::uint64_t fault_seed = 42;
  // Force the reliable transport even with a trivial plan (protocol tests).
  bool reliable_transport = false;

  // Content-addressed cluster page service (docs/INTERNALS.md §15). Off by
  // default: no PageService is constructed, no hashes are ever computed and
  // every trial stays byte-identical to the classic protocol. When on,
  // every host gets a ContentCache of content_cache_pages and joins one
  // shared PageDirectory whose holder announcements become visible one
  // wire latency after they are recorded.
  bool content_cache = false;
  std::int64_t content_cache_pages = 4096;

  // Per-host calibrations, indexed by host (entry i calibrates HostId i+1).
  // Empty — the default — is the homogeneous testbed, byte-identical to the
  // seed; when present the vector must cover every host. A diskless entry
  // turns that host's Disk into a remote-paging path and marks its HostEnv
  // so no FileServer can anchor backing there.
  std::vector<HostCalibration> calibrations{};

  // Observability (not owned; may be null — the default — for no tracing).
  // Attached to the simulator at construction; every instrumented subsystem
  // reaches it through sim().tracer(). Recording never alters the event
  // schedule, so traced and untraced runs produce identical results.
  Tracer* tracer = nullptr;
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config = TestbedConfig{});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  Simulator& sim() { return sim_; }
  const CostTable& costs() const { return config_.costs; }
  int host_count() const { return static_cast<int>(hosts_.size()); }

  // This host's calibration; identity when the config carried none.
  HostCalibration calibration(int index) const;

  HostEnv* host(int index);
  MigrationManager* manager(int index);
  NetMsgServer* netmsg(int index);
  Pager* pager(int index);
  Cpu* cpu(int index);
  // Null unless config.content_cache is on.
  PageService* page_service(int index);
  PageDirectory* page_directory() { return page_directory_.get(); }

  TrafficRecorder& traffic() { return traffic_; }
  IpcFabric& fabric() { return fabric_; }
  SegmentTable& segments() { return segments_; }
  Network& network() { return network_; }

  // Null unless the config carried a non-trivial fault plan.
  FaultInjector* fault_injector() { return fault_.get(); }

  // Simulated-time watchdog: drains the event queue but gives up once the
  // clock passes Now() + limit. Returns true if the queue drained; on
  // false, logs the earliest pending event times so a hung test fails
  // fast with a usable dump instead of spinning a wall-clock timeout.
  bool RunGuarded(SimDuration limit = Sec(3600.0));

  // Sets the imaginary-fault prefetch on every host's pager.
  void SetPrefetch(std::uint32_t pages);

  // NetMsgServer busy time summed over all hosts (Figure 4-4's metric).
  SimDuration TotalNetMsgBusy() const;
  // Pager busy time summed over all hosts.
  SimDuration TotalPagerBusy() const;

 private:
  struct HostParts {
    std::unique_ptr<Cpu> cpu;
    std::unique_ptr<Disk> disk;
    std::unique_ptr<PhysicalMemory> memory;
    std::unique_ptr<Pager> pager;
    std::unique_ptr<PageService> page_service;
    std::unique_ptr<NetMsgServer> netmsg;
    std::unique_ptr<HostEnv> env;
    std::unique_ptr<MigrationManager> manager;
  };

  TestbedConfig config_;
  Simulator sim_;
  SegmentTable segments_;
  TrafficRecorder traffic_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<PageDirectory> page_directory_;
  Network network_;
  IpcFabric fabric_;
  NetMsgDirectory directory_;
  std::vector<HostParts> hosts_;
};

}  // namespace accent

#endif  // SRC_EXPERIMENTS_TESTBED_H_
