#include "src/experiments/sweep_cache.h"

#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/base/check.h"
#include "src/experiments/sweep.h"

namespace accent {
namespace {

Json DurationToJson(SimDuration d) { return Json(static_cast<std::int64_t>(d.count())); }
SimDuration DurationFromJson(const Json& j) { return SimDuration(j.AsInt64()); }

Json PagerStatsToJson(const PagerStats& stats) {
  Json json;
  json["resident_hits"] = Json(stats.resident_hits);
  json["fillzero_faults"] = Json(stats.fillzero_faults);
  json["disk_faults"] = Json(stats.disk_faults);
  json["cow_faults"] = Json(stats.cow_faults);
  json["imag_faults"] = Json(stats.imag_faults);
  json["imag_pages_fetched"] = Json(stats.imag_pages_fetched);
  json["prefetched_pages"] = Json(stats.prefetched_pages);
  json["prefetch_hits"] = Json(stats.prefetch_hits);
  json["pageouts"] = Json(stats.pageouts);
  json["address_errors"] = Json(stats.address_errors);
  json["failed_fetches"] = Json(stats.failed_fetches);
  // Content-cache counters exist only when the page service was wired;
  // emitting them conditionally keeps every legacy row byte-identical (the
  // golden sweep digest hashes these dumps).
  if (stats.cache_local_hits != 0 || stats.cache_pages_confirmed != 0 ||
      stats.cache_pages_from_holders != 0 || stats.cache_holder_misses != 0 ||
      stats.cache_holder_failovers != 0 || stats.cache_pull_pages_served != 0 ||
      stats.cache_hash_rejects != 0) {
    json["cache_local_hits"] = Json(stats.cache_local_hits);
    json["cache_pages_confirmed"] = Json(stats.cache_pages_confirmed);
    json["cache_pages_from_holders"] = Json(stats.cache_pages_from_holders);
    json["cache_holder_misses"] = Json(stats.cache_holder_misses);
    json["cache_holder_failovers"] = Json(stats.cache_holder_failovers);
    json["cache_pull_pages_served"] = Json(stats.cache_pull_pages_served);
    json["cache_hash_rejects"] = Json(stats.cache_hash_rejects);
  }
  return json;
}

PagerStats PagerStatsFromJson(const Json& json) {
  PagerStats stats;
  stats.resident_hits = json.Get("resident_hits").AsUint64();
  stats.fillzero_faults = json.Get("fillzero_faults").AsUint64();
  stats.disk_faults = json.Get("disk_faults").AsUint64();
  stats.cow_faults = json.Get("cow_faults").AsUint64();
  stats.imag_faults = json.Get("imag_faults").AsUint64();
  stats.imag_pages_fetched = json.Get("imag_pages_fetched").AsUint64();
  stats.prefetched_pages = json.Get("prefetched_pages").AsUint64();
  stats.prefetch_hits = json.Get("prefetch_hits").AsUint64();
  stats.pageouts = json.Get("pageouts").AsUint64();
  stats.address_errors = json.Get("address_errors").AsUint64();
  stats.failed_fetches = json.Get("failed_fetches").AsUint64();
  if (const Json* hits = json.Find("cache_local_hits"); hits != nullptr) {
    stats.cache_local_hits = hits->AsUint64();
    stats.cache_pages_confirmed = json.Get("cache_pages_confirmed").AsUint64();
    stats.cache_pages_from_holders = json.Get("cache_pages_from_holders").AsUint64();
    stats.cache_holder_misses = json.Get("cache_holder_misses").AsUint64();
    stats.cache_holder_failovers = json.Get("cache_holder_failovers").AsUint64();
    stats.cache_pull_pages_served = json.Get("cache_pull_pages_served").AsUint64();
    stats.cache_hash_rejects = json.Get("cache_hash_rejects").AsUint64();
  }
  return stats;
}

Json SpecToJson(const WorkloadSpec& spec) {
  Json json;
  json["name"] = Json(spec.name);
  json["real_bytes"] = Json(spec.real_bytes);
  json["zero_bytes"] = Json(spec.zero_bytes);
  json["resident_bytes"] = Json(spec.resident_bytes);
  json["real_regions"] = Json(spec.real_regions);
  json["zero_regions"] = Json(spec.zero_regions);
  json["pattern"] = Json(static_cast<int>(spec.pattern));
  json["touched_real_pages"] = Json(spec.touched_real_pages);
  json["resident_touched_overlap"] = Json(spec.resident_touched_overlap);
  json["zero_touches"] = Json(spec.zero_touches);
  json["compute_us"] = DurationToJson(spec.compute);
  json["scan_density"] = Json(spec.scan_density);
  return json;
}

WorkloadSpec SpecFromJson(const Json& json) {
  WorkloadSpec spec;
  spec.name = json.Get("name").AsString();
  spec.real_bytes = json.Get("real_bytes").AsUint64();
  spec.zero_bytes = json.Get("zero_bytes").AsUint64();
  spec.resident_bytes = json.Get("resident_bytes").AsUint64();
  spec.real_regions = static_cast<std::uint32_t>(json.Get("real_regions").AsUint64());
  spec.zero_regions = static_cast<std::uint32_t>(json.Get("zero_regions").AsUint64());
  spec.pattern = static_cast<AccessPattern>(json.Get("pattern").AsInt64());
  spec.touched_real_pages = json.Get("touched_real_pages").AsUint64();
  spec.resident_touched_overlap = json.Get("resident_touched_overlap").AsUint64();
  spec.zero_touches = json.Get("zero_touches").AsUint64();
  spec.compute = DurationFromJson(json.Get("compute_us"));
  spec.scan_density = json.Get("scan_density").AsDouble();
  return spec;
}

Json MigrationToJson(const MigrationRecord& record) {
  Json json;
  json["proc"] = Json(record.proc.value);
  json["name"] = Json(record.name);
  json["strategy"] = Json(static_cast<int>(record.strategy));
  json["requested_us"] = DurationToJson(record.requested);
  json["excise_done_us"] = DurationToJson(record.excise_done);
  json["core_sent_us"] = DurationToJson(record.core_sent);
  json["rimas_sent_us"] = DurationToJson(record.rimas_sent);
  json["excise_amap_us"] = DurationToJson(record.excise_amap);
  json["excise_rimas_us"] = DurationToJson(record.excise_rimas);
  json["excise_overall_us"] = DurationToJson(record.excise_overall);
  json["core_arrived_us"] = DurationToJson(record.core_arrived);
  json["rimas_arrived_us"] = DurationToJson(record.rimas_arrived);
  json["insert_time_us"] = DurationToJson(record.insert_time);
  json["resumed_us"] = DurationToJson(record.resumed);
  json["resident_bytes_shipped"] = Json(record.resident_bytes_shipped);
  json["precopy_rounds"] = Json(record.precopy_rounds);
  json["precopy_bytes"] = Json(record.precopy_bytes);
  json["frozen_us"] = DurationToJson(record.frozen);
  if (record.strategy == TransferStrategy::kPreCopy) {
    // SLO-loop diagnostics exist only for pre-copy trials; emitting them
    // conditionally keeps every legacy row byte-identical (the golden sweep
    // digest hashes these dumps).
    json["precopy_wws_pages"] = Json(record.precopy_wws_pages);
    json["precopy_predicted_downtime_us"] = DurationToJson(record.precopy_predicted_downtime);
    json["precopy_flash_bytes"] = Json(record.precopy_flash_bytes);
    json["precopy_slo_met"] = Json(record.precopy_slo_met);
  }
  return json;
}

MigrationRecord MigrationFromJson(const Json& json) {
  MigrationRecord record;
  record.proc = ProcId(json.Get("proc").AsUint64());
  record.name = json.Get("name").AsString();
  record.strategy = static_cast<TransferStrategy>(json.Get("strategy").AsInt64());
  record.requested = DurationFromJson(json.Get("requested_us"));
  record.excise_done = DurationFromJson(json.Get("excise_done_us"));
  record.core_sent = DurationFromJson(json.Get("core_sent_us"));
  record.rimas_sent = DurationFromJson(json.Get("rimas_sent_us"));
  record.excise_amap = DurationFromJson(json.Get("excise_amap_us"));
  record.excise_rimas = DurationFromJson(json.Get("excise_rimas_us"));
  record.excise_overall = DurationFromJson(json.Get("excise_overall_us"));
  record.core_arrived = DurationFromJson(json.Get("core_arrived_us"));
  record.rimas_arrived = DurationFromJson(json.Get("rimas_arrived_us"));
  record.insert_time = DurationFromJson(json.Get("insert_time_us"));
  record.resumed = DurationFromJson(json.Get("resumed_us"));
  record.resident_bytes_shipped = json.Get("resident_bytes_shipped").AsUint64();
  record.precopy_rounds = static_cast<int>(json.Get("precopy_rounds").AsInt64());
  record.precopy_bytes = json.Get("precopy_bytes").AsUint64();
  record.frozen = DurationFromJson(json.Get("frozen_us"));
  if (const Json* wws = json.Find("precopy_wws_pages"); wws != nullptr) {
    record.precopy_wws_pages = wws->AsDouble();
    record.precopy_predicted_downtime = DurationFromJson(json.Get("precopy_predicted_downtime_us"));
    record.precopy_flash_bytes = json.Get("precopy_flash_bytes").AsUint64();
    record.precopy_slo_met = json.Get("precopy_slo_met").AsBool();
  }
  return record;
}

Json SeriesToJson(const std::vector<TrafficRecorder::Bucket>& series) {
  Json json = Json::Array{};
  for (const TrafficRecorder::Bucket& bucket : series) {
    Json entry;
    entry["start_us"] = DurationToJson(bucket.start);
    Json bytes = Json::Array{};
    for (ByteCount b : bucket.bytes) {
      bytes.Append(Json(b));
    }
    entry["bytes"] = std::move(bytes);
    json.Append(std::move(entry));
  }
  return json;
}

std::vector<TrafficRecorder::Bucket> SeriesFromJson(const Json& json) {
  std::vector<TrafficRecorder::Bucket> series;
  for (const Json& entry : json.AsArray()) {
    TrafficRecorder::Bucket bucket;
    bucket.start = DurationFromJson(entry.Get("start_us"));
    const Json::Array& bytes = entry.Get("bytes").AsArray();
    ACCENT_CHECK_EQ(bytes.size(), bucket.bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bucket.bytes[i] = bytes[i].AsUint64();
    }
    series.push_back(bucket);
  }
  return series;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Json TrialConfigToJson(const TrialConfig& config) {
  Json json;
  json["workload"] = Json(config.workload);
  json["strategy"] = Json(static_cast<int>(config.strategy));
  json["prefetch"] = Json(config.prefetch);
  json["seed"] = Json(config.seed);
  json["iou_caching"] = Json(config.iou_caching);
  json["frames_per_host"] = Json(static_cast<std::uint64_t>(config.frames_per_host));
  json["traffic_bucket_us"] = DurationToJson(config.traffic_bucket);
  if (config.strategy == TransferStrategy::kPreCopy) {
    // Round/SLO knobs change pre-copy results, so they must key the cache;
    // emitting them only for pre-copy keeps legacy keys byte-identical.
    json["precopy_max_rounds"] = Json(config.precopy_max_rounds);
    json["precopy_stop_threshold"] = Json(static_cast<std::uint64_t>(config.precopy_stop_threshold));
    json["precopy_target_downtime_us"] = DurationToJson(config.precopy_target_downtime);
  }
  if (config.content_cache) {
    // The dedup plane adds hash riders and probe traffic, so it must key
    // the cache; emitting it only when enabled keeps legacy keys intact.
    json["content_cache"] = Json(true);
    json["content_cache_pages"] = Json(config.content_cache_pages);
  }
  return json;
}

TrialConfig TrialConfigFromJson(const Json& json) {
  TrialConfig config;
  config.workload = json.Get("workload").AsString();
  config.strategy = static_cast<TransferStrategy>(json.Get("strategy").AsInt64());
  config.prefetch = static_cast<std::uint32_t>(json.Get("prefetch").AsUint64());
  config.seed = json.Get("seed").AsUint64();
  config.iou_caching = json.Get("iou_caching").AsBool();
  config.frames_per_host = static_cast<std::size_t>(json.Get("frames_per_host").AsUint64());
  config.traffic_bucket = DurationFromJson(json.Get("traffic_bucket_us"));
  if (const Json* rounds = json.Find("precopy_max_rounds"); rounds != nullptr) {
    config.precopy_max_rounds = static_cast<int>(rounds->AsInt64());
    config.precopy_stop_threshold =
        static_cast<PageIndex>(json.Get("precopy_stop_threshold").AsUint64());
    config.precopy_target_downtime = DurationFromJson(json.Get("precopy_target_downtime_us"));
  }
  if (const Json* cache = json.Find("content_cache"); cache != nullptr) {
    config.content_cache = cache->AsBool();
    config.content_cache_pages = json.Get("content_cache_pages").AsInt64();
  }
  return config;
}

Json TrialResultToJson(const TrialResult& result) {
  Json json;
  json["config"] = TrialConfigToJson(result.config);
  json["spec"] = SpecToJson(result.spec);
  json["migration"] = MigrationToJson(result.migration);
  json["finished_us"] = DurationToJson(result.finished);
  json["remote_exec_us"] = DurationToJson(result.remote_exec);
  json["bytes_total"] = Json(result.bytes_total);
  json["bytes_control"] = Json(result.bytes_control);
  json["bytes_core"] = Json(result.bytes_core);
  json["bytes_bulk"] = Json(result.bytes_bulk);
  json["bytes_fault"] = Json(result.bytes_fault);
  json["messages_total"] = Json(result.messages_total);
  json["series"] = SeriesToJson(result.series);
  json["series_bucket_us"] = DurationToJson(result.series_bucket);
  json["netmsg_busy_us"] = DurationToJson(result.netmsg_busy);
  json["dest_pager"] = PagerStatsToJson(result.dest_pager);
  json["real_bytes_transferred"] = Json(result.real_bytes_transferred);
  return json;
}

TrialResult TrialResultFromJson(const Json& json) {
  TrialResult result;
  result.config = TrialConfigFromJson(json.Get("config"));
  result.spec = SpecFromJson(json.Get("spec"));
  result.migration = MigrationFromJson(json.Get("migration"));
  result.finished = DurationFromJson(json.Get("finished_us"));
  result.remote_exec = DurationFromJson(json.Get("remote_exec_us"));
  result.bytes_total = json.Get("bytes_total").AsUint64();
  result.bytes_control = json.Get("bytes_control").AsUint64();
  result.bytes_core = json.Get("bytes_core").AsUint64();
  result.bytes_bulk = json.Get("bytes_bulk").AsUint64();
  result.bytes_fault = json.Get("bytes_fault").AsUint64();
  result.messages_total = json.Get("messages_total").AsUint64();
  result.series = SeriesFromJson(json.Get("series"));
  result.series_bucket = DurationFromJson(json.Get("series_bucket_us"));
  result.netmsg_busy = DurationFromJson(json.Get("netmsg_busy_us"));
  result.dest_pager = PagerStatsFromJson(json.Get("dest_pager"));
  result.real_bytes_transferred = json.Get("real_bytes_transferred").AsUint64();
  return result;
}

std::string SweepCacheKey(const std::vector<TrialConfig>& configs) {
  Json list = Json::Array{};
  list.Append(Json(kSweepCacheFormatVersion));
  for (const TrialConfig& config : configs) {
    list.Append(TrialConfigToJson(config));
  }
  const std::string canonical = list.Dump();

  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64-bit
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

void WriteSweepFile(const std::string& path, const std::vector<TrialResult>& results) {
  Json root;
  root["format_version"] = Json(kSweepCacheFormatVersion);
  Json trials = Json::Array{};
  for (const TrialResult& result : results) {
    trials.Append(TrialResultToJson(result));
  }
  root["trials"] = std::move(trials);

  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  // Unique temp name per process so concurrent bench binaries warming the
  // same key cannot interleave; rename is atomic within a filesystem.
  std::filesystem::path temp = target;
  temp += ".tmp." + std::to_string(static_cast<unsigned long>(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    ACCENT_CHECK(out.good()) << " cannot write sweep cache temp file " << temp.string();
    out << root.Dump(2) << '\n';
    ACCENT_CHECK(out.good()) << " short write to " << temp.string();
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  ACCENT_CHECK(!ec) << " rename " << temp.string() << " -> " << path << ": " << ec.message();
}

bool LoadSweepFile(const std::string& path, const std::vector<TrialConfig>& expected_configs,
                   std::vector<TrialResult>* results) {
  ACCENT_EXPECTS(results != nullptr);
  const std::string text = ReadFileOrEmpty(path);
  if (text.empty()) {
    return false;
  }
  Json root;
  if (!Json::TryParse(text, &root) || !root.is_object()) {
    return false;
  }
  const Json* version = root.Find("format_version");
  if (version == nullptr || !version->is_integer() ||
      version->AsInt64() != kSweepCacheFormatVersion) {
    return false;
  }
  const Json* trials = root.Find("trials");
  if (trials == nullptr || !trials->is_array() ||
      trials->AsArray().size() != expected_configs.size()) {
    return false;
  }

  std::vector<TrialResult> loaded;
  loaded.reserve(expected_configs.size());
  for (std::size_t i = 0; i < expected_configs.size(); ++i) {
    const Json& entry = trials->AsArray()[i];
    // Canonical dumps make config equality a cheap string compare.
    const Json* config = entry.Find("config");
    if (config == nullptr ||
        config->Dump() != TrialConfigToJson(expected_configs[i]).Dump()) {
      return false;
    }
    loaded.push_back(TrialResultFromJson(entry));
  }
  *results = std::move(loaded);
  return true;
}

DiskSweepCache::DiskSweepCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    if (const char* env = std::getenv("ACCENT_SWEEP_CACHE_DIR"); env != nullptr && *env) {
      dir_ = env;
    } else {
      dir_ = ".accent_sweep_cache";
    }
  }
}

const std::vector<TrialResult>& DiskSweepCache::For(const std::string& workload,
                                                    std::uint64_t seed, int threads) {
  return ForLocked(workload, seed, threads, /*force=*/false);
}

const std::vector<TrialResult>& DiskSweepCache::Refresh(const std::string& workload,
                                                        std::uint64_t seed, int threads) {
  return ForLocked(workload, seed, threads, /*force=*/true);
}

const std::vector<TrialResult>& DiskSweepCache::ForLocked(const std::string& workload,
                                                          std::uint64_t seed, int threads,
                                                          bool force) {
  const std::string memo_key = workload + "|" + std::to_string(seed);
  std::unique_lock<std::mutex> lock(mu_);
  if (!force) {
    auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      return it->second;
    }
  }

  const std::vector<TrialConfig> configs = StrategySweepConfigs(workload, seed);
  const std::string path = FilePath(workload, configs);

  std::vector<TrialResult> results;
  if (!force && LoadSweepFile(path, configs, &results)) {
    ++disk_hits_;
  } else {
    results = RunTrials(configs, threads);
    WriteSweepFile(path, results);
    ++computes_;
  }
  return memo_[memo_key] = std::move(results);
}

std::string DiskSweepCache::FilePath(const std::string& workload,
                                     const std::vector<TrialConfig>& configs) const {
  std::string safe_name;
  for (char c : workload) {
    safe_name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return dir_ + "/sweep_" + safe_name + "_" + SweepCacheKey(configs) + ".json";
}

DiskSweepCache& DiskSweepCache::Global() {
  static DiskSweepCache cache;
  return cache;
}

}  // namespace accent
