// Folds trial results into a MetricsRegistry.
//
// The bridge between the per-trial measurement records and the typed
// metrics that bench binaries embed in BENCH_*.json: run the sweep, fold
// every TrialResult, serialise the registry. Aggregation is associative —
// folding trials one at a time equals merging per-trial registries — which
// is what lets parallel sweeps aggregate after the barrier.
#ifndef SRC_EXPERIMENTS_METRICS_FOLD_H_
#define SRC_EXPERIMENTS_METRICS_FOLD_H_

#include "src/experiments/dedup.h"
#include "src/experiments/trial.h"
#include "src/metrics/registry.h"

namespace accent {

// Adds one trial's measurements to `registry`:
//   counters   trials, messages.total, bytes.{total,control,core,bulk,fault},
//              bytes.real_transferred, faults.{fillzero,disk,cow,imaginary},
//              faults.iou_pulls (pages returned by backers),
//              faults.prefetched, faults.prefetch_hits
//   histograms downtime_seconds, rimas_transfer_seconds, netmsg_busy_seconds
void FoldTrialMetrics(const TrialResult& result, MetricsRegistry* registry);

// Adds one dedup-experiment run's content-cache measurements to `registry`:
//   counters   cache.hits, cache.misses, cache.insertions, cache.evictions,
//              cache.offloaded_pages, cache.origin_payload_pages,
//              cache.wire_bytes
// A cache-off run folds all-zero cache counters (plus its wire bytes), so a
// registry holding both halves of the bench exposes the dedup delta.
void FoldDedupMetrics(const DedupResult& result, MetricsRegistry* registry);

// Compact one-object-per-trial summary for BENCH_sweep.json: the fields the
// paper tables are computed from (spec composition, excision/transfer/insert
// timings, byte traffic, destination fault counts), WITHOUT the bulky
// traffic series that the full sweep-cache serialisation carries.
// tools/render_results consumes exactly this shape.
Json TrialSummaryToJson(const TrialResult& result);

}  // namespace accent

#endif  // SRC_EXPERIMENTS_METRICS_FOLD_H_
