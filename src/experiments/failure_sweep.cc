#include "src/experiments/failure_sweep.h"

#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/base/logging.h"
#include "src/base/page_data.h"
#include "src/base/thread_pool.h"
#include "src/experiments/sweep.h"
#include "src/experiments/testbed.h"
#include "src/workloads/workload.h"

namespace accent {

namespace {

// Trials run at most this much simulated time past the migration request;
// the longest workload (Chess, 480 s of compute) plus the 600 s abort
// backstop fits comfortably.
constexpr SimDuration kFailureHorizon = Sec(3600.0);

const TransferStrategy kStrategies[] = {TransferStrategy::kPureCopy,
                                        TransferStrategy::kPureIou,
                                        TransferStrategy::kResidentSet,
                                        TransferStrategy::kPreCopy};

std::uint64_t SplitMix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h = (h ^ c) * 1099511628211ull;
  }
  return h;
}

// Every fault plan in one trial draws from a seed mixed from the trial seed
// and the full grid coordinate, so no two cells share a verdict stream.
std::uint64_t FaultSeed(std::uint64_t seed, const std::string& workload,
                        TransferStrategy strategy, const std::string& scenario) {
  return SplitMix(seed ^ SplitMix(Fnv(workload)) ^
                  SplitMix(static_cast<std::uint64_t>(strategy) + 1) ^ SplitMix(Fnv(scenario)));
}

// Order-independent-of-nothing: pages are visited in ascending order, so the
// combined hash is a deterministic function of the touched-page contents.
std::uint64_t TouchedChecksum(const Process& proc, const std::set<PageIndex>& touches) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
  };
  for (PageIndex page : touches) {
    mix(page);
    mix(proc.space()->HasPrivatePage(page) ? PageIntegrityChecksum(proc.space()->ReadPage(page)) : 0);
  }
  return h;
}

// One migration attempt on a private testbed. Everything the classifier
// needs comes back in this bundle; nothing here CHECKs completion.
struct MigrationRun {
  bool drained = false;
  bool done = false;
  MigrationRecord record;
  // The processes themselves die with the trial's testbed, so everything
  // the classifier reads is snapshotted here before RunOneMigration
  // returns. "remote" is the incarnation inserted at the destination,
  // "local" the one re-inserted at the source by a rollback.
  bool remote_inserted = false;
  bool remote_done = false;
  bool remote_faulted = false;
  SimTime remote_finish{};
  bool local_inserted = false;
  bool local_done = false;
  SimTime local_finish{};
  std::set<PageIndex> planned_touches;
  NetMsgStats netmsg;          // both hosts summed
  std::uint64_t deliveries_lost = 0;
  // Both sides are checksummed: after a destination crash the remote twin
  // may have been inserted (and then starved) before the source rolled
  // back, and the classifier must judge whichever incarnation is
  // authoritative for the outcome it reports.
  std::uint64_t remote_checksum = 0;
  std::uint64_t local_checksum = 0;
};

MigrationRun RunOneMigration(const TestbedConfig& testbed_config, const std::string& workload,
                             TransferStrategy strategy, std::uint64_t seed) {
  Testbed bed(testbed_config);
  MigrationRun run;

  WorkloadInstance instance = BuildWorkload(WorkloadByName(workload), bed.host(0), seed);
  run.planned_touches = instance.planned_touches;
  Process* proc = instance.process.get();

  const PortId owned_port = bed.fabric().AllocatePort(bed.host(0)->id, nullptr, "proc-owned");
  proc->AttachReceiveRight(owned_port);
  bed.manager(0)->RegisterLocal(proc);

  Process* remote = nullptr;
  Process* local = nullptr;
  bed.manager(1)->set_on_insert([&remote](Process* inserted) { remote = inserted; });
  bed.manager(0)->set_on_insert([&local](Process* inserted) { local = inserted; });

  bed.manager(0)->Migrate(proc, bed.manager(1)->port(), strategy,
                          [&run](const MigrationRecord& record) {
                            run.record = record;
                            run.done = true;
                          });

  run.drained = bed.RunGuarded(kFailureHorizon);

  const NetMsgStats& a = bed.netmsg(0)->stats();
  const NetMsgStats& b = bed.netmsg(1)->stats();
  run.netmsg.fragments_retransmitted = a.fragments_retransmitted + b.fragments_retransmitted;
  run.netmsg.retransmit_bytes = a.retransmit_bytes + b.retransmit_bytes;
  run.netmsg.duplicates_suppressed = a.duplicates_suppressed + b.duplicates_suppressed;
  run.netmsg.transfers_dead_lettered = a.transfers_dead_lettered + b.transfers_dead_lettered;
  run.deliveries_lost = bed.network().deliveries_lost();

  // Snapshot (and checksum) before the testbed and its processes die.
  if (remote != nullptr) {
    run.remote_inserted = true;
    run.remote_done = remote->done();
    run.remote_faulted = remote->faulted();
    run.remote_finish = remote->finish_time();
    run.remote_checksum = TouchedChecksum(*remote, run.planned_touches);
  }
  if (local != nullptr) {
    run.local_inserted = true;
    run.local_done = local->done();
    run.local_finish = local->finish_time();
    run.local_checksum = TouchedChecksum(*local, run.planned_touches);
  }
  return run;
}

}  // namespace

const char* FailureOutcomeName(FailureOutcome outcome) {
  switch (outcome) {
    case FailureOutcome::kCompleted:
      return "completed";
    case FailureOutcome::kAborted:
      return "aborted";
    case FailureOutcome::kTerminalFault:
      return "terminal_fault";
    case FailureOutcome::kHung:
      return "hung";
  }
  return "unknown";
}

const std::vector<FailureScenario>& FailureScenarios() {
  static const std::vector<FailureScenario> scenarios = [] {
    std::vector<FailureScenario> list;

    FailureScenario drop2;
    drop2.name = "drop2";
    drop2.drop = 0.02;
    list.push_back(drop2);

    // The acceptance recipe: 5% drop, 5% duplication, jitter wide enough to
    // reorder fragments. Every cell must complete with intact contents.
    FailureScenario lossy5;
    lossy5.name = "lossy5";
    lossy5.drop = 0.05;
    lossy5.duplicate = 0.05;
    lossy5.delay = 0.10;
    lossy5.reorder = 0.25;
    list.push_back(lossy5);

    FailureScenario dest_crash;
    dest_crash.name = "dest_crash";
    dest_crash.crash_dest = true;
    list.push_back(dest_crash);

    FailureScenario source_crash;
    source_crash.name = "source_crash";
    source_crash.crash_source = true;
    list.push_back(source_crash);

    return list;
  }();
  return scenarios;
}

FailureBaseline RunFailureBaseline(const std::string& workload, TransferStrategy strategy,
                                   std::uint64_t seed) {
  // Lossless and *unreliable*: the reference is the paper's original
  // fire-and-forget path, so slowdowns charge the retry protocol too.
  MigrationRun run = RunOneMigration(TestbedConfig{}, workload, strategy, seed);
  ACCENT_CHECK(run.drained && run.done && !run.record.aborted)
      << " lossless baseline failed for " << workload;
  ACCENT_CHECK(run.remote_done) << " lossless baseline did not finish for " << workload;

  FailureBaseline baseline;
  baseline.migration = run.record;
  baseline.finished = run.remote_finish;
  baseline.remote_exec = baseline.finished - run.record.resumed;
  baseline.touched_checksum = run.remote_checksum;
  return baseline;
}

FailureTrialResult RunFailureTrial(const std::string& workload, TransferStrategy strategy,
                                   const FailureScenario& scenario,
                                   const FailureBaseline& baseline, std::uint64_t seed) {
  TestbedConfig config;
  config.fault_seed = FaultSeed(seed, workload, strategy, scenario.name);
  config.fault_plan.drop = scenario.drop;
  config.fault_plan.duplicate = scenario.duplicate;
  config.fault_plan.delay = scenario.delay;
  config.fault_plan.reorder = scenario.reorder;
  if (scenario.crash_dest) {
    // Mid-transfer: halfway between excision and the baseline's resumption.
    const SimTime mid = baseline.migration.excise_done +
                        (baseline.migration.resumed - baseline.migration.excise_done) / 2;
    config.fault_plan.crashes.push_back(CrashWindow{HostId(2), mid, kFaultForever});
  }
  if (scenario.crash_source) {
    // 30% into the baseline's remote execution: copy-on-reference fetches
    // are typically still outstanding (except for pure-copy, which carries
    // no residual dependency and must survive this).
    const SimTime mid = baseline.migration.resumed + (baseline.remote_exec * 3) / 10;
    config.fault_plan.crashes.push_back(CrashWindow{HostId(1), mid, kFaultForever});
  }
  config.reliable_transport = true;  // even for crash-only plans

  MigrationRun run = RunOneMigration(config, workload, strategy, seed);

  FailureTrialResult result;
  result.workload = workload;
  result.strategy = strategy;
  result.scenario = scenario.name;
  result.fragments_retransmitted = run.netmsg.fragments_retransmitted;
  result.retransmit_bytes = run.netmsg.retransmit_bytes;
  result.duplicates_suppressed = run.netmsg.duplicates_suppressed;
  result.transfers_dead_lettered = run.netmsg.transfers_dead_lettered;
  result.deliveries_lost = run.deliveries_lost;

  if (!run.drained) {
    result.outcome = FailureOutcome::kHung;
    return result;
  }
  if (!run.done) {
    // The queue drained but the migration neither completed nor aborted:
    // treat as hung — the abort timer should make this impossible.
    ACCENT_LOG(kError) << "failure trial drained without a migration verdict (" << workload
                       << ", " << StrategyName(strategy) << ", " << scenario.name << ")";
    result.outcome = FailureOutcome::kHung;
    return result;
  }

  if (run.record.aborted) {
    result.outcome = FailureOutcome::kAborted;
    result.rolled_back = run.record.rolled_back;
    result.abort_reason = run.record.abort_reason;
    if (run.local_done) {
      result.finished = run.local_finish;
      // A rolled-back process reruns the same trace over the same pages;
      // its contents must match the lossless destination's.
      result.integrity_ok = run.local_checksum == baseline.touched_checksum;
    }
    return result;
  }

  if (run.remote_done) {
    result.outcome = FailureOutcome::kCompleted;
    result.finished = run.remote_finish;
    result.integrity_ok = run.remote_checksum == baseline.touched_checksum;
    if (baseline.finished.count() > 0) {
      result.slowdown = static_cast<double>(result.finished.count()) /
                        static_cast<double>(baseline.finished.count());
    }
    return result;
  }

  // Migration handshake completed but the process never finished: a
  // residual dependency on a dead host was reported as a terminal fault.
  result.outcome = FailureOutcome::kTerminalFault;
  if (run.remote_inserted) {
    ACCENT_CHECK(run.remote_faulted) << " remote process neither done nor faulted after drain";
  }
  return result;
}

FailureMatrix RunFailureMatrix(std::uint64_t seed, int threads) {
  if (threads <= 0) {
    threads = SweepThreadCount();
  }
  const std::vector<WorkloadSpec>& workloads = RepresentativeWorkloads();
  const std::vector<FailureScenario>& scenarios = FailureScenarios();
  const std::size_t strategies = sizeof(kStrategies) / sizeof(kStrategies[0]);
  const std::size_t groups = workloads.size() * strategies;

  // One slot per trial, filled by (workload, strategy) group: a group runs
  // its lossless baseline first (crash placement + integrity reference),
  // then its scenarios in order. Groups share nothing, so thread count and
  // scheduling cannot reach any result.
  std::vector<std::optional<FailureTrialResult>> slots(groups * scenarios.size());
  ParallelFor(threads, groups, [&](std::size_t group) {
    const std::string& workload = workloads[group / strategies].name;
    const TransferStrategy strategy = kStrategies[group % strategies];
    const FailureBaseline baseline = RunFailureBaseline(workload, strategy, seed);
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      slots[group * scenarios.size() + s] =
          RunFailureTrial(workload, strategy, scenarios[s], baseline, seed);
    }
  });

  FailureMatrix matrix;
  matrix.trials.reserve(slots.size());
  for (std::optional<FailureTrialResult>& slot : slots) {
    ACCENT_CHECK(slot.has_value()) << " failure trial slot never filled";
    const FailureTrialResult& trial = *slot;
    switch (trial.outcome) {
      case FailureOutcome::kCompleted:
        ++matrix.completed;
        if (!trial.integrity_ok) {
          ++matrix.integrity_failures;
        }
        break;
      case FailureOutcome::kAborted:
        ++matrix.aborted;
        break;
      case FailureOutcome::kTerminalFault:
        ++matrix.terminal_faults;
        break;
      case FailureOutcome::kHung:
        ++matrix.hung;
        break;
    }
    matrix.trials.push_back(std::move(*slot));
  }
  return matrix;
}

Json FailureMatrixToJson(const FailureMatrix& matrix) {
  Json trials{Json::Array{}};
  for (const FailureTrialResult& trial : matrix.trials) {
    Json entry;
    entry["workload"] = Json(trial.workload);
    entry["strategy"] = Json(StrategyName(trial.strategy));
    entry["scenario"] = Json(trial.scenario);
    entry["outcome"] = Json(FailureOutcomeName(trial.outcome));
    entry["integrity_ok"] = Json(trial.integrity_ok);
    entry["rolled_back"] = Json(trial.rolled_back);
    entry["abort_reason"] = Json(trial.abort_reason);
    entry["fragments_retransmitted"] = Json(trial.fragments_retransmitted);
    entry["retransmit_bytes"] = Json(trial.retransmit_bytes);
    entry["duplicates_suppressed"] = Json(trial.duplicates_suppressed);
    entry["transfers_dead_lettered"] = Json(trial.transfers_dead_lettered);
    entry["deliveries_lost"] = Json(trial.deliveries_lost);
    entry["finished_us"] = Json(static_cast<std::int64_t>(trial.finished.count()));
    entry["slowdown"] = Json(trial.slowdown);
    trials.Append(std::move(entry));
  }

  Json report;
  report["bench"] = Json("failure_matrix");
  report["schema_version"] = Json(1);
  report["trial_count"] = Json(static_cast<std::uint64_t>(matrix.trials.size()));
  report["completed"] = Json(matrix.completed);
  report["aborted"] = Json(matrix.aborted);
  report["terminal_faults"] = Json(matrix.terminal_faults);
  report["hung"] = Json(matrix.hung);
  report["integrity_failures"] = Json(matrix.integrity_failures);
  report["trials"] = std::move(trials);
  return report;
}

}  // namespace accent
