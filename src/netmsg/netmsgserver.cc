#include "src/netmsg/netmsgserver.h"

#include <algorithm>

#include "src/base/logging.h"

namespace accent {

void NetMsgDirectory::Register(HostId host, NetMsgServer* server) {
  ACCENT_EXPECTS(server != nullptr);
  ACCENT_EXPECTS(servers_.count(host.value) == 0) << " duplicate NetMsgServer on " << host;
  servers_[host.value] = server;
}

NetMsgServer* NetMsgDirectory::Find(HostId host) const {
  auto it = servers_.find(host.value);
  return it == servers_.end() ? nullptr : it->second;
}

NetMsgServer::NetMsgServer(HostId host, Simulator* sim, const CostTable* costs,
                           IpcFabric* fabric, Network* network, SegmentTable* segments,
                           NetMsgDirectory* directory)
    : host_(host),
      sim_(*sim),
      costs_(*costs),
      fabric_(*fabric),
      network_(*network),
      directory_(*directory),
      backer_(host, sim, costs, fabric, segments, CpuWork::kNetMsgServer, "netmsg") {
  ACCENT_EXPECTS(network != nullptr && directory != nullptr);
}

void NetMsgServer::Start() {
  backer_.Start();
  directory_.Register(host_, this);
  fabric_.SetTransport(host_, this);
}

IouRef NetMsgServer::AdoptPages(std::vector<std::pair<PageIndex, PageData>> pages,
                                const std::string& name) {
  ACCENT_EXPECTS(!pages.empty());
  ++cached_objects_;
  // Migration cache objects are indexed by virtual address, so the object
  // spans the whole 4 GB space; only the adopted pages consume storage.
  return backer_.BackSparsePages(kAddressSpaceLimit, std::move(pages), name);
}

bool NetMsgServer::EligibleForSubstitution(const Message& msg) {
  if (msg.no_ious) {
    return false;
  }
  switch (msg.op) {
    case MsgOp::kUser:
    case MsgOp::kMigrateRimas:
      break;
    default:
      return false;  // protocol replies and control traffic ship as-is
  }
  for (const MemoryRegion& region : msg.regions) {
    if (region.mem_class == MemClass::kReal) {
      return true;
    }
  }
  return false;
}

bool NetMsgServer::SubstituteIous(Message* msg) {
  if (!iou_caching_ || !EligibleForSubstitution(*msg)) {
    return false;
  }

  std::vector<std::pair<PageIndex, PageData>> cached;
  Addr lo = kAddressSpaceLimit;
  Addr hi = 0;
  std::vector<MemoryRegion> kept;
  for (MemoryRegion& region : msg->regions) {
    if (region.mem_class != MemClass::kReal) {
      kept.push_back(std::move(region));
      continue;
    }
    lo = std::min(lo, region.base);
    hi = std::max(hi, region.base + region.size);
    ++stats_.regions_cached;
    stats_.bytes_cached += region.size;
    for (PageIndex i = 0; i < region.page_count(); ++i) {
      cached.emplace_back(PageOf(region.base) + i, std::move(region.pages[i]));
    }
  }
  ACCENT_CHECK(!cached.empty());

  IouRef iou = AdoptPages(std::move(cached), "iou-cache");
  // One consolidated IOU spans the cached ranges; receivers needing the
  // precise layout intersect it with the AMap from the Core message. The
  // cache object is VA-indexed and region offsets are base-relative, so the
  // IOU is anchored at the span's base.
  iou.offset = lo;
  kept.push_back(MemoryRegion::Iou(lo, hi - lo, iou));
  msg->regions = std::move(kept);
  return true;
}

void NetMsgServer::ForwardToRemote(HostId dest_host, Message msg) {
  ACCENT_EXPECTS(dest_host != host_);
  NetMsgServer* peer = directory_.Find(dest_host);
  ACCENT_CHECK(peer != nullptr) << " no NetMsgServer on " << dest_host;

  SubstituteIous(&msg);
  ++stats_.messages_forwarded;

  const ByteCount wire = msg.WireSize(costs_);
  const ByteCount frag_payload = costs_.netmsg_fragment_bytes;
  const std::uint64_t fragments = std::max<std::uint64_t>(1, (wire + frag_payload - 1) / frag_payload);

  Cpu* cpu = fabric_.CpuOf(host_);
  const CpuPriority priority =
      costs_.fault_priority_lane && msg.traffic == TrafficKind::kFaultData
          ? CpuPriority::kHigh
          : CpuPriority::kNormal;
  // Per-message protocol work happens once, up front.
  cpu->Submit(CpuWork::kNetMsgServer, costs_.netmsg_per_message, nullptr, priority);

  struct Shipment {
    Message msg;
    HostId dest;
  };
  auto shipment = std::make_shared<Shipment>(Shipment{std::move(msg), dest_host});
  // Transfer ids are disambiguated by sender so reassembly state at the
  // receiver never collides across peers.
  const std::uint64_t transfer = (host_.value << 48) | next_transfer_id_++;

  ByteCount remaining = wire;
  for (std::uint64_t i = 0; i < fragments; ++i) {
    const ByteCount bytes = std::min<ByteCount>(frag_payload, remaining);
    remaining -= bytes;
    const bool final_fragment = (i + 1 == fragments);
    ++stats_.fragments_sent;

    const SimDuration handle =
        costs_.netmsg_per_fragment + costs_.netmsg_per_byte * static_cast<std::int64_t>(bytes);
    cpu->Submit(CpuWork::kNetMsgServer, handle,
                [this, peer, shipment, transfer, bytes, final_fragment]() {
                  const TrafficKind kind = shipment->msg.traffic;
                  network_.Transmit(host_, shipment->dest, bytes, kind,
                                    [peer, shipment, transfer, bytes, final_fragment]() {
                                      Message payload;
                                      if (final_fragment) {
                                        payload = std::move(shipment->msg);
                                      }
                                      peer->OnFragmentArrived(transfer, bytes, final_fragment,
                                                              std::move(payload));
                                    });
                },
                priority);
  }
}

void NetMsgServer::OnFragmentArrived(std::uint64_t transfer, ByteCount bytes,
                                     bool final_fragment, Message msg) {
  ++stats_.fragments_received;
  Reassembly& assembly = reassembly_[transfer];
  assembly.bytes += bytes;
  ++assembly.fragments;
  if (!final_fragment) {
    return;
  }

  // The whole message has arrived: charge this node's handling in one piece
  // and deliver.
  const SimDuration handle =
      costs_.netmsg_per_message +
      costs_.netmsg_per_fragment * static_cast<std::int64_t>(assembly.fragments) +
      costs_.netmsg_per_byte * static_cast<std::int64_t>(assembly.bytes);
  reassembly_.erase(transfer);
  ++stats_.messages_delivered;
  const CpuPriority priority =
      costs_.fault_priority_lane && msg.traffic == TrafficKind::kFaultData
          ? CpuPriority::kHigh
          : CpuPriority::kNormal;
  fabric_.CpuOf(host_)->Submit(CpuWork::kNetMsgServer, handle,
                               [this, msg = std::move(msg)]() mutable {
                                 fabric_.DeliverAt(host_, std::move(msg));
                               },
                               priority);
}

}  // namespace accent
